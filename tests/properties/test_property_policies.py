"""Property-based tests for backoff policies and the slotted simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mac.backoff import (
    PPersistentBackoff,
    RandomResetBackoff,
    StandardExponentialBackoff,
)
from repro.mac.idlesense import IdleSenseBackoff
from repro.mac.schemes import fixed_p_persistent_scheme
from repro.phy.constants import PhyParameters
from repro.sim.slotted import run_slotted

PHY = PhyParameters()


class TestPolicyInvariants:
    @given(st.integers(min_value=0, max_value=2 ** 32 - 1),
           st.lists(st.booleans(), min_size=1, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_exponential_backoff_always_within_current_window(self, seed, outcomes):
        rng = np.random.default_rng(seed)
        policy = StandardExponentialBackoff(PHY)
        value = policy.initial_backoff(rng)
        assert 0 <= value < policy.current_window
        for success in outcomes:
            value = policy.on_success(rng) if success else policy.on_failure(rng)
            assert 0 <= value < policy.current_window
            assert 0 <= policy.stage <= PHY.num_backoff_stages

    @given(st.integers(min_value=0, max_value=2 ** 32 - 1),
           st.floats(min_value=0.001, max_value=1.0),
           st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=100, deadline=None)
    def test_p_persistent_draws_non_negative(self, seed, p, weight):
        rng = np.random.default_rng(seed)
        policy = PPersistentBackoff(p=p, weight=weight)
        for _ in range(20):
            assert policy.on_success(rng) >= 0
        assert 0.0 <= policy.attempt_probability() <= 1.0

    @given(st.integers(min_value=0, max_value=2 ** 32 - 1),
           st.integers(min_value=0, max_value=6),
           st.floats(min_value=0.0, max_value=1.0),
           st.lists(st.booleans(), min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_randomreset_stage_always_valid(self, seed, stage, p0, outcomes):
        rng = np.random.default_rng(seed)
        policy = RandomResetBackoff(PHY, stage=stage, reset_probability=p0)
        policy.initial_backoff(rng)
        for success in outcomes:
            value = policy.on_success(rng) if success else policy.on_failure(rng)
            assert 0 <= value < policy.current_window
            assert 0 <= policy.stage <= PHY.num_backoff_stages
            if success:
                assert policy.stage >= policy.reset_stage

    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_idlesense_window_stays_clamped(self, idle_runs):
        policy = IdleSenseBackoff(PHY, max_window=512)
        for idle in idle_runs:
            policy.observe_transmission(idle)
            assert PHY.cw_min <= policy.window <= 512


class TestSlottedSimulatorInvariants:
    @given(st.integers(min_value=1, max_value=12),
           st.floats(min_value=0.005, max_value=0.3),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_conservation_and_bounds(self, n, p, seed):
        result = run_slotted(
            fixed_p_persistent_scheme(p), num_stations=n,
            duration=0.2, warmup=0.0, phy=PHY, seed=seed,
        )
        # Payload conservation: total bits equal successes times payload size.
        assert result.total_successes * PHY.payload_bits == pytest.approx(
            result.total_throughput_bps * result.duration, rel=1e-9
        )
        # Throughput can never exceed the channel rate.
        assert result.total_throughput_bps < PHY.bit_rate
        # Station stats are consistent with the aggregate.
        assert sum(s.payload_bits for s in result.station_stats) == (
            result.total_successes * PHY.payload_bits
        )
