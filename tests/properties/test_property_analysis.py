"""Property-based tests (hypothesis) for the analytical models."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.bianchi import (
    conditional_collision_probability,
    dcf_attempt_probability,
    solve_dcf_fixed_point,
)
from repro.analysis.persistent import (
    per_station_throughput,
    slot_probabilities,
    system_throughput,
    system_throughput_weighted,
    weighted_attempt_probability,
)
from repro.analysis.randomreset import (
    conditional_attempt_probability,
    randomreset_distribution,
    solve_attempt_probability,
    stage_alphas,
)
from repro.phy.constants import PhyParameters

PHY = PhyParameters()

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
open_probabilities = st.floats(min_value=1e-6, max_value=0.999, allow_nan=False)
weights = st.floats(min_value=0.1, max_value=10.0, allow_nan=False)
station_counts = st.integers(min_value=1, max_value=60)


class TestSlotProbabilityProperties:
    @given(st.lists(open_probabilities, min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_probabilities_form_distribution(self, attempt_probs):
        p_idle, p_success, p_collision = slot_probabilities(attempt_probs)
        assert -1e-9 <= p_idle <= 1 + 1e-9
        assert -1e-9 <= p_success <= 1 + 1e-9
        assert -1e-9 <= p_collision <= 1 + 1e-9
        assert p_idle + p_success + p_collision == pytest.approx(1.0)

    @given(st.lists(open_probabilities, min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_throughput_non_negative_and_below_rate(self, attempt_probs):
        total = system_throughput(attempt_probs, PHY)
        assert 0.0 <= total < PHY.bit_rate

    @given(st.lists(open_probabilities, min_size=2, max_size=15))
    @settings(max_examples=50, deadline=None)
    def test_per_station_sums_to_system(self, attempt_probs):
        per_station = per_station_throughput(attempt_probs, PHY)
        assert float(np.sum(per_station)) == pytest.approx(
            system_throughput(attempt_probs, PHY), rel=1e-9
        )


class TestWeightedMappingProperties:
    @given(weights, probabilities)
    @settings(max_examples=200, deadline=None)
    def test_mapping_stays_in_unit_interval(self, weight, p):
        assert 0.0 <= weighted_attempt_probability(weight, p) <= 1.0

    @given(weights, open_probabilities)
    @settings(max_examples=200, deadline=None)
    def test_odds_ratio_equals_weight(self, weight, p):
        pw = weighted_attempt_probability(weight, p)
        odds_ratio = (pw / (1 - pw)) / (p / (1 - p))
        assert odds_ratio == pytest.approx(weight, rel=1e-6)

    @given(st.lists(weights, min_size=1, max_size=10), open_probabilities)
    @settings(max_examples=50, deadline=None)
    def test_lemma1_normalized_throughput_equal(self, weight_list, p):
        # Lemma 1 / Theorem 1: throughput divided by weight is identical for
        # every station, regardless of the weights of the others.
        attempt = [weighted_attempt_probability(w, p) for w in weight_list]
        per_station = per_station_throughput(attempt, PHY)
        normalized = per_station / np.asarray(weight_list)
        if np.max(normalized) > 0:
            assert np.max(normalized) / np.min(normalized) == pytest.approx(1.0, rel=1e-6)


class TestBianchiProperties:
    @given(probabilities)
    @settings(max_examples=100, deadline=None)
    def test_attempt_probability_in_unit_interval(self, c):
        tau = dcf_attempt_probability(c, PHY.cw_min, PHY.num_backoff_stages)
        assert 0.0 < tau <= 1.0

    @given(station_counts)
    @settings(max_examples=40, deadline=None)
    def test_fixed_point_is_consistent(self, n):
        tau, c = solve_dcf_fixed_point(n, PHY.cw_min, PHY.num_backoff_stages)
        assert 0.0 < tau <= 1.0
        assert 0.0 <= c < 1.0
        assert c == pytest.approx(conditional_collision_probability(tau, n), abs=1e-6)

    @given(st.integers(min_value=2, max_value=59))
    @settings(max_examples=30, deadline=None)
    def test_attempt_probability_decreases_in_n(self, n):
        tau_n, _ = solve_dcf_fixed_point(n, PHY.cw_min, PHY.num_backoff_stages)
        tau_next, _ = solve_dcf_fixed_point(n + 1, PHY.cw_min, PHY.num_backoff_stages)
        assert tau_next <= tau_n + 1e-12


class TestRandomResetProperties:
    @given(probabilities, st.integers(min_value=1, max_value=8))
    @settings(max_examples=100, deadline=None)
    def test_alphas_monotone_in_stage(self, c, m):
        alphas = stage_alphas(c, m)
        assert np.all(np.diff(alphas) >= -1e-12)
        assert alphas[0] >= 1.0

    @given(st.integers(min_value=0, max_value=6), probabilities, probabilities)
    @settings(max_examples=100, deadline=None)
    def test_conditional_attempt_probability_bounded(self, stage, p0, c):
        if stage == 7 and p0 != 1.0:
            return
        q = randomreset_distribution(stage, p0, 7)
        tau = conditional_attempt_probability(q, c, PHY.cw_min)
        assert 0.0 < tau <= 2.0 / PHY.cw_min + 1e-12

    @given(st.integers(min_value=0, max_value=6), probabilities, station_counts)
    @settings(max_examples=50, deadline=None)
    def test_fixed_point_consistency(self, stage, p0, n):
        q = randomreset_distribution(stage, p0, 7)
        tau, c = solve_attempt_probability(q, n, PHY.cw_min)
        assert 0.0 < tau < 1.0
        assert c == pytest.approx(1.0 - (1.0 - tau) ** (n - 1), abs=1e-6)

    @given(st.integers(min_value=0, max_value=6),
           st.tuples(probabilities, probabilities), station_counts)
    @settings(max_examples=50, deadline=None)
    def test_lemma5_monotone_in_p0(self, stage, p0_pair, n):
        low, high = sorted(p0_pair)
        q_low = randomreset_distribution(stage, low, 7)
        q_high = randomreset_distribution(stage, high, 7)
        tau_low, _ = solve_attempt_probability(q_low, n, PHY.cw_min)
        tau_high, _ = solve_attempt_probability(q_high, n, PHY.cw_min)
        assert tau_high >= tau_low - 1e-9


class TestWeightedThroughputProperties:
    @given(open_probabilities, st.lists(weights, min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_weighted_system_throughput_bounded(self, p, weight_list):
        total = system_throughput_weighted(p, weight_list, PHY)
        assert 0.0 <= total < PHY.bit_rate
