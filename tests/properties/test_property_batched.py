"""Property-based tests for the batched simulator's composition contract.

The campaign planner groups arbitrary compatible tasks into one vectorized
call, caches per-cell results and mixes batched and cached cells freely.
All of that is sound only if a cell's result is a pure function of its own
(N, seed) — never of the batch it happened to ride in.  Hypothesis explores
random batch compositions, orderings and duplications to hunt for any
cross-cell leakage (shared RNG state, mis-scoped masks, padding artefacts).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.experiments.campaign import RunTask, SchemeSpec, TopologySpec
from repro.experiments.campaign.batching import execute_batch
from repro.phy.constants import PhyParameters
from repro.sim.batched import run_batched
from repro.sim.conflict import run_conflict
from repro.topology.scenarios import hidden_node_scenario

PHY = PhyParameters()

SCHEMES = [
    ("standard-802.11", {}),
    ("idlesense", {}),
    ("wtop-csma", {"update_period": 0.05}),
    ("tora-csma", {"update_period": 0.05}),
    ("fixed-p", {"p": 0.05}),
    ("fixed-randomreset", {"stage": 0, "p0": 0.5}),
]

cells = st.lists(
    st.tuples(st.integers(min_value=1, max_value=12),
              st.integers(min_value=0, max_value=2 ** 31 - 1)),
    min_size=2, max_size=5,
)


class TestCompositionIndependence:
    @given(cells=cells, scheme=st.sampled_from(SCHEMES),
           focus=st.integers(min_value=0, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_cell_result_is_independent_of_batch_composition(
        self, cells, scheme, focus
    ):
        """A cell batched with arbitrary neighbours equals the cell alone."""
        kind, params = scheme
        focus = focus % len(cells)
        n, seed = cells[focus]
        batch = run_batched(kind, params, [c[0] for c in cells],
                            [c[1] for c in cells],
                            duration=0.15, warmup=0.1, phy=PHY)
        [alone] = run_batched(kind, params, [n], [seed],
                              duration=0.15, warmup=0.1, phy=PHY)
        assert batch[focus] == alone

    @given(cells=cells, scheme=st.sampled_from(SCHEMES),
           order_seed=st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=10, deadline=None)
    def test_batch_order_does_not_change_per_cell_results(
        self, cells, scheme, order_seed
    ):
        kind, params = scheme
        permutation = np.random.default_rng(order_seed).permutation(len(cells))
        forward = run_batched(kind, params, [c[0] for c in cells],
                              [c[1] for c in cells],
                              duration=0.15, warmup=0.05, phy=PHY)
        shuffled = run_batched(kind, params,
                               [cells[i][0] for i in permutation],
                               [cells[i][1] for i in permutation],
                               duration=0.15, warmup=0.05, phy=PHY)
        for position, original in enumerate(permutation):
            assert shuffled[position] == forward[original]

    @given(n=st.integers(min_value=1, max_value=10),
           seed=st.integers(min_value=0, max_value=2 ** 31 - 1),
           copies=st.integers(min_value=2, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_duplicated_cells_produce_identical_results(self, n, seed, copies):
        results = run_batched("standard-802.11", {}, [n] * copies,
                              [seed] * copies, duration=0.2, warmup=0.0,
                              phy=PHY)
        for result in results[1:]:
            assert result == results[0]


#: (station count, topology seed, cell seed) triples for hidden-node cells.
hidden_cells = st.lists(
    st.tuples(st.integers(min_value=2, max_value=8),
              st.integers(min_value=0, max_value=50),
              st.integers(min_value=0, max_value=2 ** 31 - 1)),
    min_size=2, max_size=4,
)


def _hidden_graphs(cells):
    return [
        hidden_node_scenario(n, np.random.default_rng(topo_seed), radius=16.0)
        for n, topo_seed, _ in cells
    ]


class TestHiddenTopologyCompositionIndependence:
    """The conflict-matrix backend honours the same composition contract.

    Hidden-node batches additionally mix *topologies* (not just station
    counts and seeds), so these properties also hunt for cross-cell leakage
    through the padded sensing matrices.
    """

    @given(cells=hidden_cells, scheme=st.sampled_from(SCHEMES),
           focus=st.integers(min_value=0, max_value=3))
    @settings(max_examples=10, deadline=None)
    def test_cell_result_is_independent_of_batch_composition(
        self, cells, scheme, focus
    ):
        kind, params = scheme
        focus = focus % len(cells)
        graphs = _hidden_graphs(cells)
        seeds = [c[2] for c in cells]
        batch = run_conflict(kind, params, graphs, seeds,
                             duration=0.12, warmup=0.08, phy=PHY)
        [alone] = run_conflict(kind, params, [graphs[focus]], [seeds[focus]],
                               duration=0.12, warmup=0.08, phy=PHY)
        assert batch[focus] == alone

    @given(cells=hidden_cells, scheme=st.sampled_from(SCHEMES),
           order_seed=st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=6, deadline=None)
    def test_batch_order_does_not_change_per_cell_results(
        self, cells, scheme, order_seed
    ):
        kind, params = scheme
        graphs = _hidden_graphs(cells)
        seeds = [c[2] for c in cells]
        permutation = np.random.default_rng(order_seed).permutation(len(cells))
        forward = run_conflict(kind, params, graphs, seeds,
                               duration=0.12, warmup=0.05, phy=PHY)
        shuffled = run_conflict(kind, params,
                                [graphs[i] for i in permutation],
                                [seeds[i] for i in permutation],
                                duration=0.12, warmup=0.05, phy=PHY)
        for position, original in enumerate(permutation):
            assert shuffled[position] == forward[original]

    @given(n=st.integers(min_value=2, max_value=8),
           topo_seed=st.integers(min_value=0, max_value=50),
           seed=st.integers(min_value=0, max_value=2 ** 31 - 1),
           copies=st.integers(min_value=2, max_value=3))
    @settings(max_examples=6, deadline=None)
    def test_duplicated_cells_produce_identical_results(
        self, n, topo_seed, seed, copies
    ):
        graph = hidden_node_scenario(
            n, np.random.default_rng(topo_seed), radius=16.0
        )
        results = run_conflict("standard-802.11", {}, [graph] * copies,
                               [seed] * copies, duration=0.15, phy=PHY)
        for result in results[1:]:
            assert result == results[0]

    @given(seeds=st.lists(st.integers(min_value=0, max_value=2 ** 31 - 1),
                          min_size=2, max_size=3, unique=True))
    @settings(max_examples=6, deadline=None)
    def test_execute_batch_equals_batches_of_one(self, seeds):
        """The planner's grouping is invisible on the conflict backend too."""
        tasks = [
            RunTask(
                scheme=SchemeSpec.make("tora-csma", update_period=0.05),
                topology=TopologySpec.hidden_disc(5, 16.0, 7),
                seed=seed, duration=0.15, warmup=0.05,
                simulator="batched", phy=PHY,
            )
            for seed in seeds
        ]
        grouped = execute_batch(tasks)
        singles = [execute_batch([task])[0] for task in tasks]
        assert grouped == singles


class TestExecuteBatchContract:
    @given(seeds=st.lists(st.integers(min_value=0, max_value=2 ** 31 - 1),
                          min_size=2, max_size=4, unique=True))
    @settings(max_examples=10, deadline=None)
    def test_execute_batch_equals_batches_of_one(self, seeds):
        """The planner's grouping is invisible in the per-cell results."""
        tasks = [
            RunTask(
                scheme=SchemeSpec.make("standard-802.11"),
                topology=TopologySpec.connected(4),
                seed=seed, duration=0.2, warmup=0.05,
                simulator="batched", phy=PHY,
            )
            for seed in seeds
        ]
        grouped = execute_batch(tasks)
        singles = [execute_batch([task])[0] for task in tasks]
        assert grouped == singles
