"""Property-based tests for the traffic subsystem's core contracts.

Three properties make unsaturated workloads safe to land across four
backends at once:

* **Saturated equivalence** — ``traffic=saturated`` must be bit-identical
  to the pre-traffic code path on every backend, and must hash to the same
  task key, so existing :class:`ResultCache` entries stay valid.
* **Composition independence** — per-cell results of the batched backends
  must not depend on which other cells share the vectorized call, in any
  order or multiplicity, traffic included (the arrival streams are
  per-cell salted, so this extends the existing contract).
* **Offered-load tracking** — when the offered load is far below capacity,
  delivered throughput must equal offered load (nothing queues, nothing
  drops): the macroscopic sanity check that the queue gating doesn't eat
  or invent frames.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.experiments.campaign import RunTask, SchemeSpec, TopologySpec
from repro.phy.constants import PhyParameters
from repro.sim.batched import run_batched
from repro.sim.conflict import run_conflict
from repro.sim.slotted import run_slotted
from repro.topology.scenarios import hidden_node_scenario
from repro.traffic import ArrivalProcess, saturation_frame_rate

PHY = PhyParameters()

TRAFFIC_SPECS = [
    ArrivalProcess.poisson(400.0, queue_limit=16),
    ArrivalProcess.cbr(400.0, queue_limit=16),
    ArrivalProcess.on_off(800.0, on_mean_s=0.05, off_mean_s=0.05,
                          queue_limit=16),
    # Retry-limited variants: the discard path claims extra backoff
    # uniforms conditionally, so it must prove composition independence
    # separately — a discard in one cell must never shift another cell's
    # stream.  The closed-loop kinds ride along for the same reason.
    ArrivalProcess.poisson(400.0, queue_limit=16, retry_limit=2),
    ArrivalProcess.saturated(retry_limit=3),
    ArrivalProcess.window_limited(3, retry_limit=3),
    ArrivalProcess.incast(8, 0.05, retry_limit=5),
]

SCHEMES = [
    ("standard-802.11", {}),
    ("idlesense", {}),
    ("wtop-csma", {"update_period": 0.05}),
]

cells = st.lists(
    st.tuples(st.integers(min_value=1, max_value=10),
              st.integers(min_value=0, max_value=2 ** 31 - 1)),
    min_size=2, max_size=4,
)


class TestSaturatedEquivalence:
    @given(seed=st.integers(min_value=0, max_value=2 ** 31 - 1),
           n=st.integers(min_value=1, max_value=10))
    @settings(max_examples=10, deadline=None)
    def test_slotted_saturated_is_bit_identical(self, seed, n):
        from repro.mac.schemes import standard_80211_scheme

        plain = run_slotted(standard_80211_scheme(PHY), n, duration=0.2,
                            warmup=0.05, phy=PHY, seed=seed)
        explicit = run_slotted(standard_80211_scheme(PHY), n, duration=0.2,
                               warmup=0.05, phy=PHY, seed=seed,
                               traffic=ArrivalProcess.saturated())
        assert plain == explicit

    @given(seed=st.integers(min_value=0, max_value=2 ** 31 - 1),
           n=st.integers(min_value=1, max_value=10),
           scheme=st.sampled_from(SCHEMES))
    @settings(max_examples=10, deadline=None)
    def test_batched_saturated_is_bit_identical(self, seed, n, scheme):
        kind, params = scheme
        [plain] = run_batched(kind, params, [n], [seed], duration=0.2,
                              warmup=0.05, phy=PHY)
        [explicit] = run_batched(kind, params, [n], [seed], duration=0.2,
                                 warmup=0.05, phy=PHY,
                                 traffic=ArrivalProcess.saturated())
        assert plain == explicit

    @given(seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=5, deadline=None)
    def test_conflict_saturated_is_bit_identical(self, seed):
        graph = hidden_node_scenario(6, np.random.default_rng(11),
                                     radius=16.0, require_hidden_pairs=True)
        [plain] = run_conflict("standard-802.11", {}, [graph], [seed],
                               duration=0.2, warmup=0.05, phy=PHY)
        [explicit] = run_conflict("standard-802.11", {}, [graph], [seed],
                                  duration=0.2, warmup=0.05, phy=PHY,
                                  traffic=ArrivalProcess.saturated())
        assert plain == explicit

    def test_saturated_task_key_matches_pre_traffic_format(self):
        """Saturated tasks hash exactly as before the traffic field existed,
        so every pre-traffic ResultCache entry remains valid."""
        base = RunTask(
            scheme=SchemeSpec.make("standard-802.11"),
            topology=TopologySpec.connected(5),
            seed=1, duration=1.0, warmup=0.2,
        )
        explicit = RunTask(
            scheme=SchemeSpec.make("standard-802.11"),
            topology=TopologySpec.connected(5),
            seed=1, duration=1.0, warmup=0.2,
            traffic=ArrivalProcess.saturated(),
        )
        assert explicit.traffic is None
        assert base.task_key() == explicit.task_key()
        assert "traffic" not in base.to_json()

    def test_unsaturated_traffic_is_a_key_dimension(self):
        def key(traffic):
            return RunTask(
                scheme=SchemeSpec.make("standard-802.11"),
                topology=TopologySpec.connected(5),
                seed=1, duration=1.0, warmup=0.2, traffic=traffic,
            ).task_key()

        saturated = key(None)
        poisson = key(ArrivalProcess.poisson(100.0))
        assert poisson != saturated
        assert key(ArrivalProcess.poisson(100.0)) == poisson
        assert key(ArrivalProcess.poisson(200.0)) != poisson
        assert key(ArrivalProcess.cbr(100.0)) != poisson


class TestTrafficCompositionIndependence:
    @given(cells=cells, traffic=st.sampled_from(TRAFFIC_SPECS),
           scheme=st.sampled_from(SCHEMES),
           focus=st.integers(min_value=0, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_cell_result_is_independent_of_batch_composition(
        self, cells, traffic, scheme, focus
    ):
        kind, params = scheme
        focus = focus % len(cells)
        n, seed = cells[focus]
        batch = run_batched(kind, params, [c[0] for c in cells],
                            [c[1] for c in cells],
                            duration=0.15, warmup=0.05, phy=PHY,
                            traffic=traffic)
        [alone] = run_batched(kind, params, [n], [seed],
                              duration=0.15, warmup=0.05, phy=PHY,
                              traffic=traffic)
        assert batch[focus] == alone

    @given(cells=cells, traffic=st.sampled_from(TRAFFIC_SPECS),
           order_seed=st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=8, deadline=None)
    def test_batch_order_does_not_change_per_cell_results(
        self, cells, traffic, order_seed
    ):
        permutation = np.random.default_rng(order_seed).permutation(len(cells))
        forward = run_batched("standard-802.11", {}, [c[0] for c in cells],
                              [c[1] for c in cells],
                              duration=0.15, warmup=0.05, phy=PHY,
                              traffic=traffic)
        shuffled = run_batched("standard-802.11", {},
                               [cells[i][0] for i in permutation],
                               [cells[i][1] for i in permutation],
                               duration=0.15, warmup=0.05, phy=PHY,
                               traffic=traffic)
        for position, original in enumerate(permutation):
            assert shuffled[position] == forward[original]

    @given(seeds=st.lists(st.integers(min_value=0, max_value=2 ** 31 - 1),
                          min_size=2, max_size=3, unique=True),
           traffic=st.sampled_from(TRAFFIC_SPECS),
           focus=st.integers(min_value=0, max_value=2))
    @settings(max_examples=8, deadline=None)
    def test_conflict_cell_is_independent_of_batch_composition(
        self, seeds, traffic, focus
    ):
        focus = focus % len(seeds)
        graphs = [
            hidden_node_scenario(4 + i, np.random.default_rng(20 + i),
                                 radius=16.0, require_hidden_pairs=True)
            for i in range(len(seeds))
        ]
        batch = run_conflict("standard-802.11", {}, graphs, seeds,
                             duration=0.15, warmup=0.05, phy=PHY,
                             traffic=traffic)
        [alone] = run_conflict("standard-802.11", {}, [graphs[focus]],
                               [seeds[focus]], duration=0.15, warmup=0.05,
                               phy=PHY, traffic=traffic)
        assert batch[focus] == alone


class TestOfferedLoadTracking:
    @given(load=st.floats(min_value=0.05, max_value=0.4),
           seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_throughput_tracks_offered_load_below_capacity(self, load, seed):
        """Well below saturation nothing queues or drops, so delivered
        throughput equals offered load on every backend."""
        from repro.mac.schemes import standard_80211_scheme

        n = 5
        rate = load * saturation_frame_rate(PHY) / n
        traffic = ArrivalProcess.poisson(rate)
        expected_frames = n * rate * 1.0
        slotted = run_slotted(standard_80211_scheme(PHY), n, duration=1.0,
                              warmup=0.0, phy=PHY, seed=seed, traffic=traffic)
        [batched] = run_batched("standard-802.11", {}, [n], [seed],
                                duration=1.0, warmup=0.0, phy=PHY,
                                traffic=traffic)
        for result in (slotted, batched):
            # Exactly: every realized arrival is delivered (minus the few
            # frames still queued at the horizon), none dropped.
            assert result.dropped_frames == 0
            assert result.total_successes == (
                result.offered_frames - result.extra["queued_frames"]
            )
            assert result.extra["queued_frames"] <= n
            # Statistically: the realized arrival count sits inside a 5-sigma
            # Poisson envelope of the configured offered load.
            assert abs(result.offered_frames - expected_frames) <= (
                5.0 * expected_frames ** 0.5 + 5.0
            )

    @given(seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=5, deadline=None)
    def test_frame_conservation_without_warmup(self, seed):
        """offered == delivered + dropped + still queued (warmup=0)."""
        from repro.mac.schemes import standard_80211_scheme

        n = 4
        traffic = ArrivalProcess.poisson(900.0, queue_limit=8)
        result = run_slotted(standard_80211_scheme(PHY), n, duration=0.5,
                             warmup=0.0, phy=PHY, seed=seed, traffic=traffic)
        assert result.offered_frames == (
            result.total_successes + result.dropped_frames
            + result.extra["queued_frames"]
        )
        [batched] = run_batched("standard-802.11", {}, [n], [seed],
                                duration=0.5, warmup=0.0, phy=PHY,
                                traffic=traffic)
        assert batched.offered_frames == (
            batched.total_successes + batched.dropped_frames
            + batched.extra["queued_frames"]
        )
