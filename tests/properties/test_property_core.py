"""Property-based tests for the Kiefer-Wolfowitz machinery and mappings."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.kiefer_wolfowitz import GainSchedule, TwoSidedGradientTracker
from repro.core.mapping import LinearMapping, LogMapping
from repro.core.weighted_fairness import (
    base_probability_from_station,
    station_attempt_probability,
)

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
measurements = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False,
                         allow_infinity=False)


class TestTrackerInvariants:
    @given(st.lists(measurements, min_size=2, max_size=60), unit)
    @settings(max_examples=100, deadline=None)
    def test_center_always_within_bounds(self, observations, initial):
        tracker = TwoSidedGradientTracker(
            initial=initial, schedule=GainSchedule(a0=1.0, b0=0.3)
        )
        for value in observations:
            tracker.observe(value)
            assert 0.0 <= tracker.center <= 1.0
            assert 0.0 <= tracker.probe <= 1.0

    @given(st.lists(measurements, min_size=2, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_iteration_counts_pairs(self, observations):
        tracker = TwoSidedGradientTracker(initial=0.5)
        for value in observations:
            tracker.observe(value)
        assert tracker.updates == len(observations) // 2
        assert tracker.iteration == 2 + tracker.updates

    @given(st.floats(min_value=0.01, max_value=5.0),
           st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_gain_sequences_positive_and_decreasing(self, a0, b0):
        schedule = GainSchedule(a0=a0, b0=b0)
        previous_a, previous_b = float("inf"), float("inf")
        for k in range(1, 30):
            a, b = schedule.a(k), schedule.b(k)
            assert 0 < a <= previous_a
            assert 0 < b <= previous_b
            previous_a, previous_b = a, b


class TestMappingProperties:
    @given(unit)
    @settings(max_examples=200, deadline=None)
    def test_log_mapping_round_trip(self, x):
        mapping = LogMapping(1e-4, 0.9)
        assert mapping.to_control(mapping.to_parameter(x)) == pytest.approx(x, abs=1e-9)

    @given(unit)
    @settings(max_examples=200, deadline=None)
    def test_linear_mapping_round_trip(self, x):
        mapping = LinearMapping(0.0, 0.9)
        assert mapping.to_control(mapping.to_parameter(x)) == pytest.approx(x, abs=1e-12)

    @given(st.tuples(unit, unit))
    @settings(max_examples=100, deadline=None)
    def test_log_mapping_monotone(self, pair):
        low, high = sorted(pair)
        mapping = LogMapping(1e-4, 0.9)
        assert mapping.to_parameter(high) >= mapping.to_parameter(low)


class TestWeightMappingProperties:
    @given(st.floats(min_value=0.05, max_value=20.0), unit)
    @settings(max_examples=200, deadline=None)
    def test_forward_inverse_round_trip(self, weight, p):
        forward = station_attempt_probability(weight, p)
        assert base_probability_from_station(weight, forward) == pytest.approx(p, abs=1e-9)

    @given(st.floats(min_value=0.05, max_value=20.0), st.tuples(unit, unit))
    @settings(max_examples=200, deadline=None)
    def test_forward_map_monotone_in_p(self, weight, pair):
        low, high = sorted(pair)
        assert (station_attempt_probability(weight, high)
                >= station_attempt_probability(weight, low))
