"""Unit tests for the traffic subsystem (repro.traffic)."""

import math

import numpy as np
import pytest

from repro.phy.constants import PhyParameters
from repro.traffic import (
    ArrivalProcess,
    ArrivalStream,
    BatchedArrivals,
    FrameQueue,
    saturation_frame_rate,
    station_arrival_rng,
)


class TestArrivalProcess:
    def test_saturated_carries_no_parameters(self):
        spec = ArrivalProcess.saturated()
        assert spec.is_saturated
        assert spec.mean_rate_fps == math.inf
        assert spec.to_json() == {"kind": "saturated"}

    def test_poisson_and_cbr_mean_rate(self):
        assert ArrivalProcess.poisson(120.0).mean_rate_fps == 120.0
        assert ArrivalProcess.cbr(80.0).mean_rate_fps == 80.0

    def test_on_off_mean_rate_scales_with_duty_cycle(self):
        spec = ArrivalProcess.on_off(100.0, on_mean_s=0.1, off_mean_s=0.3)
        assert spec.mean_rate_fps == pytest.approx(25.0)

    def test_json_round_trip(self):
        for spec in (
            ArrivalProcess.saturated(),
            ArrivalProcess.poisson(50.0, queue_limit=7),
            ArrivalProcess.cbr(10.0),
            ArrivalProcess.on_off(40.0, on_mean_s=0.2, off_mean_s=0.1),
        ):
            assert ArrivalProcess.from_json(spec.to_json()) == spec

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalProcess(kind="bogus")
        with pytest.raises(ValueError):
            ArrivalProcess.poisson(0.0)
        with pytest.raises(ValueError):
            ArrivalProcess.poisson(10.0, queue_limit=0)
        with pytest.raises(ValueError):
            ArrivalProcess.on_off(10.0, on_mean_s=0.0, off_mean_s=0.1)
        with pytest.raises(ValueError):
            # on/off durations are exclusive to the on-off kind
            ArrivalProcess(kind="poisson", rate_fps=1.0, on_mean_s=0.1)

    def test_saturation_frame_rate_is_service_capacity(self, phy):
        assert saturation_frame_rate(phy) == pytest.approx(1.0 / phy.ts)


class TestArrivalStream:
    @pytest.mark.parametrize("spec", [
        ArrivalProcess.poisson(200.0),
        ArrivalProcess.cbr(200.0),
        ArrivalProcess.on_off(400.0, on_mean_s=0.05, off_mean_s=0.05),
    ])
    def test_times_are_strictly_increasing(self, spec):
        stream = ArrivalStream(spec, np.random.default_rng(7))
        times = [stream.advance() for _ in range(500)]
        assert all(b > a for a, b in zip(times, times[1:]))
        assert times[0] > 0.0

    @pytest.mark.parametrize("spec", [
        ArrivalProcess.poisson(500.0),
        ArrivalProcess.cbr(500.0),
        ArrivalProcess.on_off(1000.0, on_mean_s=0.05, off_mean_s=0.05),
    ])
    def test_long_run_rate_matches_mean(self, spec):
        stream = ArrivalStream(spec, np.random.default_rng(11))
        count = 4000
        last = [stream.advance() for _ in range(count)][-1]
        assert count / last == pytest.approx(spec.mean_rate_fps, rel=0.10)

    def test_saturated_has_no_stream(self):
        with pytest.raises(ValueError):
            ArrivalStream(ArrivalProcess.saturated(), np.random.default_rng(0))

    def test_stream_is_deterministic_per_seed_and_station(self):
        spec = ArrivalProcess.poisson(100.0)
        a = ArrivalStream(spec, station_arrival_rng(3, 0))
        b = ArrivalStream(spec, station_arrival_rng(3, 0))
        c = ArrivalStream(spec, station_arrival_rng(3, 1))
        first_a = [a.advance() for _ in range(50)]
        first_b = [b.advance() for _ in range(50)]
        first_c = [c.advance() for _ in range(50)]
        assert first_a == first_b
        assert first_a != first_c


class TestFrameQueue:
    def test_fifo_order_and_delay(self):
        queue = FrameQueue(limit=4)
        assert queue.offer(1.0) and queue.offer(2.0)
        assert len(queue) == 2
        assert queue.head_time == 1.0
        assert queue.pop(5.0) == pytest.approx(4.0)
        assert queue.pop(5.0) == pytest.approx(3.0)
        assert len(queue) == 0

    def test_bounded_capacity_drops(self):
        queue = FrameQueue(limit=2)
        assert queue.offer(0.1) and queue.offer(0.2)
        assert not queue.offer(0.3)
        assert len(queue) == 2

    def test_flush_empties_and_counts(self):
        queue = FrameQueue(limit=4)
        queue.offer(0.1)
        queue.offer(0.2)
        assert queue.flush() == 2
        assert len(queue) == 0
        assert queue.flush() == 0


class TestBatchedArrivals:
    def test_ring_buffer_matches_scalar_queue_semantics(self):
        spec = ArrivalProcess.poisson(300.0, queue_limit=3)
        arrivals = BatchedArrivals(spec, seeds=[5], num_stations=[2])
        active = np.ones((1, 2), dtype=bool)
        now = np.array([1.0])
        rejoined = arrivals.advance(now, active)
        # Every station saw ~300 arrivals but holds at most queue_limit.
        assert arrivals.queue_lengths.max() <= 3
        assert rejoined.any()
        assert int(arrivals.offered[0]) > 0
        assert int(arrivals.dropped[0]) > 0
        conserved = (int(arrivals.offered[0]) - int(arrivals.dropped[0]))
        assert conserved == int(arrivals.queue_lengths.sum())

    def test_pop_success_returns_fifo_delays(self):
        spec = ArrivalProcess.cbr(10.0, queue_limit=8)
        arrivals = BatchedArrivals(spec, seeds=[1], num_stations=[1])
        active = np.ones((1, 1), dtype=bool)
        arrivals.advance(np.array([0.55]), active)
        queued = int(arrivals.queue_lengths[0, 0])
        assert queued >= 4
        before = float(arrivals.delay_sum[0])
        arrivals.pop_success(np.array([0]), np.array([0]), np.array([0.55]))
        assert int(arrivals.queue_lengths[0, 0]) == queued - 1
        assert float(arrivals.delay_sum[0]) > before

    def test_flush_moves_queue_to_drops(self):
        spec = ArrivalProcess.poisson(500.0, queue_limit=16)
        arrivals = BatchedArrivals(spec, seeds=[9], num_stations=[2])
        arrivals.advance(np.array([0.05]), np.ones((1, 2), dtype=bool))
        queued = int(arrivals.queue_lengths[0, 1])
        dropped = int(arrivals.dropped[0])
        arrivals.flush(np.array([0]), np.array([1]))
        assert int(arrivals.queue_lengths[0, 1]) == 0
        assert int(arrivals.dropped[0]) == dropped + queued

    def test_inactive_stations_drop_arrivals(self):
        spec = ArrivalProcess.poisson(500.0, queue_limit=16)
        arrivals = BatchedArrivals(spec, seeds=[9], num_stations=[2])
        active = np.array([[True, False]])
        arrivals.advance(np.array([0.05]), active)
        assert int(arrivals.queue_lengths[0, 1]) == 0
        assert int(arrivals.dropped[0]) > 0

    def test_reset_measurement_zeroes_counters(self):
        spec = ArrivalProcess.poisson(500.0, queue_limit=4)
        arrivals = BatchedArrivals(spec, seeds=[2], num_stations=[1])
        arrivals.advance(np.array([0.2]), np.ones((1, 1), dtype=bool))
        arrivals.reset_measurement(np.array([True]))
        assert int(arrivals.offered[0]) == 0
        assert int(arrivals.dropped[0]) == 0
        assert float(arrivals.delay_sum[0]) == 0.0
        # Queue state survives the measurement reset.
        assert int(arrivals.queue_lengths.sum()) > 0

    @pytest.mark.parametrize("spec", [
        ArrivalProcess.poisson(800.0),
        ArrivalProcess.cbr(800.0),
        ArrivalProcess.on_off(1600.0, on_mean_s=0.05, off_mean_s=0.05),
    ])
    def test_batched_rate_matches_spec(self, spec):
        arrivals = BatchedArrivals(spec, seeds=[3, 4], num_stations=[2, 1])
        horizon = 3.0
        # Drain the queues as we go so nothing is dropped.
        for step in np.linspace(0.01, horizon, 300):
            now = np.full(2, step)
            arrivals.advance(now, np.ones((2, 2), dtype=bool))
            lengths = arrivals.queue_lengths
            for cell in range(2):
                for station in range(2):
                    while lengths[cell, station] > 0:
                        arrivals.pop_success(np.array([cell]),
                                             np.array([station]), now)
                        lengths = arrivals.queue_lengths
        per_station = arrivals.offered / np.array([2.0, 1.0]) / horizon
        assert per_station[0] == pytest.approx(spec.mean_rate_fps, rel=0.15)
        assert per_station[1] == pytest.approx(spec.mean_rate_fps, rel=0.2)
