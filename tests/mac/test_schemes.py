"""Tests for the named MAC scheme bundles."""

import pytest

from repro.core.controller import StaticController
from repro.core.tora import ToraCsmaController
from repro.core.wtop import WTopCsmaController
from repro.mac.backoff import (
    PPersistentBackoff,
    RandomResetBackoff,
    StandardExponentialBackoff,
)
from repro.mac.idlesense import IdleSenseBackoff
from repro.mac.schemes import (
    SCHEME_NAMES,
    fixed_p_persistent_scheme,
    fixed_randomreset_scheme,
    idlesense_scheme,
    scheme_by_name,
    standard_80211_scheme,
    tora_csma_scheme,
    wtop_csma_scheme,
)
from repro.phy.constants import PhyParameters


class TestSchemeConstruction:
    def test_standard_scheme_components(self, phy):
        scheme = standard_80211_scheme(phy)
        policies = scheme.make_policies(3)
        assert all(isinstance(p, StandardExponentialBackoff) for p in policies)
        assert isinstance(scheme.make_controller(), StaticController)
        assert not scheme.adaptive

    def test_idlesense_scheme_components(self, phy):
        scheme = idlesense_scheme(phy, target_idle_slots=4.0)
        policies = scheme.make_policies(2)
        assert all(isinstance(p, IdleSenseBackoff) for p in policies)
        assert policies[0].target_idle_slots == 4.0
        assert scheme.adaptive

    def test_wtop_scheme_components(self, phy):
        scheme = wtop_csma_scheme(phy, weights=[1.0, 2.0], update_period=0.1)
        policies = scheme.make_policies(2)
        assert all(isinstance(p, PPersistentBackoff) for p in policies)
        assert policies[1].weight == 2.0
        controller = scheme.make_controller()
        assert isinstance(controller, WTopCsmaController)
        assert controller.update_period == pytest.approx(0.1)

    def test_tora_scheme_components(self, phy):
        scheme = tora_csma_scheme(phy, update_period=0.2, initial_stage=1)
        policies = scheme.make_policies(2)
        assert all(isinstance(p, RandomResetBackoff) for p in policies)
        controller = scheme.make_controller()
        assert isinstance(controller, ToraCsmaController)
        assert controller.stage == 1

    def test_policies_are_independent_instances(self, phy):
        scheme = standard_80211_scheme(phy)
        a, b = scheme.make_policies(2)
        assert a is not b

    def test_make_policies_rejects_zero(self, phy):
        with pytest.raises(ValueError):
            standard_80211_scheme(phy).make_policies(0)


class TestOpenLoopSchemes:
    def test_fixed_p_persistent(self):
        scheme = fixed_p_persistent_scheme(0.05, weights=[1.0, 3.0])
        policies = scheme.make_policies(2)
        assert policies[0].base_probability == pytest.approx(0.05)
        assert policies[1].weight == 3.0
        assert not scheme.adaptive

    def test_fixed_randomreset(self, phy):
        scheme = fixed_randomreset_scheme(2, 0.4, phy)
        policy = scheme.make_policies(1)[0]
        assert policy.reset_stage == 2
        assert policy.reset_probability == pytest.approx(0.4)


class TestSchemeLookup:
    @pytest.mark.parametrize("alias,expected", [
        ("standard-802.11", "Standard 802.11"),
        ("dcf", "Standard 802.11"),
        ("idlesense", "IdleSense"),
        ("wtop", "wTOP-CSMA"),
        ("WTOP-CSMA", "wTOP-CSMA"),
        ("tora", "TORA-CSMA"),
    ])
    def test_lookup_by_alias(self, alias, expected):
        assert scheme_by_name(alias).name == expected

    def test_all_registry_names_resolve(self):
        for name in SCHEME_NAMES:
            assert scheme_by_name(name) is not None

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            scheme_by_name("aloha")
