"""Tests for the N-estimating adaptive p-persistent baseline."""

import numpy as np
import pytest

from repro.analysis.persistent import approximate_optimal_attempt_probability
from repro.mac.ntuning import NEstimatingPersistentBackoff
from repro.mac.schemes import n_estimating_scheme
from repro.phy.constants import PhyParameters
from repro.sim.slotted import run_slotted


def feed_closed_loop(policy, true_n, rounds, rng):
    """Feed the policy idle runs drawn from the true contention level."""
    for _ in range(rounds):
        p = policy.attempt_probability()
        p_busy = 1.0 - (1.0 - p) ** true_n
        idle_run = rng.geometric(min(max(p_busy, 1e-9), 1 - 1e-12)) - 1
        policy.observe_transmission(int(idle_run))


class TestEstimation:
    def test_initial_probability_follows_eq8(self, phy):
        policy = NEstimatingPersistentBackoff(phy, initial_estimate=20.0)
        assert policy.attempt_probability() == pytest.approx(
            approximate_optimal_attempt_probability(20, phy), rel=1e-9
        )

    def test_estimate_converges_to_true_station_count(self, phy):
        rng = np.random.default_rng(2)
        policy = NEstimatingPersistentBackoff(phy, initial_estimate=5.0)
        feed_closed_loop(policy, true_n=30, rounds=6000, rng=rng)
        # The estimator is noisy (it inverts a smoothed geometric mean), so
        # require it to have moved decisively from 5 into the neighbourhood of
        # 30 and to advertise an attempt probability within 2x of Eq. (8).
        assert 15 <= policy.station_estimate <= 60
        target = approximate_optimal_attempt_probability(30, phy)
        assert 0.5 * target <= policy.attempt_probability() <= 2.0 * target

    def test_estimate_tracks_downward_change(self, phy):
        rng = np.random.default_rng(3)
        policy = NEstimatingPersistentBackoff(phy, initial_estimate=50.0)
        feed_closed_loop(policy, true_n=8, rounds=6000, rng=rng)
        assert 4 <= policy.station_estimate <= 16

    def test_estimate_clamped(self, phy):
        policy = NEstimatingPersistentBackoff(phy, initial_estimate=2.0,
                                              max_estimate=40.0, update_every=1,
                                              smoothing=1.0)
        # Enormous idle runs would imply a huge N; the clamp must hold.
        for _ in range(10):
            policy.observe_transmission(100000)
        assert policy.station_estimate <= 40.0

    def test_mean_idle_run_none_before_observations(self, phy):
        assert NEstimatingPersistentBackoff(phy).mean_idle_run is None

    def test_state_snapshot_keys(self, phy):
        state = NEstimatingPersistentBackoff(phy).state()
        assert {"estimate", "attempt_p", "mean_idle_run", "observations"} <= set(state)

    def test_rejects_invalid_parameters(self, phy):
        with pytest.raises(ValueError):
            NEstimatingPersistentBackoff(phy, initial_estimate=0.5)
        with pytest.raises(ValueError):
            NEstimatingPersistentBackoff(phy, smoothing=0.0)
        with pytest.raises(ValueError):
            NEstimatingPersistentBackoff(phy, min_estimate=10, max_estimate=5)
        with pytest.raises(ValueError):
            NEstimatingPersistentBackoff(phy, update_every=0)
        with pytest.raises(ValueError):
            NEstimatingPersistentBackoff(phy).observe_transmission(-1)


class TestBackoffBehaviour:
    def test_draws_follow_attempt_probability(self, phy):
        rng = np.random.default_rng(4)
        policy = NEstimatingPersistentBackoff(phy, initial_estimate=10.0)
        p = policy.attempt_probability()
        draws = np.array([policy.on_success(rng) for _ in range(20000)])
        assert np.mean(draws == 0) == pytest.approx(p, rel=0.1)

    def test_observes_channel_flag(self, phy):
        assert NEstimatingPersistentBackoff(phy).observes_channel is True


class TestEndToEnd:
    def test_near_optimal_in_fully_connected_network(self, phy):
        # The model-based baseline should work well without hidden nodes —
        # that is exactly the paper's point: the problem only appears with
        # hidden nodes.
        result = run_slotted(n_estimating_scheme(phy), num_stations=20,
                             duration=2.0, warmup=3.0, phy=phy, seed=1)
        assert result.total_throughput_mbps > 23.0

    def test_scheme_is_adaptive_with_static_controller(self, phy):
        scheme = n_estimating_scheme(phy)
        assert scheme.adaptive
        assert scheme.make_controller().control() == {}
