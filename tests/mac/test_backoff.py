"""Tests for the contention-resolution (backoff) policies."""

import numpy as np
import pytest

from repro.mac.backoff import (
    FixedWindowBackoff,
    PPersistentBackoff,
    RandomResetBackoff,
    StandardExponentialBackoff,
)
from repro.phy.constants import PhyParameters


class TestStandardExponentialBackoff:
    def test_initial_stage_zero(self, phy, rng):
        policy = StandardExponentialBackoff(phy)
        policy.initial_backoff(rng)
        assert policy.stage == 0
        assert policy.current_window == phy.cw_min

    def test_window_doubles_on_failures_and_caps(self, phy, rng):
        policy = StandardExponentialBackoff(phy)
        policy.initial_backoff(rng)
        windows = []
        for _ in range(10):
            policy.on_failure(rng)
            windows.append(policy.current_window)
        assert windows[:7] == [16, 32, 64, 128, 256, 512, 1024]
        assert windows[-1] == phy.cw_max

    def test_success_resets_to_stage_zero(self, phy, rng):
        policy = StandardExponentialBackoff(phy)
        policy.initial_backoff(rng)
        for _ in range(4):
            policy.on_failure(rng)
        policy.on_success(rng)
        assert policy.stage == 0

    def test_backoff_within_window(self, phy, rng):
        policy = StandardExponentialBackoff(phy)
        for _ in range(200):
            value = policy.on_failure(rng)
            assert 0 <= value < policy.current_window

    def test_backoff_mean_roughly_half_window(self, phy):
        rng = np.random.default_rng(0)
        policy = StandardExponentialBackoff(phy)
        draws = [policy.on_success(rng) for _ in range(4000)]
        assert np.mean(draws) == pytest.approx((phy.cw_min - 1) / 2, rel=0.15)

    def test_attempt_probability_estimate(self, phy, rng):
        policy = StandardExponentialBackoff(phy)
        policy.initial_backoff(rng)
        assert policy.attempt_probability() == pytest.approx(2.0 / (phy.cw_min + 1))

    def test_state_snapshot(self, phy, rng):
        policy = StandardExponentialBackoff(phy)
        policy.initial_backoff(rng)
        policy.on_failure(rng)
        assert policy.state() == {"stage": 1.0, "window": 16.0}

    def test_does_not_observe_channel(self, phy):
        assert StandardExponentialBackoff(phy).observes_channel is False


class TestPPersistentBackoff:
    def test_geometric_mean_matches_probability(self):
        rng = np.random.default_rng(1)
        policy = PPersistentBackoff(p=0.1)
        draws = [policy.on_success(rng) for _ in range(20000)]
        # Mean of the shifted geometric is (1 - p) / p = 9.
        assert np.mean(draws) == pytest.approx(9.0, rel=0.05)

    def test_per_slot_attempt_probability(self):
        rng = np.random.default_rng(2)
        policy = PPersistentBackoff(p=0.25)
        draws = np.array([policy.on_failure(rng) for _ in range(20000)])
        # P(K = 0) should equal p.
        assert np.mean(draws == 0) == pytest.approx(0.25, abs=0.01)

    def test_weight_mapping_applied(self):
        policy = PPersistentBackoff(p=0.1, weight=3.0)
        expected = 3.0 * 0.1 / (1.0 + 2.0 * 0.1)
        assert policy.attempt_probability() == pytest.approx(expected)

    def test_apply_control_updates_probability(self):
        policy = PPersistentBackoff(p=0.1, weight=1.0)
        policy.apply_control({"p": 0.02})
        assert policy.base_probability == pytest.approx(0.02)
        assert policy.attempt_probability() == pytest.approx(0.02)

    def test_apply_control_ignores_unrelated_keys(self):
        policy = PPersistentBackoff(p=0.1)
        policy.apply_control({"p0": 0.5, "stage": 1})
        assert policy.base_probability == pytest.approx(0.1)

    def test_zero_probability_gives_max_backoff(self, rng):
        policy = PPersistentBackoff(p=0.0, max_backoff_slots=999)
        assert policy.on_success(rng) == 999

    def test_unit_probability_transmits_immediately(self, rng):
        policy = PPersistentBackoff(p=1.0)
        assert policy.on_success(rng) == 0

    def test_success_failure_distribution_identical(self):
        # p-persistent ignores the outcome: both draws use the same law.
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        policy_a = PPersistentBackoff(p=0.2)
        policy_b = PPersistentBackoff(p=0.2)
        assert [policy_a.on_success(rng_a) for _ in range(50)] == [
            policy_b.on_failure(rng_b) for _ in range(50)
        ]

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            PPersistentBackoff(p=1.5)
        with pytest.raises(ValueError):
            PPersistentBackoff(p=0.5, weight=0.0)
        with pytest.raises(ValueError):
            PPersistentBackoff(p=0.5, max_backoff_slots=0)


class TestRandomResetBackoff:
    def test_failure_escalates_stage(self, phy, rng):
        policy = RandomResetBackoff(phy, stage=0, reset_probability=1.0)
        policy.initial_backoff(rng)
        for expected_stage in (1, 2, 3):
            policy.on_failure(rng)
            assert policy.stage == expected_stage

    def test_failure_stage_saturates_at_m(self, phy, rng):
        policy = RandomResetBackoff(phy, stage=0, reset_probability=1.0)
        policy.initial_backoff(rng)
        for _ in range(20):
            policy.on_failure(rng)
        assert policy.stage == phy.num_backoff_stages

    def test_success_with_unit_reset_probability_returns_to_stage_j(self, phy, rng):
        policy = RandomResetBackoff(phy, stage=2, reset_probability=1.0)
        policy.initial_backoff(rng)
        policy.on_failure(rng)
        policy.on_success(rng)
        assert policy.stage == 2

    def test_success_with_zero_reset_probability_goes_above_j(self, phy, rng):
        policy = RandomResetBackoff(phy, stage=1, reset_probability=0.0)
        stages = set()
        for _ in range(300):
            policy.on_success(rng)
            stages.add(policy.stage)
        assert min(stages) >= 2
        assert max(stages) <= phy.num_backoff_stages

    def test_reset_distribution_statistics(self, phy):
        rng = np.random.default_rng(5)
        policy = RandomResetBackoff(phy, stage=1, reset_probability=0.6)
        hits_at_j = 0
        trials = 5000
        for _ in range(trials):
            policy.on_success(rng)
            if policy.stage == 1:
                hits_at_j += 1
        assert hits_at_j / trials == pytest.approx(0.6, abs=0.03)

    def test_apply_control_updates_parameters(self, phy, rng):
        policy = RandomResetBackoff(phy, stage=0, reset_probability=1.0)
        policy.apply_control({"p0": 0.3, "stage": 2.0})
        assert policy.reset_stage == 2
        assert policy.reset_probability == pytest.approx(0.3)

    def test_backoff_within_current_window(self, phy, rng):
        policy = RandomResetBackoff(phy, stage=0, reset_probability=0.5)
        for _ in range(100):
            value = policy.on_failure(rng)
            assert 0 <= value < policy.current_window

    def test_rejects_invalid_parameters(self, phy):
        with pytest.raises(ValueError):
            RandomResetBackoff(phy, stage=99)
        with pytest.raises(ValueError):
            RandomResetBackoff(phy, stage=0, reset_probability=1.5)


class TestFixedWindowBackoff:
    def test_draws_within_window(self, rng):
        policy = FixedWindowBackoff(window=32)
        for _ in range(100):
            assert 0 <= policy.on_success(rng) < 32
            assert 0 <= policy.on_failure(rng) < 32

    def test_window_one_always_zero(self, rng):
        policy = FixedWindowBackoff(window=1)
        assert policy.on_success(rng) == 0

    def test_rejects_invalid_window(self):
        with pytest.raises(ValueError):
            FixedWindowBackoff(window=0)


class TestChannelObservationDefaults:
    def test_default_observe_transmission_forwards_to_per_slot_hook(self, phy):
        calls = []

        class Recording(StandardExponentialBackoff):
            def observe_channel_slot(self, idle):
                calls.append(idle)

        policy = Recording(phy)
        policy.observe_transmission(3)
        assert calls == [True, True, True, False]
