"""Tests for the RandomReset fixed-point model (paper Appendix A)."""

import numpy as np
import pytest

from repro.analysis.persistent import optimal_attempt_probability
from repro.analysis.randomreset import (
    RandomResetModel,
    attempt_probability_range,
    conditional_attempt_probability,
    equivalent_randomreset,
    randomreset_attempt_probability,
    randomreset_conditional_attempt_probability,
    randomreset_distribution,
    randomreset_throughput,
    solve_attempt_probability,
    stage_alphas,
)
from repro.phy.constants import PhyParameters


class TestStageAlphas:
    def test_alpha_m_equals_two_to_m(self):
        for m in (1, 3, 7):
            assert stage_alphas(0.3, m)[m] == pytest.approx(2.0 ** m)

    def test_lemma4_monotone_increasing_in_stage(self):
        # Lemma 4: alpha_0 <= alpha_1 <= ... <= alpha_m, strict for c < 1.
        for c in (0.0, 0.3, 0.7, 0.99):
            alphas = stage_alphas(c, 7)
            assert np.all(np.diff(alphas) > 0)

    def test_alpha_equals_window_when_no_collisions(self):
        # With c = 0 a station never leaves its reset stage: alpha_j = 2^j.
        alphas = stage_alphas(0.0, 5)
        assert np.allclose(alphas, [2.0 ** j for j in range(6)])

    def test_alpha_at_certain_collision_all_equal_max(self):
        # With c = 1 every station escalates to stage m immediately.
        alphas = stage_alphas(1.0, 4)
        assert np.allclose(alphas, 2.0 ** 4)

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ValueError):
            stage_alphas(-0.1, 3)
        with pytest.raises(ValueError):
            stage_alphas(0.5, -1)


class TestConditionalAttemptProbability:
    def test_pure_stage0_no_collisions_matches_kappa0(self):
        q = [1.0, 0.0, 0.0, 0.0]
        assert conditional_attempt_probability(q, 0.0, 8) == pytest.approx(2.0 / 8.0)

    def test_decreasing_in_collision_probability(self):
        q = randomreset_distribution(0, 1.0, 7)
        taus = [conditional_attempt_probability(q, c, 8) for c in (0.0, 0.3, 0.6, 0.9)]
        assert taus == sorted(taus, reverse=True)

    def test_lemma5_monotone_increasing_in_p0(self):
        for c in (0.0, 0.4, 0.8):
            taus = [
                randomreset_conditional_attempt_probability(0, p0, c, 8, 7)
                for p0 in (0.0, 0.25, 0.5, 0.75, 1.0)
            ]
            assert taus == sorted(taus)

    def test_higher_reset_stage_means_lower_attempt_probability(self):
        for c in (0.0, 0.5):
            taus = [
                randomreset_conditional_attempt_probability(j, 1.0, c, 8, 7)
                for j in range(8)
            ]
            assert taus == sorted(taus, reverse=True)

    def test_rejects_invalid_distribution(self):
        with pytest.raises(ValueError):
            conditional_attempt_probability([0.5, 0.2], 0.1, 8)  # does not sum to 1
        with pytest.raises(ValueError):
            conditional_attempt_probability([1.2, -0.2], 0.1, 8)
        with pytest.raises(ValueError):
            conditional_attempt_probability([], 0.1, 8)


class TestRandomResetDistribution:
    def test_distribution_sums_to_one(self):
        for j in range(7):
            for p0 in (0.0, 0.3, 1.0):
                assert randomreset_distribution(j, p0, 7).sum() == pytest.approx(1.0)

    def test_mass_split_matches_definition4(self):
        q = randomreset_distribution(2, 0.4, 5)
        assert q[2] == pytest.approx(0.4)
        assert np.allclose(q[3:], 0.6 / 3)
        assert np.allclose(q[:2], 0.0)

    def test_stage_m_requires_unit_probability(self):
        q = randomreset_distribution(5, 1.0, 5)
        assert q[5] == 1.0
        with pytest.raises(ValueError):
            randomreset_distribution(5, 0.5, 5)

    def test_rejects_out_of_range_stage(self):
        with pytest.raises(ValueError):
            randomreset_distribution(8, 0.5, 7)


class TestFixedPoint:
    def test_fixed_point_consistency(self):
        q = randomreset_distribution(1, 0.5, 7)
        tau, c = solve_attempt_probability(q, 20, 8)
        assert c == pytest.approx(1.0 - (1.0 - tau) ** 19, abs=1e-9)
        assert tau == pytest.approx(conditional_attempt_probability(q, c, 8), abs=1e-9)

    def test_single_station(self):
        q = randomreset_distribution(0, 1.0, 7)
        tau, c = solve_attempt_probability(q, 1, 8)
        assert c == 0.0
        assert tau == pytest.approx(2.0 / 8.0)

    def test_attempt_probability_monotone_in_p0_after_fixed_point(self):
        # Lemma 5 extended through the fixed point (Lemma 2).
        taus = [
            randomreset_attempt_probability(0, p0, 15, 8, 7)
            for p0 in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert taus == sorted(taus)

    def test_range_boundaries(self):
        low, high = attempt_probability_range(10, 8, 7)
        assert 0 < low < high < 1
        assert low == pytest.approx(
            randomreset_attempt_probability(6, 0.0, 10, 8, 7)
        )
        assert high == pytest.approx(
            randomreset_attempt_probability(0, 1.0, 10, 8, 7)
        )

    def test_lemma6_any_reset_distribution_within_range(self, rng):
        low, high = attempt_probability_range(12, 8, 7)
        for _ in range(10):
            raw = rng.random(8)
            q = raw / raw.sum()
            tau, _ = solve_attempt_probability(q, 12, 8)
            assert low - 1e-9 <= tau <= high + 1e-9

    def test_lemma7_equivalent_randomreset_matches_tau(self, rng):
        for _ in range(5):
            raw = rng.random(8)
            q = raw / raw.sum()
            target, _ = solve_attempt_probability(q, 10, 8)
            stage, p0 = equivalent_randomreset(q, 10, 8)
            achieved = randomreset_attempt_probability(stage, p0, 10, 8, 7)
            assert achieved == pytest.approx(target, rel=1e-4, abs=1e-6)


class TestThroughput:
    def test_throughput_positive_and_bounded(self, phy):
        value = randomreset_throughput(0, 0.5, 20, phy)
        assert 0 < value < phy.bit_rate

    def test_standard_reset_matches_bianchi_shape(self, phy):
        # RandomReset(0; 1) is standard 802.11 reset-to-zero behaviour, so its
        # throughput should also degrade with N.
        values = [randomreset_throughput(0, 1.0, n, phy) for n in (10, 20, 40)]
        assert values == sorted(values, reverse=True)

    def test_quasi_concave_in_p0(self, phy):
        # Lemma 8: for fixed j the throughput is quasi-concave in p0.
        model = RandomResetModel(num_stations=40, phy=phy)
        curve = model.throughput_curve(0, np.linspace(0, 1, 11))
        diffs = np.diff(curve)
        signs = [d > 0 for d in diffs if abs(d) > 1e-6]
        # Once the curve starts decreasing it must not increase again.
        decreasing_started = False
        for is_up in signs:
            if not is_up:
                decreasing_started = True
            elif decreasing_started:
                pytest.fail("throughput in p0 is not unimodal")

    def test_optimal_policy_close_to_p_persistent_optimum(self, phy):
        # Theorem 3 remark: TORA's optimum should be near the global optimum
        # for moderate N (within the attainable attempt-probability range).
        model = RandomResetModel(num_stations=20, phy=phy)
        _, _, best_throughput = model.optimal_policy()
        from repro.analysis.persistent import system_throughput_weighted
        p_star = optimal_attempt_probability(20, phy)
        optimal = system_throughput_weighted(p_star, [1.0] * 20, phy)
        assert best_throughput >= 0.95 * optimal

    def test_model_conditional_matches_function(self, phy):
        model = RandomResetModel(num_stations=10, phy=phy)
        assert model.conditional_attempt_probability(1, 0.3, 0.2) == pytest.approx(
            randomreset_conditional_attempt_probability(
                1, 0.3, 0.2, phy.cw_min, phy.num_backoff_stages
            )
        )

    def test_model_rejects_zero_stations(self, phy):
        with pytest.raises(ValueError):
            RandomResetModel(num_stations=0, phy=phy)
