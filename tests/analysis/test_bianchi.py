"""Tests for Bianchi's DCF saturation model."""

import pytest

from repro.analysis.bianchi import (
    BianchiModel,
    conditional_collision_probability,
    dcf_attempt_probability,
    dcf_saturation_throughput,
    solve_dcf_fixed_point,
)
from repro.phy.constants import PhyParameters


class TestAttemptProbability:
    def test_no_collisions_gives_two_over_w_plus_one(self):
        # With c = 0 the station always sits in stage 0: tau = 2 / (W + 1).
        assert dcf_attempt_probability(0.0, 8, 7) == pytest.approx(2.0 / 9.0)

    def test_decreasing_in_collision_probability(self):
        taus = [dcf_attempt_probability(c, 8, 7) for c in (0.0, 0.2, 0.4, 0.6, 0.8)]
        assert taus == sorted(taus, reverse=True)

    def test_half_collision_probability_limit(self):
        # The closed form has a removable singularity at c = 1/2; the
        # implementation must return the analytic limit, continuous with the
        # neighbouring values.
        below = dcf_attempt_probability(0.4999, 8, 7)
        at = dcf_attempt_probability(0.5, 8, 7)
        above = dcf_attempt_probability(0.5001, 8, 7)
        assert below > at > above or below >= at >= above
        assert at == pytest.approx(below, rel=1e-2)

    def test_zero_stages_reduces_to_fixed_window(self):
        # m = 0 means the window never grows: tau = 2 / (W + 1) regardless of c.
        for c in (0.0, 0.3, 0.7):
            assert dcf_attempt_probability(c, 16, 0) == pytest.approx(2.0 / 17.0)

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ValueError):
            dcf_attempt_probability(-0.1, 8, 7)
        with pytest.raises(ValueError):
            dcf_attempt_probability(0.5, 0, 7)
        with pytest.raises(ValueError):
            dcf_attempt_probability(0.5, 8, -1)


class TestFixedPoint:
    def test_single_station_has_zero_collisions(self):
        tau, c = solve_dcf_fixed_point(1, 8, 7)
        assert c == 0.0
        assert tau == pytest.approx(2.0 / 9.0)

    def test_fixed_point_is_consistent(self):
        tau, c = solve_dcf_fixed_point(20, 8, 7)
        assert c == pytest.approx(conditional_collision_probability(tau, 20), abs=1e-9)
        assert tau == pytest.approx(dcf_attempt_probability(c, 8, 7), abs=1e-9)

    def test_attempt_probability_decreases_with_stations(self):
        taus = [solve_dcf_fixed_point(n, 8, 7)[0] for n in (2, 5, 10, 20, 50)]
        assert taus == sorted(taus, reverse=True)

    def test_collision_probability_increases_with_stations(self):
        cs = [solve_dcf_fixed_point(n, 8, 7)[1] for n in (2, 5, 10, 20, 50)]
        assert cs == sorted(cs)

    def test_larger_window_means_lower_attempt_probability(self):
        tau_small, _ = solve_dcf_fixed_point(10, 8, 7)
        tau_large, _ = solve_dcf_fixed_point(10, 32, 5)
        assert tau_large < tau_small

    def test_rejects_zero_stations(self):
        with pytest.raises(ValueError):
            solve_dcf_fixed_point(0, 8, 7)


class TestThroughput:
    def test_throughput_degrades_with_station_count(self, phy):
        # The key observation motivating the paper: standard 802.11 loses
        # throughput as N grows.
        values = [dcf_saturation_throughput(n, phy) for n in (5, 10, 20, 40, 60)]
        assert values == sorted(values, reverse=True)

    def test_throughput_below_channel_capacity(self, phy):
        assert dcf_saturation_throughput(10, phy) < phy.bit_rate

    def test_throughput_positive(self, phy):
        assert dcf_saturation_throughput(60, phy) > 0

    def test_model_wrapper_consistent(self, phy):
        model = BianchiModel(phy)
        assert model.throughput(20) == pytest.approx(dcf_saturation_throughput(20, phy))
        tau, c = solve_dcf_fixed_point(20, phy.cw_min, phy.num_backoff_stages)
        assert model.attempt_probability(20) == pytest.approx(tau)
        assert model.collision_probability(20) == pytest.approx(c)

    def test_throughput_curve_shape(self, phy):
        curve = BianchiModel(phy).throughput_curve([10, 20, 40])
        assert len(curve) == 3
        assert curve[0] > curve[-1]
