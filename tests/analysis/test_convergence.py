"""Tests for convergence and short-term fairness diagnostics."""

import numpy as np
import pytest

from repro.analysis.convergence import (
    analyze_convergence,
    segment_settling_times,
    settling_time,
    sliding_window_jain,
    steady_state_statistics,
)


def make_series(values, start=0.0, step=1.0):
    return [(start + i * step, v) for i, v in enumerate(values)]


class TestSettlingTime:
    def test_immediately_settled_series(self):
        series = make_series([10.0, 10.1, 9.9, 10.0])
        assert settling_time(series, target=10.0, tolerance=0.05) == 0.0

    def test_settling_after_transient(self):
        series = make_series([2.0, 5.0, 9.0, 10.0, 10.1, 9.9])
        # 9.0 is already within 10% of the target, so settling happens at t=2.
        assert settling_time(series, target=10.0, tolerance=0.1) == pytest.approx(2.0)

    def test_never_settles(self):
        series = make_series([1.0, 20.0, 1.0, 20.0])
        assert settling_time(series, target=10.0, tolerance=0.1) is None

    def test_start_offset(self):
        series = make_series([0.0, 0.0, 10.0, 10.0, 10.0])
        assert settling_time(series, target=10.0, tolerance=0.1, start=2.0) == 0.0

    def test_rejects_zero_target_and_empty_series(self):
        with pytest.raises(ValueError):
            settling_time(make_series([1.0, 2.0, 3.0]), target=0.0)
        with pytest.raises(ValueError):
            settling_time([], target=1.0)


class TestSteadyState:
    def test_tail_statistics(self):
        series = make_series([0.0, 0.0, 10.0, 10.0])
        mean, std = steady_state_statistics(series, tail_fraction=0.5)
        assert mean == pytest.approx(10.0)
        assert std == pytest.approx(0.0)

    def test_full_series_statistics(self):
        series = make_series([1.0, 2.0, 3.0])
        mean, _ = steady_state_statistics(series, tail_fraction=1.0)
        assert mean == pytest.approx(2.0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            steady_state_statistics(make_series([1.0]), tail_fraction=0.0)


class TestSegmentSettling:
    def test_per_segment_settling(self):
        # Two segments: fast convergence in the first, slower in the second.
        values = [5.0, 10.0, 10.0, 10.0, 2.0, 6.0, 20.0, 20.0, 20.0, 20.0]
        series = make_series(values)
        times = segment_settling_times(series, change_times=[4.0], tolerance=0.1)
        assert len(times) == 2
        assert times[0] == pytest.approx(1.0)
        assert times[1] == pytest.approx(2.0)

    def test_short_segment_gives_none(self):
        series = make_series([1.0, 1.0, 1.0])
        times = segment_settling_times(series, change_times=[2.5])
        assert times[-1] is None


class TestSlidingWindowJain:
    def test_fair_service_has_unit_index(self):
        service = [[1, 1, 1]] * 5
        index = sliding_window_jain(service, window=2)
        assert np.allclose(index, 1.0)

    def test_alternating_service_fair_only_at_larger_windows(self):
        # Two stations alternating strictly: unfair over window 1, perfectly
        # fair over window 2.
        service = [[1, 0], [0, 1], [1, 0], [0, 1]]
        narrow = sliding_window_jain(service, window=1)
        wide = sliding_window_jain(service, window=2)
        assert np.allclose(narrow, 0.5)
        assert np.allclose(wide, 1.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            sliding_window_jain([[1, 2]], window=2)
        with pytest.raises(ValueError):
            sliding_window_jain([[1, 2]], window=0)


class TestAnalyzeConvergence:
    def test_report_fields(self):
        series = make_series([5.0, 18.0, 20.0, 20.0, 20.0, 20.0])
        report = analyze_convergence(series, tolerance=0.1)
        assert report.steady_state_mean == pytest.approx(20.0)
        assert report.settling_time_s == pytest.approx(1.0)
        assert report.worst_dip == pytest.approx(15.0)
        assert report.coefficient_of_variation == pytest.approx(0.0)
