"""Tests for the stability classifier (repro.analysis.stability)."""

import math

import pytest

from repro.analysis import (
    LIVELOCK_FLOOR_BPS,
    StabilityReport,
    classify_stability,
    stability_from_probe,
)


def series(values, dt=0.25):
    return [(dt * (i + 1), v) for i, v in enumerate(values)]


class TestClassification:
    def test_flat_high_series_converges_immediately(self):
        report = classify_stability(series([20e6] * 8))
        assert report.classification == "converged"
        assert report.settling_time_s == 0.0
        assert report.tail_mean == pytest.approx(20e6)
        assert not report.is_livelock

    def test_low_tail_mean_is_livelock(self):
        report = classify_stability(series([30e6, 20e6, 0.3e6, 0.2e6]))
        assert report.classification == "livelock"
        assert report.is_livelock
        assert report.settling_time_s is None

    def test_floor_is_inclusive(self):
        report = classify_stability(series([LIVELOCK_FLOOR_BPS] * 8))
        assert report.classification == "livelock"

    def test_large_tail_swings_are_oscillating(self):
        values = [10e6 + 6e6 * (-1) ** i for i in range(8)]
        report = classify_stability(series(values))
        assert report.classification == "oscillating"
        assert report.oscillation_amplitude > 0.25

    def test_small_tail_ripple_still_converges(self):
        values = [10e6 + 0.2e6 * (-1) ** i for i in range(8)]
        report = classify_stability(series(values))
        assert report.classification == "converged"

    def test_short_series_is_inconclusive(self):
        for n in range(4):
            report = classify_stability(series([10e6] * n))
            assert report.classification == "inconclusive"
            assert report.settling_time_s is None

    def test_settling_time_reflects_transient(self):
        # Two low samples, then steady at 10 Mb/s: settles at the third
        # sample (t = 0.75 s), measured from the first sample (t = 0.25 s).
        values = [2e6, 4e6] + [10e6] * 6
        report = classify_stability(series(values))
        assert report.classification == "converged"
        assert report.settling_time_s == pytest.approx(0.5)

    def test_custom_floor_and_threshold(self):
        values = [5.0] * 8
        assert classify_stability(series(values),
                                  livelock_floor=10.0).is_livelock
        swings = [10.0 + 2.0 * (-1) ** i for i in range(8)]
        report = classify_stability(series(swings), livelock_floor=1.0,
                                    oscillation_threshold=0.5)
        assert report.classification == "converged"

    def test_report_is_frozen(self):
        report = classify_stability(series([10e6] * 8))
        assert isinstance(report, StabilityReport)
        with pytest.raises(Exception):
            report.classification = "other"


class TestStabilityFromProbe:
    def make_record(self, column, name="throughput_mbps"):
        return {
            "type": "probe",
            "scope": "batched",
            "t": [0.25 * (i + 1) for i in range(len(column))],
            "series": {name: column},
        }

    def test_classifies_named_series(self):
        record = self.make_record([20e6] * 8)
        report = stability_from_probe(record, "throughput_mbps")
        assert report.classification == "converged"

    def test_none_samples_are_skipped(self):
        record = self.make_record([20e6, None, 20e6, None, 20e6, 20e6])
        report = stability_from_probe(record, "throughput_mbps")
        assert report.classification == "converged"
        assert report.tail_mean == pytest.approx(20e6)

    def test_missing_series_returns_none(self):
        record = self.make_record([20e6] * 8)
        assert stability_from_probe(record, "busy_frac") is None

    def test_kwargs_forwarded(self):
        record = self.make_record([5.0] * 8)
        report = stability_from_probe(record, "throughput_mbps",
                                      livelock_floor=10.0)
        assert report.is_livelock
