"""Tests for the empirical quasi-concavity (unimodality) checks."""

import numpy as np
import pytest

from repro.analysis.persistent import throughput_curve
from repro.analysis.quasiconcavity import (
    check_quasiconcavity,
    count_direction_changes,
    is_quasiconcave,
    unimodality_violation,
)


class TestDirectionChanges:
    def test_monotone_has_zero_changes(self):
        assert count_direction_changes([1, 2, 3, 4]) == 0
        assert count_direction_changes([4, 3, 2, 1]) == 0

    def test_single_peak_has_one_change(self):
        assert count_direction_changes([1, 3, 5, 4, 2]) == 1

    def test_zigzag_has_many_changes(self):
        assert count_direction_changes([1, 3, 1, 3, 1]) == 3

    def test_noise_tolerance_ignores_small_wiggles(self):
        values = [1.0, 2.0, 3.0, 2.99, 3.5, 4.0]
        assert count_direction_changes(values, noise_tolerance=0.05) == 0
        assert count_direction_changes(values, noise_tolerance=0.0) == 2


class TestViolation:
    def test_perfectly_unimodal_has_zero_violation(self):
        assert unimodality_violation([1, 4, 9, 7, 2]) == 0.0

    def test_flat_curve_has_zero_violation(self):
        assert unimodality_violation([3, 3, 3, 3]) == 0.0

    def test_bimodal_curve_has_positive_violation(self):
        assert unimodality_violation([1, 5, 1, 5, 1]) > 0.3

    def test_short_curve_has_zero_violation(self):
        assert unimodality_violation([1, 2]) == 0.0


class TestCheck:
    def test_unimodal_passes(self):
        x = np.linspace(0, 1, 21)
        y = -((x - 0.4) ** 2)
        report = check_quasiconcavity(x, y)
        assert report.is_quasiconcave
        assert report.argmax_x == pytest.approx(0.4, abs=0.05)

    def test_noisy_unimodal_passes_with_tolerance(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0, 1, 41)
        y = 10.0 - 30.0 * (x - 0.5) ** 2 + rng.normal(0, 0.05, x.size)
        assert is_quasiconcave(x, y, noise_tolerance=0.05)

    def test_clearly_bimodal_fails(self):
        x = np.linspace(0, 1, 41)
        y = np.sin(4 * np.pi * x)
        assert not is_quasiconcave(x, y, noise_tolerance=0.05)

    def test_monotone_curves_pass(self):
        x = np.linspace(0, 1, 11)
        assert is_quasiconcave(x, x)
        assert is_quasiconcave(x, -x)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            check_quasiconcavity([0, 1], [1, 2])  # too short
        with pytest.raises(ValueError):
            check_quasiconcavity([0, 1, 1], [1, 2, 3])  # non-increasing x
        with pytest.raises(ValueError):
            check_quasiconcavity([0, 1, 2], [1, 2])  # length mismatch


class TestOnAnalyticalThroughput:
    def test_paper_throughput_curve_is_quasiconcave(self, phy):
        # Theorem 2's claim, verified numerically on the Eq. (3) curve.
        p_grid = np.exp(np.linspace(-10, -0.5, 60))
        for n in (5, 20, 40):
            curve = throughput_curve(p_grid, n, phy)
            assert is_quasiconcave(np.log(p_grid), curve, noise_tolerance=0.01)
