"""Tests for fairness metrics."""

import numpy as np
import pytest

from repro.analysis.fairness import (
    jain_index,
    max_relative_deviation,
    normalized_throughputs,
    weighted_fairness_report,
)


class TestJainIndex:
    def test_equal_values_give_one(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_user_monopoly_gives_one_over_n(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_index_between_bounds(self, rng):
        values = rng.random(20)
        index = jain_index(values)
        assert 1.0 / 20 <= index <= 1.0

    def test_scale_invariance(self):
        values = [1.0, 2.0, 3.0]
        assert jain_index(values) == pytest.approx(jain_index([10 * v for v in values]))

    def test_all_zero_is_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            jain_index([])
        with pytest.raises(ValueError):
            jain_index([1.0, -0.5])


class TestNormalizedThroughputs:
    def test_division_by_weights(self):
        normalized = normalized_throughputs([2.0, 4.0, 9.0], [1.0, 2.0, 3.0])
        assert np.allclose(normalized, [2.0, 2.0, 3.0])

    def test_none_weights_returns_copy(self):
        values = [1.0, 2.0]
        normalized = normalized_throughputs(values)
        assert np.allclose(normalized, values)

    def test_rejects_non_positive_weights(self):
        with pytest.raises(ValueError):
            normalized_throughputs([1.0], [0.0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            normalized_throughputs([1.0, 2.0], [1.0])


class TestMaxRelativeDeviation:
    def test_perfectly_fair_allocation(self):
        assert max_relative_deviation([2.0, 4.0, 6.0], [1.0, 2.0, 3.0]) == pytest.approx(0.0)

    def test_detects_unfairness(self):
        deviation = max_relative_deviation([1.0, 3.0], [1.0, 1.0])
        assert deviation == pytest.approx(0.5)

    def test_zero_throughput_all_stations(self):
        assert max_relative_deviation([0.0, 0.0]) == 0.0


class TestWeightedFairnessReport:
    def test_report_fields(self):
        report = weighted_fairness_report([1e6, 2e6, 3e6], [1.0, 2.0, 3.0])
        assert report.total_throughput_bps == pytest.approx(6e6)
        assert report.jain_index_normalized == pytest.approx(1.0)
        assert report.max_relative_deviation == pytest.approx(0.0)

    def test_rows_in_mbps(self):
        report = weighted_fairness_report([2e6, 6e6], [1.0, 3.0])
        rows = report.rows()
        assert rows[0] == (1, 1.0, pytest.approx(2.0), pytest.approx(2.0))
        assert rows[1] == (2, 3.0, pytest.approx(6.0), pytest.approx(2.0))

    def test_table2_like_allocation_is_nearly_fair(self):
        # Numbers from the paper's Table II: all normalised values ~1.06.
        weights = [1, 1, 1, 2, 2, 2, 3, 3, 3, 3]
        throughputs_mbps = [1.066, 1.061, 1.060, 2.170, 2.195, 2.120,
                            3.182, 3.186, 3.187, 3.191]
        report = weighted_fairness_report(
            [t * 1e6 for t in throughputs_mbps], weights
        )
        assert report.jain_index_normalized > 0.999
        assert report.max_relative_deviation < 0.04
