"""Tests for the p-persistent CSMA throughput model (paper Eq. 2, 3, 8)."""

import numpy as np
import pytest

from repro.analysis.persistent import (
    PersistentModel,
    approximate_optimal_attempt_probability,
    optimal_attempt_probability,
    per_station_throughput,
    slot_probabilities,
    system_throughput,
    system_throughput_weighted,
    throughput_curve,
    weighted_attempt_probability,
)
from repro.phy.constants import PhyParameters


class TestSlotProbabilities:
    def test_probabilities_sum_to_one(self):
        p_idle, p_success, p_collision = slot_probabilities([0.1, 0.2, 0.05])
        assert p_idle + p_success + p_collision == pytest.approx(1.0)

    def test_single_station_never_collides(self):
        p_idle, p_success, p_collision = slot_probabilities([0.3])
        assert p_idle == pytest.approx(0.7)
        assert p_success == pytest.approx(0.3)
        assert p_collision == pytest.approx(0.0)

    def test_symmetric_stations(self):
        n, p = 10, 0.05
        p_idle, p_success, _ = slot_probabilities([p] * n)
        assert p_idle == pytest.approx((1 - p) ** n)
        assert p_success == pytest.approx(n * p * (1 - p) ** (n - 1))

    def test_zero_probability_gives_all_idle(self):
        p_idle, p_success, p_collision = slot_probabilities([0.0, 0.0])
        assert p_idle == 1.0
        assert p_success == 0.0
        assert p_collision == 0.0

    def test_certain_transmitter_with_silent_peers(self):
        p_idle, p_success, p_collision = slot_probabilities([1.0, 0.0, 0.0])
        assert p_idle == 0.0
        assert p_success == pytest.approx(1.0)

    def test_two_certain_transmitters_always_collide(self):
        p_idle, p_success, p_collision = slot_probabilities([1.0, 1.0])
        assert p_collision == pytest.approx(1.0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            slot_probabilities([0.5, 1.2])
        with pytest.raises(ValueError):
            slot_probabilities([])


class TestWeightedAttemptProbability:
    def test_weight_one_is_identity(self):
        assert weighted_attempt_probability(1.0, 0.3) == pytest.approx(0.3)

    def test_odds_scale_with_weight(self):
        p = 0.2
        for w in (0.5, 2.0, 3.0):
            pw = weighted_attempt_probability(w, p)
            assert pw / (1 - pw) == pytest.approx(w * p / (1 - p))

    def test_monotone_in_weight(self):
        values = [weighted_attempt_probability(w, 0.1) for w in (1, 2, 4, 8)]
        assert values == sorted(values)

    def test_boundary_values(self):
        assert weighted_attempt_probability(3.0, 0.0) == 0.0
        assert weighted_attempt_probability(3.0, 1.0) == 1.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            weighted_attempt_probability(0.0, 0.5)
        with pytest.raises(ValueError):
            weighted_attempt_probability(1.0, 1.5)


class TestThroughput:
    def test_per_station_sum_equals_system(self, phy):
        probs = [0.02, 0.05, 0.01, 0.03]
        assert system_throughput(probs, phy) == pytest.approx(
            float(np.sum(per_station_throughput(probs, phy)))
        )

    def test_zero_probability_zero_throughput(self, phy):
        assert system_throughput([0.0] * 5, phy) == 0.0

    def test_equal_probabilities_equal_throughput(self, phy):
        stations = per_station_throughput([0.02] * 6, phy)
        assert np.allclose(stations, stations[0])

    def test_lemma1_throughput_ratio_matches_weight(self, phy):
        # Lemma 1: p_j = w p_i / (1 + (w-1) p_i) gives S_j = w S_i.
        p_i, w = 0.05, 3.0
        p_j = weighted_attempt_probability(w, p_i)
        stations = per_station_throughput([p_i, p_j, 0.07], phy)
        assert stations[1] / stations[0] == pytest.approx(w, rel=1e-9)

    def test_weighted_system_matches_explicit_vector(self, phy):
        weights = [1.0, 2.0, 3.0]
        p = 0.04
        explicit = [weighted_attempt_probability(w, p) for w in weights]
        assert system_throughput_weighted(p, weights, phy) == pytest.approx(
            system_throughput(explicit, phy)
        )

    def test_throughput_positive_and_below_channel_rate(self, phy):
        value = system_throughput_weighted(0.02, [1.0] * 20, phy)
        assert 0 < value < phy.bit_rate

    def test_throughput_curve_matches_pointwise(self, phy):
        ps = [0.001, 0.01, 0.1]
        curve = throughput_curve(ps, 10, phy)
        for p, value in zip(ps, curve):
            assert value == pytest.approx(system_throughput_weighted(p, [1.0] * 10, phy))

    def test_throughput_curve_rejects_weight_mismatch(self, phy):
        with pytest.raises(ValueError):
            throughput_curve([0.1], 3, phy, weights=[1.0, 2.0])


class TestOptimalAttemptProbability:
    def test_optimum_is_interior_maximum(self, phy):
        n = 20
        p_star = optimal_attempt_probability(n, phy)
        s_star = system_throughput_weighted(p_star, [1.0] * n, phy)
        for offset in (0.5, 2.0):
            assert s_star >= system_throughput_weighted(
                min(p_star * offset, 0.999), [1.0] * n, phy
            )

    def test_optimum_decreases_with_station_count(self, phy):
        values = [optimal_attempt_probability(n, phy) for n in (5, 10, 20, 40)]
        assert values == sorted(values, reverse=True)

    def test_approximation_close_to_exact(self, phy):
        # Eq. (8) p* ~ 1 / (N sqrt(Tc*/2)) should be within ~20% of the exact
        # optimiser for moderate N.
        for n in (10, 20, 40):
            exact = optimal_attempt_probability(n, phy)
            approx = approximate_optimal_attempt_probability(n, phy)
            assert approx == pytest.approx(exact, rel=0.25)

    def test_scaling_inverse_in_n(self, phy):
        # p* should scale like Theta(1/N).
        p10 = approximate_optimal_attempt_probability(10, phy)
        p40 = approximate_optimal_attempt_probability(40, phy)
        assert p10 / p40 == pytest.approx(4.0, rel=1e-9)

    def test_rejects_zero_stations(self, phy):
        with pytest.raises(ValueError):
            optimal_attempt_probability(0, phy)
        with pytest.raises(ValueError):
            approximate_optimal_attempt_probability(0, phy)


class TestPersistentModel:
    def test_model_throughput_matches_function(self, phy):
        model = PersistentModel(num_stations=15, phy=phy)
        assert model.throughput(0.02) == pytest.approx(
            system_throughput_weighted(0.02, [1.0] * 15, phy)
        )

    def test_model_optimum_consistent(self, phy):
        model = PersistentModel(num_stations=10, phy=phy)
        assert model.optimal_p() == pytest.approx(
            optimal_attempt_probability(10, phy), rel=1e-4
        )
        assert model.optimal_throughput() == pytest.approx(
            model.throughput(model.optimal_p())
        )

    def test_weighted_model_per_station_proportional(self, phy):
        weights = (1.0, 2.0, 4.0)
        model = PersistentModel(num_stations=3, phy=phy, weights=weights)
        per_station = model.per_station(0.05)
        normalized = per_station / np.asarray(weights)
        assert np.allclose(normalized, normalized[0], rtol=1e-9)

    def test_model_validates_weights_length(self, phy):
        with pytest.raises(ValueError):
            PersistentModel(num_stations=3, phy=phy, weights=(1.0, 2.0))
