"""Tests for the benchmark regression gate's failure modes.

The gate must never pass vacuously: an empty results directory (the
benchmark suite crashed before emitting JSON) exits with its own code so CI
can tell "no data" apart from "regression".
"""

import importlib.util
import json
import pathlib

import pytest

GATE = (pathlib.Path(__file__).resolve().parents[1]
        / "benchmarks" / "check_benchmark_regression.py")


@pytest.fixture
def gate(monkeypatch, tmp_path):
    spec = importlib.util.spec_from_file_location("bench_gate", GATE)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.setattr(module, "RESULTS_DIR", tmp_path / "results")
    monkeypatch.setattr(module, "BASELINES_DIR", tmp_path / "baselines")
    return module


def _record(cells_per_s=100.0):
    return {"backend": "batched", "cells_per_s": cells_per_s}


class TestEmptyResults:
    def test_missing_results_dir_exits_distinctly(self, gate, capsys):
        assert gate.main([]) == gate.EXIT_NO_RESULTS
        out = capsys.readouterr().out
        assert "does not exist" in out
        assert "Run it first" in out

    def test_results_dir_without_records_exits_distinctly(self, gate, capsys):
        gate.RESULTS_DIR.mkdir(parents=True)
        (gate.RESULTS_DIR / "notes.txt").write_text("not a record")
        assert gate.main([]) == gate.EXIT_NO_RESULTS
        assert "empty of BENCH_*.json" in capsys.readouterr().out

    def test_exit_code_is_distinct_from_regression(self, gate):
        assert gate.EXIT_NO_RESULTS not in (0, 1)

    def test_populated_results_still_gate(self, gate, capsys):
        gate.RESULTS_DIR.mkdir(parents=True)
        gate.BASELINES_DIR.mkdir(parents=True)
        (gate.BASELINES_DIR / "BENCH_x.json").write_text(
            json.dumps(_record(100.0)))
        (gate.RESULTS_DIR / "BENCH_x.json").write_text(
            json.dumps(_record(10.0)))  # 10x regression
        assert gate.main([]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_healthy_results_pass(self, gate, capsys):
        gate.RESULTS_DIR.mkdir(parents=True)
        gate.BASELINES_DIR.mkdir(parents=True)
        (gate.BASELINES_DIR / "BENCH_x.json").write_text(
            json.dumps(_record(100.0)))
        (gate.RESULTS_DIR / "BENCH_x.json").write_text(
            json.dumps(_record(101.0)))
        assert gate.main([]) == 0
        assert "passed" in capsys.readouterr().out
