"""Tests for the dynamic-activity schedules and their interplay with
unsaturated traffic (stations leaving mid-burst must not leak queued
frames into their next join)."""

import pytest

from repro.mac.schemes import standard_80211_scheme
from repro.sim.batched import run_batched
from repro.sim.dynamics import ActivitySchedule, constant_activity, step_activity
from repro.sim.slotted import SlottedSimulator
from repro.sim.simulation import WlanSimulation
from repro.topology.scenarios import fully_connected_scenario
from repro.traffic import ArrivalProcess, saturation_frame_rate


class TestConstantActivity:
    def test_constant_count(self):
        schedule = constant_activity(7)
        assert schedule.active_count(0.0) == 7
        assert schedule.active_count(123.4) == 7
        assert schedule.max_active == 7
        assert schedule.change_times() == ()

    def test_rejects_zero_stations(self):
        with pytest.raises(ValueError):
            constant_activity(0)


class TestStepActivity:
    def test_piecewise_counts(self):
        schedule = step_activity([(0.0, 10), (5.0, 30), (12.0, 20)])
        assert schedule.active_count(0.0) == 10
        assert schedule.active_count(4.999) == 10
        assert schedule.active_count(5.0) == 30
        assert schedule.active_count(11.0) == 30
        assert schedule.active_count(12.0) == 20
        assert schedule.active_count(100.0) == 20

    def test_max_active_and_change_times(self):
        schedule = step_activity([(0.0, 10), (5.0, 30), (12.0, 20)])
        assert schedule.max_active == 30
        assert schedule.change_times() == (5.0, 12.0)

    def test_is_active_uses_index_order(self):
        schedule = step_activity([(0.0, 2), (1.0, 4)])
        assert schedule.is_active(1, 0.5)
        assert not schedule.is_active(3, 0.5)
        assert schedule.is_active(3, 1.5)

    def test_events_between(self):
        schedule = step_activity([(0.0, 1), (2.0, 5), (4.0, 3)])
        assert schedule.events_between(0.0, 3.0) == ((2.0, 5),)
        assert schedule.events_between(2.0, 4.0) == ((4.0, 3),)
        assert schedule.events_between(4.0, 10.0) == ()

    def test_validation(self):
        with pytest.raises(ValueError):
            step_activity([])
        with pytest.raises(ValueError):
            step_activity([(1.0, 5)])          # does not start at 0
        with pytest.raises(ValueError):
            step_activity([(0.0, 5), (0.0, 6)])  # non-increasing times
        with pytest.raises(ValueError):
            step_activity([(0.0, 0)])            # zero active stations
        with pytest.raises(ValueError):
            ActivitySchedule(breakpoints=((0.0, 3),)).active_count(-1.0)


class TestActivityWithTraffic:
    """Activity schedules interacting with non-empty per-station queues."""

    #: Heavy per-station load so the leaving station is mid-burst for sure.
    def _traffic(self, phy, queue_limit=16):
        rate = 1.2 * saturation_frame_rate(phy) / 3
        return ArrivalProcess.poisson(rate, queue_limit=queue_limit)

    def test_slotted_leave_flushes_queue(self, phy):
        """A station that leaves keeps no queued frames: arrivals while it
        is inactive are dropped and its FIFO stays empty."""
        schedule = step_activity([(0.0, 3), (0.4, 2)])
        simulator = SlottedSimulator(
            standard_80211_scheme(phy), num_stations=3, phy=phy, seed=5,
            activity=schedule, traffic=self._traffic(phy),
        )
        result = simulator.run(duration=1.0, warmup=0.0)
        # The left station's queue was flushed and never refilled.
        assert simulator.queue_lengths[2] == 0
        assert result.dropped_frames > 0
        # Conservation: with warmup=0 every offered frame is delivered,
        # dropped (incl. the flush) or still queued at the horizon.
        assert result.offered_frames == (
            result.total_successes + result.dropped_frames
            + result.extra["queued_frames"]
        )

    def test_slotted_rejoin_starts_with_empty_queue(self, phy):
        """Leaving mid-burst and rejoining must not leak the old backlog:
        the rejoined station's deliveries restart from fresh arrivals."""
        schedule = step_activity([(0.0, 3), (0.3, 2), (0.6, 3)])
        simulator = SlottedSimulator(
            standard_80211_scheme(phy), num_stations=3, phy=phy, seed=5,
            activity=schedule, traffic=self._traffic(phy),
        )
        result = simulator.run(duration=1.0, warmup=0.0)
        assert result.offered_frames == (
            result.total_successes + result.dropped_frames
            + result.extra["queued_frames"]
        )
        # The flush at t=0.3 shows up as drops beyond queue-overflow ones.
        assert result.dropped_frames > 0

    def test_event_driven_leave_flushes_queue(self, phy):
        graph = fully_connected_scenario(3)
        schedule = step_activity([(0.0, 3), (0.3, 2), (0.6, 3)])
        simulation = WlanSimulation(
            standard_80211_scheme(phy), graph, phy=phy, seed=5,
            activity=schedule, traffic=self._traffic(phy),
        )
        result = simulation.run(duration=1.0, warmup=0.0)
        # Directly after the run, no station may hold more than its bounded
        # FIFO, and the station that left mid-burst rejoined empty (its
        # backlog was flushed, so its queue refilled from fresh arrivals
        # only, bounded by the limit).
        for station in simulation.stations:
            assert station.queue_length <= self._traffic(phy).queue_limit
        assert result.offered_frames == (
            result.total_successes + result.dropped_frames
            + result.extra["queued_frames"]
        )
        assert result.dropped_frames > 0

    def test_event_driven_inactive_station_queue_stays_empty(self, phy):
        """While schedule-inactive, arrivals are dropped, not queued."""
        graph = fully_connected_scenario(3)
        schedule = step_activity([(0.0, 3), (0.3, 2)])
        simulation = WlanSimulation(
            standard_80211_scheme(phy), graph, phy=phy, seed=5,
            activity=schedule, traffic=self._traffic(phy),
        )
        simulation.run(duration=1.0, warmup=0.0)
        assert simulation.stations[2].queue_length == 0
        assert not simulation.stations[2].is_active

    def test_batched_leave_matches_conservation_and_flushes(self, phy):
        rate = 1.2 * saturation_frame_rate(phy) / 3
        [result] = run_batched(
            "standard-802.11", {}, [3], [5], duration=1.0, warmup=0.0,
            phy=phy, traffic=ArrivalProcess.poisson(rate, queue_limit=16),
            activity=step_activity([(0.0, 3), (0.3, 2), (0.6, 3)]),
        )
        assert result.offered_frames == (
            result.total_successes + result.dropped_frames
            + result.extra["queued_frames"]
        )
        assert result.dropped_frames > 0

    def test_slotted_and_event_agree_under_churn(self, phy):
        """End-to-end: both scalar backends deliver comparable throughput
        under churn + load (the queues and flushes don't diverge)."""
        schedule = [(0.0, 3), (0.3, 2), (0.6, 3)]
        traffic = self._traffic(phy)
        slotted = SlottedSimulator(
            standard_80211_scheme(phy), num_stations=3, phy=phy, seed=5,
            activity=step_activity(schedule), traffic=traffic,
        ).run(duration=1.0, warmup=0.0)
        event = WlanSimulation(
            standard_80211_scheme(phy), fully_connected_scenario(3), phy=phy,
            seed=5, activity=step_activity(schedule), traffic=traffic,
        ).run(duration=1.0, warmup=0.0)
        assert event.total_throughput_bps == pytest.approx(
            slotted.total_throughput_bps, rel=0.10
        )
