"""Tests for the dynamic-activity schedules."""

import pytest

from repro.sim.dynamics import ActivitySchedule, constant_activity, step_activity


class TestConstantActivity:
    def test_constant_count(self):
        schedule = constant_activity(7)
        assert schedule.active_count(0.0) == 7
        assert schedule.active_count(123.4) == 7
        assert schedule.max_active == 7
        assert schedule.change_times() == ()

    def test_rejects_zero_stations(self):
        with pytest.raises(ValueError):
            constant_activity(0)


class TestStepActivity:
    def test_piecewise_counts(self):
        schedule = step_activity([(0.0, 10), (5.0, 30), (12.0, 20)])
        assert schedule.active_count(0.0) == 10
        assert schedule.active_count(4.999) == 10
        assert schedule.active_count(5.0) == 30
        assert schedule.active_count(11.0) == 30
        assert schedule.active_count(12.0) == 20
        assert schedule.active_count(100.0) == 20

    def test_max_active_and_change_times(self):
        schedule = step_activity([(0.0, 10), (5.0, 30), (12.0, 20)])
        assert schedule.max_active == 30
        assert schedule.change_times() == (5.0, 12.0)

    def test_is_active_uses_index_order(self):
        schedule = step_activity([(0.0, 2), (1.0, 4)])
        assert schedule.is_active(1, 0.5)
        assert not schedule.is_active(3, 0.5)
        assert schedule.is_active(3, 1.5)

    def test_events_between(self):
        schedule = step_activity([(0.0, 1), (2.0, 5), (4.0, 3)])
        assert schedule.events_between(0.0, 3.0) == ((2.0, 5),)
        assert schedule.events_between(2.0, 4.0) == ((4.0, 3),)
        assert schedule.events_between(4.0, 10.0) == ()

    def test_validation(self):
        with pytest.raises(ValueError):
            step_activity([])
        with pytest.raises(ValueError):
            step_activity([(1.0, 5)])          # does not start at 0
        with pytest.raises(ValueError):
            step_activity([(0.0, 5), (0.0, 6)])  # non-increasing times
        with pytest.raises(ValueError):
            step_activity([(0.0, 0)])            # zero active stations
        with pytest.raises(ValueError):
            ActivitySchedule(breakpoints=((0.0, 3),)).active_count(-1.0)
