"""Bounded MAC retries: conservation, semantics and cache identity.

The retry limit discards a frame after ``retry_limit`` transmission
attempts, resetting the station's retry chain (CW back to minimum, like
802.11's retry-limit reset).  These tests pin the contracts that make the
feature safe across all four backends:

* **Frame conservation** — every offered frame is accounted for exactly:
  ``offered == delivered + queue-dropped + retry-discarded + still
  queued``, on the slotted, event-driven, batched renewal-slot and batched
  conflict-matrix backends, for open- and closed-loop workloads.
* **Retry semantics** — ``retry_limit=1`` discards on the first failure
  (no retransmissions ever), and a retry-limited saturated MAC keeps
  transmitting (the discard path must not deadlock a backlogged station).
* **Default compatibility** — ``retry_limit=None`` is the historical
  infinite-retry MAC: results are bit-identical to pre-retry code and the
  task key is unchanged, so every cached entry stays valid;
  ``retry_limit`` set is a new cache dimension.
"""

import pytest

from repro.experiments.campaign import (
    ArrivalProcess,
    RunTask,
    SchemeSpec,
    TopologySpec,
    execute_task,
)

NUM_STATIONS = 5
SEED = 3
TOPOLOGY_SEED = 11

CONNECTED = TopologySpec.connected(NUM_STATIONS)
HIDDEN = TopologySpec.hidden_disc(NUM_STATIONS + 1, 16.0, TOPOLOGY_SEED)

WORKLOADS = [
    ArrivalProcess.poisson(900.0, queue_limit=8, retry_limit=3),
    ArrivalProcess.cbr(700.0, queue_limit=8, retry_limit=3),
    ArrivalProcess.window_limited(4, flow_frames=80, retry_limit=3),
    ArrivalProcess.incast(12, 0.05, retry_limit=3),
]


def _run(topology, simulator, traffic, phy, duration=0.5):
    return execute_task(RunTask(
        scheme=SchemeSpec.make("standard-802.11"),
        topology=topology,
        seed=SEED,
        duration=duration,
        warmup=0.0,
        simulator=simulator,
        traffic=traffic,
        phy=phy,
    ))


def _assert_conserved(result, context):
    """offered == delivered + dropped + retry-discarded + still queued."""
    balance = (result.total_successes + result.dropped_frames
               + result.retry_discards + result.extra["queued_frames"])
    assert result.offered_frames == balance, (
        f"{context}: offered {result.offered_frames} != delivered "
        f"{result.total_successes} + dropped {result.dropped_frames} + "
        f"discarded {result.retry_discards} + queued "
        f"{result.extra['queued_frames']}"
    )


class TestFrameConservationUnderDiscard:
    """The conservation identity holds exactly on every backend."""

    @pytest.mark.parametrize("traffic", WORKLOADS,
                             ids=[t.kind for t in WORKLOADS])
    @pytest.mark.parametrize("simulator", ("slotted", "event", "batched"))
    def test_connected_backends_conserve_frames(self, phy, simulator,
                                                traffic):
        result = _run(CONNECTED, simulator, traffic, phy)
        _assert_conserved(result, f"{traffic.kind}/{simulator}/connected")

    @pytest.mark.parametrize("traffic", WORKLOADS,
                             ids=[t.kind for t in WORKLOADS])
    @pytest.mark.parametrize("simulator", ("event", "batched"))
    def test_hidden_backends_conserve_frames(self, phy, simulator, traffic):
        result = _run(HIDDEN, simulator, traffic, phy)
        if simulator == "batched":
            assert result.extra["backend"] == "conflict-matrix"
        _assert_conserved(result, f"{traffic.kind}/{simulator}/hidden")

    def test_discards_actually_happen_under_contention(self, phy):
        """The parametrised identity must not pass vacuously: with a tight
        retry limit under overload every backend discards frames."""
        traffic = ArrivalProcess.poisson(900.0, queue_limit=8, retry_limit=2)
        for simulator in ("slotted", "event", "batched"):
            result = _run(CONNECTED, simulator, traffic, phy)
            assert result.retry_discards > 0, simulator


class TestRetrySemantics:
    def test_retry_limit_one_never_retransmits(self, phy):
        """With ``retry_limit=1`` every collision loses its frame, so no
        frame is ever transmitted twice: attempts == offered - queued on
        a drop-free closed-loop workload."""
        traffic = ArrivalProcess.window_limited(4, flow_frames=60,
                                                retry_limit=1)
        for simulator in ("slotted", "event", "batched"):
            result = _run(CONNECTED, simulator, traffic, phy, duration=1.0)
            attempts = result.total_successes + result.total_failures
            departed = result.total_successes + result.retry_discards
            assert result.total_failures == result.retry_discards, simulator
            assert attempts == departed, simulator
            _assert_conserved(result, f"window/retry=1/{simulator}")

    def test_saturated_retry_limit_keeps_transmitting(self, phy):
        """A backlogged station that discards must re-enter contention
        immediately — the limit changes what is sent, not whether."""
        for simulator in ("slotted", "event", "batched"):
            result = _run(CONNECTED, simulator,
                          ArrivalProcess.saturated(retry_limit=2), phy)
            assert result.retry_discards > 0, simulator
            assert result.total_throughput_mbps > 15.0, simulator

    def test_tighter_limit_discards_more(self, phy):
        loose = _run(CONNECTED, "batched",
                     ArrivalProcess.saturated(retry_limit=6), phy)
        tight = _run(CONNECTED, "batched",
                     ArrivalProcess.saturated(retry_limit=2), phy)
        assert tight.retry_discards > loose.retry_discards

    def test_window_flows_complete_despite_discards(self, phy):
        """Discards clock the closed-loop window exactly like deliveries,
        so bounded flows always finish (no window deadlock)."""
        traffic = ArrivalProcess.window_limited(4, flow_frames=50,
                                                retry_limit=2)
        for simulator in ("slotted", "event", "batched"):
            result = _run(CONNECTED, simulator, traffic, phy, duration=1.5)
            assert len(result.flow_completions) == NUM_STATIONS, simulator
            assert all(t > 0 for _, t in result.flow_completions), simulator


class TestDefaultPathCompatibility:
    def test_default_is_bit_identical_to_infinite_retries(self, phy):
        for simulator in ("slotted", "event", "batched"):
            plain = _run(CONNECTED, simulator, None, phy, duration=0.3)
            explicit = _run(CONNECTED, simulator,
                            ArrivalProcess.saturated(), phy, duration=0.3)
            assert plain == explicit, simulator
            assert plain.retry_discards == 0, simulator

    def test_retry_limit_is_a_cache_dimension(self):
        def key(**kwargs):
            return RunTask(
                scheme=SchemeSpec.make("standard-802.11"),
                topology=CONNECTED, seed=1, duration=1.0, **kwargs,
            ).task_key()

        base = key()
        assert key(retry_limit=7) != base
        assert key(retry_limit=7) == key(
            traffic=ArrivalProcess.saturated(retry_limit=7)
        )
        assert key(retry_limit=7) != key(retry_limit=6)
        poisson = ArrivalProcess.poisson(100.0)
        assert key(traffic=poisson, retry_limit=7) != key(traffic=poisson)

    def test_run_task_folds_retry_limit_into_traffic(self):
        task = RunTask(
            scheme=SchemeSpec.make("standard-802.11"),
            topology=CONNECTED, seed=1, duration=1.0, retry_limit=7,
        )
        assert task.retry_limit is None
        assert task.traffic is not None
        assert task.traffic.is_saturated
        assert task.traffic.retry_limit == 7
        assert task.to_json()["traffic"] == {"kind": "saturated",
                                             "retry_limit": 7}

    def test_conflicting_retry_limits_rejected(self):
        with pytest.raises(ValueError, match="retry_limit"):
            RunTask(
                scheme=SchemeSpec.make("standard-802.11"),
                topology=CONNECTED, seed=1, duration=1.0, retry_limit=7,
                traffic=ArrivalProcess.poisson(100.0, retry_limit=4),
            )

    def test_invalid_retry_limit_rejected(self):
        with pytest.raises(ValueError, match="retry_limit"):
            ArrivalProcess.saturated(retry_limit=0)
        with pytest.raises(ValueError, match="retry_limit"):
            ArrivalProcess.poisson(100.0, retry_limit=-3)
