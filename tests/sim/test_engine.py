"""Tests for the discrete-event scheduler."""

import pytest

from repro.sim.engine import EventScheduler


class TestScheduling:
    def test_events_run_in_time_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule_at(30, order.append, "c")
        scheduler.schedule_at(10, order.append, "a")
        scheduler.schedule_at(20, order.append, "b")
        scheduler.run_until(100)
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_fifo(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule_at(10, order.append, 1)
        scheduler.schedule_at(10, order.append, 2)
        scheduler.schedule_at(10, order.append, 3)
        scheduler.run_until(10)
        assert order == [1, 2, 3]

    def test_schedule_in_is_relative_to_now(self):
        scheduler = EventScheduler()
        times = []
        scheduler.schedule_at(100, lambda: scheduler.schedule_in(50, lambda: times.append(scheduler.now_ns)))
        scheduler.run_until(200)
        assert times == [150]

    def test_clock_advances_to_run_until_limit(self):
        scheduler = EventScheduler()
        scheduler.schedule_at(10, lambda: None)
        scheduler.run_until(500)
        assert scheduler.now_ns == 500
        assert scheduler.now == pytest.approx(5e-7)

    def test_events_after_limit_not_run(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule_at(100, fired.append, "late")
        scheduler.run_until(50)
        assert fired == []
        scheduler.run_until(150)
        assert fired == ["late"]

    def test_cannot_schedule_in_the_past(self):
        scheduler = EventScheduler()
        scheduler.schedule_at(100, lambda: None)
        scheduler.run_until(100)
        with pytest.raises(ValueError):
            scheduler.schedule_at(50, lambda: None)
        with pytest.raises(ValueError):
            scheduler.schedule_in(-1, lambda: None)

    def test_cannot_run_into_the_past(self):
        scheduler = EventScheduler()
        scheduler.run_until(100)
        with pytest.raises(ValueError):
            scheduler.run_until(50)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        scheduler = EventScheduler()
        fired = []
        event = scheduler.schedule_at(10, fired.append, "x")
        scheduler.cancel(event)
        scheduler.run_until(100)
        assert fired == []

    def test_cancel_none_is_noop(self):
        EventScheduler().cancel(None)

    def test_cancelled_events_do_not_count_as_processed(self):
        scheduler = EventScheduler()
        event = scheduler.schedule_at(10, lambda: None)
        scheduler.schedule_at(20, lambda: None)
        scheduler.cancel(event)
        scheduler.run_until(100)
        assert scheduler.processed_events == 1


class TestStepAndDrain:
    def test_step_runs_single_event(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule_at(5, fired.append, 1)
        scheduler.schedule_at(10, fired.append, 2)
        assert scheduler.step()
        assert fired == [1]
        assert scheduler.step()
        assert not scheduler.step()

    def test_run_until_empty_guard(self):
        scheduler = EventScheduler()

        def reschedule():
            scheduler.schedule_in(1, reschedule)

        scheduler.schedule_at(0, reschedule)
        with pytest.raises(RuntimeError):
            scheduler.run_until_empty(max_events=100)

    def test_clock_handle_reflects_scheduler_time(self):
        scheduler = EventScheduler()
        clock = scheduler.clock()
        scheduler.run_until(2_000_000_000)
        assert clock.now_ns == 2_000_000_000
        assert clock.now == pytest.approx(2.0)


class TestHeapCompaction:
    def test_cancelled_counter_tracks_live_cancellations(self):
        scheduler = EventScheduler()
        events = [scheduler.schedule_at(10 * i, lambda: None)
                  for i in range(10)]
        scheduler.cancel(events[0])
        scheduler.cancel(events[1])
        assert scheduler.cancelled_events == 2
        # Cancelling twice (or cancelling an already-run event) must not
        # inflate the counter.
        scheduler.cancel(events[0])
        assert scheduler.cancelled_events == 2
        scheduler.run_until(1000)
        assert scheduler.cancelled_events == 0
        scheduler.cancel(events[5])  # already executed: no-op
        assert scheduler.cancelled_events == 0

    def test_popping_cancelled_events_decrements_counter(self):
        scheduler = EventScheduler()
        keep = scheduler.schedule_at(50, lambda: None)
        dead = [scheduler.schedule_at(i, lambda: None) for i in range(10)]
        for event in dead:
            scheduler.cancel(event)
        assert scheduler.cancelled_events == len(dead)
        scheduler.run_until(100)
        assert scheduler.cancelled_events == 0
        assert scheduler.processed_events == 1
        assert not keep.cancelled

    def test_compaction_triggers_when_cancelled_exceed_half(self):
        scheduler = EventScheduler()
        floor = EventScheduler.COMPACTION_FLOOR
        live = [scheduler.schedule_at(10_000 + i, lambda: None)
                for i in range(floor)]
        doomed = [scheduler.schedule_at(i, lambda: None)
                  for i in range(floor + 1)]
        for event in doomed:
            scheduler.cancel(event)
        # More than half the heap was cancelled: it must have been compacted
        # down to the live events only.
        assert scheduler.heap_compactions >= 1
        assert scheduler.cancelled_events == 0
        assert scheduler.pending_events == len(live)
        order = scheduler.processed_events
        scheduler.run_until(20_000)
        assert scheduler.processed_events - order == len(live)

    def test_small_heaps_are_never_compacted(self):
        scheduler = EventScheduler()
        events = [scheduler.schedule_at(i, lambda: None) for i in range(10)]
        for event in events:
            scheduler.cancel(event)
        assert scheduler.heap_compactions == 0
        assert scheduler.pending_events == 10  # lazy deletion still in place
        scheduler.run_until(100)
        assert scheduler.pending_events == 0

    def test_compacted_events_stay_cancelled(self):
        scheduler = EventScheduler()
        floor = EventScheduler.COMPACTION_FLOOR
        fired = []
        for i in range(floor):
            scheduler.schedule_at(10_000 + i, fired.append, i)
        doomed = [scheduler.schedule_at(i, fired.append, -1)
                  for i in range(floor + 1)]
        for event in doomed:
            scheduler.cancel(event)
        # Late cancels of compacted-away events must not corrupt accounting.
        for event in doomed:
            scheduler.cancel(event)
        assert scheduler.cancelled_events == 0
        scheduler.run_until(20_000)
        assert -1 not in fired
        assert len(fired) == floor
