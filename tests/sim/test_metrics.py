"""Tests for simulation metrics collection."""

import pytest

from repro.sim.metrics import MetricsCollector, SimulationResult, StationStats


class TestMetricsCollector:
    def test_throughput_computation(self):
        collector = MetricsCollector(2)
        collector.record_success(0, 8000)
        collector.record_success(0, 8000)
        collector.record_success(1, 8000)
        result = collector.result(duration=2.0)
        assert result.total_throughput_bps == pytest.approx(12000.0)
        assert result.station_stats[0].throughput_bps == pytest.approx(8000.0)
        assert result.station_stats[1].throughput_bps == pytest.approx(4000.0)

    def test_failures_tracked_per_station(self):
        collector = MetricsCollector(2)
        collector.record_failure(1)
        collector.record_failure(1)
        collector.record_success(1, 100)
        result = collector.result(duration=1.0)
        assert result.station_stats[1].failures == 2
        assert result.station_stats[1].collision_fraction == pytest.approx(2 / 3)
        assert result.collision_fraction == pytest.approx(2 / 3)

    def test_idle_and_busy_counters(self):
        collector = MetricsCollector(1)
        collector.record_idle_slots(30)
        collector.record_busy_period(10)
        result = collector.result(duration=1.0)
        assert result.average_idle_slots_per_transmission == pytest.approx(3.0)

    def test_idle_metric_zero_without_busy_periods(self):
        collector = MetricsCollector(1)
        collector.record_idle_slots(10)
        assert collector.result(1.0).average_idle_slots_per_transmission == 0.0

    def test_timelines_recorded(self):
        collector = MetricsCollector(1)
        collector.record_throughput_sample(0.5, 1e6)
        collector.record_control_sample(0.5, 0.1)
        result = collector.result(duration=1.0)
        assert result.throughput_timeline == ((0.5, 1e6),)
        assert result.control_timeline == ((0.5, 0.1),)

    def test_reset_clears_counters(self):
        collector = MetricsCollector(1)
        collector.record_success(0, 8000)
        collector.record_idle_slots(5)
        collector.reset()
        result = collector.result(duration=1.0)
        assert result.total_throughput_bps == 0.0
        assert result.idle_slots == 0

    def test_extra_metadata_attached(self):
        collector = MetricsCollector(1)
        result = collector.result(duration=1.0, extra={"scheme": "x"})
        assert result.extra["scheme"] == "x"

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ValueError):
            MetricsCollector(0)
        collector = MetricsCollector(1)
        with pytest.raises(ValueError):
            collector.record_idle_slots(-1)
        with pytest.raises(ValueError):
            collector.result(duration=0.0)


class TestSimulationResultViews:
    def make_result(self):
        stats = (
            StationStats(station=0, successes=10, failures=5, payload_bits=80_000,
                         throughput_bps=80_000.0),
            StationStats(station=1, successes=20, failures=0, payload_bits=160_000,
                         throughput_bps=160_000.0),
        )
        return SimulationResult(
            duration=1.0, station_stats=stats, total_throughput_bps=240_000.0
        )

    def test_aggregates(self):
        result = self.make_result()
        assert result.num_stations == 2
        assert result.total_successes == 30
        assert result.total_failures == 5
        assert result.total_throughput_mbps == pytest.approx(0.24)
        assert result.per_station_throughput_bps == (80_000.0, 160_000.0)

    def test_station_stats_attempts(self):
        stats = self.make_result().station_stats[0]
        assert stats.attempts == 15
        assert stats.collision_fraction == pytest.approx(1 / 3)

    def test_zero_attempt_station_has_zero_collision_fraction(self):
        stats = StationStats(station=0, successes=0, failures=0, payload_bits=0,
                             throughput_bps=0.0)
        assert stats.collision_fraction == 0.0
