"""Probes must observe, never perturb: bit-identity on every backend.

Mirror of ``test_telemetry_differential.py`` for the simulator probe layer
(PR 9): with a :class:`~repro.telemetry.probes.ProbeConfig` session active,
every backend emits ``probe`` records with the documented series — and the
:class:`~repro.sim.metrics.SimulationResult` stays **bit-identical** to a
probe-less run.  Probe state never enters task hashes, cache keys or batch
grouping keys.

The event backend schedules extra (read-only) probe callbacks, which shifts
its scheduler event counters; the differential therefore compares the
simulation *results*, never the telemetry counters.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.campaign import RunTask, SchemeSpec, TopologySpec
from repro.experiments.campaign.batching import batch_key, execute_batch
from repro.experiments.campaign.executor import CampaignExecutor, execute_task
from repro.telemetry import ProbeConfig, Telemetry, session
from repro.telemetry import probes
from repro.telemetry.trace import validate_record

PROBE = ProbeConfig(interval=0.05)


def connected_task(simulator, *, kind="idlesense", num_stations=5,
                   seed=3, **params):
    return RunTask(
        scheme=SchemeSpec.make(kind, **params),
        topology=TopologySpec.connected(num_stations),
        seed=seed, duration=0.2, warmup=0.1, simulator=simulator,
    )


def hidden_task(simulator, *, num_stations=6, seed=3, kind="idlesense"):
    return RunTask(
        scheme=SchemeSpec.make(kind),
        topology=TopologySpec.two_cluster(num_stations // 2, 28.0, 0,
                                          spread=0.5),
        seed=seed, duration=0.2, warmup=0.1, simulator=simulator,
    )


def run_plain(task):
    if task.resolved_simulator() == "batched":
        [result] = execute_batch([task])
        return result
    return execute_task(task)


def run_probed(task, probe=PROBE):
    """Execute under a probe + telemetry session; returns (result, records)."""
    tel = Telemetry()
    with session(tel), probes.session(probe):
        result = run_plain(task)
    return result, tel.records


BACKEND_TASKS = {
    "slotted": connected_task("slotted"),
    "event": hidden_task("event"),
    "batched": connected_task("batched"),
    "conflict": hidden_task("batched"),
}

#: Series each backend samples for an IdleSense cell.  The batched renewal
#: backend models IdleSense at cell level (every station shares the
#: window/estimate), so its series are unindexed; the conflict backend uses
#: the per-station bank and indexes them like the scalar simulators.
_COMMON = {"throughput_mbps", "busy_frac", "tput_mbps[0]"}
EXPECTED_SERIES = {
    "slotted": _COMMON | {"cw[0]", "idle_est[0]", "attempt_p[0]"},
    "event": _COMMON | {"cw[0]", "idle_est[0]", "attempt_p[0]"},
    "batched": _COMMON | {"cw", "idle_est"},
    "conflict": _COMMON | {"cw[0]", "idle_est[0]"},
}


class TestProbeRecords:
    @pytest.mark.parametrize("scope", sorted(BACKEND_TASKS))
    def test_probe_record_emitted_with_documented_series(self, scope):
        _, records = run_probed(BACKEND_TASKS[scope])
        matching = [r for r in records
                    if r["type"] == "probe" and r["scope"] == scope]
        assert len(matching) == 1, f"expected one '{scope}' probe record"
        record = matching[0]
        validate_record(record)
        assert EXPECTED_SERIES[scope] <= set(record["series"])
        # duration 0.3 s / interval 0.05 s -> 6 boundaries, uniform grid.
        assert len(record["t"]) == 6
        assert record["stride"] == 1
        for column in record["series"].values():
            assert len(column) == len(record["t"])

    def test_no_probe_records_without_a_session(self):
        tel = Telemetry()
        with session(tel):
            run_plain(BACKEND_TASKS["slotted"])
        assert not any(r["type"] == "probe" for r in tel.records)

    def test_one_record_per_cell_in_a_batch(self):
        tasks = [connected_task("batched", num_stations=n, seed=s)
                 for n, s in ((3, 1), (5, 2))]
        tel = Telemetry()
        with session(tel), probes.session(PROBE):
            execute_batch(tasks)
        probe_records = [r for r in tel.records if r["type"] == "probe"]
        assert [(r["cell"], r["seed"]) for r in probe_records] == [(0, 1), (1, 2)]

    def test_busy_frac_bounded_on_conflict_backend(self):
        # The conflict backend accounts busy time in exact nanoseconds, so
        # its windowed busy fraction can never exceed 1.
        _, records = run_probed(BACKEND_TASKS["conflict"])
        [record] = [r for r in records if r["type"] == "probe"]
        for value in record["series"]["busy_frac"]:
            assert value is None or 0.0 <= value <= 1.0


class TestBitIdentity:
    @pytest.mark.parametrize("scope", sorted(BACKEND_TASKS))
    def test_results_identical_with_and_without_probes(self, scope):
        task = BACKEND_TASKS[scope]
        plain = run_plain(task)
        probed, records = run_probed(task)
        assert any(r["type"] == "probe" for r in records)
        assert probed == plain

    @pytest.mark.parametrize("scope", sorted(BACKEND_TASKS))
    def test_task_key_ignores_probe_session(self, scope):
        task = BACKEND_TASKS[scope]
        with probes.session(PROBE):
            key = task.task_key()
        assert key == task.task_key()

    def test_batch_key_ignores_probe_session(self):
        task = connected_task("batched")
        with probes.session(PROBE):
            key = batch_key(task)
        assert key == batch_key(task)

    def test_probe_capacity_never_changes_results(self):
        # Decimation (tiny capacity) and dense sampling (tiny interval)
        # exercise different buffer paths; neither may leak into results.
        task = BACKEND_TASKS["slotted"]
        plain = run_plain(task)
        for probe in (ProbeConfig(0.001, capacity=2),
                      ProbeConfig(0.001, capacity=4096),
                      ProbeConfig(10.0)):
            probed, _ = run_probed(task, probe)
            assert probed == plain

    def test_executor_serial_and_parallel_relay_probe_records(self):
        tasks = [connected_task("batched", num_stations=n, seed=s)
                 for n, s in ((3, 1), (4, 2), (5, 3))]
        plain = CampaignExecutor(jobs=1).run(tasks)
        for jobs in (1, 2):
            tel = Telemetry()
            executor = CampaignExecutor(jobs=jobs, telemetry=tel, probe=PROBE)
            results = executor.run(tasks)
            assert results == plain
            probe_records = [r for r in tel.records if r["type"] == "probe"]
            assert len(probe_records) == len(tasks)
            assert {r["seed"] for r in probe_records} == {1, 2, 3}


SCHEMES = ["standard-802.11", "idlesense", "wtop-csma", "fixed-p"]


class TestBitIdentityProperty:
    @given(
        kind=st.sampled_from(SCHEMES),
        num_stations=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=2 ** 31 - 1),
        simulator=st.sampled_from(["slotted", "event", "batched"]),
        interval=st.sampled_from([0.01, 0.05, 0.17]),
    )
    @settings(max_examples=15, deadline=None)
    def test_connected_results_do_not_depend_on_probes(
        self, kind, num_stations, seed, simulator, interval
    ):
        params = {"p": 0.05} if kind == "fixed-p" else {}
        task = RunTask(
            scheme=SchemeSpec.make(kind, **params),
            topology=TopologySpec.connected(num_stations),
            seed=seed, duration=0.15, warmup=0.05, simulator=simulator,
        )
        plain = run_plain(task)
        probed, _ = run_probed(task, ProbeConfig(interval))
        assert probed == plain

    @given(
        per_cluster=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2 ** 31 - 1),
        simulator=st.sampled_from(["event", "batched"]),
    )
    @settings(max_examples=10, deadline=None)
    def test_hidden_results_do_not_depend_on_probes(self, per_cluster, seed,
                                                    simulator):
        task = hidden_task(simulator, num_stations=2 * per_cluster, seed=seed)
        plain = run_plain(task)
        probed, _ = run_probed(task)
        assert probed == plain
