"""Tests for the conflict-matrix vectorized hidden-node simulator.

The load-bearing guarantees:

* cross-validation: on the hidden-node cells of Figures 4-7 (paper schemes
  and open-loop sweeps, disc radii 16 and 20) the conflict-matrix backend
  agrees with the scalar event-driven simulator — the two share no hot-path
  code, so agreement is an end-to-end check of both;
* a fully connected sensing matrix degenerates to the connected model (the
  conflict backend then agrees with the slotted renewal simulator too);
* hidden pairs actually behave like hidden pairs: stations that cannot
  sense each other collide at the AP instead of deferring;
* per-cell results are bit-identical regardless of batch composition (the
  Hypothesis suite in tests/properties covers the exhaustive version);
* frame errors, reporting time lines and input validation behave like the
  other simulators.
"""

import numpy as np
import pytest

from repro.experiments.campaign import RunTask, SchemeSpec, TopologySpec, execute_task
from repro.mac.batched import BatchedIdleSenseBank
from repro.sim.batched import make_batched_system, run_batched
from repro.sim.conflict import (
    BatchedConflictSimulator,
    run_conflict,
    stack_sensing_matrices,
)
from repro.topology.scenarios import (
    fully_connected_scenario,
    hidden_node_scenario,
    two_cluster_hidden_scenario,
)

#: The four paper schemes with the warm-up each needs before steady state.
PAPER_SCHEMES = [
    ("standard-802.11", {}, 0.3),
    ("idlesense", {}, 2.0),
    ("wtop-csma", {"update_period": 0.05}, 2.0),
    ("tora-csma", {"update_period": 0.05}, 2.0),
]


def _pair(phy, kind, params, topology, warmup, duration=1.0, **kwargs):
    """Run one cell on both backends; return (batched, event) results."""
    results = {}
    for simulator in ("batched", "event"):
        task = RunTask(
            scheme=SchemeSpec.make(kind, **params),
            topology=topology,
            seed=3,
            duration=duration,
            warmup=warmup,
            simulator=simulator,
            phy=phy,
            **kwargs,
        )
        results[simulator] = execute_task(task)
    return results["batched"], results["event"]


class TestCrossValidationAgainstEventDriven:
    """The fig4-fig7 envelope: same cells, same seeds, 8 % agreement.

    Collapsed cells (IdleSense with hidden nodes drops to a fraction of a
    Mbps — the paper's headline IdleSense failure) additionally get a
    1 Mbps absolute floor: at near-zero throughput the relative error is
    dominated by Poisson noise in a handful of successes, not by modelling
    differences.
    """

    @pytest.mark.parametrize("num_stations", [2, 8])
    @pytest.mark.parametrize("kind, params, warmup", PAPER_SCHEMES)
    def test_fig6_cells_agree(self, phy, kind, params, warmup, num_stations):
        topology = TopologySpec.hidden_disc(num_stations, 16.0, 11)
        batched, event = _pair(phy, kind, params, topology, warmup)
        assert batched.extra["simulator"] == "batched"
        assert batched.extra["hidden_pairs"] == event.extra["hidden_pairs"]
        assert batched.total_throughput_bps == pytest.approx(
            event.total_throughput_bps, rel=0.08, abs=1e6
        )

    @pytest.mark.parametrize("kind, params, warmup", PAPER_SCHEMES)
    def test_fig7_cells_agree(self, phy, kind, params, warmup):
        topology = TopologySpec.hidden_disc(8, 20.0, 12)
        batched, event = _pair(phy, kind, params, topology, warmup)
        assert batched.total_throughput_bps == pytest.approx(
            event.total_throughput_bps, rel=0.08, abs=1e6
        )

    @pytest.mark.parametrize("kind, params", [
        ("fixed-p", {"p": 0.02}),
        ("fixed-p", {"p": 0.1}),
        ("fixed-randomreset", {"stage": 0, "p0": 0.5}),
    ])
    def test_fig4_fig5_open_loop_cells_agree(self, phy, kind, params):
        topology = TopologySpec.hidden_disc(8, 16.0, 21)
        batched, event = _pair(phy, kind, params, topology, warmup=0.3)
        assert batched.total_throughput_bps == pytest.approx(
            event.total_throughput_bps, rel=0.08, abs=1e6
        )

    def test_frame_error_rate_cells_agree(self, phy):
        topology = TopologySpec.hidden_disc(6, 16.0, 31)
        batched, event = _pair(phy, "standard-802.11", {}, topology,
                               warmup=0.3, frame_error_rate=0.2)
        assert batched.total_throughput_bps == pytest.approx(
            event.total_throughput_bps, rel=0.1, abs=1e6
        )


class TestConnectedDegeneration:
    """An all-ones sensing matrix reproduces the connected-cell models."""

    @pytest.mark.parametrize("kind, params, warmup", [
        ("standard-802.11", {}, 0.3),
        ("fixed-p", {"p": 0.05}, 0.3),
        ("tora-csma", {"update_period": 0.05}, 2.0),
    ])
    def test_agrees_with_renewal_batched_backend(self, phy, kind, params,
                                                 warmup):
        n = 6
        graph = fully_connected_scenario(n)
        assert graph.sensing_matrix().all()
        [conflict] = run_conflict(kind, params, [graph], [7],
                                  duration=1.0, warmup=warmup, phy=phy)
        assert conflict.extra["hidden_pairs"] == 0
        [renewal] = run_batched(kind, params, [n], [7],
                                duration=1.0, warmup=warmup, phy=phy)
        assert conflict.total_throughput_bps == pytest.approx(
            renewal.total_throughput_bps, rel=0.1
        )


class TestHiddenPairSemantics:
    def test_hidden_pair_collides_instead_of_deferring(self, phy):
        """A mutually hidden p-persistent pair counts down through each
        other's frames and collides at the AP, while the same connected pair
        shares the channel — the defining hidden-node effect (and the reason
        the paper's Figure 5 favours exponential backoff there)."""
        hidden = two_cluster_hidden_scenario(1)
        assert len(hidden.hidden_pairs()) == 1
        [collided] = run_conflict("fixed-p", {"p": 0.05}, [hidden], [5],
                                  duration=0.5, phy=phy)
        connected = fully_connected_scenario(2)
        [shared] = run_conflict("fixed-p", {"p": 0.05}, [connected], [5],
                                duration=0.5, phy=phy)
        assert collided.total_failures > 2 * collided.total_successes
        assert shared.total_successes > 2 * shared.total_failures
        assert collided.total_throughput_bps < 0.5 * shared.total_throughput_bps

    def test_idlesense_hidden_cluster_livelock_pinned_seeds(self, phy):
        """The IdleSense hidden-pair livelock on the conflict backend, at
        the same documented known-good seeds as the event-driven test
        (tests/sim/test_simulation.py): seeds 1-8 all livelock — collision
        fraction 1.00, throughput <= 0.10 Mbps (verified 2026-08).  Pinned
        so a change to default seeding cannot flake the assertion."""
        seeds = [1, 5]
        hidden = two_cluster_hidden_scenario(3, separation=28.0, spread=0.5)
        results = run_conflict("idlesense", {}, [hidden] * len(seeds), seeds,
                               duration=1.0, warmup=1.0, phy=phy)
        for seed, result in zip(seeds, results):
            assert result.collision_fraction > 0.95, seed
            assert result.total_throughput_mbps < 1.0, seed

    def test_hidden_pair_count_reported_per_cell(self, phy):
        graphs = [
            two_cluster_hidden_scenario(2),
            fully_connected_scenario(3),
        ]
        results = run_conflict("standard-802.11", {}, graphs, [1, 2],
                               duration=0.2, phy=phy)
        assert results[0].extra["hidden_pairs"] == 4  # the cross pairs
        assert results[1].extra["hidden_pairs"] == 0


class TestCompositionIndependence:
    def test_mixed_topology_batch_equals_cells_alone(self, phy):
        rng = np.random.default_rng(0)
        graphs = [
            hidden_node_scenario(4, rng, radius=16.0, require_hidden_pairs=True),
            fully_connected_scenario(7),
            hidden_node_scenario(9, rng, radius=20.0),
        ]
        seeds = [11, 22, 33]
        batch = run_conflict("tora-csma", {"update_period": 0.05}, graphs,
                             seeds, duration=0.3, warmup=0.2, phy=phy)
        for graph, seed, together in zip(graphs, seeds, batch):
            [alone] = run_conflict("tora-csma", {"update_period": 0.05},
                                   [graph], [seed], duration=0.3, warmup=0.2,
                                   phy=phy)
            assert together == alone


class TestReportingAndValidation:
    def test_timeline_sampled_on_the_reporting_grid(self, phy):
        graph = two_cluster_hidden_scenario(2)
        [result] = run_conflict("wtop-csma", {"update_period": 0.05}, [graph],
                                [3], duration=1.0, warmup=0.5, phy=phy,
                                report_interval=0.25)
        times = [t for t, _ in result.throughput_timeline]
        assert times == pytest.approx([0.75, 1.0, 1.25, 1.5])
        assert len(result.control_timeline) == len(times)

    def test_frame_errors_cost_throughput(self, phy):
        graph = fully_connected_scenario(1)
        [clean] = run_conflict("standard-802.11", {}, [graph], [1],
                               duration=0.5, phy=phy)
        [noisy] = run_conflict("standard-802.11", {}, [graph], [1],
                               duration=0.5, phy=phy, frame_error_rate=0.5)
        assert clean.total_failures == 0
        assert noisy.total_failures > 0
        assert noisy.total_successes < 0.75 * clean.total_successes

    def test_asymmetric_sensing_matrix_rejected(self, phy):
        sensing = np.ones((1, 2, 2), dtype=bool)
        sensing[0, 0, 1] = False
        bank, controller, _ = make_batched_system(
            "standard-802.11", {}, 1, 2, phy, station_observations=True
        )
        with pytest.raises(ValueError, match="symmetric"):
            BatchedConflictSimulator(bank, controller, sensing, [2], [1],
                                     duration=0.1, phy=phy)

    def test_per_cell_observing_bank_rejected(self, phy):
        """A per-cell IdleSense bank assumes a fully connected cell."""
        bank = BatchedIdleSenseBank(phy, 1)
        _, controller, _ = make_batched_system(
            "standard-802.11", {}, 1, 2, phy
        )
        sensing = stack_sensing_matrices(
            [fully_connected_scenario(2).sensing_matrix()]
        )
        with pytest.raises(ValueError, match="per-station"):
            BatchedConflictSimulator(bank, controller, sensing, [2], [1],
                                     duration=0.1, phy=phy)

    def test_padding_region_must_be_false(self, phy):
        sensing = np.ones((1, 4, 4), dtype=bool)
        bank, controller, _ = make_batched_system(
            "standard-802.11", {}, 1, 4, phy
        )
        with pytest.raises(ValueError, match="station count"):
            BatchedConflictSimulator(bank, controller, sensing, [2], [1],
                                     duration=0.1, phy=phy)

    def test_stack_sensing_matrices_pads_with_false(self):
        a = np.ones((2, 2), dtype=bool)
        b = np.ones((3, 3), dtype=bool)
        stacked = stack_sensing_matrices([a, b])
        assert stacked.shape == (2, 3, 3)
        assert not stacked[0, 2, :].any() and not stacked[0, :, 2].any()
        assert stacked[1].all()
