"""Tests for the i.i.d. channel-error extension (paper, footnote 1).

The paper's model attributes all losses to collisions but notes that i.i.d.
channel errors can be added straightforwardly; both simulators expose a
``frame_error_rate`` for this.
"""

import pytest

from repro.mac.schemes import fixed_p_persistent_scheme, standard_80211_scheme
from repro.phy.constants import PhyParameters
from repro.sim.simulation import WlanSimulation, run_event_driven
from repro.sim.slotted import SlottedSimulator, run_slotted
from repro.topology.scenarios import fully_connected_scenario


class TestSlottedFrameErrors:
    def test_errors_reduce_throughput(self, phy):
        clean = run_slotted(fixed_p_persistent_scheme(0.02), 10,
                            duration=0.8, warmup=0.2, phy=phy, seed=1)
        lossy = run_slotted(fixed_p_persistent_scheme(0.02), 10,
                            duration=0.8, warmup=0.2, phy=phy, seed=1,
                            frame_error_rate=0.3)
        assert lossy.total_throughput_bps < 0.85 * clean.total_throughput_bps
        assert lossy.total_failures > clean.total_failures

    def test_error_rate_roughly_matches_loss_fraction(self, phy):
        # With a fixed window (p-persistent) policy the collision pattern is
        # unchanged, so the extra failures should be ~30% of the would-be
        # successes.
        lossy = run_slotted(fixed_p_persistent_scheme(0.01), 10,
                            duration=1.5, warmup=0.2, phy=phy, seed=2,
                            frame_error_rate=0.3)
        error_fraction = 1.0 - lossy.total_successes / (
            lossy.total_successes + lossy.total_failures
        )
        # Collisions also contribute, so the observed fraction exceeds 0.3 but
        # should be well below certain loss.
        assert 0.3 <= error_fraction <= 0.65

    def test_invalid_rate_rejected(self, phy):
        with pytest.raises(ValueError):
            SlottedSimulator(standard_80211_scheme(phy), num_stations=2,
                             phy=phy, frame_error_rate=1.0)
        with pytest.raises(ValueError):
            SlottedSimulator(standard_80211_scheme(phy), num_stations=2,
                             phy=phy, frame_error_rate=-0.1)


class TestEventDrivenFrameErrors:
    def test_errors_reduce_throughput(self, phy):
        graph = fully_connected_scenario(5)
        clean = run_event_driven(standard_80211_scheme(phy), graph,
                                 duration=0.5, warmup=0.1, phy=phy, seed=1)
        lossy = run_event_driven(standard_80211_scheme(phy), graph,
                                 duration=0.5, warmup=0.1, phy=phy, seed=1,
                                 frame_error_rate=0.4)
        assert lossy.total_throughput_bps < 0.85 * clean.total_throughput_bps

    def test_single_station_sees_only_channel_errors(self, phy):
        graph = fully_connected_scenario(1)
        result = run_event_driven(standard_80211_scheme(phy), graph,
                                  duration=0.5, warmup=0.1, phy=phy, seed=1,
                                  frame_error_rate=0.25)
        attempts = result.total_successes + result.total_failures
        assert result.total_failures > 0
        assert result.total_failures / attempts == pytest.approx(0.25, abs=0.1)

    def test_invalid_rate_rejected(self, phy):
        graph = fully_connected_scenario(2)
        with pytest.raises(ValueError):
            WlanSimulation(scheme=standard_80211_scheme(phy), connectivity=graph,
                           phy=phy, frame_error_rate=1.5)
