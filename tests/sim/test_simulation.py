"""Integration tests for the event-driven WLAN simulation."""

import numpy as np
import pytest

from repro.analysis.bianchi import dcf_saturation_throughput
from repro.mac.schemes import (
    fixed_p_persistent_scheme,
    idlesense_scheme,
    standard_80211_scheme,
    tora_csma_scheme,
    wtop_csma_scheme,
)
from repro.phy.constants import PhyParameters
from repro.sim.dynamics import step_activity
from repro.sim.simulation import WlanSimulation, run_event_driven
from repro.topology.scenarios import (
    fully_connected_scenario,
    two_cluster_hidden_scenario,
)


class TestFullyConnectedBehaviour:
    def test_standard_80211_close_to_bianchi(self, phy):
        graph = fully_connected_scenario(10)
        result = run_event_driven(standard_80211_scheme(phy), graph,
                                  duration=0.8, warmup=0.2, phy=phy, seed=1)
        expected = dcf_saturation_throughput(10, phy)
        assert result.total_throughput_bps == pytest.approx(expected, rel=0.12)

    def test_all_stations_get_service(self, phy):
        graph = fully_connected_scenario(8)
        result = run_event_driven(standard_80211_scheme(phy), graph,
                                  duration=0.8, warmup=0.2, phy=phy, seed=2)
        assert all(s.successes > 0 for s in result.station_stats)

    def test_reproducibility(self, phy):
        graph = fully_connected_scenario(6)
        a = run_event_driven(standard_80211_scheme(phy), graph,
                             duration=0.4, phy=phy, seed=9)
        b = run_event_driven(standard_80211_scheme(phy), graph,
                             duration=0.4, phy=phy, seed=9)
        assert a.per_station_throughput_bps == b.per_station_throughput_bps

    def test_result_metadata_records_topology(self, phy):
        graph = fully_connected_scenario(4)
        result = run_event_driven(standard_80211_scheme(phy), graph,
                                  duration=0.2, phy=phy, seed=1)
        assert result.extra["simulator"] == "event-driven"
        assert result.extra["hidden_pairs"] == 0

    def test_single_station_no_collisions(self, phy):
        graph = fully_connected_scenario(1)
        result = run_event_driven(standard_80211_scheme(phy), graph,
                                  duration=0.3, phy=phy, seed=1)
        assert result.total_failures == 0
        # A lone saturated station should use most of the channel.
        assert result.total_throughput_mbps > 20.0


class TestHiddenNodeBehaviour:
    def test_hidden_clusters_collide_often(self, phy):
        # Two mutually hidden clusters with aggressive fixed p: lots of
        # overlap collisions even though carrier sensing works inside each
        # cluster.
        graph = two_cluster_hidden_scenario(3, separation=28.0, spread=0.5)
        result = run_event_driven(fixed_p_persistent_scheme(0.05), graph,
                                  duration=0.8, warmup=0.2, phy=phy, seed=3)
        assert result.collision_fraction > 0.2

    def test_hidden_topology_loses_throughput_vs_connected(self, phy):
        connected = fully_connected_scenario(6)
        hidden = two_cluster_hidden_scenario(3, separation=28.0, spread=0.5)
        p = 0.05
        result_connected = run_event_driven(fixed_p_persistent_scheme(p), connected,
                                            duration=0.8, warmup=0.2, phy=phy, seed=4)
        result_hidden = run_event_driven(fixed_p_persistent_scheme(p), hidden,
                                         duration=0.8, warmup=0.2, phy=phy, seed=4)
        assert result_hidden.total_throughput_bps < result_connected.total_throughput_bps

    # Known-good seeds for the IdleSense hidden-pair bistability tests
    # below.  The two-cluster scenario is bistable in principle (hidden
    # clusters either livelock or capture the channel); empirically seeds
    # 1-8 all land in the livelock basin on BOTH the event-driven and the
    # conflict-matrix backend (collision fraction 1.00, throughput
    # <= 0.10 Mbps vs ~25.5 Mbps connected, verified 2026-08).  Pinning
    # the seeds here — instead of relying on whatever the harness default
    # is — keeps the assertions deterministic if default seeding changes.
    IDLESENSE_LIVELOCK_SEEDS = (1, 5)

    def test_idlesense_degrades_with_hidden_nodes(self, phy):
        # The paper's motivating observation (Figure 1 / Table III),
        # pinned to a documented known-good seed.
        seed = self.IDLESENSE_LIVELOCK_SEEDS[1]
        connected = fully_connected_scenario(6)
        hidden = two_cluster_hidden_scenario(3, separation=28.0, spread=0.5)
        result_connected = run_event_driven(idlesense_scheme(phy), connected,
                                            duration=1.0, warmup=1.0, phy=phy,
                                            seed=seed)
        result_hidden = run_event_driven(idlesense_scheme(phy), hidden,
                                         duration=1.0, warmup=1.0, phy=phy,
                                         seed=seed)
        assert result_hidden.total_throughput_bps < 0.8 * result_connected.total_throughput_bps

    def test_idlesense_hidden_pair_livelocks_explicitly(self, phy):
        # The *livelock* side of the bistability, asserted directly: both
        # mutually hidden clusters transmit through each other, (nearly)
        # every data frame overlaps, and IdleSense's observed-idle control
        # cannot recover because neither cluster ever sees the channel
        # busy.  Every documented seed must land in this basin.
        hidden = two_cluster_hidden_scenario(3, separation=28.0, spread=0.5)
        for seed in self.IDLESENSE_LIVELOCK_SEEDS:
            result = run_event_driven(idlesense_scheme(phy), hidden,
                                      duration=1.0, warmup=1.0, phy=phy,
                                      seed=seed)
            assert result.collision_fraction > 0.95, seed
            assert result.total_throughput_mbps < 1.0, seed


class TestControllersInTheLoop:
    def test_wtop_controller_adapts_and_broadcasts(self, phy):
        graph = fully_connected_scenario(8)
        simulation = WlanSimulation(
            scheme=wtop_csma_scheme(phy, update_period=0.02),
            connectivity=graph, phy=phy, seed=1,
        )
        simulation.run(duration=1.0)
        assert simulation.controller.updates > 5
        advertised = simulation.controller.control()["p"]
        for policy in simulation.policies:
            assert policy.base_probability == pytest.approx(advertised)

    def test_tora_controller_adapts(self, phy):
        graph = fully_connected_scenario(8)
        simulation = WlanSimulation(
            scheme=tora_csma_scheme(phy, update_period=0.02),
            connectivity=graph, phy=phy, seed=1,
        )
        result = simulation.run(duration=1.0)
        assert simulation.controller.updates > 5
        assert result.total_throughput_mbps > 10.0

    def test_report_interval_produces_timelines(self, phy):
        graph = fully_connected_scenario(5)
        simulation = WlanSimulation(
            scheme=wtop_csma_scheme(phy, update_period=0.02),
            connectivity=graph, phy=phy, seed=1, report_interval=0.1,
        )
        result = simulation.run(duration=0.5)
        assert len(result.throughput_timeline) >= 4
        assert len(result.control_timeline) >= 4


class TestDynamicActivity:
    def test_station_joining_later_gets_less_service(self, phy):
        graph = fully_connected_scenario(4)
        schedule = step_activity([(0.0, 2), (0.4, 4)])
        simulation = WlanSimulation(
            scheme=standard_80211_scheme(phy), connectivity=graph,
            phy=phy, seed=1, activity=schedule,
        )
        result = simulation.run(duration=0.8)
        assert result.station_stats[3].successes > 0
        assert result.station_stats[0].payload_bits > result.station_stats[3].payload_bits

    def test_station_leaving_stops_transmitting(self, phy):
        graph = fully_connected_scenario(4)
        schedule = step_activity([(0.0, 4), (0.2, 2)])
        simulation = WlanSimulation(
            scheme=standard_80211_scheme(phy), connectivity=graph,
            phy=phy, seed=1, activity=schedule,
        )
        result = simulation.run(duration=1.0)
        # Stations 2 and 3 were only active for the first 0.2 s.
        active_share = result.station_stats[0].payload_bits
        inactive_share = result.station_stats[3].payload_bits
        assert inactive_share < active_share * 0.6

    def test_activity_larger_than_topology_rejected(self, phy):
        graph = fully_connected_scenario(2)
        schedule = step_activity([(0.0, 4)])
        with pytest.raises(ValueError):
            WlanSimulation(scheme=standard_80211_scheme(phy), connectivity=graph,
                           phy=phy, activity=schedule)


class TestValidation:
    def test_rejects_bad_durations(self, phy):
        graph = fully_connected_scenario(2)
        simulation = WlanSimulation(scheme=standard_80211_scheme(phy),
                                    connectivity=graph, phy=phy)
        with pytest.raises(ValueError):
            simulation.run(duration=0.0)
        with pytest.raises(ValueError):
            simulation.run(duration=1.0, warmup=-0.5)

    def test_rejects_bad_report_interval(self, phy):
        graph = fully_connected_scenario(2)
        with pytest.raises(ValueError):
            WlanSimulation(scheme=standard_80211_scheme(phy), connectivity=graph,
                           phy=phy, report_interval=0.0)
