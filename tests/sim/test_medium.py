"""Tests for the shared medium (carrier sensing and overlap collisions)."""

import pytest

from repro.phy.constants import PhyParameters
from repro.phy.frame import FrameFactory
from repro.sim.engine import EventScheduler
from repro.sim.medium import AP_NODE_ID, Medium


class RecordingListener:
    def __init__(self):
        self.events = []

    def on_medium_busy(self, now_ns, transmission):
        self.events.append(("busy", now_ns, transmission.source))

    def on_medium_idle(self, now_ns):
        self.events.append(("idle", now_ns))


def make_medium(sensing_sets):
    scheduler = EventScheduler()
    medium = Medium(scheduler, [set(s) for s in sensing_sets])
    listeners = []
    for station in range(len(sensing_sets)):
        listener = RecordingListener()
        medium.register_listener(station, listener)
        listeners.append(listener)
    factory = FrameFactory(PhyParameters())
    return scheduler, medium, listeners, factory


class TestCarrierSensing:
    def test_mutually_sensing_stations_get_notified(self):
        scheduler, medium, listeners, frames = make_medium([{0, 1}, {0, 1}])
        tx = medium.start_transmission(0, frames.data(0, AP_NODE_ID), 1000)
        assert listeners[1].events == [("busy", 0, 0)]
        assert listeners[0].events == []  # a station never senses itself
        scheduler.run_until(1000)
        medium.end_transmission(tx)
        assert listeners[1].events[-1] == ("idle", 1000)

    def test_hidden_station_not_notified(self):
        # Station 1 cannot sense station 0.
        scheduler, medium, listeners, frames = make_medium([{0}, {1}])
        tx = medium.start_transmission(0, frames.data(0, AP_NODE_ID), 1000)
        assert listeners[1].events == []
        assert medium.is_busy_for(1) is False
        assert medium.is_busy_for(0) is False
        medium.end_transmission(tx)

    def test_busy_state_tracks_overlapping_transmissions(self):
        scheduler, medium, listeners, frames = make_medium(
            [{0, 1, 2}, {0, 1, 2}, {0, 1, 2}]
        )
        tx_a = medium.start_transmission(0, frames.data(0, AP_NODE_ID), 1000)
        tx_b = medium.start_transmission(1, frames.data(1, AP_NODE_ID), 2000)
        assert medium.is_busy_for(2)
        medium.end_transmission(tx_a)
        # Still busy because station 1 is still transmitting.
        assert medium.is_busy_for(2)
        medium.end_transmission(tx_b)
        assert not medium.is_busy_for(2)
        # Only one busy/idle transition pair despite two transmissions.
        transitions = [e[0] for e in listeners[2].events]
        assert transitions == ["busy", "idle"]

    def test_ap_transmissions_sensed_by_everyone(self):
        scheduler, medium, listeners, frames = make_medium([{0}, {1}])
        ack = frames.ack(AP_NODE_ID, 0, acked_frame_id=1)
        tx = medium.start_transmission(AP_NODE_ID, ack, 500)
        assert listeners[0].events[-1][0] == "busy"
        assert listeners[1].events[-1][0] == "busy"
        medium.end_transmission(tx)

    def test_register_listener_unknown_station_rejected(self):
        scheduler, medium, _, _ = make_medium([{0}])
        with pytest.raises(ValueError):
            medium.register_listener(5, RecordingListener())

    def test_sensing_set_with_unknown_station_rejected(self):
        scheduler = EventScheduler()
        with pytest.raises(ValueError):
            Medium(scheduler, [{0, 7}])


class TestCollisionSemantics:
    def test_overlapping_data_frames_corrupt_each_other(self):
        scheduler, medium, _, frames = make_medium([{0}, {1}])
        tx_a = medium.start_transmission(0, frames.data(0, AP_NODE_ID), 1000)
        tx_b = medium.start_transmission(1, frames.data(1, AP_NODE_ID), 1000)
        assert tx_a.corrupted and tx_b.corrupted

    def test_non_overlapping_data_frames_unharmed(self):
        scheduler, medium, _, frames = make_medium([{0}, {1}])
        tx_a = medium.start_transmission(0, frames.data(0, AP_NODE_ID), 1000)
        scheduler.run_until(1000)
        medium.end_transmission(tx_a)
        tx_b = medium.start_transmission(1, frames.data(1, AP_NODE_ID), 1000)
        assert not tx_a.corrupted and not tx_b.corrupted

    def test_ack_does_not_corrupt_data(self):
        scheduler, medium, _, frames = make_medium([{0}, {1}])
        tx_data = medium.start_transmission(0, frames.data(0, AP_NODE_ID), 1000)
        ack = medium.start_transmission(AP_NODE_ID, frames.ack(AP_NODE_ID, 1, 1), 200)
        assert not tx_data.corrupted
        assert not ack.corrupted

    def test_three_way_collision_marks_all(self):
        scheduler, medium, _, frames = make_medium([{0}, {1}, {2}])
        txs = [
            medium.start_transmission(i, frames.data(i, AP_NODE_ID), 1000)
            for i in range(3)
        ]
        assert all(tx.corrupted for tx in txs)

    def test_end_of_unknown_transmission_rejected(self):
        scheduler, medium, _, frames = make_medium([{0}])
        tx = medium.start_transmission(0, frames.data(0, AP_NODE_ID), 100)
        medium.end_transmission(tx)
        with pytest.raises(ValueError):
            medium.end_transmission(tx)


class TestOccupancyStatistics:
    def test_busy_time_accumulates_union_of_data_airtime(self):
        scheduler, medium, _, frames = make_medium([{0}, {1}])
        tx_a = medium.start_transmission(0, frames.data(0, AP_NODE_ID), 1000)
        scheduler.run_until(500)
        tx_b = medium.start_transmission(1, frames.data(1, AP_NODE_ID), 1000)
        scheduler.run_until(1000)
        medium.end_transmission(tx_a)
        scheduler.run_until(1500)
        medium.end_transmission(tx_b)
        # Union of [0, 1000] and [500, 1500] = 1500 ns, one busy period.
        assert medium.data_busy_total_ns == 1500
        assert medium.data_busy_periods == 1

    def test_separate_busy_periods_counted(self):
        scheduler, medium, _, frames = make_medium([{0}])
        tx_a = medium.start_transmission(0, frames.data(0, AP_NODE_ID), 100)
        scheduler.run_until(100)
        medium.end_transmission(tx_a)
        scheduler.run_until(500)
        tx_b = medium.start_transmission(0, frames.data(0, AP_NODE_ID), 100)
        scheduler.run_until(600)
        medium.end_transmission(tx_b)
        assert medium.data_busy_periods == 2
        assert medium.data_busy_total_ns == 200

    def test_ack_time_not_counted_as_data_busy(self):
        scheduler, medium, _, frames = make_medium([{0}])
        ack = medium.start_transmission(AP_NODE_ID, frames.ack(AP_NODE_ID, 0, 1), 400)
        scheduler.run_until(400)
        medium.end_transmission(ack)
        assert medium.data_busy_total_ns == 0
        assert medium.data_busy_periods == 0

    def test_reset_occupancy_statistics(self):
        scheduler, medium, _, frames = make_medium([{0}])
        tx = medium.start_transmission(0, frames.data(0, AP_NODE_ID), 100)
        scheduler.run_until(100)
        medium.end_transmission(tx)
        medium.reset_occupancy_statistics()
        assert medium.data_busy_total_ns == 0
        assert medium.data_busy_periods == 0

    def test_start_observer_called_for_every_transmission(self):
        scheduler, medium, _, frames = make_medium([{0}])
        seen = []
        medium.add_start_observer(lambda tx: seen.append(tx.source))
        tx = medium.start_transmission(0, frames.data(0, AP_NODE_ID), 100)
        medium.end_transmission(tx)
        ack = medium.start_transmission(AP_NODE_ID, frames.ack(AP_NODE_ID, 0, 1), 50)
        medium.end_transmission(ack)
        assert seen == [0, AP_NODE_ID]
