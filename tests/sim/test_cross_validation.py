"""Cross-validation between the two simulators and the analytical models.

The two simulators share no code on their hot paths (one is event-driven with
per-station carrier sensing, the other a vectorised renewal-slot loop), so
their agreement on fully connected topologies is a strong end-to-end check of
both — and of the analytical formulas they are both compared against.
"""

import pytest

from repro.analysis.persistent import system_throughput_weighted
from repro.experiments.campaign import RunTask, SchemeSpec, TopologySpec, execute_task
from repro.mac.schemes import (
    fixed_p_persistent_scheme,
    fixed_randomreset_scheme,
    standard_80211_scheme,
)
from repro.analysis.randomreset import randomreset_throughput
from repro.phy.constants import PhyParameters
from repro.sim.simulation import run_event_driven
from repro.sim.slotted import run_slotted
from repro.topology.scenarios import fully_connected_scenario


class TestSimulatorAgreement:
    @pytest.mark.parametrize("num_stations", [5, 15])
    def test_standard_80211_agreement(self, phy, num_stations):
        graph = fully_connected_scenario(num_stations)
        slotted = run_slotted(standard_80211_scheme(phy), num_stations,
                              duration=1.0, warmup=0.2, phy=phy, seed=3)
        event = run_event_driven(standard_80211_scheme(phy), graph,
                                 duration=1.0, warmup=0.2, phy=phy, seed=3)
        assert event.total_throughput_bps == pytest.approx(
            slotted.total_throughput_bps, rel=0.10
        )

    def test_p_persistent_agreement_with_each_other_and_eq3(self, phy):
        n, p = 10, 0.02
        graph = fully_connected_scenario(n)
        analytic = system_throughput_weighted(p, [1.0] * n, phy)
        slotted = run_slotted(fixed_p_persistent_scheme(p), n,
                              duration=1.0, warmup=0.2, phy=phy, seed=4)
        event = run_event_driven(fixed_p_persistent_scheme(p), graph,
                                 duration=1.0, warmup=0.2, phy=phy, seed=4)
        assert slotted.total_throughput_bps == pytest.approx(analytic, rel=0.10)
        assert event.total_throughput_bps == pytest.approx(analytic, rel=0.12)

    def test_randomreset_agreement_with_fixed_point_model(self, phy):
        n, stage, p0 = 10, 0, 0.5
        graph = fully_connected_scenario(n)
        analytic = randomreset_throughput(stage, p0, n, phy)
        slotted = run_slotted(fixed_randomreset_scheme(stage, p0, phy), n,
                              duration=1.0, warmup=0.2, phy=phy, seed=5)
        event = run_event_driven(fixed_randomreset_scheme(stage, p0, phy), graph,
                                 duration=1.0, warmup=0.2, phy=phy, seed=5)
        # The fixed-point model itself is an approximation, so allow a wider
        # band against it but require the two simulators to roughly agree.
        assert slotted.total_throughput_bps == pytest.approx(analytic, rel=0.2)
        assert event.total_throughput_bps == pytest.approx(
            slotted.total_throughput_bps, rel=0.12
        )

    @pytest.mark.parametrize("num_stations", [2, 8])
    @pytest.mark.parametrize("scheme_kind, scheme_params", [
        ("standard-802.11", {}),
        ("idlesense", {}),
        ("wtop-csma", {"update_period": 0.05}),
        ("tora-csma", {"update_period": 0.05}),
    ])
    def test_paper_schemes_agree_across_simulators(self, phy, scheme_kind,
                                                   scheme_params, num_stations):
        """Seeded sweep over all four paper schemes at N in {2, 8}.

        Adaptive schemes get a warm-up long enough for their controllers to
        converge (with a fast update period) so steady-state throughput is
        compared.  Empirically the two simulators agree within ~3% on these
        cells; 8% leaves slack for platform-to-platform RNG stream
        differences without masking a real modelling divergence.
        """
        spec = SchemeSpec.make(scheme_kind, **scheme_params)
        warmup = 2.0 if spec.adaptive else 0.3
        throughput = {}
        for simulator in ("slotted", "event"):
            task = RunTask(
                scheme=spec,
                topology=TopologySpec.connected(num_stations),
                seed=3,
                duration=1.0,
                warmup=warmup,
                simulator=simulator,
                phy=phy,
            )
            throughput[simulator] = execute_task(task).total_throughput_bps
        assert throughput["event"] == pytest.approx(
            throughput["slotted"], rel=0.08
        )

    def test_per_station_fairness_in_both_simulators(self, phy):
        n, p = 8, 0.03
        graph = fully_connected_scenario(n)
        for result in (
            run_slotted(fixed_p_persistent_scheme(p), n, duration=1.5, warmup=0.2,
                        phy=phy, seed=6),
            run_event_driven(fixed_p_persistent_scheme(p), graph, duration=1.5,
                             warmup=0.2, phy=phy, seed=6),
        ):
            throughputs = result.per_station_throughput_bps
            mean = sum(throughputs) / len(throughputs)
            assert all(abs(t - mean) / mean < 0.35 for t in throughputs)
