"""Telemetry must observe, never perturb: counters and bit-identity.

Two contracts, per simulator backend (scalar slotted, scalar event-driven,
batched renewal-slot, batched conflict-matrix):

1. With a collector active, one ``counters`` record per ``run()`` appears
   under the backend's scope with the loop-level counters the trace report
   documents.
2. Results are **bit-identical** with telemetry enabled, disabled, or
   absent — the instrumentation never touches a random stream or simulator
   state.  A Hypothesis sweep hunts for (scheme, N, seed) corners where an
   instrumented branch could diverge.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.campaign import RunTask, SchemeSpec, TopologySpec
from repro.experiments.campaign.batching import execute_batch
from repro.experiments.campaign.executor import execute_task
from repro.telemetry import Telemetry, session


def connected_task(simulator, *, kind="standard-802.11", num_stations=5,
                   seed=3, **params):
    return RunTask(
        scheme=SchemeSpec.make(kind, **params),
        topology=TopologySpec.connected(num_stations),
        seed=seed, duration=0.2, warmup=0.1, simulator=simulator,
    )


def hidden_task(simulator, *, num_stations=6, seed=3):
    return RunTask(
        scheme=SchemeSpec.make("standard-802.11"),
        topology=TopologySpec.hidden_disc(num_stations, 16.0, 1),
        seed=seed, duration=0.2, warmup=0.1, simulator=simulator,
    )


def run_with_telemetry(task):
    """Execute a task with a fresh collector; returns (result, records)."""
    tel = Telemetry()
    with session(tel):
        if task.resolved_simulator() == "batched":
            [result] = execute_batch([task])
        else:
            result = execute_task(task)
    return result, tel.records


BACKEND_TASKS = {
    "slotted": connected_task("slotted"),
    "event": hidden_task("event"),
    "batched": connected_task("batched"),
    "conflict": hidden_task("batched"),
}

EXPECTED_COUNTERS = {
    "slotted": {"virtual_slots", "idle_fast_forwards", "busy_slots",
                "num_stations"},
    "event": {"events_processed", "events_cancelled", "heap_compactions",
              "events_pending_at_end", "num_stations"},
    "batched": {"loop_iterations", "idle_fast_forwards",
                "idle_slots_advanced", "busy_slots", "cells", "max_stations"},
    "conflict": {"loop_iterations", "frame_starts", "frame_ends",
                 "sense_recomputes", "sense_product_ops", "cells",
                 "max_stations"},
}


class TestCountersPerBackend:
    @pytest.mark.parametrize("scope", sorted(BACKEND_TASKS))
    def test_one_counters_record_with_documented_names(self, scope):
        _, records = run_with_telemetry(BACKEND_TASKS[scope])
        matching = [r for r in records
                    if r["type"] == "counters" and r["scope"] == scope]
        assert len(matching) == 1, f"expected one '{scope}' counters record"
        counters = matching[0]["counters"]
        assert EXPECTED_COUNTERS[scope] <= set(counters)
        assert all(isinstance(v, int) for v in counters.values())

    def test_slotted_counters_describe_real_work(self):
        _, records = run_with_telemetry(BACKEND_TASKS["slotted"])
        [record] = [r for r in records if r["type"] == "counters"]
        counters = record["counters"]
        assert counters["num_stations"] == 5
        assert counters["busy_slots"] > 0
        assert counters["virtual_slots"] >= counters["busy_slots"]

    def test_event_counters_describe_real_work(self):
        _, records = run_with_telemetry(BACKEND_TASKS["event"])
        [record] = [r for r in records if r["type"] == "counters"]
        assert record["counters"]["events_processed"] > 0

    def test_conflict_product_ops_scale_with_recomputes(self):
        _, records = run_with_telemetry(BACKEND_TASKS["conflict"])
        [record] = [r for r in records if r["type"] == "counters"]
        counters = record["counters"]
        assert counters["frame_starts"] > 0
        n = counters["max_stations"]
        assert counters["sense_product_ops"] == \
            counters["sense_recomputes"] * counters["cells"] * n * n

    def test_no_records_without_a_session(self):
        tel = Telemetry()
        execute_task(BACKEND_TASKS["slotted"])  # no session() activation
        assert tel.records == []

    def test_one_record_per_cell_in_a_batch(self):
        tasks = [connected_task("batched", num_stations=n) for n in (3, 5)]
        tel = Telemetry()
        with session(tel):
            execute_batch(tasks)
        # One vectorized call sweeps both cells: one counters record.
        scopes = [r["scope"] for r in tel.records if r["type"] == "counters"]
        assert scopes == ["batched"]
        [record] = [r for r in tel.records if r["type"] == "counters"]
        assert record["counters"]["cells"] == 2


class TestBitIdentity:
    @pytest.mark.parametrize("scope", sorted(BACKEND_TASKS))
    def test_results_identical_with_and_without_telemetry(self, scope):
        task = BACKEND_TASKS[scope]
        if task.resolved_simulator() == "batched":
            [plain] = execute_batch([task])
        else:
            plain = execute_task(task)
        traced, records = run_with_telemetry(task)
        assert any(r["type"] == "counters" for r in records)
        assert traced == plain

    @pytest.mark.parametrize("scope", sorted(BACKEND_TASKS))
    def test_task_key_ignores_telemetry(self, scope):
        task = BACKEND_TASKS[scope]
        with session(Telemetry()):
            key = task.task_key()
        assert key == task.task_key()

    def test_retry_limited_discards_are_counted_and_identical(self):
        task = dataclasses.replace(
            connected_task("slotted", num_stations=8, seed=1), retry_limit=1,
        )
        traced, records = run_with_telemetry(task)
        [record] = [r for r in records if r["type"] == "counters"]
        assert record["counters"]["retry_discards"] > 0
        assert traced == execute_task(task)


SCHEMES = ["standard-802.11", "idlesense", "fixed-p"]


class TestBitIdentityProperty:
    @given(
        kind=st.sampled_from(SCHEMES),
        num_stations=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=2 ** 31 - 1),
        simulator=st.sampled_from(["slotted", "event", "batched"]),
    )
    @settings(max_examples=15, deadline=None)
    def test_connected_results_do_not_depend_on_telemetry(
        self, kind, num_stations, seed, simulator
    ):
        params = {"p": 0.05} if kind == "fixed-p" else {}
        task = RunTask(
            scheme=SchemeSpec.make(kind, **params),
            topology=TopologySpec.connected(num_stations),
            seed=seed, duration=0.15, warmup=0.05, simulator=simulator,
        )
        if task.resolved_simulator() == "batched":
            [plain] = execute_batch([task])
        else:
            plain = execute_task(task)
        traced, _ = run_with_telemetry(task)
        assert traced == plain

    @given(
        num_stations=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=2 ** 31 - 1),
    )
    @settings(max_examples=8, deadline=None)
    def test_hidden_results_do_not_depend_on_telemetry(self, num_stations,
                                                       seed):
        task = hidden_task("batched", num_stations=num_stations, seed=seed)
        [plain] = execute_batch([task])
        traced, _ = run_with_telemetry(task)
        assert traced == plain
