"""Tests for the slotted (fully connected) simulator."""

import numpy as np
import pytest

from repro.analysis.bianchi import dcf_saturation_throughput
from repro.analysis.persistent import (
    optimal_attempt_probability,
    system_throughput_weighted,
)
from repro.core.controller import AccessPointController
from repro.mac.schemes import (
    Scheme,
    fixed_p_persistent_scheme,
    idlesense_scheme,
    standard_80211_scheme,
    wtop_csma_scheme,
)
from repro.phy.constants import PhyParameters
from repro.sim.dynamics import step_activity
from repro.sim.slotted import SlottedSimulator, run_slotted


class TestAgainstAnalyticalModels:
    def test_standard_80211_matches_bianchi(self, phy):
        for n in (5, 20):
            result = run_slotted(
                standard_80211_scheme(phy), num_stations=n,
                duration=1.5, warmup=0.3, phy=phy, seed=1,
            )
            expected = dcf_saturation_throughput(n, phy)
            assert result.total_throughput_bps == pytest.approx(expected, rel=0.08)

    def test_p_persistent_matches_eq3(self, phy):
        n, p = 15, 0.02
        result = run_slotted(
            fixed_p_persistent_scheme(p), num_stations=n,
            duration=1.5, warmup=0.3, phy=phy, seed=2,
        )
        expected = system_throughput_weighted(p, [1.0] * n, phy)
        assert result.total_throughput_bps == pytest.approx(expected, rel=0.08)

    def test_throughput_unimodal_in_p(self, phy):
        # Coarse simulated version of Figure 2's bell shape.
        n = 20
        ps = [0.001, 0.005, 0.02, 0.1, 0.4]
        values = [
            run_slotted(fixed_p_persistent_scheme(p), num_stations=n,
                        duration=0.6, warmup=0.2, phy=phy, seed=3).total_throughput_bps
            for p in ps
        ]
        peak = int(np.argmax(values))
        assert 0 < peak < len(ps) - 1
        assert values[peak] > values[0] and values[peak] > values[-1]

    def test_optimal_p_beats_standard_80211(self, phy):
        n = 40
        p_star = optimal_attempt_probability(n, phy)
        optimal = run_slotted(fixed_p_persistent_scheme(p_star), num_stations=n,
                              duration=1.0, warmup=0.3, phy=phy, seed=4)
        standard = run_slotted(standard_80211_scheme(phy), num_stations=n,
                               duration=1.0, warmup=0.3, phy=phy, seed=4)
        assert optimal.total_throughput_bps > standard.total_throughput_bps


class TestMechanics:
    def test_reproducible_with_same_seed(self, phy):
        a = run_slotted(standard_80211_scheme(phy), 10, duration=0.5, warmup=0.1,
                        phy=phy, seed=7)
        b = run_slotted(standard_80211_scheme(phy), 10, duration=0.5, warmup=0.1,
                        phy=phy, seed=7)
        assert a.total_throughput_bps == b.total_throughput_bps
        assert a.per_station_throughput_bps == b.per_station_throughput_bps

    def test_different_seeds_differ(self, phy):
        a = run_slotted(standard_80211_scheme(phy), 10, duration=0.5, phy=phy, seed=1)
        b = run_slotted(standard_80211_scheme(phy), 10, duration=0.5, phy=phy, seed=2)
        assert a.total_throughput_bps != b.total_throughput_bps

    def test_single_station_never_collides(self, phy):
        result = run_slotted(standard_80211_scheme(phy), 1, duration=0.5, phy=phy, seed=1)
        assert result.total_failures == 0
        assert result.total_throughput_bps > 0

    def test_metrics_exclude_warmup(self, phy):
        long_warmup = run_slotted(standard_80211_scheme(phy), 10,
                                  duration=0.5, warmup=1.0, phy=phy, seed=5)
        # Throughput is a rate, so it should be in the same ballpark with and
        # without warm-up, not double.
        no_warmup = run_slotted(standard_80211_scheme(phy), 10,
                                duration=0.5, warmup=0.0, phy=phy, seed=5)
        assert long_warmup.total_throughput_bps == pytest.approx(
            no_warmup.total_throughput_bps, rel=0.15
        )

    def test_result_metadata(self, phy):
        result = run_slotted(standard_80211_scheme(phy), 5, duration=0.2, phy=phy, seed=1)
        assert result.extra["simulator"] == "slotted"
        assert result.extra["num_stations"] == 5
        assert result.duration == pytest.approx(0.2)

    def test_idle_slot_accounting_positive(self, phy):
        result = run_slotted(standard_80211_scheme(phy), 5, duration=0.3, phy=phy, seed=1)
        assert result.idle_slots > 0
        assert result.busy_periods > 0

    def test_rejects_invalid_arguments(self, phy):
        simulator = SlottedSimulator(standard_80211_scheme(phy), num_stations=3, phy=phy)
        with pytest.raises(ValueError):
            simulator.run(duration=0.0)
        with pytest.raises(ValueError):
            simulator.run(duration=1.0, warmup=-1.0)
        with pytest.raises(ValueError):
            SlottedSimulator(standard_80211_scheme(phy))
        with pytest.raises(ValueError):
            SlottedSimulator(standard_80211_scheme(phy), num_stations=3,
                             report_interval=0.0)

    @pytest.mark.parametrize("bad_interval", [0.0, -0.25])
    def test_report_interval_must_be_positive(self, phy, bad_interval):
        with pytest.raises(ValueError):
            SlottedSimulator(standard_80211_scheme(phy), num_stations=3,
                             phy=phy, report_interval=bad_interval)

    @pytest.mark.parametrize("bad_rate", [-0.1, 1.0, 1.5])
    def test_frame_error_rate_bounds_rejected(self, phy, bad_rate):
        with pytest.raises(ValueError):
            SlottedSimulator(standard_80211_scheme(phy), num_stations=3,
                             phy=phy, frame_error_rate=bad_rate)

    def test_frame_error_rate_boundaries_accepted(self, phy):
        # 0.0 (no channel errors) is valid; rates just below 1.0 are valid
        # but catastrophic for throughput.
        for rate in (0.0, 0.99):
            SlottedSimulator(standard_80211_scheme(phy), num_stations=3,
                             phy=phy, frame_error_rate=rate)

    def test_frame_errors_reduce_throughput_and_count_as_failures(self, phy):
        clean = run_slotted(standard_80211_scheme(phy), 1, duration=0.5,
                            phy=phy, seed=9)
        noisy = run_slotted(standard_80211_scheme(phy), 1, duration=0.5,
                            phy=phy, seed=9, frame_error_rate=0.4)
        assert noisy.total_throughput_bps < clean.total_throughput_bps
        # A single station never collides, so every failure is a channel error.
        assert clean.total_failures == 0
        assert noisy.total_failures > 0


class TestDynamicActivity:
    def test_only_active_stations_get_throughput(self, phy):
        schedule = step_activity([(0.0, 2), (0.5, 4)])
        simulator = SlottedSimulator(
            standard_80211_scheme(phy), activity=schedule, phy=phy, seed=3
        )
        result = simulator.run(duration=1.0)
        # Stations 2 and 3 joined halfway: they must have received service
        # after joining but strictly less than stations 0 and 1 overall.
        assert result.station_stats[2].successes > 0
        assert result.station_stats[0].payload_bits > result.station_stats[2].payload_bits

    def test_timeline_sampling(self, phy):
        simulator = SlottedSimulator(
            wtop_csma_scheme(phy, update_period=0.05), num_stations=5, phy=phy,
            seed=1, report_interval=0.1,
        )
        result = simulator.run(duration=1.0)
        assert len(result.throughput_timeline) >= 8
        assert len(result.control_timeline) >= 8
        times = [t for t, _ in result.throughput_timeline]
        assert times == sorted(times)

    def test_activity_schedule_larger_than_stations_rejected(self, phy):
        schedule = step_activity([(0.0, 5)])
        with pytest.raises(ValueError):
            SlottedSimulator(standard_80211_scheme(phy), num_stations=3,
                             phy=phy, activity=schedule)

    def test_population_grows_during_warmup(self, phy):
        # The schedule steps while metrics are still being discarded; every
        # station active by the warmup boundary must show measured traffic.
        schedule = step_activity([(0.0, 2), (0.25, 6)])
        simulator = SlottedSimulator(
            standard_80211_scheme(phy), activity=schedule, phy=phy, seed=3
        )
        result = simulator.run(duration=1.0, warmup=0.5)
        assert all(s.successes > 0 for s in result.station_stats)

    def test_population_shrinks_during_warmup(self, phy):
        # Stations deactivated before measurement starts must record nothing.
        schedule = step_activity([(0.0, 6), (0.25, 2)])
        simulator = SlottedSimulator(
            standard_80211_scheme(phy), activity=schedule, phy=phy, seed=3
        )
        result = simulator.run(duration=1.0, warmup=0.5)
        assert all(s.successes > 0 for s in result.station_stats[:2])
        assert all(s.payload_bits == 0 for s in result.station_stats[2:])

    def test_joining_station_applies_current_control_values(self, phy):
        # A station activated by the schedule must pick up the controller's
        # *current* advertised control (and a fresh backoff) at the moment it
        # joins — stations that have not joined keep their defaults.
        scheme = wtop_csma_scheme(phy, update_period=50.0, initial_station_p=0.1)
        schedule = step_activity([(0.0, 2), (0.3, 3)])
        simulator = SlottedSimulator(
            scheme, activity=schedule, phy=phy, seed=4, broadcast_control=False
        )
        advertised = simulator.controller.control()["p"]
        assert advertised != pytest.approx(0.1)
        counters = np.zeros(3, dtype=np.int64)
        simulator._handle_activity_change(2, 3, counters)
        assert simulator.policies[2].base_probability == pytest.approx(advertised)
        # Stations that did not join keep the default initial probability.
        assert simulator.policies[0].base_probability == pytest.approx(0.1)
        assert counters[2] >= 0

    def test_joining_station_tracks_controller_end_to_end(self, phy):
        # With broadcast off a station only learns control from its own ACKs
        # or at join time; either way the late joiner must end the run on the
        # controller's advertised probability, not its construction default.
        scheme = wtop_csma_scheme(phy, update_period=50.0, initial_station_p=0.1)
        schedule = step_activity([(0.0, 2), (0.3, 3)])
        simulator = SlottedSimulator(
            scheme, activity=schedule, phy=phy, seed=4, broadcast_control=False
        )
        simulator.run(duration=0.6)
        advertised = simulator.controller.control()["p"]
        assert simulator.policies[2].base_probability == pytest.approx(advertised)
        assert simulator.policies[2].base_probability != pytest.approx(0.1)

    def test_report_samples_cover_interval_straddling_warmup_end(self, phy):
        # Regression: the report countdown used to restart from the full
        # interval at every sample (and at the warmup boundary), so sample
        # times drifted late by one busy slot per sample and the final
        # samples of the run were silently dropped.
        cases = [(0.5, 0.2, 1.0), (0.35, 0.25, 1.0), (0.0, 0.25, 1.0)]
        for warmup, interval, duration in cases:
            result = run_slotted(
                standard_80211_scheme(phy), 10, duration=duration,
                warmup=warmup, phy=phy, seed=1, report_interval=interval,
            )
            times = [t for t, _ in result.throughput_timeline]
            expected = int(duration / interval + 1e-9)
            assert len(times) == expected, (warmup, interval, times)
            # Samples stay anchored to the warmup + k * interval grid
            # (within one busy-slot duration Ts of each grid point).
            for k, time_s in enumerate(times, start=1):
                grid_point = warmup + k * interval
                assert grid_point <= time_s <= grid_point + phy.ts + phy.slot_time


class TestControllerIntegration:
    def test_wtop_controller_receives_updates(self, phy):
        simulator = SlottedSimulator(
            wtop_csma_scheme(phy, update_period=0.02), num_stations=10, phy=phy, seed=1
        )
        simulator.run(duration=1.0)
        assert simulator.controller.updates > 5

    def test_station_policies_follow_advertised_p(self, phy):
        simulator = SlottedSimulator(
            wtop_csma_scheme(phy, update_period=0.02), num_stations=10, phy=phy, seed=1
        )
        simulator.run(duration=0.5)
        advertised = simulator.controller.control()["p"]
        for policy in simulator.policies:
            assert policy.base_probability == pytest.approx(advertised)

    def test_idlesense_achieves_target_idle_slots(self, phy):
        result = run_slotted(idlesense_scheme(phy), num_stations=20,
                             duration=1.5, warmup=1.5, phy=phy, seed=1)
        assert result.average_idle_slots_per_transmission == pytest.approx(3.1, rel=0.35)

    def test_starved_controller_recovers_via_ticks(self, phy):
        # Start wTOP from a absurdly aggressive probability: with 20 stations
        # the channel is jammed by collisions, so only the tick path can close
        # segments and move the probe away.  Throughput must become non-zero.
        scheme = wtop_csma_scheme(phy, update_period=0.02, initial_control=1.0)
        result = run_slotted(scheme, num_stations=20, duration=1.0, warmup=4.0,
                             phy=phy, seed=2)
        assert result.total_throughput_mbps > 5.0
