"""Tests for the slotted (fully connected) simulator."""

import numpy as np
import pytest

from repro.analysis.bianchi import dcf_saturation_throughput
from repro.analysis.persistent import (
    optimal_attempt_probability,
    system_throughput_weighted,
)
from repro.core.controller import AccessPointController
from repro.mac.schemes import (
    Scheme,
    fixed_p_persistent_scheme,
    idlesense_scheme,
    standard_80211_scheme,
    wtop_csma_scheme,
)
from repro.phy.constants import PhyParameters
from repro.sim.dynamics import step_activity
from repro.sim.slotted import SlottedSimulator, run_slotted


class TestAgainstAnalyticalModels:
    def test_standard_80211_matches_bianchi(self, phy):
        for n in (5, 20):
            result = run_slotted(
                standard_80211_scheme(phy), num_stations=n,
                duration=1.5, warmup=0.3, phy=phy, seed=1,
            )
            expected = dcf_saturation_throughput(n, phy)
            assert result.total_throughput_bps == pytest.approx(expected, rel=0.08)

    def test_p_persistent_matches_eq3(self, phy):
        n, p = 15, 0.02
        result = run_slotted(
            fixed_p_persistent_scheme(p), num_stations=n,
            duration=1.5, warmup=0.3, phy=phy, seed=2,
        )
        expected = system_throughput_weighted(p, [1.0] * n, phy)
        assert result.total_throughput_bps == pytest.approx(expected, rel=0.08)

    def test_throughput_unimodal_in_p(self, phy):
        # Coarse simulated version of Figure 2's bell shape.
        n = 20
        ps = [0.001, 0.005, 0.02, 0.1, 0.4]
        values = [
            run_slotted(fixed_p_persistent_scheme(p), num_stations=n,
                        duration=0.6, warmup=0.2, phy=phy, seed=3).total_throughput_bps
            for p in ps
        ]
        peak = int(np.argmax(values))
        assert 0 < peak < len(ps) - 1
        assert values[peak] > values[0] and values[peak] > values[-1]

    def test_optimal_p_beats_standard_80211(self, phy):
        n = 40
        p_star = optimal_attempt_probability(n, phy)
        optimal = run_slotted(fixed_p_persistent_scheme(p_star), num_stations=n,
                              duration=1.0, warmup=0.3, phy=phy, seed=4)
        standard = run_slotted(standard_80211_scheme(phy), num_stations=n,
                               duration=1.0, warmup=0.3, phy=phy, seed=4)
        assert optimal.total_throughput_bps > standard.total_throughput_bps


class TestMechanics:
    def test_reproducible_with_same_seed(self, phy):
        a = run_slotted(standard_80211_scheme(phy), 10, duration=0.5, warmup=0.1,
                        phy=phy, seed=7)
        b = run_slotted(standard_80211_scheme(phy), 10, duration=0.5, warmup=0.1,
                        phy=phy, seed=7)
        assert a.total_throughput_bps == b.total_throughput_bps
        assert a.per_station_throughput_bps == b.per_station_throughput_bps

    def test_different_seeds_differ(self, phy):
        a = run_slotted(standard_80211_scheme(phy), 10, duration=0.5, phy=phy, seed=1)
        b = run_slotted(standard_80211_scheme(phy), 10, duration=0.5, phy=phy, seed=2)
        assert a.total_throughput_bps != b.total_throughput_bps

    def test_single_station_never_collides(self, phy):
        result = run_slotted(standard_80211_scheme(phy), 1, duration=0.5, phy=phy, seed=1)
        assert result.total_failures == 0
        assert result.total_throughput_bps > 0

    def test_metrics_exclude_warmup(self, phy):
        long_warmup = run_slotted(standard_80211_scheme(phy), 10,
                                  duration=0.5, warmup=1.0, phy=phy, seed=5)
        # Throughput is a rate, so it should be in the same ballpark with and
        # without warm-up, not double.
        no_warmup = run_slotted(standard_80211_scheme(phy), 10,
                                duration=0.5, warmup=0.0, phy=phy, seed=5)
        assert long_warmup.total_throughput_bps == pytest.approx(
            no_warmup.total_throughput_bps, rel=0.15
        )

    def test_result_metadata(self, phy):
        result = run_slotted(standard_80211_scheme(phy), 5, duration=0.2, phy=phy, seed=1)
        assert result.extra["simulator"] == "slotted"
        assert result.extra["num_stations"] == 5
        assert result.duration == pytest.approx(0.2)

    def test_idle_slot_accounting_positive(self, phy):
        result = run_slotted(standard_80211_scheme(phy), 5, duration=0.3, phy=phy, seed=1)
        assert result.idle_slots > 0
        assert result.busy_periods > 0

    def test_rejects_invalid_arguments(self, phy):
        simulator = SlottedSimulator(standard_80211_scheme(phy), num_stations=3, phy=phy)
        with pytest.raises(ValueError):
            simulator.run(duration=0.0)
        with pytest.raises(ValueError):
            simulator.run(duration=1.0, warmup=-1.0)
        with pytest.raises(ValueError):
            SlottedSimulator(standard_80211_scheme(phy))
        with pytest.raises(ValueError):
            SlottedSimulator(standard_80211_scheme(phy), num_stations=3,
                             report_interval=0.0)


class TestDynamicActivity:
    def test_only_active_stations_get_throughput(self, phy):
        schedule = step_activity([(0.0, 2), (0.5, 4)])
        simulator = SlottedSimulator(
            standard_80211_scheme(phy), activity=schedule, phy=phy, seed=3
        )
        result = simulator.run(duration=1.0)
        # Stations 2 and 3 joined halfway: they must have received service
        # after joining but strictly less than stations 0 and 1 overall.
        assert result.station_stats[2].successes > 0
        assert result.station_stats[0].payload_bits > result.station_stats[2].payload_bits

    def test_timeline_sampling(self, phy):
        simulator = SlottedSimulator(
            wtop_csma_scheme(phy, update_period=0.05), num_stations=5, phy=phy,
            seed=1, report_interval=0.1,
        )
        result = simulator.run(duration=1.0)
        assert len(result.throughput_timeline) >= 8
        assert len(result.control_timeline) >= 8
        times = [t for t, _ in result.throughput_timeline]
        assert times == sorted(times)

    def test_activity_schedule_larger_than_stations_rejected(self, phy):
        schedule = step_activity([(0.0, 5)])
        with pytest.raises(ValueError):
            SlottedSimulator(standard_80211_scheme(phy), num_stations=3,
                             phy=phy, activity=schedule)


class TestControllerIntegration:
    def test_wtop_controller_receives_updates(self, phy):
        simulator = SlottedSimulator(
            wtop_csma_scheme(phy, update_period=0.02), num_stations=10, phy=phy, seed=1
        )
        simulator.run(duration=1.0)
        assert simulator.controller.updates > 5

    def test_station_policies_follow_advertised_p(self, phy):
        simulator = SlottedSimulator(
            wtop_csma_scheme(phy, update_period=0.02), num_stations=10, phy=phy, seed=1
        )
        simulator.run(duration=0.5)
        advertised = simulator.controller.control()["p"]
        for policy in simulator.policies:
            assert policy.base_probability == pytest.approx(advertised)

    def test_idlesense_achieves_target_idle_slots(self, phy):
        result = run_slotted(idlesense_scheme(phy), num_stations=20,
                             duration=1.5, warmup=1.5, phy=phy, seed=1)
        assert result.average_idle_slots_per_transmission == pytest.approx(3.1, rel=0.35)

    def test_starved_controller_recovers_via_ticks(self, phy):
        # Start wTOP from a absurdly aggressive probability: with 20 stations
        # the channel is jammed by collisions, so only the tick path can close
        # segments and move the probe away.  Throughput must become non-zero.
        scheme = wtop_csma_scheme(phy, update_period=0.02, initial_control=1.0)
        result = run_slotted(scheme, num_stations=20, duration=1.0, warmup=4.0,
                             phy=phy, seed=2)
        assert result.total_throughput_mbps > 5.0
