"""Tests for the vectorized batched slotted simulator.

The load-bearing guarantees:

* per-cell results are bit-identical whether a cell runs alone or inside any
  batch (composition independence — the planner relies on it);
* batched results agree statistically with the scalar slotted simulator for
  all four paper schemes (they share the renewal model but consume their
  random streams in a different order);
* the batched simulator honours frame errors, activity schedules (including
  population changes during the warm-up) and timeline sampling exactly like
  the scalar simulator does.
"""

import numpy as np
import pytest

from repro.analysis.persistent import system_throughput_weighted
from repro.mac.schemes import (
    fixed_p_persistent_scheme,
    standard_80211_scheme,
)
from repro.sim.batched import (
    BATCHABLE_SCHEME_KINDS,
    CellStreams,
    batchable_scheme,
    make_batched_system,
    run_batched,
)
from repro.sim.slotted import run_slotted

#: The four paper schemes with the warm-up each needs before steady state.
PAPER_SCHEMES = [
    ("standard-802.11", {}, 0.3),
    ("idlesense", {}, 2.0),
    ("wtop-csma", {"update_period": 0.05}, 2.0),
    ("tora-csma", {"update_period": 0.05}, 2.0),
]


def _scalar_scheme(kind, params, phy):
    from repro.experiments.campaign import SchemeSpec

    return SchemeSpec.make(kind, **params).build(phy)


class TestCrossValidationAgainstSlotted:
    @pytest.mark.parametrize("num_stations", [2, 8])
    @pytest.mark.parametrize("kind, params, warmup", PAPER_SCHEMES)
    def test_paper_schemes_match_slotted(self, phy, kind, params, warmup,
                                         num_stations):
        """Seeded sweep over all four schemes at N in {2, 8}.

        The two simulators draw identically distributed randomness through
        different stream orders, so this is a statistical comparison: the
        8% band matches the slotted-vs-event cross-validation tolerance.
        """
        slotted = run_slotted(
            _scalar_scheme(kind, params, phy), num_stations,
            duration=1.0, warmup=warmup, phy=phy, seed=3,
        )
        [batched] = run_batched(
            kind, params, [num_stations], [3],
            duration=1.0, warmup=warmup, phy=phy,
        )
        assert batched.total_throughput_bps == pytest.approx(
            slotted.total_throughput_bps, rel=0.08
        )

    def test_fixed_p_matches_eq3_and_slotted(self, phy):
        n, p = 10, 0.02
        analytic = system_throughput_weighted(p, [1.0] * n, phy)
        slotted = run_slotted(fixed_p_persistent_scheme(p), n,
                              duration=1.0, warmup=0.2, phy=phy, seed=4)
        [batched] = run_batched("fixed-p", {"p": p}, [n], [4],
                                duration=1.0, warmup=0.2, phy=phy)
        assert batched.total_throughput_bps == pytest.approx(analytic, rel=0.10)
        assert batched.total_throughput_bps == pytest.approx(
            slotted.total_throughput_bps, rel=0.10
        )

    def test_fixed_randomreset_matches_slotted(self, phy):
        from repro.mac.schemes import fixed_randomreset_scheme

        slotted = run_slotted(fixed_randomreset_scheme(1, 0.5, phy), 10,
                              duration=1.0, warmup=0.2, phy=phy, seed=5)
        [batched] = run_batched("fixed-randomreset", {"stage": 1, "p0": 0.5},
                                [10], [5], duration=1.0, warmup=0.2, phy=phy)
        assert batched.total_throughput_bps == pytest.approx(
            slotted.total_throughput_bps, rel=0.10
        )

    def test_per_station_fairness(self, phy):
        # Long-term fairness check on the memoryless policy (DCF's capture
        # effect makes it short-term unfair by design, as in the scalar
        # simulator's fairness test).
        [result] = run_batched("fixed-p", {"p": 0.03}, [8], [6], duration=1.5,
                               warmup=0.2, phy=phy)
        throughputs = result.per_station_throughput_bps
        mean = sum(throughputs) / len(throughputs)
        assert all(abs(t - mean) / mean < 0.35 for t in throughputs)


class TestCompositionIndependence:
    @pytest.mark.parametrize("kind, params, warmup", PAPER_SCHEMES)
    def test_cell_results_do_not_depend_on_batch_neighbours(self, phy, kind,
                                                            params, warmup):
        [alone] = run_batched(kind, params, [8], [42], duration=0.4,
                              warmup=warmup, phy=phy)
        batch = run_batched(kind, params, [20, 8, 3], [7, 42, 9],
                            duration=0.4, warmup=warmup, phy=phy)
        assert batch[1] == alone

    def test_batch_is_deterministic(self, phy):
        first = run_batched("wtop-csma", {"update_period": 0.05}, [5, 10],
                            [1, 2], duration=0.4, warmup=0.5, phy=phy)
        second = run_batched("wtop-csma", {"update_period": 0.05}, [5, 10],
                            [1, 2], duration=0.4, warmup=0.5, phy=phy)
        assert first == second

    def test_different_seeds_differ(self, phy):
        a, b = run_batched("standard-802.11", {}, [10, 10], [1, 2],
                           duration=0.4, warmup=0.1, phy=phy)
        assert a.total_throughput_bps != b.total_throughput_bps

    def test_large_cells_independent_of_wider_neighbours(self, phy):
        """Regression: stream block sizes must derive from each cell's own
        station count, not the batch-wide padded width — otherwise refill
        points (and results) shift when a wider cell joins the batch."""
        [alone] = run_batched("standard-802.11", {}, [600], [7],
                              duration=0.2, warmup=0.0, phy=phy)
        batch = run_batched("standard-802.11", {}, [1200, 600], [1, 7],
                            duration=0.2, warmup=0.0, phy=phy)
        assert batch[1] == alone

    def test_multi_draw_cells_independent_of_wider_neighbours(self, phy):
        # Same regression for a 3-draw scheme, whose blocks outgrow the
        # 4096 floor at a much smaller station count.
        [alone] = run_batched("fixed-randomreset", {"stage": 0, "p0": 0.5},
                              [200], [7], duration=0.2, warmup=0.0, phy=phy)
        batch = run_batched("fixed-randomreset", {"stage": 0, "p0": 0.5},
                            [400, 200], [1, 7], duration=0.2, warmup=0.0,
                            phy=phy)
        assert batch[1] == alone


class TestMechanics:
    def test_single_station_never_collides(self, phy):
        [result] = run_batched("standard-802.11", {}, [1], [3],
                               duration=0.4, warmup=0.0, phy=phy)
        assert result.total_failures == 0
        assert result.total_successes > 0

    def test_metrics_exclude_warmup(self, phy):
        [warm] = run_batched("standard-802.11", {}, [10], [5],
                             duration=0.5, warmup=1.0, phy=phy)
        [cold] = run_batched("standard-802.11", {}, [10], [5],
                             duration=0.5, warmup=0.0, phy=phy)
        assert warm.total_throughput_bps == pytest.approx(
            cold.total_throughput_bps, rel=0.15
        )

    def test_frame_errors_reduce_throughput_and_count_as_failures(self, phy):
        [clean] = run_batched("fixed-p", {"p": 0.05}, [5], [7],
                              duration=0.8, warmup=0.1, phy=phy)
        [noisy] = run_batched("fixed-p", {"p": 0.05}, [5], [7],
                              duration=0.8, warmup=0.1, phy=phy,
                              frame_error_rate=0.3)
        assert noisy.total_throughput_bps < clean.total_throughput_bps
        assert noisy.total_failures > clean.total_failures

    def test_result_metadata(self, phy):
        [result] = run_batched("idlesense", {}, [6], [1], duration=0.5,
                               warmup=0.4, phy=phy)
        assert result.extra["simulator"] == "batched"
        assert result.extra["num_stations"] == 6
        assert result.extra["warmup"] == 0.4
        assert result.extra["scheme"] == "IdleSense"
        assert result.extra["station_observed_idle"] > 0
        assert result.num_stations == 6

    def test_idle_slot_accounting_positive(self, phy):
        [result] = run_batched("standard-802.11", {}, [10], [2],
                               duration=0.5, warmup=0.0, phy=phy)
        assert result.idle_slots > 0
        assert result.busy_periods > 0
        assert result.average_idle_slots_per_transmission > 0

    def test_heterogeneous_station_counts_padded_correctly(self, phy):
        results = run_batched("standard-802.11", {}, [3, 12], [1, 1],
                              duration=0.5, warmup=0.1, phy=phy)
        assert results[0].num_stations == 3
        assert results[1].num_stations == 12
        # No phantom traffic from padded stations.
        assert all(s.successes >= 0 for s in results[1].station_stats)
        assert results[0].total_successes > 0

    def test_rejects_invalid_arguments(self, phy):
        with pytest.raises(ValueError):
            run_batched("standard-802.11", {}, [5], [1], duration=0.0, phy=phy)
        with pytest.raises(ValueError):
            run_batched("standard-802.11", {}, [5], [1], duration=1.0,
                        warmup=-0.1, phy=phy)
        with pytest.raises(ValueError):
            run_batched("standard-802.11", {}, [5], [1, 2], duration=1.0,
                        phy=phy)
        with pytest.raises(ValueError):
            run_batched("standard-802.11", {}, [0], [1], duration=1.0, phy=phy)
        with pytest.raises(ValueError):
            run_batched("standard-802.11", {}, [5], [1], duration=1.0,
                        frame_error_rate=1.0, phy=phy)

    def test_unknown_scheme_kind_rejected(self, phy):
        with pytest.raises(ValueError):
            run_batched("n-estimating", {}, [5], [1], duration=1.0, phy=phy)

    def test_batchable_scheme_vocabulary(self):
        assert "standard-802.11" in BATCHABLE_SCHEME_KINDS
        assert batchable_scheme("wtop-csma", {"update_period": 0.05})
        assert not batchable_scheme("n-estimating", {})
        assert not batchable_scheme("wtop-csma", {"mapping": object()})

    def test_make_batched_system_names_match_scalar_schemes(self, phy):
        for kind, params, expected in [
            ("standard-802.11", {}, "Standard 802.11"),
            ("idlesense", {}, "IdleSense"),
            ("wtop-csma", {}, "wTOP-CSMA"),
            ("tora-csma", {}, "TORA-CSMA"),
            ("fixed-p", {"p": 0.05}, "p-persistent(p=0.05)"),
            ("fixed-randomreset", {"stage": 1, "p0": 0.5},
             "RandomReset(j=1, p0=0.5)"),
        ]:
            _, _, name = make_batched_system(kind, params, 2, 4, phy)
            assert name == expected
            assert _scalar_scheme(kind, params, phy).name == name


class TestDynamicActivity:
    def test_only_active_stations_get_throughput(self, phy):
        [result] = run_batched(
            "standard-802.11", {}, [4], [3], duration=1.0, warmup=0.0,
            phy=phy, activity=_schedule([(0.0, 2), (0.5, 4)]),
        )
        first_two = sum(s.payload_bits for s in result.station_stats[:2])
        last_two = sum(s.payload_bits for s in result.station_stats[2:])
        assert first_two > last_two > 0

    def test_population_change_during_warmup(self, phy):
        """Satellite case: the schedule steps while metrics are discarded.

        Stations that join mid-warmup must contend (and be measured) after
        the boundary, and a population that shrinks back before measurement
        must leave the silent stations without recorded traffic.
        """
        [grew] = run_batched(
            "standard-802.11", {}, [6], [3], duration=1.0, warmup=0.5,
            phy=phy, activity=_schedule([(0.0, 2), (0.25, 6)]),
        )
        # All six stations were active for the whole measured window.
        assert all(s.successes > 0 for s in grew.station_stats)

        [shrank] = run_batched(
            "standard-802.11", {}, [6], [3], duration=1.0, warmup=0.5,
            phy=phy, activity=_schedule([(0.0, 6), (0.25, 2)]),
        )
        assert all(s.successes > 0 for s in shrank.station_stats[:2])
        assert all(s.payload_bits == 0 for s in shrank.station_stats[2:])

    def test_mid_warmup_change_matches_slotted(self, phy):
        schedule = [(0.0, 2), (0.3, 8)]
        slotted = run_slotted(
            standard_80211_scheme(phy), 8, duration=1.0, warmup=0.6,
            phy=phy, seed=3, activity=_schedule(schedule),
        )
        [batched] = run_batched(
            "standard-802.11", {}, [8], [3], duration=1.0, warmup=0.6,
            phy=phy, activity=_schedule(schedule),
        )
        assert batched.total_throughput_bps == pytest.approx(
            slotted.total_throughput_bps, rel=0.10
        )

    def test_schedule_larger_than_stations_rejected(self, phy):
        with pytest.raises(ValueError):
            run_batched("standard-802.11", {}, [3], [1], duration=1.0,
                        phy=phy, activity=_schedule([(0.0, 5)]))

    def test_cells_cross_breakpoints_at_their_own_pace(self, phy):
        """Cells reach breakpoint times at different wall clocks; the batch
        must apply each cell's change when *its* clock crosses it."""
        schedule = _schedule([(0.0, 2), (0.4, 5)])
        batch = run_batched("standard-802.11", {}, [5, 5], [1, 2],
                            duration=1.0, warmup=0.0, phy=phy,
                            activity=schedule)
        for result in batch:
            assert all(s.successes > 0 for s in result.station_stats)


class TestTimelineSampling:
    def test_sample_grid_matches_slotted(self, phy):
        duration, warmup, interval = 1.0, 0.4, 0.1
        slotted = run_slotted(
            standard_80211_scheme(phy), 6, duration=duration, warmup=warmup,
            phy=phy, seed=2, report_interval=interval,
        )
        [batched] = run_batched(
            "standard-802.11", {}, [6], [2], duration=duration, warmup=warmup,
            phy=phy, report_interval=interval,
        )
        assert len(batched.throughput_timeline) == len(slotted.throughput_timeline)
        for (bt, _), (st, _) in zip(batched.throughput_timeline,
                                    slotted.throughput_timeline):
            assert bt == pytest.approx(st, abs=2 * phy.ts)

    def test_control_timeline_present_for_adaptive_schemes(self, phy):
        [wtop] = run_batched(
            "wtop-csma", {"update_period": 0.05}, [6], [2],
            duration=0.6, warmup=0.2, phy=phy, report_interval=0.1,
        )
        assert len(wtop.control_timeline) == len(wtop.throughput_timeline)
        assert all(0.0 < p <= 0.9 for _, p in wtop.control_timeline)

        [dcf] = run_batched(
            "standard-802.11", {}, [6], [2],
            duration=0.6, warmup=0.2, phy=phy, report_interval=0.1,
        )
        assert dcf.control_timeline == ()
        assert len(dcf.throughput_timeline) > 0

    def test_timeline_sums_to_total_throughput(self, phy):
        [result] = run_batched(
            "standard-802.11", {}, [6], [2], duration=1.0, warmup=0.0,
            phy=phy, report_interval=0.25,
        )
        sampled_bits = sum(v * 0.25 for _, v in result.throughput_timeline)
        total_bits = result.total_throughput_bps * result.duration
        assert sampled_bits == pytest.approx(total_bits, rel=0.3)


class TestCellStreams:
    def test_claims_are_per_cell_independent(self):
        a = CellStreams([1, 2], block=64)
        b = CellStreams([1], block=64)
        counts_a = np.array([3, 5], dtype=np.int64)
        base_a = a.claim(counts_a)
        base_b = b.claim(np.array([3], dtype=np.int64))
        assert np.allclose(
            a.gather(np.array([0, 0, 0]), base_a[0] + np.arange(3), 1)[:, 0],
            b.gather(np.array([0, 0, 0]), base_b[0] + np.arange(3), 1)[:, 0],
        )

    def test_refill_depends_only_on_own_consumption(self):
        heavy = CellStreams([7, 8], block=16)
        light = CellStreams([7], block=16)
        # Drain cell 0 identically in both; cell 1's draws must not matter.
        for counts_heavy, counts_light in [
            (np.array([10, 3]), np.array([10])),
            (np.array([10, 14]), np.array([10])),  # both refill cell 0
            (np.array([5, 2]), np.array([5])),
        ]:
            base_h = heavy.claim(counts_heavy.astype(np.int64))
            base_l = light.claim(counts_light.astype(np.int64))
            n = counts_light[0]
            got_h = heavy.gather(np.zeros(n, dtype=int),
                                 base_h[0] + np.arange(n), 1)
            got_l = light.gather(np.zeros(n, dtype=int),
                                 base_l[0] + np.arange(n), 1)
            assert np.array_equal(got_h, got_l)

    def test_oversized_claim_rejected(self):
        streams = CellStreams([1], block=8)
        with pytest.raises(ValueError):
            streams.claim(np.array([9], dtype=np.int64))


def _schedule(steps):
    from repro.sim.dynamics import step_activity

    return step_activity(steps)
