"""Unit tests for the station MAC state machine (event-driven simulator).

These tests build a tiny simulation by hand (scheduler + medium + one or two
stations + a fake access point) so individual state transitions can be
asserted without running a full WlanSimulation.
"""

import numpy as np
import pytest

from repro.mac.backoff import FixedWindowBackoff, PPersistentBackoff
from repro.mac.idlesense import IdleSenseBackoff
from repro.phy.constants import PhyParameters
from repro.phy.frame import FrameFactory
from repro.sim.engine import EventScheduler
from repro.sim.medium import AP_NODE_ID, Medium
from repro.sim.node import StationProcess, StationState


class FakeAccessPoint:
    """Records transmission-end callbacks; outcome delivery is manual."""

    def __init__(self):
        self.ended = []

    def on_transmission_end(self, station_id, transmission, now_ns):
        self.ended.append((station_id, transmission, now_ns))


def build(num_stations=1, sensing=None, policy_factory=None, phy=None):
    phy = phy or PhyParameters()
    scheduler = EventScheduler()
    sensing = sensing or [set(range(num_stations)) for _ in range(num_stations)]
    medium = Medium(scheduler, [set(s) for s in sensing])
    frames = FrameFactory(phy)
    ap = FakeAccessPoint()
    stations = []
    for station_id in range(num_stations):
        policy = (policy_factory(station_id) if policy_factory
                  else FixedWindowBackoff(window=4))
        station = StationProcess(
            station_id=station_id,
            policy=policy,
            scheduler=scheduler,
            medium=medium,
            frame_factory=frames,
            phy=phy,
            rng=np.random.default_rng(station_id + 1),
            on_transmission_end=ap.on_transmission_end,
        )
        stations.append(station)
    return phy, scheduler, medium, ap, stations


class TestBasicLifecycle:
    def test_station_transmits_after_difs_and_backoff(self):
        phy, scheduler, medium, ap, (station,) = build()
        station.activate()
        assert station.state in (StationState.WAITING_DIFS, StationState.COUNTING)
        # Upper bound: DIFS + (window-1) slots + data airtime.
        horizon = phy.difs_ns + 4 * phy.slot_time_ns + phy.data_tx_time_ns + 1000
        scheduler.run_until(horizon)
        assert len(ap.ended) == 1
        station_id, transmission, _ = ap.ended[0]
        assert station_id == 0
        assert not transmission.corrupted

    def test_inactive_station_never_transmits(self):
        phy, scheduler, medium, ap, (station,) = build()
        scheduler.run_until(10_000_000)
        assert ap.ended == []
        assert station.state is StationState.INACTIVE

    def test_outcome_delivery_success_draws_new_backoff(self):
        phy, scheduler, medium, ap, (station,) = build()
        station.activate()
        scheduler.run_until(phy.difs_ns + 4 * phy.slot_time_ns + phy.data_tx_time_ns + 1000)
        assert station.state is StationState.AWAITING_OUTCOME
        station.deliver_success({})
        assert station.successes == 1
        assert station.state in (StationState.WAITING_DIFS, StationState.COUNTING,
                                 StationState.DEFERRING)

    def test_outcome_delivery_failure_counts_failure(self):
        phy, scheduler, medium, ap, (station,) = build()
        station.activate()
        scheduler.run_until(phy.difs_ns + 4 * phy.slot_time_ns + phy.data_tx_time_ns + 1000)
        station.deliver_failure()
        assert station.failures == 1

    def test_saturated_station_keeps_transmitting(self):
        phy, scheduler, medium, ap, (station,) = build()
        station.activate()
        # Run for a while, delivering success at every transmission end.
        end = 20 * (phy.difs_ns + 4 * phy.slot_time_ns + phy.data_tx_time_ns)
        last_seen = 0
        while scheduler.now_ns < end:
            scheduler.run_until(min(scheduler.now_ns + phy.data_tx_time_ns, end))
            while last_seen < len(ap.ended):
                station.deliver_success({})
                last_seen += 1
        assert station.successes >= 5

    def test_deactivate_cancels_pending_transmission(self):
        phy, scheduler, medium, ap, (station,) = build()
        station.activate()
        station.deactivate()
        scheduler.run_until(10_000_000)
        assert ap.ended == []


class TestCarrierSenseBehaviour:
    def test_station_defers_while_other_transmits(self):
        phy, scheduler, medium, ap, stations = build(
            num_stations=2,
            policy_factory=lambda i: FixedWindowBackoff(window=1 if i == 0 else 64),
        )
        # Station 0 transmits almost immediately; station 1 has a long backoff
        # and must freeze while 0 is on the air.
        stations[0].activate()
        stations[1].activate()
        scheduler.run_until(phy.difs_ns + phy.slot_time_ns)
        assert stations[0].state is StationState.TRANSMITTING
        assert stations[1].state is StationState.DEFERRING

    def test_hidden_stations_do_not_defer(self):
        phy, scheduler, medium, ap, stations = build(
            num_stations=2,
            sensing=[{0}, {1}],
            policy_factory=lambda i: FixedWindowBackoff(window=1),
        )
        stations[0].activate()
        stations[1].activate()
        scheduler.run_until(phy.difs_ns + 2 * phy.slot_time_ns)
        # Both are on the air simultaneously because neither senses the other.
        assert stations[0].state is StationState.TRANSMITTING
        assert stations[1].state is StationState.TRANSMITTING
        scheduler.run_until(phy.difs_ns + 2 * phy.slot_time_ns + phy.data_tx_time_ns)
        assert all(tx.corrupted for _, tx, _ in ap.ended)

    def test_same_slot_choices_collide_when_connected(self):
        phy, scheduler, medium, ap, stations = build(
            num_stations=2,
            policy_factory=lambda i: FixedWindowBackoff(window=1),
        )
        for station in stations:
            station.activate()
        scheduler.run_until(phy.difs_ns + phy.slot_time_ns + phy.data_tx_time_ns + 1000)
        assert len(ap.ended) == 2
        assert all(tx.corrupted for _, tx, _ in ap.ended)

    def test_frozen_backoff_resumes_with_remaining_slots(self):
        phy, scheduler, medium, ap, stations = build(
            num_stations=2,
            policy_factory=lambda i: FixedWindowBackoff(window=1 if i == 0 else 8),
        )
        stations[0].activate()
        stations[1].activate()
        # Let station 0 transmit and finish.  Its outcome is deliberately not
        # delivered, so it stays silent (AWAITING_OUTCOME) and station 1 gets
        # the channel to itself afterwards.
        scheduler.run_until(phy.difs_ns + phy.slot_time_ns + phy.data_tx_time_ns + 1)
        remaining_after_freeze = stations[1].remaining_slots
        assert 0 <= remaining_after_freeze < 8
        # Station 1 eventually transmits too.
        scheduler.run_until(scheduler.now_ns + phy.difs_ns
                            + 10 * phy.slot_time_ns + phy.data_tx_time_ns + 1000)
        assert any(station_id == 1 for station_id, _, _ in ap.ended)


class TestControlAndObservation:
    def test_overheard_ack_updates_policy(self):
        phy, scheduler, medium, ap, (station,) = build(
            policy_factory=lambda i: PPersistentBackoff(p=0.1)
        )
        station.activate()
        station.overhear_ack({"p": 0.03})
        assert station.policy.base_probability == pytest.approx(0.03)

    def test_success_control_applied_before_new_backoff(self):
        phy, scheduler, medium, ap, (station,) = build(
            policy_factory=lambda i: PPersistentBackoff(p=0.1)
        )
        station.activate()
        scheduler.run_until(phy.difs_ns + 200 * phy.slot_time_ns + phy.data_tx_time_ns)
        if station.state is StationState.AWAITING_OUTCOME:
            station.deliver_success({"p": 0.5})
            assert station.policy.base_probability == pytest.approx(0.5)

    def test_idlesense_station_observes_other_transmissions(self):
        phy, scheduler, medium, ap, stations = build(
            num_stations=2,
            policy_factory=lambda i: (FixedWindowBackoff(window=1) if i == 0
                                      else IdleSenseBackoff(PhyParameters())),
        )
        stations[0].activate()
        stations[1].activate()
        scheduler.run_until(phy.difs_ns + phy.slot_time_ns + 100)
        observer = stations[1].policy
        assert observer.observed_average_idle_slots() is not None
