"""Cross-backend differential harness for unsaturated & bursty workloads.

The same arrival spec is run through every backend that models a topology
family and the backends must agree:

* **connected** — scalar slotted, event-driven and batched renewal-slot
  (three independent implementations of the same MAC + queue semantics);
* **hidden-disc** — event-driven and batched conflict-matrix.

Throughput must agree within the repository's established 8 % cross-
simulator envelope (with a small absolute floor for near-zero cells) at
three operating points: **low** (0.3x saturation — throughput equals
offered load), **critical** (1.0x — the queueing knee) and **overload**
(1.8x — saturated service, drops absorb the excess).  Queueing delay gets a
wider envelope: near the knee the mean delay amplifies small service-rate
differences by roughly 1 / (1 - rho), so an 8 %-tight delay bound would
reject statistically-equivalent backends; 35 % relative (floored at a few
milliseconds) is what the backends achieve with margin while still
catching any semantic divergence (a lost queue, a stuck station, a wrong
delay clock).  Drop rates are compared absolutely.

Scheme choice per family: the connected family runs DCF, IdleSense and
wTOP-CSMA.  The hidden family swaps IdleSense for fixed-p: IdleSense on a
hidden pair under moderate load is *bistable* (the pair either escapes its
collision livelock or collapses to sub-Mbps, seed-dependently, on every
backend — see the saturated conflict cross-validation's absolute floor for
the same pathology), so per-seed differential assertions are meaningless
for that cell; the campaign-level load sweep still exercises it.
"""

import numpy as np
import pytest

from repro.experiments.campaign import (
    ArrivalProcess,
    RunTask,
    SchemeSpec,
    TopologySpec,
    execute_task,
)
from repro.traffic import saturation_frame_rate

#: Offered-load multipliers covering the three qualitative regimes.
LOAD_POINTS = {"low": 0.3, "critical": 1.0, "overload": 1.8}

#: Relative throughput envelope (matches the saturated cross-validation).
THROUGHPUT_REL = 0.08
#: Absolute throughput floor (bps) for collapsed / near-zero cells.
THROUGHPUT_ABS = 0.4e6
#: Delay envelope: relative part and absolute floor (seconds).
DELAY_REL = 0.35
DELAY_ABS = 4e-3
#: Absolute drop-rate envelope.
DROP_ABS = 0.08

CONNECTED_SCHEMES = [
    ("standard-802.11", {}),
    ("idlesense", {}),
    ("wtop-csma", {"update_period": 0.05}),
]

HIDDEN_SCHEMES = [
    ("standard-802.11", {}),
    ("fixed-p", {"p": 0.05}),
    ("wtop-csma", {"update_period": 0.05}),
]

NUM_STATIONS = 6
DURATION = 1.5
SEED = 3
TOPOLOGY_SEED = 11


def _task(spec, topology, simulator, traffic, phy):
    warmup = 2.0 if spec.adaptive else 0.3
    return RunTask(
        scheme=spec,
        topology=topology,
        seed=SEED,
        duration=DURATION,
        warmup=warmup,
        simulator=simulator,
        traffic=traffic,
        phy=phy,
    )


def _traffic_for(load, phy):
    rate = load * saturation_frame_rate(phy) / NUM_STATIONS
    return ArrivalProcess.poisson(rate)


def _assert_agreement(results, context):
    throughputs = [r.total_throughput_bps for r in results.values()]
    delays = [r.mean_queue_delay_s for r in results.values()]
    drops = [r.drop_rate for r in results.values()]

    ref_thr = max(throughputs)
    spread = ref_thr - min(throughputs)
    assert spread <= max(THROUGHPUT_REL * ref_thr, THROUGHPUT_ABS), (
        f"{context}: throughput disagreement {dict((k, v.total_throughput_bps) for k, v in results.items())}"
    )
    ref_delay = max(delays)
    assert ref_delay - min(delays) <= max(DELAY_REL * ref_delay, DELAY_ABS), (
        f"{context}: delay disagreement {dict((k, v.mean_queue_delay_s) for k, v in results.items())}"
    )
    assert max(drops) - min(drops) <= DROP_ABS, (
        f"{context}: drop-rate disagreement {dict((k, v.drop_rate) for k, v in results.items())}"
    )


class TestConnectedDifferential:
    """Slotted vs event-driven vs batched on fully connected cells."""

    @pytest.mark.parametrize("regime", sorted(LOAD_POINTS))
    @pytest.mark.parametrize("scheme_kind, scheme_params", CONNECTED_SCHEMES)
    def test_backends_agree(self, phy, scheme_kind, scheme_params, regime):
        spec = SchemeSpec.make(scheme_kind, **scheme_params)
        traffic = _traffic_for(LOAD_POINTS[regime], phy)
        topology = TopologySpec.connected(NUM_STATIONS)
        results = {
            simulator: execute_task(
                _task(spec, topology, simulator, traffic, phy)
            )
            for simulator in ("slotted", "event", "batched")
        }
        for simulator, result in results.items():
            assert result.extra["traffic"] == "poisson", simulator
        _assert_agreement(results, f"{scheme_kind}/{regime}/connected")

    def test_low_load_throughput_equals_offered_load(self, phy):
        """At 0.3x saturation every backend must deliver the offered load."""
        traffic = _traffic_for(LOAD_POINTS["low"], phy)
        offered_bps = (NUM_STATIONS * traffic.mean_rate_fps
                       * phy.payload_bits)
        spec = SchemeSpec.make("standard-802.11")
        topology = TopologySpec.connected(NUM_STATIONS)
        for simulator in ("slotted", "event", "batched"):
            result = execute_task(_task(spec, topology, simulator, traffic, phy))
            assert result.drop_rate < 0.01, simulator
            assert result.total_throughput_bps == pytest.approx(
                offered_bps, rel=0.10
            ), simulator


class TestHiddenDifferential:
    """Event-driven oracle vs batched conflict-matrix on hidden-node cells."""

    @pytest.fixture(scope="class")
    def hidden_topology(self):
        topology = TopologySpec.hidden_disc(NUM_STATIONS, 16.0, TOPOLOGY_SEED)
        assert len(topology.build().hidden_pairs()) > 0
        return topology

    @pytest.mark.parametrize("regime", sorted(LOAD_POINTS))
    @pytest.mark.parametrize("scheme_kind, scheme_params", HIDDEN_SCHEMES)
    def test_backends_agree(self, phy, hidden_topology, scheme_kind,
                            scheme_params, regime):
        spec = SchemeSpec.make(scheme_kind, **scheme_params)
        traffic = _traffic_for(LOAD_POINTS[regime], phy)
        results = {
            simulator: execute_task(
                _task(spec, hidden_topology, simulator, traffic, phy)
            )
            for simulator in ("event", "batched")
        }
        assert results["batched"].extra["backend"] == "conflict-matrix"
        _assert_agreement(results, f"{scheme_kind}/{regime}/hidden")

    def test_overload_drops_absorb_excess(self, phy, hidden_topology):
        """At 1.8x saturation both backends must drop roughly the excess."""
        traffic = _traffic_for(LOAD_POINTS["overload"], phy)
        spec = SchemeSpec.make("standard-802.11")
        for simulator in ("event", "batched"):
            result = execute_task(
                _task(spec, hidden_topology, simulator, traffic, phy)
            )
            assert result.drop_rate > 0.3, simulator
            assert result.dropped_frames > 0, simulator
            assert result.mean_queue_delay_s > 0.01, simulator


class TestRetryLimitedDifferential:
    """The discard path agrees across backends within the same envelope.

    A bounded retry chain changes both the service process (discards free
    the head of the queue early) and the backoff process (the contention
    window resets on discard), so the differential harness must hold with
    ``retry_limit`` set — on the connected triple and on the hidden pair,
    at the overload point where discards actually fire.
    """

    @pytest.mark.parametrize("retry_limit", [2, 7])
    def test_connected_backends_agree_under_overload(self, phy, retry_limit):
        rate = (LOAD_POINTS["overload"] * saturation_frame_rate(phy)
                / NUM_STATIONS)
        traffic = ArrivalProcess.poisson(rate, retry_limit=retry_limit)
        spec = SchemeSpec.make("standard-802.11")
        topology = TopologySpec.connected(NUM_STATIONS)
        results = {
            simulator: execute_task(
                _task(spec, topology, simulator, traffic, phy)
            )
            for simulator in ("slotted", "event", "batched")
        }
        _assert_agreement(results, f"retry={retry_limit}/overload/connected")

    def test_hidden_backends_agree_and_discard(self, phy):
        """Hidden-node collisions make a tight retry limit bite hard: both
        backends must discard visibly and still agree on throughput."""
        topology = TopologySpec.hidden_disc(NUM_STATIONS, 16.0, TOPOLOGY_SEED)
        rate = (LOAD_POINTS["critical"] * saturation_frame_rate(phy)
                / NUM_STATIONS)
        traffic = ArrivalProcess.poisson(rate, retry_limit=3)
        spec = SchemeSpec.make("standard-802.11")
        results = {
            simulator: execute_task(
                _task(spec, topology, simulator, traffic, phy)
            )
            for simulator in ("event", "batched")
        }
        assert results["batched"].extra["backend"] == "conflict-matrix"
        for simulator, result in results.items():
            assert result.retry_discards > 0, simulator
        _assert_agreement(results, "retry=3/critical/hidden")


class TestBurstyAndCbrWorkloads:
    """The non-Poisson arrival families agree across backends too."""

    @pytest.mark.parametrize("traffic_factory", [
        lambda rate: ArrivalProcess.cbr(rate),
        lambda rate: ArrivalProcess.on_off(2.0 * rate, on_mean_s=0.05,
                                           off_mean_s=0.05),
    ], ids=["cbr", "on-off"])
    def test_connected_backends_agree_at_critical_load(self, phy,
                                                       traffic_factory):
        rate = LOAD_POINTS["critical"] * saturation_frame_rate(phy) / NUM_STATIONS
        traffic = traffic_factory(rate)
        spec = SchemeSpec.make("standard-802.11")
        topology = TopologySpec.connected(NUM_STATIONS)
        results = {
            simulator: execute_task(
                _task(spec, topology, simulator, traffic, phy)
            )
            for simulator in ("slotted", "event", "batched")
        }
        _assert_agreement(results, f"{traffic.kind}/critical/connected")
