"""Tests for the parallel experiment campaign engine.

The load-bearing guarantees:

* a task is a pure value — executing it serially, in a process pool, or
  loading it from the on-disk cache yields bit-identical results;
* task hashes are stable, label-independent and sensitive to everything
  that affects the simulation;
* sweep expansion derives per-cell seeds deterministically.
"""

import json

import numpy as np
import pytest

from repro.experiments.campaign import (
    RESULT_SCHEMA_VERSION,
    CampaignExecutor,
    ResultCache,
    RunTask,
    SchemeSpec,
    SweepSpec,
    TopologySpec,
    batch_eligible,
    derive_seed,
    execute_batch,
    execute_task,
    plan_batches,
    result_from_dict,
    result_to_dict,
)
from repro.experiments.campaign import executor as executor_module
from repro.phy.constants import PhyParameters


def _quick_task(seed=1, num_stations=4, duration=0.25, **overrides):
    defaults = dict(
        scheme=SchemeSpec.make("standard-802.11"),
        topology=TopologySpec.connected(num_stations),
        seed=seed,
        duration=duration,
        warmup=0.05,
        phy=PhyParameters(),
    )
    defaults.update(overrides)
    return RunTask(**defaults)


class TestSchemeSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SchemeSpec.make("carrier-pigeon")

    def test_params_are_order_independent(self):
        a = SchemeSpec.make("wtop-csma", update_period=0.05, initial_control=0.4)
        b = SchemeSpec.make("wtop-csma", initial_control=0.4, update_period=0.05)
        assert a == b

    def test_numpy_scalars_normalised(self):
        a = SchemeSpec.make("fixed-p", p=np.float64(0.02))
        b = SchemeSpec.make("fixed-p", p=0.02)
        assert a == b

    def test_adaptive_flag(self):
        assert SchemeSpec.make("idlesense").adaptive
        assert SchemeSpec.make("tora-csma").adaptive
        assert not SchemeSpec.make("standard-802.11").adaptive
        assert not SchemeSpec.make("fixed-p", p=0.1).adaptive

    def test_build_produces_fresh_schemes(self, phy):
        spec = SchemeSpec.make("wtop-csma", update_period=0.05)
        assert spec.build(phy).make_controller() is not spec.build(phy).make_controller()

    def test_build_with_weights(self, phy):
        spec = SchemeSpec.make("wtop-csma", weights=(1.0, 2.0), update_period=0.05)
        policies = spec.build(phy).make_policies(2)
        assert policies[0].weight != policies[1].weight


class TestTopologySpec:
    def test_connected_builds_fully_connected(self):
        assert TopologySpec.connected(6).build().is_fully_connected()

    def test_hidden_disc_is_seeded(self):
        a = TopologySpec.hidden_disc(15, 16.0, topology_seed=3).build()
        b = TopologySpec.hidden_disc(15, 16.0, topology_seed=3).build()
        assert a.hidden_pairs() == b.hidden_pairs()
        assert not a.is_fully_connected()

    def test_validation(self):
        with pytest.raises(ValueError):
            TopologySpec(kind="mesh", num_stations=4)
        with pytest.raises(ValueError):
            TopologySpec(kind="hidden-disc", num_stations=4, radius=16.0)
        with pytest.raises(ValueError):
            TopologySpec.connected(0)


class TestRunTask:
    def test_task_key_is_stable_and_label_independent(self):
        task = _quick_task()
        assert task.task_key() == _quick_task().task_key()
        assert task.with_label("renamed").task_key() == task.task_key()

    def test_task_key_sensitive_to_simulation_inputs(self):
        base = _quick_task()
        assert _quick_task(seed=2).task_key() != base.task_key()
        assert _quick_task(duration=0.3).task_key() != base.task_key()
        assert _quick_task(num_stations=5).task_key() != base.task_key()
        assert _quick_task(frame_error_rate=0.1).task_key() != base.task_key()
        assert (_quick_task(scheme=SchemeSpec.make("idlesense")).task_key()
                != base.task_key())

    def test_auto_simulator_resolution(self):
        assert _quick_task().resolved_simulator() == "slotted"
        hidden = _quick_task(
            num_stations=10,
            topology=TopologySpec.hidden_disc(10, 16.0, 1),
        )
        assert hidden.resolved_simulator() == "event"

    def test_slotted_rejected_on_hidden_topology(self):
        with pytest.raises(ValueError):
            _quick_task(
                topology=TopologySpec.hidden_disc(10, 16.0, 1),
                simulator="slotted",
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            _quick_task(duration=0.0)
        with pytest.raises(ValueError):
            _quick_task(warmup=-1.0)
        with pytest.raises(ValueError):
            _quick_task(simulator="quantum")

    def test_to_json_round_trips_through_json(self):
        payload = json.dumps(_quick_task().to_json(), sort_keys=True)
        assert json.loads(payload)["seed"] == 1


class TestExecuteTask:
    def test_result_annotated_with_task_identity(self):
        task = _quick_task().with_label("unit/label")
        result = execute_task(task)
        assert result.extra["task_key"] == task.task_key()
        assert result.extra["seed"] == task.seed
        assert result.extra["label"] == "unit/label"
        assert result.extra["simulator"] == "slotted"

    def test_idlesense_station_observed_idle_annotated(self, phy):
        task = _quick_task(
            scheme=SchemeSpec.make("idlesense"), duration=0.5, warmup=1.0,
        )
        result = execute_task(task)
        assert result.extra["station_observed_idle"] > 0

    def test_event_simulator_override_on_connected_topology(self):
        result = execute_task(_quick_task(simulator="event"))
        assert result.extra["simulator"] == "event-driven"
        assert result.total_throughput_bps > 0

    def test_activity_schedule_honoured(self):
        task = _quick_task(num_stations=4, activity=((0.0, 2), (0.15, 4)))
        result = execute_task(task)
        assert result.station_stats[0].payload_bits > result.station_stats[3].payload_bits


class TestDeterministicSeeding:
    def test_derive_seed_is_stable(self):
        assert derive_seed("camp", 7, "dcf", 10, 0) == derive_seed("camp", 7, "dcf", 10, 0)

    def test_derive_seed_distinguishes_components(self):
        seeds = {
            derive_seed("camp", 7, "dcf", n, rep)
            for n in (10, 20, 30)
            for rep in range(4)
        }
        assert len(seeds) == 12

    def test_derive_seed_fits_numpy(self):
        seed = derive_seed("x")
        np.random.default_rng(seed)  # must not raise
        assert 0 <= seed < 2 ** 63


class TestSweepSpec:
    def _sweep(self, **overrides):
        settings = dict(
            warmup=0.05, adaptive_warmup=0.4, repetitions=2, base_seed=9,
        )
        settings.update(overrides)
        return SweepSpec.make(
            "unit-sweep",
            {
                "dcf": SchemeSpec.make("standard-802.11"),
                "idlesense": SchemeSpec.make("idlesense"),
            },
            node_counts=(3, 5),
            duration=0.2,
            **settings,
        )

    def test_expansion_is_deterministic(self):
        assert self._sweep().expand() == self._sweep().expand()

    def test_grid_size_and_labels(self):
        tasks = self._sweep().expand()
        assert len(tasks) == 2 * 2 * 2
        assert tasks[0].label == "unit-sweep/dcf/N=3/rep=0"
        assert len({t.task_key() for t in tasks}) == len(tasks)

    def test_adaptive_schemes_get_adaptive_warmup(self):
        tasks = {t.label: t for t in self._sweep().expand()}
        assert tasks["unit-sweep/dcf/N=3/rep=0"].warmup == 0.05
        assert tasks["unit-sweep/idlesense/N=3/rep=0"].warmup == 0.4

    def test_hidden_sweep_derives_topology_seeds(self):
        tasks = self._sweep(topology="hidden-disc", radius=16.0).expand()
        assert all(t.topology.kind == "hidden-disc" for t in tasks)
        # Same cell -> same placement for every scheme (paired comparison),
        # different repetition -> different placement.
        by_label = {t.label: t for t in tasks}
        assert (by_label["unit-sweep/dcf/N=3/rep=0"].topology.topology_seed
                == by_label["unit-sweep/idlesense/N=3/rep=0"].topology.topology_seed)
        assert (by_label["unit-sweep/dcf/N=3/rep=0"].topology.topology_seed
                != by_label["unit-sweep/dcf/N=3/rep=1"].topology.topology_seed)

    def test_validation(self):
        with pytest.raises(ValueError):
            SweepSpec.make("s", {}, (3,), 0.2)
        with pytest.raises(ValueError):
            self._sweep(repetitions=0)
        with pytest.raises(ValueError):
            self._sweep(topology="hidden-disc")  # no radius


class TestCampaignExecutorDeterminism:
    def test_parallel_results_bit_identical_to_serial(self):
        """Acceptance criterion: jobs=4 output equals jobs=1 output exactly."""
        spec = SweepSpec.make(
            "determinism",
            {"dcf": SchemeSpec.make("standard-802.11"),
             "fixed": SchemeSpec.make("fixed-p", p=0.05)},
            node_counts=(3, 5),
            duration=0.2,
            warmup=0.05,
            repetitions=2,
            base_seed=11,
        )
        tasks = spec.expand()
        serial = CampaignExecutor(jobs=1).run(tasks)
        parallel = CampaignExecutor(jobs=4).run(tasks)
        assert len(serial) == len(tasks)
        for left, right in zip(serial, parallel):
            assert left == right  # full SimulationResult equality, bit for bit

    def test_results_come_back_in_input_order(self):
        tasks = [_quick_task(seed=s) for s in (5, 3, 4)]
        results = CampaignExecutor(jobs=2).run(tasks)
        assert [r.extra["seed"] for r in results] == [5, 3, 4]

    def test_duplicate_tasks_simulated_once(self):
        executor = CampaignExecutor(jobs=1)
        results = executor.run([_quick_task(seed=1), _quick_task(seed=1)])
        assert executor.last_run_stats.executed == 1
        assert executor.last_run_stats.deduplicated == 1
        assert results[0] == results[1]


class TestBackendSelection:
    def test_auto_backend_batches_eligible_connected_tasks(self):
        events = []
        executor = CampaignExecutor(jobs=1, progress=events.append)
        [result] = executor.run([_quick_task()])
        assert result.extra["simulator"] == "batched"
        assert events[0].backend == "batched"
        assert executor.last_run_stats.batched_cells == 1

    def test_slotted_backend_keeps_scalar_behaviour(self):
        executor = CampaignExecutor(jobs=1, backend="slotted")
        [result] = executor.run([_quick_task()])
        assert result.extra["simulator"] == "slotted"
        assert executor.last_run_stats.batched_cells == 0

    def test_event_backend_forces_event_simulator(self):
        [result] = CampaignExecutor(jobs=1, backend="event").run([_quick_task()])
        assert result.extra["simulator"] == "event-driven"

    def test_explicit_simulator_choice_is_respected(self):
        [result] = CampaignExecutor(jobs=1).run(
            [_quick_task(simulator="slotted")]
        )
        assert result.extra["simulator"] == "slotted"

    def test_ineligible_scheme_falls_back_to_slotted(self):
        task = _quick_task(scheme=SchemeSpec.make("n-estimating"))
        assert not batch_eligible(task)
        [result] = CampaignExecutor(jobs=1).run([task])
        assert result.extra["simulator"] == "slotted"

    def test_auto_backend_batches_eligible_hidden_tasks(self):
        task = _quick_task(
            num_stations=6, topology=TopologySpec.hidden_disc(6, 16.0, 1)
        )
        assert batch_eligible(task)
        executor = CampaignExecutor(jobs=1)
        [result] = executor.run([task])
        assert result.extra["simulator"] == "batched"
        assert result.extra["backend"] == "conflict-matrix"
        assert executor.last_run_stats.batched_cells == 1

    def test_hidden_tasks_with_activity_fall_back_to_event(self):
        task = _quick_task(
            num_stations=6,
            topology=TopologySpec.hidden_disc(6, 16.0, 1),
            activity=((0.0, 3), (0.1, 6)),
        )
        assert not batch_eligible(task)
        [result] = CampaignExecutor(jobs=1).run([task])
        assert result.extra["simulator"] == "event-driven"

    def test_hidden_tasks_with_unbatchable_scheme_fall_back_to_event(self):
        task = _quick_task(
            num_stations=6,
            scheme=SchemeSpec.make("n-estimating"),
            topology=TopologySpec.hidden_disc(6, 16.0, 1),
        )
        assert not batch_eligible(task)
        [result] = CampaignExecutor(jobs=1).run([task])
        assert result.extra["simulator"] == "event-driven"

    def test_slotted_backend_keeps_hidden_tasks_on_event_simulator(self):
        task = _quick_task(
            num_stations=6, topology=TopologySpec.hidden_disc(6, 16.0, 1)
        )
        [result] = CampaignExecutor(jobs=1, backend="slotted").run([task])
        assert result.extra["simulator"] == "event-driven"

    def test_plan_batches_never_mixes_topology_families(self):
        connected = [_quick_task(seed=s) for s in (1, 2)]
        hidden = [
            _quick_task(
                seed=s, num_stations=5,
                topology=TopologySpec.hidden_disc(5, 16.0, s),
            )
            for s in (1, 2)
        ]
        groups = plan_batches(connected + hidden)
        assert len(groups) == 2
        for group in groups:
            kinds = {task.topology.kind for task in group}
            assert len(kinds) == 1

    def test_hidden_batch_may_mix_topologies_and_station_counts(self):
        tasks = [
            _quick_task(
                seed=seed, num_stations=n,
                topology=TopologySpec.hidden_disc(n, radius, seed),
                simulator="batched",
            )
            for seed, n, radius in [(1, 4, 16.0), (2, 7, 20.0), (3, 5, 16.0)]
        ]
        [group] = plan_batches(tasks)
        assert len(group) == 3
        results = execute_batch(group)
        for task, result in zip(tasks, results):
            assert result.extra["task_key"] == task.task_key()
            assert result.extra["num_stations"] == task.topology.num_stations
            [alone] = execute_batch([task])
            extra = {k: v for k, v in alone.extra.items()}
            assert extra == dict(result.extra)
            assert alone == result

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            CampaignExecutor(backend="quantum")

    def test_backend_changes_cache_key_but_not_task(self):
        task = _quick_task()
        auto, auto_reason = CampaignExecutor(jobs=1)._resolve_backend(task)
        slotted, slotted_reason = CampaignExecutor(
            jobs=1, backend="slotted"
        )._resolve_backend(task)
        assert auto.task_key() != slotted.task_key()
        assert auto_reason is None and slotted_reason is None
        assert task.simulator == "auto"  # original untouched

    def test_plan_batches_groups_only_compatible_tasks(self):
        compatible = [_quick_task(seed=s) for s in (1, 2)]
        different_duration = _quick_task(seed=3, duration=0.5)
        different_scheme = _quick_task(
            seed=4, scheme=SchemeSpec.make("idlesense")
        )
        groups = plan_batches(compatible + [different_duration, different_scheme])
        assert sorted(len(g) for g in groups) == [1, 1, 2]

    def test_plan_batches_splits_groups_to_fill_workers(self):
        tasks = [_quick_task(seed=s) for s in range(8)]
        assert len(plan_batches(tasks)) == 1
        split = plan_batches(tasks, target_units=4)
        assert len(split) == 4
        assert sorted(t.seed for g in split for t in g) == list(range(8))
        # Can't split below one cell per unit.
        assert len(plan_batches(tasks[:2], target_units=8)) == 2

    def test_batched_results_identical_serial_vs_parallel(self):
        tasks = [_quick_task(seed=s, num_stations=n)
                 for s in (1, 2) for n in (3, 6)]
        serial = CampaignExecutor(jobs=1).run(tasks)
        parallel = CampaignExecutor(jobs=4).run(tasks)
        for left, right in zip(serial, parallel):
            assert left == right

    def test_batched_cells_round_trip_the_cache_bit_exactly(self, tmp_path):
        tasks = [_quick_task(seed=s) for s in (1, 2, 3)]
        cold = CampaignExecutor(jobs=1, cache_dir=tmp_path)
        cold_results = cold.run(tasks)
        assert cold.last_run_stats.batched_cells == 3
        warm = CampaignExecutor(jobs=1, cache_dir=tmp_path)
        warm_results = warm.run(tasks)
        assert warm.last_run_stats.cached == 3
        assert warm.last_run_stats.executed == 0
        assert warm_results == cold_results

    def test_execute_task_handles_batched_tasks(self):
        result = execute_task(_quick_task(simulator="batched"))
        assert result.extra["simulator"] == "batched"
        assert result.total_throughput_bps > 0

    def test_execute_batch_rejects_incompatible_groups(self):
        with pytest.raises(ValueError):
            execute_batch([
                _quick_task(simulator="batched"),
                _quick_task(simulator="batched", duration=0.5),
            ])

    def test_progress_events_report_rate_and_backend(self):
        events = []
        CampaignExecutor(jobs=1, progress=events.append).run(
            [_quick_task(seed=s) for s in (1, 2)]
        )
        assert all(e.backend == "batched" for e in events)
        assert events[-1].cells_per_s > 0


class TestCampaignCache:
    def test_cache_round_trip_is_exact(self, tmp_path):
        task = _quick_task(report_interval=0.1)
        result = execute_task(task)
        cache = ResultCache(tmp_path)
        cache.store(task, result)
        assert task.task_key() in cache
        assert cache.load(task.task_key()) == result

    def test_result_dict_round_trip(self):
        result = execute_task(_quick_task(report_interval=0.1))
        assert result_from_dict(
            json.loads(json.dumps(result_to_dict(result)))
        ) == result

    def test_warm_cache_performs_zero_simulator_runs(self, tmp_path, monkeypatch):
        """Acceptance criterion: second invocation never touches a simulator."""
        tasks = [_quick_task(seed=s) for s in (1, 2, 3)]
        cold = CampaignExecutor(jobs=1, cache_dir=tmp_path)
        cold_results = cold.run(tasks)
        assert cold.last_run_stats.executed == 3

        def _boom(task):
            raise AssertionError("simulator invoked despite warm cache")

        monkeypatch.setattr(executor_module, "execute_task", _boom)
        warm = CampaignExecutor(jobs=1, cache_dir=tmp_path)
        warm_results = warm.run(tasks)
        assert warm.last_run_stats.executed == 0
        assert warm.last_run_stats.cached == 3
        assert warm_results == cold_results

    def test_corrupt_cache_entry_treated_as_miss(self, tmp_path):
        task = _quick_task()
        cache = ResultCache(tmp_path)
        cache.store(task, execute_task(task))
        cache.path_for(task.task_key()).write_text("{not json", encoding="utf-8")
        executor = CampaignExecutor(jobs=1, cache_dir=tmp_path)
        executor.run([task])
        assert executor.last_run_stats.executed == 1

    def test_schema_version_mismatch_treated_as_miss(self, tmp_path):
        """Entries written by older code (wrong or missing result schema
        version) must be re-simulated, never deserialised into a campaign."""
        task = _quick_task()
        cache = ResultCache(tmp_path)
        cache.store(task, execute_task(task))
        path = cache.path_for(task.task_key())

        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["schema_version"] == RESULT_SCHEMA_VERSION
        payload["schema_version"] = RESULT_SCHEMA_VERSION - 1
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.load(task.task_key()) is None

        del payload["schema_version"]  # entry predating the field entirely
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.load(task.task_key()) is None

        executor = CampaignExecutor(jobs=1, cache_dir=tmp_path)
        executor.run([task])
        assert executor.last_run_stats.executed == 1

    def test_use_cache_false_ignores_cache_dir(self, tmp_path):
        task = _quick_task()
        CampaignExecutor(jobs=1, cache_dir=tmp_path).run([task])
        executor = CampaignExecutor(jobs=1, cache_dir=tmp_path, use_cache=False)
        executor.run([task])
        assert executor.last_run_stats.executed == 1

    def test_cache_shared_between_serial_and_parallel(self, tmp_path):
        tasks = [_quick_task(seed=s) for s in (1, 2, 3, 4)]
        parallel = CampaignExecutor(jobs=4, cache_dir=tmp_path)
        first = parallel.run(tasks)
        serial = CampaignExecutor(jobs=1, cache_dir=tmp_path)
        second = serial.run(tasks)
        assert serial.last_run_stats.cached == 4
        assert first == second

    def test_stats_accumulate_across_runs(self, tmp_path):
        executor = CampaignExecutor(jobs=1, cache_dir=tmp_path)
        executor.run([_quick_task(seed=1)])
        executor.run([_quick_task(seed=1)])
        assert executor.stats.total == 2
        assert executor.stats.executed == 1
        assert executor.stats.cached == 1

    def test_progress_events_emitted(self, tmp_path):
        events = []
        executor = CampaignExecutor(
            jobs=1, cache_dir=tmp_path, progress=events.append
        )
        executor.run([_quick_task(seed=1), _quick_task(seed=2)])
        assert [e.source for e in events] == ["run", "run"]
        assert events[-1].completed == events[-1].total == 2
        events.clear()
        CampaignExecutor(jobs=1, cache_dir=tmp_path, progress=events.append).run(
            [_quick_task(seed=1)]
        )
        assert [e.source for e in events] == ["cache"]


class TestWarmCacheWithWorkers:
    def test_fully_cached_campaign_with_jobs_gt_1(self, tmp_path):
        """A 100% cache-served campaign must not touch the batch planner.

        Regression test: plan_batches([]) used to crash on the worker-split
        path (max() over an empty plan) whenever every cell of a jobs>1
        campaign was served from cache.
        """
        tasks = [_quick_task(seed=seed) for seed in (1, 2)]
        cold = CampaignExecutor(jobs=2, cache_dir=tmp_path)
        first = cold.run(tasks)
        warm = CampaignExecutor(jobs=2, cache_dir=tmp_path)
        second = warm.run(tasks)
        assert warm.last_run_stats.cached == 2
        assert warm.last_run_stats.executed == 0
        assert second == first

    def test_plan_batches_empty_input_with_target_units(self):
        assert plan_batches([], target_units=4) == []


class TestTrafficCampaignIntegration:
    """The arrival spec is a first-class, cacheable task dimension."""

    def _traffic_task(self, seed=1, **overrides):
        from repro.traffic import ArrivalProcess

        overrides.setdefault(
            "traffic", ArrivalProcess.poisson(800.0, queue_limit=8)
        )
        return _quick_task(seed=seed, duration=0.3, **overrides)

    def test_traffic_separates_batch_keys(self):
        from repro.experiments.campaign import batch_key
        from repro.traffic import ArrivalProcess

        saturated = _quick_task()
        poisson = self._traffic_task()
        cbr = self._traffic_task(traffic=ArrivalProcess.cbr(800.0))
        assert batch_key(saturated) != batch_key(poisson)
        assert batch_key(poisson) != batch_key(cbr)
        # plan_batches therefore never mixes workloads in one call.
        groups = plan_batches([saturated, poisson, cbr, poisson])
        assert sorted(len(g) for g in groups) == [1, 1, 2]

    def test_traffic_tasks_are_batch_eligible_on_both_families(self):
        from repro.traffic import ArrivalProcess

        assert batch_eligible(self._traffic_task())
        hidden = self._traffic_task(
            topology=TopologySpec.hidden_disc(5, 16.0, 7),
        )
        assert batch_eligible(hidden)
        # ... but hidden + activity still falls back to the event simulator.
        churn = _quick_task(
            topology=TopologySpec.hidden_disc(5, 16.0, 7),
            traffic=ArrivalProcess.poisson(800.0),
            activity=((0.0, 2), (0.1, 3)),
        )
        assert not batch_eligible(churn)

    def test_traffic_result_round_trips_the_cache_bit_exactly(self, tmp_path):
        task = self._traffic_task()
        cold = CampaignExecutor(jobs=1, cache_dir=tmp_path)
        [first] = cold.run([task])
        warm = CampaignExecutor(jobs=1, cache_dir=tmp_path)
        [second] = warm.run([task])
        assert warm.last_run_stats.cached == 1
        assert second == first
        assert second.offered_frames > 0
        assert second.mean_queue_delay_s > 0.0

    def test_result_dict_round_trips_traffic_counters(self):
        result = execute_task(self._traffic_task())
        assert result.offered_frames > 0
        restored = result_from_dict(
            json.loads(json.dumps(result_to_dict(result)))
        )
        assert restored == result

    def test_saturated_result_serialisation_is_unchanged(self):
        """Saturated payloads must not grow the new keys (old caches and
        new code agree on the exact same JSON)."""
        payload = result_to_dict(execute_task(_quick_task()))
        assert "offered_frames" not in payload
        assert "queue_delay_sum_s" not in payload

    def test_scalar_and_batched_execution_paths_annotate_traffic(self):
        task = self._traffic_task()
        scalar = execute_task(
            RunTask(**{**task.__dict__, "simulator": "slotted"})
        )
        assert scalar.extra["traffic"] == "poisson"
        [grouped] = execute_batch([
            RunTask(**{**task.__dict__, "simulator": "batched"})
        ])
        assert grouped.extra["traffic"] == "poisson"
        assert grouped.offered_frames > 0
