"""Acceptance tests for the fig_stability_atlas experiment.

The headline requirement: the atlas must reproduce the documented IdleSense
hidden-terminal livelock (seeds 1 and 5 of the two-cluster scenario pinned
by ``tests/sim/test_simulation.py``) as a classified livelock region.  The
grid is trimmed to that corner so the test stays fast; the full sweep runs
through the same code path.
"""

import pytest

from repro.experiments import EXPERIMENT_REGISTRY, QUICK, run_fig_stability_atlas
from repro.experiments.campaign import (
    CampaignExecutor,
    RunTask,
    SchemeSpec,
    TopologySpec,
)


class TestTwoClusterSpec:
    def test_builds_hidden_geometry_above_sense_range(self):
        graph = TopologySpec.two_cluster(3, 28.0, 0, spread=0.5).build()
        assert len(graph.hidden_pairs()) > 0

    def test_builds_coordinated_geometry_below_sense_range(self):
        graph = TopologySpec.two_cluster(3, 20.0, 0, spread=0.5).build()
        assert len(graph.hidden_pairs()) == 0

    def test_station_count_and_determinism(self):
        spec = TopologySpec.two_cluster(3, 28.0, 0)
        assert spec.num_stations == 6
        first = spec.build().sensing_matrix()
        second = spec.build().sensing_matrix()
        assert (first == second).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            TopologySpec(kind="two-cluster", num_stations=5,
                         separation=28.0, topology_seed=0, spread=0.5)
        with pytest.raises(ValueError):
            TopologySpec.two_cluster(3, 0.0, 0)
        with pytest.raises(ValueError):
            TopologySpec(kind="two-cluster", num_stations=6,
                         separation=28.0, topology_seed=None, spread=0.5)

    def test_json_round_trip_distinguishes_separations(self):
        near = TopologySpec.two_cluster(3, 20.0, 0, spread=0.5)
        far = TopologySpec.two_cluster(3, 28.0, 0, spread=0.5)
        assert near.to_json() != far.to_json()
        assert near.to_json()["kind"] == "two-cluster"

    def test_batched_conflict_backend_accepts_two_cluster(self):
        task = RunTask(
            scheme=SchemeSpec.make("idlesense"),
            topology=TopologySpec.two_cluster(2, 28.0, 0),
            seed=1, duration=0.2, warmup=0.1,
        )
        executor = CampaignExecutor(jobs=1, backend="batched")
        [result] = executor.run([task])
        assert result is not None
        assert executor.last_run_stats.batched_cells == 1
        assert executor.last_run_stats.fallbacks == 0


class TestStabilityAtlas:
    @pytest.fixture(scope="class")
    def livelock_corner(self):
        # IdleSense, hidden separation, saturated, the two documented
        # livelock seeds only: the smallest grid containing the basin.
        return run_fig_stability_atlas(
            QUICK.evolve(seeds=(1, 5)),
            executor=CampaignExecutor(jobs=1, backend="batched"),
            separations=(28.0,),
            loads=(None,),
            schemes={"IdleSense": SchemeSpec.make("idlesense")},
        )

    def test_registered(self):
        assert EXPERIMENT_REGISTRY["fig_stability_atlas"] is run_fig_stability_atlas

    def test_documented_livelock_seeds_classify_as_livelock(self, livelock_corner):
        [row] = livelock_corner.rows
        assert row.label == "IdleSense/sep=28/sat"
        assert row.values["classification"] == "livelock"
        assert row.values["livelock frac"] == 1.0
        assert row.values["Mbps"] < 1.0

    def test_livelock_metadata_names_the_seeds(self, livelock_corner):
        assert livelock_corner.metadata["livelock"] == {
            "IdleSense/sep=28/sat": (1, 5),
        }

    def test_coordinated_separation_does_not_livelock(self):
        result = run_fig_stability_atlas(
            QUICK.evolve(seeds=(1, 5)),
            executor=CampaignExecutor(jobs=1, backend="batched"),
            separations=(20.0,),
            loads=(None,),
            schemes={"IdleSense": SchemeSpec.make("idlesense")},
        )
        [row] = result.rows
        assert row.values["classification"] != "livelock"
        assert row.values["Mbps"] > 1.0
        assert result.metadata["livelock"] == {}

    def test_config_seeds_are_extended_with_livelock_seeds(self):
        result = run_fig_stability_atlas(
            QUICK.evolve(seeds=(2,)),
            executor=CampaignExecutor(jobs=1, backend="batched"),
            separations=(28.0,),
            loads=(None,),
            schemes={"IdleSense": SchemeSpec.make("idlesense")},
        )
        assert result.metadata["seeds"] == (1, 2, 5)
