"""Smoke and shape tests for the per-figure experiment runners.

These use deliberately tiny budgets: they verify wiring, output structure and
the cheap qualitative properties, not the paper's quantitative shapes (the
benchmark harness does that with bigger budgets).
"""

import math

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENT_REGISTRY,
    format_result,
    run_fig12,
    run_fig13,
    run_fig2,
    run_fig3,
    run_fig8_9,
    run_table1,
    run_table2,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    average_throughput_mbps,
    make_connected_topology,
    make_hidden_topology,
    paper_scheme_factories,
    run_scheme_connected,
    run_scheme_on_topology,
)


class TestRunnerHelpers:
    def test_connected_topology_has_no_hidden_pairs(self):
        assert make_connected_topology(12).is_fully_connected()

    def test_hidden_topology_has_hidden_pairs(self):
        graph = make_hidden_topology(20, radius=16.0, seed=3)
        assert not graph.is_fully_connected()

    def test_paper_scheme_factories_cover_four_schemes(self, tiny_config):
        factories = paper_scheme_factories(tiny_config)
        assert set(factories) == {
            "Standard 802.11", "IdleSense", "wTOP-CSMA", "TORA-CSMA"
        }
        # Each factory builds a fresh instance.
        scheme_a = factories["wTOP-CSMA"]()
        scheme_b = factories["wTOP-CSMA"]()
        assert scheme_a.make_controller() is not scheme_b.make_controller()

    def test_run_scheme_connected_and_event_agree_roughly(self, tiny_config, phy):
        factory = paper_scheme_factories(tiny_config)["Standard 802.11"]
        slotted = run_scheme_connected(factory, 8, tiny_config, seed=1, phy=phy)
        event = run_scheme_on_topology(
            factory, make_connected_topology(8), tiny_config, seed=1, phy=phy
        )
        assert event.total_throughput_mbps == pytest.approx(
            slotted.total_throughput_mbps, rel=0.2
        )

    def test_average_throughput(self, tiny_config, phy):
        factory = paper_scheme_factories(tiny_config)["Standard 802.11"]
        results = [run_scheme_connected(factory, 5, tiny_config, seed=s, phy=phy)
                   for s in (1, 2)]
        avg = average_throughput_mbps(results)
        assert min(r.total_throughput_mbps for r in results) <= avg
        assert avg <= max(r.total_throughput_mbps for r in results)
        with pytest.raises(ValueError):
            average_throughput_mbps([])


class TestAnalyticalRunners:
    def test_table1_lists_parameters(self):
        result = run_table1()
        labels = result.row_labels()
        assert "CWmin" in labels and "Bit Rate" in labels
        assert "Ts (us)" in result.metadata

    def test_fig12_fixed_points_monotone_in_p0(self):
        result = run_fig12()
        fixed_points = result.metadata["fixed_point_tau"]
        values = [fixed_points[f"p0={p:g}"] for p in (0.0, 0.2, 0.4, 0.6, 0.8)]
        assert values == sorted(values)

    def test_fig12_tau_columns_decreasing_in_c(self):
        result = run_fig12()
        column = result.column("tau_c(p0=0.4)")
        assert column == sorted(column, reverse=True)

    def test_fig2_analytic_only_is_quasiconcave(self, tiny_config):
        result = run_fig2(tiny_config, simulate=False, node_counts=(20,))
        assert result.metadata["quasi_concave"]["analytic N=20"] is True
        curve = result.column("analytic N=20")
        assert max(curve) > curve[0] and max(curve) > curve[-1]

    def test_fig13_analytic_only_flat_top(self, tiny_config):
        result = run_fig13(tiny_config, simulate=False, node_counts=(20,),
                           reset_probabilities=(0.0, 0.25, 0.5, 0.75, 1.0))
        assert result.metadata["quasi_concave"]["analytic N=20"] is True


class TestSimulationRunners:
    def test_fig3_shape_with_tiny_budget(self, tiny_config, phy):
        config = tiny_config.evolve(node_counts=(5, 10), adaptive_warmup=2.0)
        result = run_fig3(config, phy=phy)
        assert result.row_labels() == ["N=5", "N=10"]
        text = format_result(result)
        assert "Figure 3" in text
        # 802.11 should not beat the analytic optimum.
        for row in result.rows:
            assert row.values["Standard 802.11"] <= row.values["Analytic optimum"] * 1.1

    def test_table2_normalized_throughput_consistent(self, tiny_config, phy):
        config = tiny_config.evolve(adaptive_warmup=3.0, measure_duration=1.0)
        result = run_table2(config, phy=phy, weights=(1, 1, 2, 2), seed=1)
        assert len(result.rows) == 4
        assert result.metadata["jain_index_normalized"] > 0.8
        for row in result.rows:
            expected = row.values["throughput (Mbps)"] / row.values["weight"]
            assert row.values["normalized (Mbps)"] == pytest.approx(expected, rel=1e-6)

    def test_fig8_9_timeline_tracks_station_steps(self, tiny_config, phy):
        config = tiny_config.evolve(dynamic_segment_duration=0.5, report_interval=0.1)
        result = run_fig8_9(config, phy=phy, include_hidden=False, seed=1)
        assert len(result.rows) > 5
        counts = result.column("active stations")
        assert min(counts) >= 10 and max(counts) <= 60
        throughputs = result.column("throughput (no hidden)")
        assert all(t >= 0 for t in throughputs)

    def test_registry_contains_all_seventeen_experiments(self):
        assert set(EXPERIMENT_REGISTRY) == {
            "table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
            "fig8_9", "fig10_11", "fig12", "fig13", "table2", "table3",
            "fig_load_sweep", "fig_fct_sweep", "fig_stability_atlas",
        }
