"""Tests for the ``python -m repro.experiments`` command-line interface."""

import pytest

from repro.experiments import EXPERIMENT_REGISTRY
from repro.experiments.__main__ import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig12"])
        assert args.experiments == ["fig12"]
        assert args.preset == "quick"
        assert args.output is None

    def test_preset_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig12", "--preset", "huge"])


class TestMain:
    def test_list_prints_all_ids(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(EXPERIMENT_REGISTRY)

    def test_runs_analytical_experiment(self, capsys):
        assert main(["fig12"]) == 0
        out = capsys.readouterr().out
        assert "Figure 12" in out
        assert "regenerated in" in out

    def test_writes_output_file(self, tmp_path, capsys):
        assert main(["table1", "--output", str(tmp_path)]) == 0
        written = (tmp_path / "table1.txt").read_text()
        assert "Table I" in written

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_no_experiments_rejected(self):
        with pytest.raises(SystemExit):
            main([])
