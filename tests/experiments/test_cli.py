"""Tests for the ``python -m repro.experiments`` command-line interface."""

import pytest

from repro.experiments import EXPERIMENT_REGISTRY
from repro.experiments.__main__ import _ANALYTICAL, build_parser, main
from repro.experiments.runner import ExperimentResult, ExperimentRow


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig12"])
        assert args.experiments == ["fig12"]
        assert args.preset == "quick"
        assert args.output is None
        assert args.jobs == 1
        assert args.cache_dir is None
        assert args.no_cache is False
        assert args.progress is False
        assert args.backend == "auto"
        assert args.trace is None
        assert args.profile is False

    def test_preset_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig12", "--preset", "huge"])

    def test_backend_choices(self):
        for backend in ("auto", "slotted", "event", "batched"):
            args = build_parser().parse_args(["fig3", "--backend", backend])
            assert args.backend == backend
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig3", "--backend", "quantum"])

    def test_campaign_flags(self, tmp_path):
        args = build_parser().parse_args(
            ["all", "--jobs", "8", "--cache-dir", str(tmp_path), "--no-cache"]
        )
        assert args.experiments == ["all"]
        assert args.jobs == 8
        assert str(args.cache_dir) == str(tmp_path)
        assert args.no_cache is True


def _stub_runner(name):
    def runner(config, executor=None):
        assert executor is not None, "CLI must inject the campaign executor"
        return ExperimentResult(
            name=name,
            description=f"stub for {name}",
            columns=("value",),
            rows=(ExperimentRow(label="row", values={"value": 1.0}),),
        )
    return runner


class TestAllSubcommand:
    @pytest.fixture
    def stubbed_registry(self, monkeypatch):
        """Replace every simulation runner with an instant stub."""
        for name in EXPERIMENT_REGISTRY:
            if name not in _ANALYTICAL:
                monkeypatch.setitem(EXPERIMENT_REGISTRY, name, _stub_runner(name))
        return EXPERIMENT_REGISTRY

    def test_all_runs_every_experiment(self, stubbed_registry, capsys):
        assert main(["all"]) == 0
        out = capsys.readouterr().out
        for name in stubbed_registry:
            assert f"[{name} regenerated in" in out
        # 'all' preserves the registry's presentation order (table1 first).
        positions = [out.index(f"[{name} regenerated") for name in stubbed_registry]
        assert positions == sorted(positions)

    def test_unknown_id_rejected_even_with_all(self, stubbed_registry, capsys):
        with pytest.raises(SystemExit):
            main(["fig99", "all"])
        assert "unknown experiment id(s): fig99" in capsys.readouterr().err

    def test_all_with_jobs_and_cache_flags(self, stubbed_registry, tmp_path, capsys):
        assert main(["all", "--jobs", "2", "--cache-dir", str(tmp_path)]) == 0
        assert "regenerated" in capsys.readouterr().out

    def test_cache_dir_pointing_at_file_rejected(self, tmp_path, capsys):
        target = tmp_path / "not-a-dir"
        target.write_text("x", encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["fig12", "--cache-dir", str(target)])
        assert "is not a directory" in capsys.readouterr().err


class TestBackendFlag:
    def test_backend_flag_reaches_executor(self, monkeypatch, capsys):
        seen = {}

        def runner(config, executor=None):
            seen["backend"] = executor.backend
            return _stub_runner("fig3")(config, executor=executor)

        monkeypatch.setitem(EXPERIMENT_REGISTRY, "fig3", runner)
        assert main(["fig3", "--backend", "batched"]) == 0
        assert seen["backend"] == "batched"
        assert main(["fig3"]) == 0
        assert seen["backend"] == "auto"


class TestMain:
    def test_list_prints_all_ids(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(EXPERIMENT_REGISTRY)

    def test_runs_analytical_experiment(self, capsys):
        assert main(["fig12"]) == 0
        out = capsys.readouterr().out
        assert "Figure 12" in out
        assert "regenerated in" in out

    def test_writes_output_file(self, tmp_path, capsys):
        assert main(["table1", "--output", str(tmp_path)]) == 0
        written = (tmp_path / "table1.txt").read_text()
        assert "Table I" in written

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_no_experiments_rejected(self):
        with pytest.raises(SystemExit):
            main([])
