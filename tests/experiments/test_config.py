"""Tests for the experiment configuration presets."""

import pytest

from repro.experiments.config import PAPER, QUICK, ExperimentConfig


class TestPresets:
    def test_quick_is_smaller_than_paper(self):
        assert len(QUICK.seeds) < len(PAPER.seeds)
        assert QUICK.measure_duration < PAPER.measure_duration
        assert QUICK.adaptive_warmup < PAPER.adaptive_warmup

    def test_paper_preset_uses_paper_update_period(self):
        assert PAPER.update_period == pytest.approx(0.25)

    def test_paper_node_counts_match_figures(self):
        assert PAPER.node_counts == (10, 20, 30, 40, 50, 60)

    def test_hidden_radii_match_paper(self):
        for preset in (QUICK, PAPER):
            assert preset.hidden_disc_radius_small == 16.0
            assert preset.hidden_disc_radius_large == 20.0


class TestEvolve:
    def test_evolve_overrides_selected_fields(self):
        custom = QUICK.evolve(seeds=(7, 8, 9), measure_duration=0.1)
        assert custom.seeds == (7, 8, 9)
        assert custom.measure_duration == 0.1
        assert custom.node_counts == QUICK.node_counts

    def test_evolve_does_not_mutate_original(self):
        QUICK.evolve(measure_duration=99.0)
        assert QUICK.measure_duration != 99.0

    def test_config_is_frozen(self):
        with pytest.raises(Exception):
            QUICK.measure_duration = 1.0

    def test_custom_config_constructible(self):
        config = ExperimentConfig(node_counts=(5,), seeds=(1,), measure_duration=0.1)
        assert config.node_counts == (5,)
