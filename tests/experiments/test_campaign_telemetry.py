"""Tests for campaign-level telemetry: spans, task records, profiling.

The executor promises that enabling telemetry/profiling changes nothing
about the results (bit-identity is covered per-backend in
``tests/sim/test_telemetry_differential.py``; here we re-check it through
the full executor path) while producing a complete trace: spans for every
phase, one ``task`` record per cell, worker-side simulator counters relayed
into the parent's sink, and named fallback diagnostics.
"""

import os

import pytest

from repro.experiments.__main__ import main as experiments_main
from repro.experiments import EXPERIMENT_REGISTRY
from repro.experiments.campaign import (
    CampaignExecutor,
    RunTask,
    SchemeSpec,
    TopologySpec,
)
from repro.experiments.runner import ExperimentResult, ExperimentRow
from repro.phy.constants import PhyParameters
from repro.telemetry import Telemetry
from repro.telemetry.trace import validate_record, validate_trace_file

PHASES = ("plan", "cache-lookup", "group", "dispatch", "execute")


def _task(seed=1, num_stations=4, duration=0.2, **overrides):
    defaults = dict(
        scheme=SchemeSpec.make("standard-802.11"),
        topology=TopologySpec.connected(num_stations),
        seed=seed,
        duration=duration,
        warmup=0.05,
        phy=PhyParameters(),
    )
    defaults.update(overrides)
    return RunTask(**defaults)


def _hidden_activity_task(seed=1):
    """An ``auto`` cell only the event simulator can run (named fallback)."""
    return _task(
        seed=seed, topology=TopologySpec.hidden_disc(5, 16.0, 1),
        activity=((0.0, 3), (0.1, 5)),
    )


def _run(tasks, **kwargs):
    tel = Telemetry()
    executor = CampaignExecutor(telemetry=tel, **kwargs)
    results = executor.run(tasks)
    return executor, tel.records, results


def _of_type(records, rtype):
    return [r for r in records if r["type"] == rtype]


class TestExecutorTrace:
    def test_spans_cover_every_phase(self):
        _, records, _ = _run([_task()])
        names = [r["name"] for r in _of_type(records, "span")]
        assert names == list(PHASES)

    def test_every_record_is_schema_valid(self):
        _, records, _ = _run([_task(seed=1), _task(seed=2)])
        for record in records:
            validate_record(record)

    def test_task_records_describe_execution(self):
        _, records, _ = _run([_task()])
        [record] = _of_type(records, "task")
        assert record["backend"] == "batched"  # auto policy, connected cell
        assert record["source"] == "run"
        assert record["cache_hit"] is False
        assert record["group"] == 0
        assert record["worker_pid"] == os.getpid()
        assert record["execute_s"] > 0
        assert record["cells_per_s"] > 0
        assert record["fallback_reason"] is None

    def test_simulator_counters_reach_the_trace(self):
        _, records, _ = _run([_task()])
        scopes = {r["scope"] for r in _of_type(records, "counters")}
        assert "batched" in scopes

    def test_plan_span_reports_dedup(self):
        task = _task()
        _, records, _ = _run([task, task, task])
        [plan] = [r for r in _of_type(records, "span") if r["name"] == "plan"]
        assert plan["args"] == {"tasks": 3, "unique": 1, "fallbacks": 0}

    def test_cache_hits_traced_on_second_run(self, tmp_path):
        task = _task()
        _run([task], cache_dir=tmp_path)
        _, records, _ = _run([task], cache_dir=tmp_path)
        [record] = _of_type(records, "task")
        assert record["source"] == "cache"
        assert record["cache_hit"] is True
        assert record["worker_pid"] is None
        [lookup] = [r for r in _of_type(records, "span")
                    if r["name"] == "cache-lookup"]
        assert lookup["args"] == {"candidates": 1, "hits": 1, "misses": 0}

    def test_results_identical_with_and_without_telemetry(self):
        tasks = [_task(seed=1), _task(seed=2), _hidden_activity_task()]
        plain = CampaignExecutor().run(tasks)
        _, _, traced = _run(tasks)
        assert traced == plain


class TestFallbackDiagnostics:
    def test_fallback_counted_named_and_warned(self, capsys):
        executor, records, _ = _run([_hidden_activity_task()])
        assert executor.stats.fallbacks == 1
        assert "1 scalar fallback(s)" in executor.stats.summary()
        [record] = _of_type(records, "task")
        assert record["backend"] == "event"
        assert "activity schedule" in record["fallback_reason"]
        err = capsys.readouterr().err
        assert "1 hidden-node cell(s) fell back" in err
        assert "activity schedule" in err

    def test_no_warning_without_fallbacks(self, capsys):
        executor, _, _ = _run([_task()])
        assert executor.stats.fallbacks == 0
        assert "fell back" not in capsys.readouterr().err
        assert "fallback" not in executor.stats.summary()

    def test_duplicate_fallback_cells_counted_once(self, capsys):
        task = _hidden_activity_task()
        executor, _, _ = _run([task, task])
        assert executor.stats.fallbacks == 1
        assert "1 hidden-node cell(s)" in capsys.readouterr().err

    def test_explicit_event_choice_is_not_a_fallback(self, capsys):
        executor, records, _ = _run([_task(simulator="event")])
        assert executor.stats.fallbacks == 0
        [record] = _of_type(records, "task")
        assert record["fallback_reason"] is None


class TestParallelTrace:
    def test_worker_records_are_relayed(self):
        tasks = [_task(seed=s, num_stations=n)
                 for s in (1, 2) for n in (3, 4)]
        executor, records, results = _run(tasks, jobs=2)
        task_records = _of_type(records, "task")
        assert len(task_records) == 4
        workers = {r["worker_pid"] for r in task_records}
        assert all(pid is not None for pid in workers)
        scopes = {r["scope"] for r in _of_type(records, "counters")}
        assert "batched" in scopes
        [execute] = [r for r in _of_type(records, "span")
                     if r["name"] == "execute"]
        assert execute["args"]["mode"] == "parallel"
        assert results == CampaignExecutor().run(tasks)

    def test_queue_wait_measured_across_processes(self):
        _, records, _ = _run([_task(seed=1), _task(simulator="event")],
                             jobs=2)
        for record in _of_type(records, "task"):
            assert record["queue_wait_s"] >= 0


class TestProgressRollingEta:
    def test_events_carry_rolling_rate_and_eta(self):
        events = []
        executor = CampaignExecutor(progress=events.append)
        executor.run([_task(seed=s) for s in (1, 2, 3)])
        assert [e.completed for e in events] == [1, 2, 3]
        for event in events:
            assert event.rolling_cells_per_s > 0
            assert event.eta_s is not None and event.eta_s >= 0
        # ETA shrinks to zero as the campaign completes.
        assert events[-1].eta_s == 0


class TestProfiling:
    def test_serial_profile_collects_and_reports(self):
        tel = Telemetry()
        executor = CampaignExecutor(telemetry=tel, profile=True)
        executor.run([_task()])
        assert executor.profile_stats
        report = executor.profile_report(limit=5)
        assert "unit(s) of work aggregated" in report
        [record] = _of_type(tel.records, "profile")
        assert record["units"] == len(executor.profile_stats)
        assert record["top"]
        validate_record(record)

    def test_parallel_profile_aggregates_workers(self):
        executor = CampaignExecutor(profile=True, jobs=2)
        results = executor.run([_task(seed=1), _task(simulator="event")])
        assert len(executor.profile_stats) == 2
        assert executor.profile_report() is not None
        assert results == CampaignExecutor().run(
            [_task(seed=1), _task(simulator="event")])

    def test_profile_without_telemetry_emits_no_records(self):
        executor = CampaignExecutor(profile=True)
        executor.run([_task()])
        assert executor.profile_stats
        assert executor.profile_report() is not None

    def test_no_profile_no_report(self):
        executor = CampaignExecutor()
        executor.run([_task()])
        assert executor.profile_report() is None


class TestCliTrace:
    def test_trace_flag_writes_schema_valid_jsonl(self, tmp_path,
                                                  monkeypatch, capsys):
        def runner(config, executor=None):
            executor.run([_task()])
            return ExperimentResult(
                name="fig3", description="stub", columns=("v",),
                rows=(ExperimentRow(label="r", values={"v": 1.0}),),
            )

        monkeypatch.setitem(EXPERIMENT_REGISTRY, "fig3", runner)
        trace = tmp_path / "campaign.jsonl"
        assert experiments_main(["fig3", "--trace", str(trace)]) == 0
        counts = validate_trace_file(trace)
        assert counts["meta"] == 1
        assert counts["task"] == 1
        assert counts["span"] == len(PHASES)
        assert counts["counters"] >= 1
        out = capsys.readouterr().out
        assert "[trace:" in out and "trace-report" in out
