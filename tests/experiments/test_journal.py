"""Tests for the append-only campaign journal (checkpoint/resume)."""

import json

import pytest

from repro.experiments.campaign import (
    CACHE_VERSION,
    JOURNAL_SCHEMA_VERSION,
    RESULT_SCHEMA_VERSION,
    CampaignExecutor,
    CampaignJournal,
    RunTask,
    SchemeSpec,
    TopologySpec,
)
from repro.testing import FaultPlan, FaultRule, tear_file


def _task(seed=1, label="", **overrides):
    defaults = dict(
        scheme=SchemeSpec.make("standard-802.11"),
        topology=TopologySpec.connected(4),
        seed=seed,
        duration=0.25,
        warmup=0.05,
        label=label or f"cell-{seed}",
    )
    defaults.update(overrides)
    return RunTask(**defaults)


def _result(tmp_path, task):
    return CampaignExecutor(jobs=1, cache_dir=tmp_path / "scratch").run([task])[0]


class TestJournalBasics:
    def test_fresh_journal_writes_versioned_meta(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with CampaignJournal(path) as journal:
            assert len(journal) == 0
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        meta = json.loads(lines[0])
        assert meta == {
            "type": "meta",
            "journal_schema": JOURNAL_SCHEMA_VERSION,
            "cache_version": CACHE_VERSION,
            "result_schema": RESULT_SCHEMA_VERSION,
        }

    def test_record_and_reload_round_trips(self, tmp_path):
        task = _task(seed=1)
        result = _result(tmp_path, task)
        path = tmp_path / "run.jsonl"
        with CampaignJournal(path) as journal:
            journal.record(task.task_key(), result, label=task.label)
        with CampaignJournal(path) as reloaded:
            assert len(reloaded) == 1
            assert task.task_key() in reloaded
            assert reloaded.lookup(task.task_key()) == result

    def test_record_after_close_raises(self, tmp_path):
        journal = CampaignJournal(tmp_path / "run.jsonl")
        journal.close()
        with pytest.raises(ValueError, match="closed"):
            journal.record("key", _result(tmp_path, _task()))

    def test_resume_false_starts_fresh(self, tmp_path):
        task = _task(seed=1)
        path = tmp_path / "run.jsonl"
        with CampaignJournal(path) as journal:
            journal.record(task.task_key(), _result(tmp_path, task))
        with CampaignJournal(path, resume=False) as fresh:
            assert len(fresh) == 0
        assert len(path.read_text().splitlines()) == 1  # meta only


class TestJournalRobustness:
    def _journal_with_two_tasks(self, tmp_path):
        tasks = [_task(seed=s) for s in (1, 2)]
        results = [_result(tmp_path, t) for t in tasks]
        path = tmp_path / "run.jsonl"
        with CampaignJournal(path) as journal:
            for task, result in zip(tasks, results):
                journal.record(task.task_key(), result, label=task.label)
        return path, tasks, results

    def test_torn_final_record_is_truncated_away(self, tmp_path, capsys):
        path, tasks, results = self._journal_with_two_tasks(tmp_path)
        tear_file(path)
        with CampaignJournal(path) as journal:
            assert journal.torn_records == 1
            assert len(journal) == 1  # the complete first task survives
            assert journal.lookup(tasks[0].task_key()) == results[0]
            assert tasks[1].task_key() not in journal
        assert "torn final record" in capsys.readouterr().err
        # The torn bytes are gone: the file ends on a complete line again.
        assert path.read_bytes().endswith(b"\n")

    def test_corrupt_middle_record_poisons_the_suffix(self, tmp_path, capsys):
        path, tasks, results = self._journal_with_two_tasks(tmp_path)
        lines = path.read_text().splitlines()
        lines[1] = "{ not json"
        path.write_text("\n".join(lines) + "\n")
        with CampaignJournal(path) as journal:
            assert journal.invalid_records == 1
            assert len(journal) == 0  # nothing after the corruption is kept
        assert "corrupt record" in capsys.readouterr().err

    def test_version_mismatch_discards_the_journal(self, tmp_path, capsys):
        path, tasks, _ = self._journal_with_two_tasks(tmp_path)
        lines = path.read_text().splitlines()
        meta = json.loads(lines[0])
        meta["journal_schema"] = JOURNAL_SCHEMA_VERSION + 1
        lines[0] = json.dumps(meta)
        path.write_text("\n".join(lines) + "\n")
        with CampaignJournal(path) as journal:
            assert len(journal) == 0
        assert "does not match this build" in capsys.readouterr().err
        # The discarded journal was rewritten with a fresh meta record.
        assert len(path.read_text().splitlines()) == 1

    def test_missing_meta_discards_the_journal(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        path.write_text('{"type": "task", "key": "k", "result": {}}\n')
        with CampaignJournal(path) as journal:
            assert len(journal) == 0
        assert "not journal metadata" in capsys.readouterr().err

    def test_empty_file_starts_fresh(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("")
        with CampaignJournal(path) as journal:
            assert len(journal) == 0
        assert len(path.read_text().splitlines()) == 1


class TestExecutorIntegration:
    def test_resumed_campaign_is_bit_identical(self, tmp_path):
        tasks = [_task(seed=s) for s in (1, 2, 3)]
        path = tmp_path / "run.jsonl"
        first = CampaignExecutor(jobs=2, cache_dir=tmp_path / "c1",
                                 journal=path)
        reference = first.run(tasks)
        first.close()
        # A second campaign with a cold cache serves everything journaled.
        second = CampaignExecutor(jobs=2, cache_dir=tmp_path / "c2",
                                  journal=path)
        results = second.run(tasks)
        second.close()
        assert results == reference
        assert second.stats.journaled == 3
        assert second.stats.executed == 0
        assert "from journal" in second.stats.summary()

    def test_partial_journal_resumes_only_the_remainder(self, tmp_path):
        # Explicit simulator so task_key() here matches the executed key
        # (the "auto" policy rewrites tasks, changing their hash).
        tasks = [_task(seed=s, simulator="slotted") for s in (1, 2, 3)]
        reference = CampaignExecutor(jobs=1,
                                     cache_dir=tmp_path / "ref").run(tasks)
        path = tmp_path / "run.jsonl"
        # Journal only the first cell, as if the campaign was killed there.
        with CampaignJournal(path) as journal:
            journal.record(tasks[0].task_key(), reference[0])
        executor = CampaignExecutor(jobs=1, cache_dir=tmp_path / "c",
                                    journal=path)
        results = executor.run(tasks)
        executor.close()
        assert results == reference
        assert executor.stats.journaled == 1
        assert executor.stats.executed == 2

    def test_journal_accepts_an_instance(self, tmp_path):
        journal = CampaignJournal(tmp_path / "run.jsonl")
        executor = CampaignExecutor(jobs=1, cache_dir=tmp_path / "c",
                                    journal=journal)
        assert executor.journal is journal
        executor.run([_task(seed=1)])
        assert len(journal) == 1
        executor.close()

    def test_journal_serves_before_the_cache(self, tmp_path):
        """Journal hits are counted as journaled, not cached, even when the
        cache also holds the cell."""
        task = _task(seed=1)
        path = tmp_path / "run.jsonl"
        cache_dir = tmp_path / "c"
        first = CampaignExecutor(jobs=1, cache_dir=cache_dir, journal=path)
        first.run([task])
        first.close()
        second = CampaignExecutor(jobs=1, cache_dir=cache_dir, journal=path)
        second.run([task])
        second.close()
        assert second.stats.journaled == 1
        assert second.stats.cached == 0

    def test_torn_journal_write_resumes_cleanly(self, tmp_path):
        """A journal torn mid-append (injected) loses only the torn cell."""
        tasks = [_task(seed=s) for s in (1, 2)]
        reference = CampaignExecutor(jobs=1,
                                     cache_dir=tmp_path / "ref").run(tasks)
        path = tmp_path / "run.jsonl"
        # Tear the *final* append (cell-2 completes last): a torn write is a
        # crash at that point, so nothing may be appended after it.
        faults = FaultPlan([FaultRule("torn-journal",
                                      label_contains="cell-2", times=1)],
                           state_dir=tmp_path / "faults")
        first = CampaignExecutor(jobs=1, cache_dir=tmp_path / "c1",
                                 journal=path, faults=faults)
        first.run(tasks)
        first.close()
        second = CampaignExecutor(jobs=1, cache_dir=tmp_path / "c2",
                                  journal=path)
        results = second.run(tasks)
        second.close()
        assert results == reference
        assert second.stats.journaled == 1  # the torn record was lost
        assert second.stats.executed == 1  # ...and re-simulated

    def test_quarantined_tasks_are_not_journaled(self, tmp_path):
        """A later resume retries a previously-poisoned cell."""
        task = _task(seed=1, label="poisoned", simulator="slotted")
        path = tmp_path / "run.jsonl"
        faults = FaultPlan(
            [FaultRule("error", label_contains="poisoned", times=3)],
            state_dir=tmp_path / "faults")
        first = CampaignExecutor(jobs=1, cache_dir=tmp_path / "c1",
                                 journal=path, task_retries=0,
                                 retry_backoff_s=0.01, faults=faults)
        [nothing] = first.run([task])
        first.close()
        assert nothing is None
        # The rule still has firings left but the resumed campaign gets a
        # fresh retry budget and eventually succeeds.
        second = CampaignExecutor(jobs=1, cache_dir=tmp_path / "c2",
                                  journal=path, task_retries=3,
                                  retry_backoff_s=0.01, faults=faults)
        [result] = second.run([task])
        second.close()
        assert result is not None
        assert second.stats.journaled == 0
