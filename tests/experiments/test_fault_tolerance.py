"""Fault-tolerance tests: injection harness, retries, recovery, degradation.

The load-bearing guarantee (the differential criterion): a campaign that
suffers injected worker crashes, hangs and poisoned tasks returns, for every
cell that is *not* quarantined, results bit-identical to an uninterrupted
fault-free campaign — on all four simulator backends.
"""

import pickle

import pytest

from repro.experiments.campaign import (
    CampaignExecutor,
    FailedTask,
    ResultCache,
    RunTask,
    SchemeSpec,
    TopologySpec,
)
from repro.experiments.campaign.executor import _MAX_BACKOFF_S
from repro.testing import (
    FaultPlan,
    FaultRule,
    InjectedCrash,
    InjectedFault,
    tear_file,
)


def _task(seed=1, label="", num_stations=4, **overrides):
    defaults = dict(
        scheme=SchemeSpec.make("standard-802.11"),
        topology=TopologySpec.connected(num_stations),
        seed=seed,
        duration=0.25,
        warmup=0.05,
        label=label or f"cell-{seed}",
    )
    defaults.update(overrides)
    return RunTask(**defaults)


def _executor(tmp_path, sub, **overrides):
    defaults = dict(jobs=1, cache_dir=tmp_path / sub, task_retries=2,
                    retry_backoff_s=0.01)
    defaults.update(overrides)
    return CampaignExecutor(**defaults)


class TestFaultRule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule("segfault")

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError, match="times"):
            FaultRule("error", times=0)

    def test_matches_by_key_prefix_and_label(self):
        rule = FaultRule("error", key_prefix="ab", label_contains="beta")
        assert rule.matches("abcdef", "the beta cell")
        assert not rule.matches("zzcdef", "the beta cell")
        assert not rule.matches("abcdef", "alpha")

    def test_empty_predicates_match_everything(self):
        assert FaultRule("error").matches("anykey", "any label")


class TestFaultPlan:
    def test_fires_limited_number_of_times(self, tmp_path):
        plan = FaultPlan([FaultRule("error", times=2)], state_dir=tmp_path)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                plan.inject("k", "l", allow_exit=False)
        plan.inject("k", "l", allow_exit=False)  # exhausted: no-op
        assert plan.fired(0) == 2

    def test_claims_are_shared_across_pickled_copies(self, tmp_path):
        """Marker files make times= budgets global across worker processes."""
        plan = FaultPlan([FaultRule("error", times=1)], state_dir=tmp_path)
        clone = pickle.loads(pickle.dumps(plan))
        with pytest.raises(InjectedFault):
            clone.inject("k", "l", allow_exit=False)
        plan.inject("k", "l", allow_exit=False)  # already claimed by clone
        assert plan.fired(0) == 1

    def test_crash_without_exit_raises_injected_crash(self, tmp_path):
        plan = FaultPlan([FaultRule("crash")], state_dir=tmp_path)
        with pytest.raises(InjectedCrash):
            plan.inject("k", "l", allow_exit=False)

    def test_unlimited_rule_rejects_fired_count(self, tmp_path):
        plan = FaultPlan([FaultRule("error", times=None)], state_dir=tmp_path)
        with pytest.raises(ValueError):
            plan.fired(0)

    def test_write_kinds_do_not_fire_at_execute_time(self, tmp_path):
        plan = FaultPlan([FaultRule("torn-cache")], state_dir=tmp_path)
        plan.inject("k", "l", allow_exit=False)  # no-op: a write-time rule


class TestTearFile:
    def test_truncates_final_record_midway(self, tmp_path):
        path = tmp_path / "file.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}\n{"c": 3}\n')
        tear_file(path)
        lines = path.read_bytes().split(b"\n")
        assert lines[0] == b'{"a": 1}'
        assert lines[1] == b'{"b": 2}'
        torn = lines[2]
        assert 0 < len(torn) < len(b'{"c": 3}')

    def test_single_record_file(self, tmp_path):
        path = tmp_path / "file.jsonl"
        path.write_text('{"only": "record"}\n')
        tear_file(path)
        data = path.read_bytes()
        assert 0 < len(data) < len(b'{"only": "record"}')


class TestRetries:
    def test_transient_error_is_retried_to_success(self, tmp_path):
        tasks = [_task(seed=s, simulator="slotted") for s in (1, 2)]
        reference = _executor(tmp_path, "ref").run(tasks)
        faults = FaultPlan([FaultRule("error", times=1)],
                           state_dir=tmp_path / "faults")
        executor = _executor(tmp_path, "c", faults=faults)
        results = executor.run(tasks)
        assert executor.stats.retries >= 1
        assert not executor.stats.failures
        assert results == reference

    def test_retry_budget_exhaustion_quarantines(self, tmp_path):
        tasks = [_task(seed=1, label="poisoned"), _task(seed=2, label="fine")]
        reference = _executor(tmp_path, "ref").run(tasks)
        faults = FaultPlan(
            [FaultRule("error", label_contains="poisoned", times=None)],
            state_dir=tmp_path / "faults")
        executor = _executor(tmp_path, "c", faults=faults)
        results = executor.run(tasks)
        assert results[0] is None
        assert results[1] == reference[1]
        [failed] = executor.stats.failures
        assert isinstance(failed, FailedTask)
        assert failed.label == "poisoned"
        assert failed.seed == 1
        assert "InjectedFault" in failed.error
        assert "InjectedFault" in failed.traceback
        assert failed.attempts >= executor.stats.retries
        assert "quarantined" in executor.stats.summary()

    def test_quarantine_does_not_abort_the_campaign(self, tmp_path):
        """A poisoned cell yields None in place, never an exception."""
        tasks = [_task(seed=s, label=f"s{s}") for s in (1, 2, 3)]
        faults = FaultPlan([FaultRule("error", label_contains="s2",
                                      times=None)],
                           state_dir=tmp_path / "faults")
        executor = _executor(tmp_path, "c", faults=faults)
        results = executor.run(tasks)
        assert [r is None for r in results] == [False, True, False]

    def test_backoff_is_deterministic_bounded_and_exponential(self, tmp_path):
        executor = _executor(tmp_path, "c", retry_backoff_s=0.1)
        key = "deadbeef" + "0" * 56
        first = executor._backoff_s(1, key)
        second = executor._backoff_s(2, key)
        assert first == executor._backoff_s(1, key)  # deterministic
        assert 0.05 <= first <= 0.15  # base 0.1 with jitter in [0.5, 1.5)
        assert second == pytest.approx(first * 2)
        assert executor._backoff_s(100, key) == _MAX_BACKOFF_S

    def test_retry_parameter_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CampaignExecutor(task_retries=-1)
        with pytest.raises(ValueError):
            CampaignExecutor(task_timeout_s=0)
        with pytest.raises(ValueError):
            CampaignExecutor(retry_backoff_s=-0.5)


class TestCrashRecovery:
    def test_worker_crash_is_recovered_bit_identically(self, tmp_path):
        tasks = [_task(seed=s, simulator="slotted") for s in (1, 2, 3)]
        reference = _executor(tmp_path, "ref").run(tasks)
        faults = FaultPlan([FaultRule("crash", times=1)],
                           state_dir=tmp_path / "faults")
        executor = _executor(tmp_path, "c", jobs=2, faults=faults)
        results = executor.run(tasks)
        assert executor.stats.recoveries >= 1
        assert not executor.stats.failures
        assert results == reference

    def test_repeated_crashes_of_one_task_quarantine_it(self, tmp_path):
        tasks = [_task(seed=1, label="crasher", simulator="slotted"),
                 _task(seed=2, label="fine", simulator="slotted")]
        reference = _executor(tmp_path, "ref").run(tasks)
        faults = FaultPlan(
            [FaultRule("crash", label_contains="crasher", times=None)],
            state_dir=tmp_path / "faults")
        executor = _executor(tmp_path, "c", jobs=2, task_retries=1,
                             faults=faults)
        results = executor.run(tasks)
        assert results[0] is None
        assert results[1] == reference[1]
        [failed] = executor.stats.failures
        assert failed.label == "crasher"
        assert executor.stats.recoveries >= 1

    def test_serial_mode_treats_crash_as_failure_not_exit(self, tmp_path):
        """jobs=1 runs in-process: injected crashes must not kill pytest."""
        faults = FaultPlan([FaultRule("crash", times=1)],
                           state_dir=tmp_path / "faults")
        executor = _executor(tmp_path, "c", jobs=1, faults=faults)
        [result] = executor.run([_task(seed=1, simulator="slotted")])
        assert result is not None
        assert executor.stats.retries == 1


class TestHangTimeout:
    def test_hung_worker_is_reclaimed_and_retried(self, tmp_path):
        tasks = [_task(seed=s, simulator="slotted") for s in (1, 2)]
        reference = _executor(tmp_path, "ref").run(tasks)
        faults = FaultPlan([FaultRule("hang", times=1, hang_s=30.0)],
                           state_dir=tmp_path / "faults")
        executor = _executor(tmp_path, "c", jobs=2, task_timeout_s=1.5,
                             faults=faults)
        results = executor.run(tasks)
        assert executor.stats.timeouts >= 1
        assert executor.stats.recoveries >= 1
        assert not executor.stats.failures
        assert results == reference

    def test_timeout_applies_even_to_a_single_unit(self, tmp_path):
        """One dispatchable unit must still run in the pool when a timeout
        is set — the serial fast path cannot reclaim a hung task."""
        faults = FaultPlan([FaultRule("hang", times=1, hang_s=30.0)],
                           state_dir=tmp_path / "faults")
        executor = _executor(tmp_path, "c", jobs=2, task_timeout_s=1.5,
                             faults=faults)
        [result] = executor.run([_task(seed=1, simulator="slotted")])
        assert result is not None
        assert executor.stats.timeouts == 1


class TestBatchedDegradation:
    def test_failed_group_is_split_without_charging_batch_mates(self, tmp_path):
        """One poisoned cell cannot take down its batch-mates: the group is
        split into singleton *batched* units (bit-identical re-execution) and
        only the poisoned cell is quarantined."""
        tasks = [_task(seed=s, label=f"s{s}") for s in (1, 2, 3)]
        reference = _executor(tmp_path, "ref").run(tasks)
        assert all(r.extra["simulator"] == "batched" for r in reference)
        faults = FaultPlan(
            [FaultRule("error", label_contains="s2", times=None)],
            state_dir=tmp_path / "faults")
        executor = _executor(tmp_path, "c", task_retries=1, faults=faults)
        results = executor.run(tasks)
        assert executor.stats.degraded_groups >= 1
        assert results[0] == reference[0]
        assert results[2] == reference[2]
        assert results[1] is None
        [failed] = executor.stats.failures
        assert failed.label == "s2"
        assert "split" in executor.stats.summary()

    def test_poisoned_batched_cell_degrades_to_scalar(self, tmp_path):
        """When only the batched kernel is poisoned (key-prefix rule: the
        scalar twin has a different task key), the cell survives on the
        scalar backend and the fallback is named in stats and telemetry."""
        # Pin simulator="batched" so the input task key IS the executed key
        # (under "auto" the planner rewrites the task, changing its hash).
        tasks = [_task(seed=s, label=f"s{s}", simulator="batched")
                 for s in (1, 2)]
        poisoned = tasks[0]
        faults = FaultPlan(
            [FaultRule("error", key_prefix=poisoned.task_key()[:16],
                       times=None)],
            state_dir=tmp_path / "faults")
        executor = _executor(tmp_path, "c", task_retries=1, faults=faults)
        results = executor.run(tasks)
        assert not executor.stats.failures
        assert executor.stats.scalar_retries == 1
        assert results[0] is not None
        assert results[0].extra["simulator"] == "slotted"
        assert results[1] is not None
        assert "degraded to scalar" in executor.stats.summary()

    def test_degraded_result_is_the_scalar_backends_result(self, tmp_path):
        """The degraded cell's result equals a plain scalar execution of the
        same cell — degradation changes the backend, nothing else."""
        task = _task(seed=7, label="victim", simulator="batched")
        scalar_twin = task.scalar_equivalent()
        [scalar_reference] = _executor(tmp_path, "ref").run([scalar_twin])
        faults = FaultPlan(
            [FaultRule("error", key_prefix=task.task_key()[:16], times=None)],
            state_dir=tmp_path / "faults")
        executor = _executor(tmp_path, "c", task_retries=0, faults=faults)
        [result] = executor.run([task])
        assert result == scalar_reference

    def test_scalar_equivalent_targets_the_right_simulator(self):
        connected = _task(seed=1)
        assert connected.scalar_equivalent().resolved_simulator() == "slotted"
        hidden = _task(seed=1, num_stations=6,
                       topology=TopologySpec.hidden_disc(6, 16.0, 1))
        assert hidden.scalar_equivalent().resolved_simulator() == "event"


class TestTornWrites:
    def test_torn_cache_write_is_quarantined_on_reload(self, tmp_path):
        task = _task(seed=1)
        faults = FaultPlan([FaultRule("torn-cache", times=1)],
                           state_dir=tmp_path / "faults")
        cache_dir = tmp_path / "cache"
        first = _executor(tmp_path, "ignored", cache_dir=cache_dir,
                          faults=faults)
        [reference] = first.run([task])
        # The stored entry is torn; a fresh campaign must quarantine it,
        # re-simulate, and still produce the identical result.
        second = CampaignExecutor(jobs=1, cache_dir=cache_dir)
        [result] = second.run([task])
        assert result == reference
        assert second.stats.cache_corrupt == 1
        assert second.stats.cached == 0
        assert "corrupt" in second.stats.summary()
        corrupt = list(cache_dir.glob("*.corrupt"))
        assert len(corrupt) == 1


class TestCorruptCacheQuarantine:
    def test_invalid_json_entry_is_renamed_and_warned(self, tmp_path, capsys):
        cache = ResultCache(tmp_path / "cache")
        task = _task(seed=1)
        path = cache.path_for(task.task_key())
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{ not json")
        assert cache.load(task.task_key()) is None
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()
        assert cache.corrupt_entries == 1
        assert "corrupt" in capsys.readouterr().err

    def test_malformed_payload_is_quarantined(self, tmp_path):
        import json
        cache = ResultCache(tmp_path / "cache")
        task = _task(seed=1)
        stored_path = cache.store(task, _executor(tmp_path, "x").run([task])[0])
        payload = json.loads(stored_path.read_text())
        payload["result"] = {"wrong": "shape"}
        stored_path.write_text(json.dumps(payload))
        assert cache.load(task.task_key()) is None
        assert cache.corrupt_entries == 1

    def test_quarantined_entries_do_not_count_as_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        task = _task(seed=1)
        path = cache.path_for(task.task_key())
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("garbage")
        cache.load(task.task_key())
        assert len(cache) == 0

    def test_version_mismatch_is_a_silent_miss_not_corruption(self, tmp_path):
        """Stale schema versions are expected churn, not data damage."""
        cache = ResultCache(tmp_path / "cache")
        task = _task(seed=1)
        result = _executor(tmp_path, "x").run([task])[0]
        stored_path = cache.store(task, result)
        import json
        payload = json.loads(stored_path.read_text())
        payload["schema_version"] = -1
        stored_path.write_text(json.dumps(payload))
        assert cache.load(task.task_key()) is None
        assert cache.corrupt_entries == 0
        assert stored_path.exists()


class TestGracefulInterrupt:
    def test_serial_interrupt_reports_partial_results(self, tmp_path, capsys):
        """Ctrl-C mid-campaign: stats survive, journal keeps finished cells,
        and the KeyboardInterrupt propagates for the CLI to turn into 130."""
        calls = []

        def interrupt_after_first(event):
            calls.append(event)
            if len(calls) == 1:
                raise KeyboardInterrupt

        journal_path = tmp_path / "run.jsonl"
        executor = CampaignExecutor(jobs=1, cache_dir=tmp_path / "c",
                                    journal=journal_path,
                                    progress=interrupt_after_first)
        tasks = [_task(seed=s) for s in (1, 2, 3)]
        with pytest.raises(KeyboardInterrupt):
            executor.run(tasks)
        executor.close()
        assert executor.stats.executed == 1
        assert "interrupted" in capsys.readouterr().err
        # The journal holds the completed cell and resumes cleanly.
        resumed = CampaignExecutor(jobs=1, cache_dir=tmp_path / "c2",
                                   journal=journal_path)
        results = resumed.run(tasks)
        assert all(r is not None for r in results)
        assert resumed.stats.journaled == 1


BACKEND_GRIDS = {
    "slotted": dict(simulator="slotted"),
    "event": dict(simulator="event"),
    "batched-renewal": dict(),  # connected + auto -> renewal-slot kernel
    "conflict-matrix": dict(num_stations=6),  # hidden + auto
}


@pytest.mark.parametrize("backend", sorted(BACKEND_GRIDS))
class TestDifferentialFaultSuite:
    """Acceptance criterion: crashed-and-recovered == uninterrupted, for
    every backend; the deliberately poisoned task is quarantined by name and
    every other cell is bit-identical to the fault-free campaign."""

    def _tasks(self, backend):
        overrides = dict(BACKEND_GRIDS[backend])
        tasks = []
        for seed in (1, 2, 3, 4):
            cell = dict(overrides)
            if backend == "conflict-matrix":
                n = cell.pop("num_stations")
                cell["num_stations"] = n
                cell["topology"] = TopologySpec.hidden_disc(n, 16.0, seed)
            tasks.append(_task(seed=seed, label=f"{backend}-s{seed}", **cell))
        return tasks

    def test_faulted_campaign_matches_fault_free(self, tmp_path, backend):
        tasks = self._tasks(backend)
        reference = _executor(tmp_path, "ref").run(tasks)
        faults = FaultPlan(
            [
                FaultRule("crash", label_contains="-s1", times=1),
                FaultRule("hang", label_contains="-s2", times=1, hang_s=30.0),
                FaultRule("error", label_contains="-s3", times=None),
            ],
            state_dir=tmp_path / "faults",
        )
        executor = _executor(tmp_path, "c", jobs=2, task_timeout_s=2.0,
                             faults=faults)
        results = executor.run(tasks)
        # The poisoned cell is quarantined by name...
        assert results[2] is None
        [failed] = executor.stats.failures
        assert failed.label == f"{backend}-s3"
        assert failed.reason in ("error", "crash", "timeout")
        # ...and every survivor is bit-identical to the fault-free run.
        for index in (0, 1, 3):
            assert results[index] == reference[index], (
                f"{backend}: cell {index} diverged after fault recovery")
        # The crash rebuilt the pool at least once.  (No assertion on
        # stats.timeouts: when the crash and the hang overlap in flight, the
        # crash-triggered rebuild kills the hung worker too — the hang is
        # then absorbed by recovery rather than the timeout path.  The
        # timeout path is covered deterministically in TestHangTimeout.)
        assert executor.stats.recoveries >= 1
