"""End-to-end crash/interrupt recovery through the real CLI.

These tests drive ``python -m repro.experiments`` as a genuine subprocess:
SIGKILL models a machine-level failure (OOM killer, power loss), SIGINT a
user's Ctrl-C.  The acceptance criterion is byte-identical output files
after resuming from the journal.
"""

import os
import pathlib
import signal
import subprocess
import sys
import time

SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")


def _run(args, cwd, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments", *args],
        cwd=cwd, env=env, capture_output=True, text=True, timeout=300,
        **kwargs,
    )


def _popen(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.experiments", *args],
        cwd=cwd, env=env, stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL, start_new_session=True,
    )


def _wait_for_journal(path, min_lines, process, timeout_s=120.0):
    """Block until the journal holds ``min_lines`` complete lines."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise AssertionError(
                f"campaign exited (rc={process.returncode}) before the "
                f"journal reached {min_lines} lines")
        try:
            lines = path.read_bytes().count(b"\n")
        except OSError:
            lines = 0
        if lines >= min_lines:
            return
        time.sleep(0.05)
    raise AssertionError(f"journal never reached {min_lines} lines")


CAMPAIGN = ["fig3", "--preset", "quick", "--jobs", "2"]


class TestKillResume:
    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        reference = _run(
            CAMPAIGN + ["--output", "ref", "--cache-dir", "refcache",
                        "--journal", "ref.jsonl"],
            cwd=tmp_path)
        assert reference.returncode == 0, reference.stderr
        ref_text = (tmp_path / "ref" / "fig3.txt").read_bytes()

        journal = tmp_path / "run.jsonl"
        process = _popen(
            CAMPAIGN + ["--output", "out", "--cache-dir", "cache",
                        "--journal", "run.jsonl"],
            cwd=tmp_path)
        try:
            # Wait for meta + a few completed cells, then pull the plug.
            _wait_for_journal(journal, 4, process)
        finally:
            if process.poll() is None:
                process.kill()
            process.wait(timeout=30)

        resumed = _run(
            CAMPAIGN + ["--output", "out", "--cache-dir", "cache2",
                        "--journal", "run.jsonl", "--resume"],
            cwd=tmp_path)
        assert resumed.returncode == 0, resumed.stderr
        assert "from journal" in resumed.stdout
        assert (tmp_path / "out" / "fig3.txt").read_bytes() == ref_text

    def test_sigint_exits_130_without_traceback(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments",
             *CAMPAIGN, "--output", "out", "--cache-dir", "cache",
             "--journal", "run.jsonl"],
            cwd=tmp_path, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True, start_new_session=True,
        )
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if process.poll() is not None:
                    break
                try:
                    if journal.read_bytes().count(b"\n") >= 3:
                        break
                except OSError:
                    pass
                time.sleep(0.05)
            assert process.poll() is None, "campaign finished before SIGINT"
            os.killpg(process.pid, signal.SIGINT)
            stdout, stderr = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
        assert process.returncode == 130, (stdout, stderr)
        assert "interrupted" in stderr
        assert "Traceback" not in stderr

    def test_resume_flag_requires_journal(self, tmp_path):
        result = _run(["fig3", "--resume"], cwd=tmp_path)
        assert result.returncode == 2
        assert "--journal" in result.stderr
