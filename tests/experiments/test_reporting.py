"""Tests for the experiment result structures and text rendering."""

import math

import pytest

from repro.experiments.reporting import format_result, format_table, summarize_series
from repro.experiments.runner import ExperimentResult, ExperimentRow


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["bb", 2.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert "1.235" in lines[2]
        assert "2.000" in lines[3]

    def test_precision_control(self):
        text = format_table(["v"], [[3.14159]], precision=1)
        assert "3.1" in text and "3.14" not in text

    def test_string_cells_pass_through(self):
        text = format_table(["v"], [["54 Mbps"]])
        assert "54 Mbps" in text

    def test_rejects_mismatched_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])
        with pytest.raises(ValueError):
            format_table([], [])


class TestExperimentResult:
    def make_result(self):
        rows = (
            ExperimentRow(label="N=10", values={"x": 1.0, "y": 2.0}),
            ExperimentRow(label="N=20", values={"x": 3.0}),
        )
        return ExperimentResult(
            name="Demo", description="demo experiment",
            columns=("x", "y"), rows=rows, metadata={"seeds": (1,)},
        )

    def test_column_extraction_with_missing_cells(self):
        result = self.make_result()
        assert result.column("x") == [1.0, 3.0]
        ys = result.column("y")
        assert ys[0] == 2.0 and math.isnan(ys[1])

    def test_row_labels(self):
        assert self.make_result().row_labels() == ["N=10", "N=20"]

    def test_format_result_includes_all_parts(self):
        text = format_result(self.make_result())
        assert "== Demo ==" in text
        assert "demo experiment" in text
        assert "seeds" in text
        assert "N=20" in text


class TestSummarizeSeries:
    def test_summary_reports_maximum(self):
        text = summarize_series([1, 2, 3], [5.0, 9.0, 7.0], "p", "throughput")
        assert "max 9.000 at p=2" in text

    def test_rejects_mismatched_series(self):
        with pytest.raises(ValueError):
            summarize_series([1, 2], [1.0])
