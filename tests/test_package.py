"""Package-level sanity tests: version, public exports, subpackage wiring."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version_is_semver_like(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_default_phy_exported(self):
        assert repro.DEFAULT_PHY == repro.PhyParameters()


SUBPACKAGES = [
    "repro.phy",
    "repro.topology",
    "repro.mac",
    "repro.core",
    "repro.sim",
    "repro.analysis",
    "repro.experiments",
]


class TestSubpackages:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_importable(self, name):
        module = importlib.import_module(name)
        assert module is not None

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_all_names_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"

    def test_scheme_names_usable_end_to_end(self):
        # The four paper schemes can all be instantiated through the registry
        # and produce policies plus a controller.
        from repro.mac import SCHEME_NAMES, scheme_by_name

        for name in SCHEME_NAMES:
            scheme = scheme_by_name(name)
            policies = scheme.make_policies(3)
            assert len(policies) == 3
            assert scheme.make_controller() is not None
