"""Tests for cProfile collection, cross-process merge and summaries."""

import cProfile
import pickle

from repro.telemetry.profiling import (
    hotspot_report,
    merge_stats,
    stats_dict,
    top_hotspots,
)


def _busy(n=2000):
    return sum(i * i for i in range(n))


def _profiled_stats():
    profiler = cProfile.Profile()
    profiler.enable()
    _busy()
    profiler.disable()
    return stats_dict(profiler)


def _ncalls(stats, name):
    for (_file, _line, func), (_cc, nc, _tt, _ct, _callers) in stats.items():
        if func == name:
            return nc
    return 0


class TestStatsDict:
    def test_picklable(self):
        stats = _profiled_stats()
        assert pickle.loads(pickle.dumps(stats)) == stats

    def test_contains_profiled_function(self):
        assert _ncalls(_profiled_stats(), "_busy") == 1


class TestMergeStats:
    def test_empty_input_merges_to_none(self):
        assert merge_stats([]) is None
        assert merge_stats([{}, {}]) is None

    def test_merge_adds_call_counts(self):
        dicts = [_profiled_stats(), _profiled_stats(), {}]
        merged = merge_stats(dicts)
        assert _ncalls(merged.stats, "_busy") == 2


class TestSummaries:
    def test_top_hotspots_sorted_and_limited(self):
        rows = top_hotspots([_profiled_stats()], limit=3)
        assert 0 < len(rows) <= 3
        cums = [row["cumtime"] for row in rows]
        assert cums == sorted(cums, reverse=True)
        for row in rows:
            assert set(row) == {"func", "ncalls", "tottime", "cumtime"}

    def test_hotspots_name_the_profiled_function(self):
        rows = top_hotspots([_profiled_stats()], limit=50)
        assert any("_busy" in row["func"] for row in rows)

    def test_hotspot_report_renders(self):
        report = hotspot_report([_profiled_stats(), _profiled_stats()],
                                limit=5)
        assert "2 unit(s) of work aggregated" in report
        assert "cumulative" in report
        assert "_busy" in report

    def test_hotspot_report_without_data(self):
        assert hotspot_report([]) == "no profile data collected"
