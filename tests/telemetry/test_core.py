"""Tests for the core telemetry collector (spans, counters, sessions)."""

import os

import pytest

from repro.telemetry import NULL, NullTelemetry, Telemetry, current, session


class TestTelemetry:
    def test_emit_keeps_records_and_stamps_pid(self):
        tel = Telemetry()
        tel.emit({"type": "meta", "t0": 0.0, "info": {}, "schema": 1})
        assert len(tel.records) == 1
        assert tel.records[0]["pid"] == os.getpid()

    def test_emit_respects_existing_pid(self):
        tel = Telemetry()
        tel.emit({"type": "counters", "pid": 12345})
        assert tel.records[0]["pid"] == 12345

    def test_sink_receives_every_record(self):
        sunk = []
        tel = Telemetry(sink=sunk.append, keep_records=False)
        tel.counter("slotted", "busy_slots", 3)
        assert tel.records == []
        assert len(sunk) == 1
        assert sunk[0]["counters"] == {"busy_slots": 3}

    def test_sink_exceptions_propagate(self):
        def broken(record):
            raise OSError("disk full")

        tel = Telemetry(sink=broken)
        with pytest.raises(OSError):
            tel.counter("slotted", "busy_slots", 1)

    def test_span_records_name_duration_and_args(self):
        tel = Telemetry()
        with tel.span("plan", tasks=7) as args:
            args["unique"] = 5
        [record] = tel.records
        assert record["type"] == "span"
        assert record["name"] == "plan"
        assert record["dur"] >= 0
        assert record["args"] == {"tasks": 7, "unique": 5}

    def test_span_emits_even_when_body_raises(self):
        tel = Telemetry()
        with pytest.raises(RuntimeError):
            with tel.span("execute"):
                raise RuntimeError("boom")
        assert [r["name"] for r in tel.records] == ["execute"]

    def test_counters_record_shape(self):
        tel = Telemetry()
        tel.counters("batched", {"loop_iterations": 10, "cells": 4}, note="x")
        [record] = tel.records
        assert record["type"] == "counters"
        assert record["scope"] == "batched"
        assert record["counters"] == {"loop_iterations": 10, "cells": 4}
        assert record["args"] == {"note": "x"}


class TestNullTelemetry:
    def test_disabled_and_inert(self):
        assert NULL.enabled is False
        NULL.emit({"type": "span"})
        NULL.counter("slotted", "x", 1)
        NULL.counters("slotted", {"x": 1})
        with NULL.span("plan", tasks=3) as args:
            args["extra"] = 1  # accepted and dropped
        assert NULL.records == []

    def test_singleton_records_list_stays_empty(self):
        assert NullTelemetry().records is NULL.records


class TestSession:
    def test_default_is_null(self):
        assert current() is NULL

    def test_session_activates_and_restores(self):
        tel = Telemetry()
        with session(tel):
            assert current() is tel
        assert current() is NULL

    def test_sessions_nest(self):
        outer, inner = Telemetry(), Telemetry()
        with session(outer):
            with session(inner):
                assert current() is inner
            assert current() is outer
        assert current() is NULL

    def test_none_deactivates(self):
        with session(Telemetry()):
            with session(None):
                assert current() is NULL

    def test_restores_on_exception(self):
        tel = Telemetry()
        with pytest.raises(ValueError):
            with session(tel):
                raise ValueError("boom")
        assert current() is NULL
