"""Tests for JSONL trace persistence, schema validation and Chrome export."""

import json

import numpy as np
import pytest

from repro.telemetry import Telemetry
from repro.telemetry.trace import (
    RECORD_TYPES,
    TRACE_SCHEMA_VERSION,
    JsonlTraceWriter,
    chrome_trace,
    read_trace,
    validate_record,
    validate_trace_file,
    write_chrome_trace,
)

PID = 1234


def meta(**info):
    return {"type": "meta", "pid": PID, "t0": 100.0,
            "schema": TRACE_SCHEMA_VERSION, "info": info}


def span(name="plan", t0=100.0, dur=0.5, **args):
    return {"type": "span", "pid": PID, "name": name, "t0": t0, "dur": dur,
            "args": args}


def task(key="k1", source="run", **overrides):
    record = {
        "type": "task", "pid": PID, "key": key, "label": "cell",
        "backend": "batched", "source": source,
        "cache_hit": source == "cache", "t0": 101.0, "group": 0,
        "worker_pid": PID, "queue_wait_s": 0.01, "execute_s": 0.5,
        "cells_per_s": 2.0, "fallback_reason": None,
    }
    record.update(overrides)
    return record


def counters(scope="batched", **values):
    values = values or {"loop_iterations": 10}
    return {"type": "counters", "pid": PID, "scope": scope, "t0": 100.5,
            "counters": values}


def profile():
    return {"type": "profile", "pid": PID, "t0": 102.0, "units": 2,
            "top": [{"func": "batched.py:10(run)", "ncalls": 4,
                     "tottime": 0.2, "cumtime": 0.9}]}


class TestJsonlTraceWriter:
    def test_streams_sorted_flushed_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceWriter(path) as writer:
            writer.write(meta(jobs=1))
            writer.write(counters())
            assert writer.count == 2
            # flushed per line: readable before close
            assert len(path.read_text().splitlines()) == 2
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["type"] == "meta"

    def test_write_after_close_raises(self, tmp_path):
        writer = JsonlTraceWriter(tmp_path / "t.jsonl")
        writer.close()
        with pytest.raises(ValueError, match="closed"):
            writer.write(meta())

    def test_creates_parent_directories(self, tmp_path):
        writer = JsonlTraceWriter(tmp_path / "deep" / "dir" / "t.jsonl")
        writer.write(meta())
        writer.close()
        assert (tmp_path / "deep" / "dir" / "t.jsonl").exists()

    def test_numpy_scalars_serialise(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTraceWriter(path) as writer:
            writer.write(counters(busy_slots=np.int64(7),
                                  rate=np.float64(1.5)))
        [record] = read_trace(path)
        assert record["counters"] == {"busy_slots": 7, "rate": 1.5}

    def test_unserialisable_fields_fail_loudly(self, tmp_path):
        with JsonlTraceWriter(tmp_path / "t.jsonl") as writer:
            with pytest.raises(TypeError, match="not JSON-serialisable"):
                writer.write({"type": "meta", "bad": object()})

    def test_telemetry_sink_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTraceWriter(path) as writer:
            tel = Telemetry(sink=writer.write, keep_records=False)
            with tel.span("plan", tasks=2):
                tel.counters("slotted", {"busy_slots": 1})
        records = read_trace(path)
        assert [r["type"] for r in records] == ["counters", "span"]
        for record in records:
            validate_record(record)


class TestValidateRecord:
    @pytest.mark.parametrize("record", [
        meta(experiments="fig3"), span(), task(), task(source="cache"),
        counters(), profile(),
    ])
    def test_valid_records_return_their_type(self, record):
        assert validate_record(record) == record["type"]
        assert record["type"] in RECORD_TYPES

    @pytest.mark.parametrize("record, message", [
        ("not a dict", "JSON object"),
        ({"type": "bogus", "pid": PID}, "unknown record type"),
        ({"type": "span", "name": "x", "t0": 0.0, "dur": 0.1, "args": {}},
         "'pid'"),
        (dict(meta(), schema=99), "'schema'"),
        (dict(span(), name=""), "'name'"),
        (dict(span(), dur=-1.0), "'dur'"),
        (dict(span(), args=None), "'args'"),
        (dict(task(), source="wormhole"), "'source'"),
        (dict(task(), cache_hit="yes"), "'cache_hit'"),
        (dict(task(), cells_per_s=-2.0), "'cells_per_s'"),
        (dict(task(), fallback_reason=""), "'fallback_reason'"),
        (dict(counters(), counters={}), "non-empty"),
        ({"type": "counters", "pid": PID, "scope": "batched", "t0": 0.0,
          "counters": {"x": "fast"}}, "must be a number"),
        (dict(profile(), top=[{"func": "", "ncalls": 1, "tottime": 0.0,
                               "cumtime": 0.0}]), "'func'"),
    ])
    def test_invalid_records_raise(self, record, message):
        with pytest.raises(ValueError, match=message):
            validate_record(record)

    def test_booleans_are_not_numbers(self):
        with pytest.raises(ValueError, match="'t0'"):
            validate_record(dict(span(), t0=True))


class TestValidateTraceFile:
    def write(self, tmp_path, records):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceWriter(path) as writer:
            for record in records:
                writer.write(record)
        return path

    def test_counts_per_type(self, tmp_path):
        path = self.write(tmp_path, [meta(), span(), span(name="execute"),
                                     task(), counters(), profile()])
        counts = validate_trace_file(path)
        assert counts == {"meta": 1, "span": 2, "task": 1, "counters": 1,
                          "profile": 1, "probe": 0}

    def test_empty_file_is_invalid(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(ValueError, match="no records"):
            validate_trace_file(path)

    def test_trace_without_meta_is_invalid(self, tmp_path):
        path = self.write(tmp_path, [span(), counters()])
        with pytest.raises(ValueError, match="no 'meta'"):
            validate_trace_file(path)

    def test_error_names_the_line(self, tmp_path):
        path = self.write(tmp_path, [meta(), dict(span(), dur=-1.0)])
        with pytest.raises(ValueError, match=r"trace\.jsonl:2:"):
            validate_trace_file(path)

    def test_broken_json_names_the_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps(meta()) + "\n{not json\n", encoding="utf-8")
        with pytest.raises(ValueError, match=r":2: not valid JSON"):
            validate_trace_file(path)

    def test_blank_lines_are_ignored(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps(meta()) + "\n\n" + json.dumps(span()) + "\n",
                        encoding="utf-8")
        assert validate_trace_file(path)["span"] == 1


class TestChromeTrace:
    def test_spans_and_run_tasks_become_complete_events(self):
        out = chrome_trace([meta(), span(t0=100.0, dur=0.5),
                            task(t0=101.0, execute_s=0.5)])
        by_cat = {event["cat"]: event for event in out["traceEvents"]}
        assert by_cat["span"]["ph"] == "X"
        assert by_cat["span"]["dur"] == pytest.approx(0.5e6)
        assert by_cat["task"]["ph"] == "X"
        # t0 is completion time; the event starts execute_s earlier.
        assert by_cat["task"]["ts"] == pytest.approx(
            by_cat["span"]["ts"] + 0.5e6)

    def test_timestamps_are_relative_to_earliest_record(self):
        out = chrome_trace([meta(), span(t0=100.0)])
        assert min(e["ts"] for e in out["traceEvents"]) == pytest.approx(0.0)

    def test_cache_hits_and_counters_are_instants(self):
        out = chrome_trace([task(source="cache", execute_s=None,
                                 worker_pid=None, queue_wait_s=None,
                                 cells_per_s=None, group=None),
                            counters()])
        phases = [event["ph"] for event in out["traceEvents"]]
        assert phases == ["i", "i"]

    def test_tasks_land_on_their_worker_timeline(self):
        out = chrome_trace([task(worker_pid=777)])
        [event] = out["traceEvents"]
        assert event["pid"] == 777

    def test_write_chrome_trace_round_trips(self, tmp_path):
        path = write_chrome_trace([meta(), span(), task()],
                                  tmp_path / "out" / "trace.chrome.json")
        data = json.loads(path.read_text())
        assert data["displayTimeUnit"] == "ms"
        assert len(data["traceEvents"]) == 3


class TestTornTail:
    """A writer killed mid-record leaves a torn final line; validation and
    reading must be able to keep the valid prefix on request."""

    def write_torn(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        lines = [json.dumps(meta()), json.dumps(span()),
                 '{"type": "task", "key": "k9", "la']  # torn mid-write
        path.write_text("\n".join(lines), encoding="utf-8")
        return path

    def test_torn_tail_rejected_by_default(self, tmp_path):
        path = self.write_torn(tmp_path)
        with pytest.raises(ValueError, match="not valid JSON"):
            validate_trace_file(path)

    def test_allow_torn_tail_counts_it(self, tmp_path):
        path = self.write_torn(tmp_path)
        counts = validate_trace_file(path, allow_torn_tail=True)
        assert counts["torn_tail"] == 1
        assert counts["meta"] == 1
        assert counts["span"] == 1

    def test_allow_torn_tail_reports_zero_on_clean_files(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceWriter(path) as writer:
            writer.write(meta())
            writer.write(span())
        counts = validate_trace_file(path, allow_torn_tail=True)
        assert counts["torn_tail"] == 0

    def test_torn_mid_file_record_is_still_invalid(self, tmp_path):
        """Only the FINAL record may be torn: damage anywhere else is
        corruption, with or without the allowance."""
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps(meta()) + "\n{torn\n"
                        + json.dumps(span()) + "\n", encoding="utf-8")
        with pytest.raises(ValueError, match=":2: not valid JSON"):
            validate_trace_file(path, allow_torn_tail=True)

    def test_read_trace_skip_torn_tail(self, tmp_path):
        path = self.write_torn(tmp_path)
        records = read_trace(path, skip_torn_tail=True)
        assert [r["type"] for r in records] == ["meta", "span"]

    def test_read_trace_still_raises_without_skip(self, tmp_path):
        path = self.write_torn(tmp_path)
        with pytest.raises(ValueError):
            read_trace(path)


class TestFailedTaskRecords:
    def test_failed_source_is_valid(self):
        record = task(source="failed", cache_hit=False)
        record["failure_reason"] = "error"
        record["error"] = "InjectedFault: boom"
        record["attempts"] = 3
        assert validate_record(record) == "task"

    def test_journal_source_is_valid(self):
        assert validate_record(task(source="journal", cache_hit=False)) == "task"
