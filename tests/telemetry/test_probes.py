"""Unit tests for the simulator probe layer (repro.telemetry.probes).

Covers the pieces the differential tests treat as a black box: config
validation, ambient-session nesting, ring-buffer decimation (the uniform
grid invariant), record construction (NaN -> None), schema-v2 round-trips
through the JSONL writer/validator/reader, and the Chrome counter-track
export with its skipped-record summary.
"""

import json
import math

import pytest

from repro.telemetry import ProbeBuffer, ProbeConfig
from repro.telemetry import probes
from repro.telemetry.trace import (
    JsonlTraceWriter,
    TRACE_SCHEMA_VERSION,
    chrome_trace,
    read_trace,
    validate_record,
    validate_trace_file,
)


def make_probe_record(**overrides):
    record = {
        "type": "probe",
        "scope": "slotted",
        "pid": 123,
        "t0": 1000.0,
        "interval": 0.5,
        "stride": 1,
        "seed": 7,
        "cell": None,
        "t": [0.5, 1.0, 1.5],
        "series": {"cw[0]": [16.0, 32.0, 16.0],
                   "busy_frac": [0.25, None, 0.75]},
    }
    record.update(overrides)
    return record


class TestProbeConfig:
    def test_validates_interval(self):
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                ProbeConfig(bad)

    def test_validates_capacity(self):
        with pytest.raises(ValueError):
            ProbeConfig(0.5, capacity=1)

    def test_session_nesting_restores_previous(self):
        outer, inner = ProbeConfig(1.0), ProbeConfig(0.5)
        assert probes.current() is None
        with probes.session(outer):
            assert probes.current() is outer
            with probes.session(inner):
                assert probes.current() is inner
            assert probes.current() is outer
        assert probes.current() is None


class TestProbeBufferDecimation:
    def test_uniform_grid_survives_decimation(self):
        buffer = ProbeBuffer(capacity=8)
        for tick in range(100):
            buffer.sample(0.5 * (tick + 1), {"x": float(tick)})
        times = buffer.times
        assert len(times) <= 8
        # Decimation must keep one uniform grid: equal consecutive spacing.
        deltas = {round(b - a, 9) for a, b in zip(times, times[1:])}
        assert len(deltas) == 1
        # The stride is a power of two and matches the surviving spacing.
        assert buffer.stride & (buffer.stride - 1) == 0
        assert math.isclose(times[1] - times[0], 0.5 * buffer.stride)

    def test_no_decimation_below_capacity(self):
        buffer = ProbeBuffer(capacity=16)
        for tick in range(10):
            buffer.sample(float(tick + 1), {"x": 1.0})
        assert buffer.stride == 1
        assert len(buffer.times) == 10

    def test_values_track_their_times_through_decimation(self):
        buffer = ProbeBuffer(capacity=4)
        for tick in range(32):
            buffer.sample(float(tick + 1), {"x": float(tick + 1)})
        assert buffer.times == pytest.approx(list(buffer.series["x"]))

    def test_late_series_backfilled_with_nan(self):
        buffer = ProbeBuffer(capacity=8)
        buffer.sample(1.0, {"x": 1.0})
        buffer.sample(2.0, {"x": 2.0, "y": 20.0})
        y = buffer.series["y"]
        assert math.isnan(y[0]) and y[1] == 20.0


class TestProbeRecordConstruction:
    def test_empty_buffer_yields_none(self):
        buffer = ProbeBuffer(capacity=8)
        config = ProbeConfig(0.5)
        assert probes.probe_record("slotted", buffer, config, 0.0) is None

    def test_nan_becomes_none(self):
        buffer = ProbeBuffer(capacity=8)
        buffer.sample(0.5, {"x": 1.0})
        buffer.sample(1.0, {"x": 2.0, "y": 3.0})
        record = probes.probe_record("slotted", buffer, ProbeConfig(0.5),
                                     1000.0, seed=1)
        assert record["series"]["y"] == [None, 3.0]
        record["pid"] = 1  # Telemetry.emit stamps the pid on real records
        validate_record(record)

    def test_cell_and_seed_are_ints(self):
        import numpy as np

        buffer = ProbeBuffer(capacity=8)
        buffer.sample(0.5, {"x": 1.0})
        record = probes.probe_record("batched", buffer, ProbeConfig(0.5),
                                     0.0, seed=np.int64(3), cell=np.int64(1))
        assert type(record["seed"]) is int and type(record["cell"]) is int
        record["pid"] = 1
        validate_record(record)


class TestSchemaV2RoundTrip:
    def test_probe_record_round_trips_through_writer(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceWriter(path) as writer:
            writer.write({"type": "meta", "pid": 1, "t0": 0.0,
                          "schema": TRACE_SCHEMA_VERSION, "info": {}})
            writer.write(make_probe_record())
        counts = validate_trace_file(path)
        assert counts["probe"] == 1
        [_, record] = read_trace(path)
        assert record["series"]["busy_frac"] == [0.25, None, 0.75]
        assert record["stride"] == 1

    def test_schema_v1_meta_still_validates(self):
        validate_record({"type": "meta", "pid": 1, "t0": 0.0,
                         "schema": 1, "info": {}})

    @pytest.mark.parametrize("corruption", [
        {"scope": ""},
        {"interval": 0.0},
        {"stride": 0},
        {"t": []},
        {"t": [0.5, "x"]},
        {"series": {"cw[0]": [1.0]}},          # length mismatch with t
        {"series": {"cw[0]": [1.0, "a", 2.0]}},
        {"cell": 1.5},
    ])
    def test_invalid_probe_records_rejected(self, corruption):
        with pytest.raises(ValueError):
            validate_record(make_probe_record(**corruption))


class TestChromeCounterExport:
    def test_probe_series_become_counter_events(self):
        trace = chrome_trace([make_probe_record()])
        counters = [e for e in trace["traceEvents"] if e.get("ph") == "C"]
        # 3 cw samples + 2 non-None busy_frac samples.
        assert len(counters) == 5
        names = {e["name"] for e in counters}
        assert names == {"probe:slotted/cw[0]", "probe:slotted/busy_frac"}
        assert all("value" in e["args"] for e in counters)

    def test_cell_suffix_in_track_name(self):
        trace = chrome_trace([make_probe_record(scope="batched", cell=2)])
        names = {e["name"] for e in trace["traceEvents"] if e.get("ph") == "C"}
        assert "probe:batched[2]/cw[0]" in names

    def test_unknown_record_types_are_counted_not_dropped_silently(self):
        trace = chrome_trace([
            make_probe_record(),
            {"type": "mystery", "pid": 1, "t0": 0.0},
            {"type": "mystery", "pid": 1, "t0": 0.0},
        ])
        assert trace["skippedRecordTypes"] == {"mystery": 2}

    def test_no_skipped_key_when_everything_exports(self):
        trace = chrome_trace([make_probe_record()])
        assert "skippedRecordTypes" not in trace

    def test_chrome_trace_is_json_serialisable(self):
        json.dumps(chrome_trace([make_probe_record()]))
