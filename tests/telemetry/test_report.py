"""Tests for the human trace summary and the ``trace-report`` subcommand."""

import json

import pytest

from repro.experiments.__main__ import main as experiments_main
from repro.telemetry.trace import TRACE_SCHEMA_VERSION, JsonlTraceWriter
from repro.telemetry.report import render_report, trace_report_main

PID = 4321


def _records():
    return [
        {"type": "meta", "pid": PID, "t0": 100.0,
         "schema": TRACE_SCHEMA_VERSION,
         "info": {"experiments": "fig3", "jobs": 2}},
        {"type": "span", "pid": PID, "name": "plan", "t0": 100.0,
         "dur": 0.01, "args": {"tasks": 2}},
        {"type": "span", "pid": PID, "name": "execute", "t0": 100.1,
         "dur": 1.5, "args": {}},
        {"type": "task", "pid": PID, "key": "k1", "label": "cell-a",
         "backend": "batched", "source": "run", "cache_hit": False,
         "t0": 101.0, "group": 0, "worker_pid": 777, "queue_wait_s": 0.05,
         "execute_s": 0.8, "cells_per_s": 1.25, "fallback_reason": None},
        {"type": "task", "pid": PID, "key": "k2", "label": "cell-b",
         "backend": "event", "source": "cache", "cache_hit": True,
         "t0": 101.1, "group": None, "worker_pid": None,
         "queue_wait_s": None, "execute_s": None, "cells_per_s": None,
         "fallback_reason": "activity schedule"},
        {"type": "counters", "pid": PID, "scope": "batched", "t0": 100.5,
         "counters": {"loop_iterations": 40, "busy_slots": 12}},
        {"type": "counters", "pid": PID, "scope": "batched", "t0": 100.9,
         "counters": {"loop_iterations": 10, "busy_slots": 3}},
        {"type": "profile", "pid": PID, "t0": 102.0, "units": 1,
         "top": [{"func": "batched.py:10(run)", "ncalls": 4,
                  "tottime": 0.2, "cumtime": 0.9}]},
    ]


class TestRenderReport:
    def test_all_sections_present(self):
        text = render_report(_records())
        assert "campaign: experiments=fig3, jobs=2" in text
        assert "phases (by total time)" in text
        assert "tasks (by backend)" in text
        assert "backend fallbacks" in text
        assert "simulator counters (summed over runs)" in text
        assert "profile hotspots" in text

    def test_phases_sorted_by_total_time(self):
        text = render_report(_records())
        assert text.index("execute") < text.index("plan")

    def test_counters_are_summed_across_runs(self):
        lines = render_report(_records()).splitlines()
        [row] = [l for l in lines if "loop_iterations" in l]
        assert "50" in row and "2" in row  # total over 2 runs

    def test_fallback_reasons_tallied(self):
        assert "activity schedule" in render_report(_records())

    def test_empty_records(self):
        assert render_report([]) == "trace contains no reportable records"


class TestTraceReportMain:
    @pytest.fixture
    def trace_file(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        with JsonlTraceWriter(path) as writer:
            for record in _records():
                writer.write(record)
        return path

    def test_reports_and_exports_chrome_trace(self, trace_file, capsys):
        assert trace_report_main([str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "schema OK" in out
        assert "8 records" in out
        chrome = trace_file.with_suffix(".jsonl.chrome.json")
        assert chrome.exists()
        data = json.loads(chrome.read_text())
        assert data["traceEvents"]

    def test_out_flag_overrides_chrome_path(self, trace_file, tmp_path):
        out = tmp_path / "custom.json"
        assert trace_report_main([str(trace_file), "--out", str(out)]) == 0
        assert out.exists()

    def test_out_dash_skips_chrome_export(self, trace_file, capsys):
        assert trace_report_main([str(trace_file), "--out", "-"]) == 0
        assert "chrome trace" not in capsys.readouterr().out
        assert not trace_file.with_suffix(".jsonl.chrome.json").exists()

    def test_invalid_trace_fails(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "span"}\n', encoding="utf-8")
        assert trace_report_main([str(path)]) == 1
        assert "invalid trace" in capsys.readouterr().err

    def test_missing_file_fails(self, tmp_path, capsys):
        assert trace_report_main([str(tmp_path / "nope.jsonl")]) == 1
        assert "invalid trace" in capsys.readouterr().err

    def test_dispatch_from_experiments_cli(self, trace_file, capsys):
        assert experiments_main(["trace-report", str(trace_file),
                                 "--out", "-"]) == 0
        assert "schema OK" in capsys.readouterr().out


class TestQuarantinedSection:
    def _failed_record(self):
        return {
            "type": "task", "pid": PID, "key": "deadbeef" * 8,
            "label": "poisoned-cell", "backend": "slotted",
            "source": "failed", "cache_hit": False, "t0": 102.0,
            "group": None, "worker_pid": None, "queue_wait_s": None,
            "execute_s": None, "cells_per_s": None, "fallback_reason": None,
            "failure_reason": "error", "attempts": 3,
            "error": "InjectedFault: boom",
        }

    def test_quarantined_tasks_get_their_own_table(self):
        text = render_report(_records() + [self._failed_record()])
        assert "quarantined tasks (exhausted retry budget)" in text
        assert "poisoned-cell" in text
        assert "InjectedFault: boom" in text

    def test_no_quarantine_section_without_failures(self):
        assert "quarantined" not in render_report(_records())


class TestTornTraceReport:
    """trace-report on a truncated trace (the writer was SIGKILLed)."""

    @pytest.fixture
    def torn_trace(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        lines = [json.dumps(r) for r in _records()]
        torn = json.dumps(_records()[3])[:25]  # a task record cut mid-write
        path.write_text("\n".join(lines + [torn]), encoding="utf-8")
        return path

    def test_torn_final_record_is_reported_not_fatal(self, torn_trace, capsys):
        assert trace_report_main([str(torn_trace), "--out", "-"]) == 0
        captured = capsys.readouterr()
        assert "torn" in captured.err
        assert "1 torn final record ignored" in captured.out
        # The valid prefix is still summarised in full.
        assert "tasks (by backend)" in captured.out
        assert "8 records" in captured.out

    def test_clean_trace_has_no_torn_note(self, tmp_path, capsys):
        path = tmp_path / "ok.jsonl"
        with JsonlTraceWriter(path) as writer:
            for record in _records():
                writer.write(record)
        assert trace_report_main([str(path), "--out", "-"]) == 0
        captured = capsys.readouterr()
        assert "torn final record" not in captured.out
        assert "torn final record" not in captured.err

    def test_mid_file_corruption_is_still_fatal(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        records = [json.dumps(r) for r in _records()]
        records.insert(2, "{torn mid file")
        path.write_text("\n".join(records) + "\n", encoding="utf-8")
        assert trace_report_main([str(path), "--out", "-"]) == 1
        assert "invalid trace" in capsys.readouterr().err
