"""Tests for connectivity graphs and hidden-node analysis."""

import numpy as np
import pytest

from repro.phy.propagation import RangeBasedPropagation
from repro.topology.graph import ConnectivityGraph, build_connectivity
from repro.topology.placement import explicit_placement, ring_placement


def paper_model():
    return RangeBasedPropagation(transmission_range=16.0, carrier_sense_range=24.0)


class TestFullyConnectedDetection:
    def test_ring_radius_8_is_fully_connected(self):
        graph = ConnectivityGraph(ring_placement(20, radius=8.0), paper_model())
        assert graph.is_fully_connected()
        assert graph.hidden_pairs() == frozenset()

    def test_each_station_senses_everyone(self):
        graph = ConnectivityGraph(ring_placement(10, radius=8.0), paper_model())
        for station in range(10):
            assert graph.sensing_set(station) == frozenset(range(10))

    def test_report_for_connected_network(self):
        graph = ConnectivityGraph(ring_placement(10, radius=8.0), paper_model())
        report = graph.hidden_node_report()
        assert report.is_fully_connected
        assert report.num_hidden_pairs == 0
        assert report.hidden_pair_fraction == 0.0


class TestHiddenPairDetection:
    def make_hidden_triangle(self):
        # Stations at (-14, 0) and (14, 0): both within 16 of the AP at the
        # origin, but 28 > 24 apart so they are hidden from each other.  A
        # third station at (0, 5) senses both.
        placement = explicit_placement([(-14, 0), (14, 0), (0, 5)])
        return ConnectivityGraph(placement, paper_model())

    def test_hidden_pair_found(self):
        graph = self.make_hidden_triangle()
        assert graph.hidden_pairs() == frozenset({(0, 1)})
        assert not graph.is_fully_connected()

    def test_sensing_sets_are_asymmetry_free(self):
        graph = self.make_hidden_triangle()
        assert 1 not in graph.sensing_set(0)
        assert 0 not in graph.sensing_set(1)
        assert graph.can_sense(0, 2) and graph.can_sense(2, 0)
        assert graph.can_sense(1, 2) and graph.can_sense(2, 1)

    def test_hidden_peers(self):
        graph = self.make_hidden_triangle()
        assert graph.hidden_peers(0) == frozenset({1})
        assert graph.hidden_peers(2) == frozenset()

    def test_report_counts(self):
        report = self.make_hidden_triangle().hidden_node_report()
        assert report.num_hidden_pairs == 1
        assert report.num_possible_pairs == 3
        assert report.stations_with_hidden_peer == 2
        assert report.hidden_pair_fraction == pytest.approx(1 / 3)

    def test_adjacency_matrix_symmetric_with_true_diagonal(self):
        graph = self.make_hidden_triangle()
        matrix = graph.adjacency_matrix()
        assert matrix.shape == (3, 3)
        assert np.all(np.diag(matrix))
        assert np.array_equal(matrix, matrix.T)
        assert not matrix[0, 1]


class TestApCoverage:
    def test_station_outside_ap_range_rejected(self):
        placement = explicit_placement([(30, 0)])
        with pytest.raises(ValueError):
            ConnectivityGraph(placement, paper_model())

    def test_uncovered_station_allowed_when_not_required(self):
        placement = explicit_placement([(30, 0)])
        graph = ConnectivityGraph(placement, paper_model(), require_ap_coverage=False)
        assert graph.uncovered_stations == (0,)


class TestShadowing:
    def test_shadowing_can_create_hidden_pair(self):
        # Two stations 10 apart would normally sense each other; 40 dB of
        # shadowing between them pushes the effective distance beyond the
        # 24-unit sensing range.
        placement = explicit_placement([(-5, 0), (5, 0)])
        shadowing = np.array([[0.0, 40.0], [40.0, 0.0]])
        graph = ConnectivityGraph(placement, paper_model(), shadowing_db=shadowing)
        assert graph.hidden_pairs() == frozenset({(0, 1)})

    def test_zero_shadowing_matrix_is_no_op(self):
        placement = explicit_placement([(-5, 0), (5, 0)])
        graph = ConnectivityGraph(placement, paper_model(),
                                  shadowing_db=np.zeros((2, 2)))
        assert graph.is_fully_connected()

    def test_rejects_wrong_shape(self):
        placement = explicit_placement([(-5, 0), (5, 0)])
        with pytest.raises(ValueError):
            ConnectivityGraph(placement, paper_model(), shadowing_db=np.zeros((3, 3)))

    def test_rejects_asymmetric_matrix(self):
        placement = explicit_placement([(-5, 0), (5, 0)])
        shadowing = np.array([[0.0, 10.0], [0.0, 0.0]])
        with pytest.raises(ValueError):
            ConnectivityGraph(placement, paper_model(), shadowing_db=shadowing)


class TestGraphViews:
    def test_sensing_density_of_complete_graph(self):
        graph = ConnectivityGraph(ring_placement(6, radius=8.0), paper_model())
        assert graph.sensing_density() == pytest.approx(1.0)

    def test_sensing_components_single_for_connected(self):
        graph = ConnectivityGraph(ring_placement(6, radius=8.0), paper_model())
        components = graph.sensing_components()
        assert len(components) == 1
        assert components[0] == set(range(6))

    def test_build_connectivity_helper(self):
        graph = build_connectivity(ring_placement(4, radius=8.0), paper_model())
        assert isinstance(graph, ConnectivityGraph)
        assert graph.num_stations == 4

    def test_decode_graph_edges_subset_of_sensing_edges(self):
        placement = explicit_placement([(-10, 0), (10, 0), (0, 5)])
        graph = ConnectivityGraph(placement, paper_model())
        decode_edges = set(graph.decode_graph.edges())
        sensing_edges = set(graph.sensing_graph.edges())
        assert decode_edges.issubset(sensing_edges)


class TestConflictMatrixHelpers:
    """The matrix views the batched conflict simulator is built on."""

    def _random_hidden_graph(self, n=12, seed=4):
        from repro.topology.scenarios import hidden_node_scenario

        return hidden_node_scenario(
            n, np.random.default_rng(seed), radius=16.0,
            require_hidden_pairs=True,
        )

    def test_sensing_matrix_is_symmetric_with_true_diagonal(self):
        graph = self._random_hidden_graph()
        matrix = graph.sensing_matrix()
        assert matrix.dtype == bool
        assert np.array_equal(matrix, matrix.T)
        assert matrix.diagonal().all()

    def test_sensing_matrix_matches_sensing_sets(self):
        graph = self._random_hidden_graph()
        matrix = graph.sensing_matrix()
        for i in range(graph.num_stations):
            assert set(np.flatnonzero(matrix[i])) == set(graph.sensing_set(i))

    def test_hidden_matrix_is_the_complement_off_the_diagonal(self):
        graph = self._random_hidden_graph()
        sensing = graph.sensing_matrix()
        hidden = graph.hidden_matrix()
        assert not hidden.diagonal().any()
        off_diag = ~np.eye(graph.num_stations, dtype=bool)
        assert np.array_equal(hidden, ~sensing & off_diag)

    def test_hidden_matrix_agrees_with_hidden_pair_report(self):
        graph = self._random_hidden_graph()
        hidden = graph.hidden_matrix()
        report = graph.hidden_node_report()
        assert int(hidden.sum()) // 2 == report.num_hidden_pairs
        assert np.array_equal(hidden, hidden.T)
        pairs = {(i, j) for i, j in zip(*np.nonzero(hidden)) if i < j}
        assert pairs == set(graph.hidden_pairs())
        with_peer = int((hidden.any(axis=1)).sum())
        assert with_peer == report.stations_with_hidden_peer

    def test_connected_topology_degenerates_to_all_ones(self):
        graph = ConnectivityGraph(ring_placement(9, radius=8.0), paper_model())
        assert graph.sensing_matrix().all()
        assert not graph.hidden_matrix().any()
        assert graph.hidden_node_report().is_fully_connected
