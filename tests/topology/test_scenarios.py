"""Tests for the pre-packaged paper scenarios."""

import numpy as np
import pytest

from repro.topology.scenarios import (
    FULLY_CONNECTED_RING_RADIUS,
    HIDDEN_DISC_RADIUS_LARGE,
    HIDDEN_DISC_RADIUS_SMALL,
    fully_connected_scenario,
    hidden_node_scenario,
    paper_propagation,
    two_cluster_hidden_scenario,
)


class TestPaperPropagation:
    def test_ranges_match_paper(self):
        model = paper_propagation()
        assert model.decode_range == 16.0
        assert model.sense_range == 24.0


class TestFullyConnectedScenario:
    @pytest.mark.parametrize("n", [2, 10, 40])
    def test_no_hidden_pairs(self, n):
        graph = fully_connected_scenario(n)
        assert graph.is_fully_connected()
        assert graph.num_stations == n

    def test_default_radius_is_papers(self):
        assert FULLY_CONNECTED_RING_RADIUS == 8.0

    def test_too_large_radius_rejected(self):
        # Ring of radius 16 has diameter 32 > sensing range 24.
        with pytest.raises(ValueError):
            fully_connected_scenario(10, radius=16.0)


class TestHiddenNodeScenario:
    def test_radii_constants_match_paper(self):
        assert HIDDEN_DISC_RADIUS_SMALL == 16.0
        assert HIDDEN_DISC_RADIUS_LARGE == 20.0

    def test_require_hidden_pairs_produces_hidden_pairs(self):
        rng = np.random.default_rng(5)
        graph = hidden_node_scenario(30, rng, radius=20.0, require_hidden_pairs=True)
        assert not graph.is_fully_connected()

    def test_every_station_covered_by_ap(self):
        rng = np.random.default_rng(5)
        graph = hidden_node_scenario(20, rng, radius=16.0)
        assert graph.uncovered_stations == ()

    def test_reproducible_given_seeded_rng(self):
        a = hidden_node_scenario(15, np.random.default_rng(9), radius=16.0)
        b = hidden_node_scenario(15, np.random.default_rng(9), radius=16.0)
        assert a.placement.stations == b.placement.stations


class TestTwoClusterScenario:
    def test_cross_cluster_pairs_all_hidden(self):
        graph = two_cluster_hidden_scenario(3, separation=28.0, spread=0.5)
        hidden = graph.hidden_pairs()
        cross_pairs = {(i, j) for i in range(3) for j in range(3, 6)}
        for i, j in cross_pairs:
            pair = (min(i, j), max(i, j))
            assert pair in hidden

    def test_intra_cluster_pairs_sense_each_other(self):
        graph = two_cluster_hidden_scenario(3, separation=28.0, spread=0.5)
        for i in range(3):
            for j in range(3):
                assert graph.can_sense(i, j)

    def test_rejects_empty_clusters(self):
        with pytest.raises(ValueError):
            two_cluster_hidden_scenario(0)
