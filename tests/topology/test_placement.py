"""Tests for node placement strategies."""

import math

import numpy as np
import pytest

from repro.topology.placement import (
    AP_POSITION,
    Placement,
    clustered_placement,
    explicit_placement,
    grid_placement,
    ring_placement,
    uniform_disc_placement,
)


class TestRingPlacement:
    def test_all_nodes_at_requested_radius(self):
        placement = ring_placement(12, radius=8.0)
        for station in range(placement.num_stations):
            assert placement.distance_to_ap(station) == pytest.approx(8.0)

    def test_station_count(self):
        assert ring_placement(25).num_stations == 25

    def test_max_pairwise_distance_is_diameter(self):
        placement = ring_placement(8, radius=8.0)
        assert placement.max_pairwise_distance() == pytest.approx(16.0, rel=1e-6)

    def test_single_station(self):
        placement = ring_placement(1, radius=5.0)
        assert placement.num_stations == 1
        assert placement.max_pairwise_distance() == 0.0

    def test_phase_rotates_positions(self):
        a = ring_placement(4, radius=8.0, phase=0.0)
        b = ring_placement(4, radius=8.0, phase=math.pi / 4)
        assert a.stations[0] != b.stations[0]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            ring_placement(0)
        with pytest.raises(ValueError):
            ring_placement(4, radius=0.0)


class TestUniformDiscPlacement:
    def test_all_nodes_within_radius(self, rng):
        placement = uniform_disc_placement(200, radius=16.0, rng=rng)
        for station in range(placement.num_stations):
            assert placement.distance_to_ap(station) <= 16.0 + 1e-9

    def test_min_ap_distance_respected(self, rng):
        placement = uniform_disc_placement(100, radius=16.0, rng=rng,
                                           min_ap_distance=5.0)
        for station in range(placement.num_stations):
            assert placement.distance_to_ap(station) >= 5.0 - 1e-9

    def test_density_roughly_uniform_over_area(self, rng):
        # With area-uniform placement, about one quarter of the nodes should
        # land inside half the radius (area scales with r^2).
        placement = uniform_disc_placement(4000, radius=16.0, rng=rng)
        inside = sum(
            1 for i in range(placement.num_stations)
            if placement.distance_to_ap(i) <= 8.0
        )
        assert 0.18 <= inside / 4000 <= 0.32

    def test_reproducible_with_same_seed(self):
        a = uniform_disc_placement(10, 16.0, np.random.default_rng(7))
        b = uniform_disc_placement(10, 16.0, np.random.default_rng(7))
        assert a.stations == b.stations

    def test_rejects_bad_arguments(self, rng):
        with pytest.raises(ValueError):
            uniform_disc_placement(0, 16.0, rng)
        with pytest.raises(ValueError):
            uniform_disc_placement(5, 0.0, rng)
        with pytest.raises(ValueError):
            uniform_disc_placement(5, 16.0, rng, min_ap_distance=20.0)


class TestClusteredPlacement:
    def test_station_counts_per_cluster(self, rng):
        placement = clustered_placement(
            [(-10, 0), (10, 0)], [3, 4], spread=0.5, rng=rng
        )
        assert placement.num_stations == 7

    def test_clusters_centered_correctly(self, rng):
        placement = clustered_placement(
            [(-14, 0), (14, 0)], [50, 50], spread=0.1, rng=rng
        )
        xs = [x for x, _ in placement.stations]
        assert np.mean(xs[:50]) == pytest.approx(-14, abs=0.2)
        assert np.mean(xs[50:]) == pytest.approx(14, abs=0.2)

    def test_rejects_mismatched_lengths(self, rng):
        with pytest.raises(ValueError):
            clustered_placement([(-1, 0)], [1, 2], spread=0.5, rng=rng)

    def test_rejects_empty_placement(self, rng):
        with pytest.raises(ValueError):
            clustered_placement([(-1, 0)], [0], spread=0.5, rng=rng)


class TestGridPlacement:
    def test_grid_size(self):
        assert grid_placement(3, 4, spacing=2.0).num_stations == 12

    def test_grid_spacing(self):
        placement = grid_placement(1, 3, spacing=5.0, center_on_ap=False)
        assert placement.distance(0, 1) == pytest.approx(5.0)
        assert placement.distance(0, 2) == pytest.approx(10.0)

    def test_centering_on_ap(self):
        placement = grid_placement(3, 3, spacing=2.0, center_on_ap=True)
        assert placement.stations[4] == pytest.approx((0.0, 0.0))

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            grid_placement(0, 3, 1.0)
        with pytest.raises(ValueError):
            grid_placement(3, 3, 0.0)


class TestExplicitPlacementAndHelpers:
    def test_explicit_positions_preserved(self):
        placement = explicit_placement([(1, 2), (3, 4)])
        assert placement.stations == ((1.0, 2.0), (3.0, 4.0))
        assert placement.ap == AP_POSITION

    def test_explicit_rejects_empty(self):
        with pytest.raises(ValueError):
            explicit_placement([])

    def test_distance_symmetry(self):
        placement = explicit_placement([(0, 0), (3, 4)])
        assert placement.distance(0, 1) == placement.distance(1, 0) == pytest.approx(5.0)

    def test_as_array_shape(self):
        placement = explicit_placement([(0, 0), (3, 4), (1, 1)])
        assert placement.as_array().shape == (3, 2)
