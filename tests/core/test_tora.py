"""Tests for the TORA-CSMA access-point controller (Algorithm 2)."""

import numpy as np
import pytest

from repro.analysis.randomreset import randomreset_throughput
from repro.core.tora import ToraCsmaController
from repro.phy.constants import PhyParameters


def feed_segment(controller, throughput_bps, start, duration, packets=5):
    total_bits = throughput_bps * duration
    per_packet = total_bits / packets if packets else 0
    times = np.linspace(start, start + duration * 0.99, packets)
    for t in times:
        controller.on_packet_received(0, int(per_packet), float(t))
    controller.on_tick(start + duration)


class TestAdvertisedControl:
    def test_control_fields(self, phy):
        controller = ToraCsmaController(phy, update_period=0.1)
        control = controller.control()
        assert set(control) == {"p0", "stage", "cw"}
        assert 0.0 <= control["p0"] <= 1.0
        assert control["stage"] == 0.0
        assert control["cw"] == phy.cw_min

    def test_initial_stage_respected(self, phy):
        controller = ToraCsmaController(phy, update_period=0.1, initial_stage=2)
        assert controller.stage == 2
        assert controller.control()["cw"] == phy.contention_window(2)

    def test_rejects_invalid_construction(self, phy):
        with pytest.raises(ValueError):
            ToraCsmaController(phy, initial_stage=99)
        with pytest.raises(ValueError):
            ToraCsmaController(phy, low_threshold=0.9, high_threshold=0.1)
        with pytest.raises(ValueError):
            ToraCsmaController(phy, throughput_scale=-1.0)


class TestUpdatesAndStageShifts:
    def test_center_moves_with_gradient(self, phy):
        controller = ToraCsmaController(phy, update_period=0.5)
        start = controller.center
        feed_segment(controller, 20e6, 0.0, 0.5)
        feed_segment(controller, 5e6, 0.5, 0.5)
        assert controller.center > start

    def test_stage_increments_when_p0_saturates_low(self, phy):
        controller = ToraCsmaController(
            phy, update_period=0.5, low_threshold=0.1, high_threshold=0.9
        )
        # Repeatedly make the minus probe look much better so the centre is
        # driven to 0, which must trigger a stage increment and a reset of the
        # centre to 0.5.
        now = 0.0
        for _ in range(30):
            if controller.stage > 0:
                break
            feed_segment(controller, 1e6, now, 0.5)
            feed_segment(controller, 30e6, now + 0.5, 0.5)
            now += 1.0
        assert controller.stage == 1
        assert controller.center == pytest.approx(0.5)
        assert len(controller.stage_shifts()) == 1

    def test_stage_decrements_when_p0_saturates_high(self, phy):
        controller = ToraCsmaController(
            phy, update_period=0.5, initial_stage=3,
            low_threshold=0.1, high_threshold=0.9,
        )
        now = 0.0
        for _ in range(30):
            if controller.stage < 3:
                break
            feed_segment(controller, 30e6, now, 0.5)
            feed_segment(controller, 1e6, now + 0.5, 0.5)
            now += 1.0
        assert controller.stage == 2
        assert controller.center == pytest.approx(0.5)

    def test_stage_never_exceeds_bounds(self, phy):
        controller = ToraCsmaController(
            phy, update_period=0.5, low_threshold=0.3, high_threshold=0.7
        )
        now = 0.0
        for _ in range(200):
            feed_segment(controller, 1e6, now, 0.5)
            feed_segment(controller, 30e6, now + 0.5, 0.5)
            now += 1.0
        assert 0 <= controller.stage <= phy.num_backoff_stages - 1

    def test_iteration_not_advanced_on_stage_shift(self, phy):
        controller = ToraCsmaController(
            phy, update_period=0.5, low_threshold=0.45, high_threshold=0.99
        )
        # One decisive pair pushes the centre below the (high) low-threshold,
        # causing an immediate shift; Algorithm 2 keeps k unchanged.
        k_before = controller.iteration
        feed_segment(controller, 0.0, 0.0, 0.5)
        feed_segment(controller, 40e6, 0.5, 0.5)
        if controller.stage_shifts():
            assert controller.iteration == k_before

    def test_reset_restores_initial_state(self, phy):
        controller = ToraCsmaController(phy, update_period=0.5)
        feed_segment(controller, 10e6, 0.0, 0.5)
        feed_segment(controller, 10e6, 0.5, 0.5)
        controller.reset()
        assert controller.updates == 0
        assert controller.stage == 0
        assert controller.stage_shifts() == ()


class TestClosedLoopConvergence:
    def test_tracks_good_reset_probability_against_analytic_plant(self, phy):
        """Drive TORA with the analytical RandomReset throughput function."""
        n = 20
        rng = np.random.default_rng(11)
        controller = ToraCsmaController(phy, update_period=1.0)

        now = 0.0
        for _ in range(300):
            control = controller.control()
            throughput = randomreset_throughput(
                int(control["stage"]), control["p0"], n, phy
            )
            throughput *= 1.0 + rng.normal(0, 0.02)
            feed_segment(controller, max(throughput, 0.0), now, 1.0)
            now += 1.0

        final = randomreset_throughput(controller.stage, controller.center, n, phy)
        best = max(
            randomreset_throughput(j, p0, n, phy)
            for j in range(phy.num_backoff_stages)
            for p0 in np.linspace(0, 1, 11)
        )
        assert final >= 0.93 * best

    def test_convergence_trace_shape(self, phy):
        controller = ToraCsmaController(phy, update_period=0.5)
        feed_segment(controller, 10e6, 0.0, 0.5)
        feed_segment(controller, 12e6, 0.5, 0.5)
        trace = controller.convergence_trace()
        assert len(trace) == 2
        time, p0, stage = trace[-1]
        assert time > 0 and 0 <= p0 <= 1 and stage == 0
