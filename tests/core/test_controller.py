"""Tests for the controller base classes and the segment throughput meter."""

import pytest

from repro.core.controller import SegmentThroughputMeter, StaticController


class TestStaticController:
    def test_advertises_fixed_control(self):
        controller = StaticController({"p": 0.07})
        controller.on_packet_received(0, 8000, 1.0)
        assert controller.control() == {"p": 0.07}

    def test_default_is_empty(self):
        assert StaticController().control() == {}

    def test_set_control_replaces_values(self):
        controller = StaticController({"p": 0.1})
        controller.set_control({"p0": 0.4, "stage": 1})
        assert controller.control() == {"p0": 0.4, "stage": 1}

    def test_no_tick_interval(self):
        assert StaticController().tick_interval is None
        assert StaticController().on_tick(1.0) is False

    def test_history_empty(self):
        assert StaticController().history() == ()


class TestSegmentThroughputMeter:
    def test_segment_closes_after_update_period(self):
        meter = SegmentThroughputMeter(update_period=1.0)
        assert meter.observe(1000, 0.0) is None
        assert meter.observe(1000, 0.5) is None
        throughput = meter.observe(1000, 1.0)
        assert throughput == pytest.approx(3000.0)

    def test_new_segment_starts_after_close(self):
        meter = SegmentThroughputMeter(update_period=1.0)
        meter.observe(500, 0.0)
        meter.observe(500, 1.0)
        # Next segment starts at t=1.0.
        assert meter.observe(2000, 1.5) is None
        assert meter.observe(0, 2.0) == pytest.approx(2000.0)

    def test_throughput_divides_by_update_period_not_elapsed(self):
        # The paper's pseudo code divides by UPDATE_PERIOD even if the closing
        # packet arrives a little late.
        meter = SegmentThroughputMeter(update_period=1.0)
        meter.observe(1000, 0.0)
        assert meter.observe(1000, 1.7) == pytest.approx(2000.0)

    def test_maybe_close_reports_zero_for_starved_segment(self):
        meter = SegmentThroughputMeter(update_period=0.5)
        assert meter.maybe_close(0.0) is None       # opens the segment
        assert meter.maybe_close(0.25) is None      # not yet elapsed
        assert meter.maybe_close(0.6) == pytest.approx(0.0)

    def test_maybe_close_does_not_double_close(self):
        meter = SegmentThroughputMeter(update_period=1.0)
        meter.observe(4000, 0.0)
        assert meter.observe(4000, 1.0) is not None
        assert meter.maybe_close(1.0) is None

    def test_force_close_uses_actual_elapsed_time(self):
        meter = SegmentThroughputMeter(update_period=10.0)
        meter.observe(1000, 0.0)
        assert meter.force_close(2.0) == pytest.approx(500.0)

    def test_segments_recorded(self):
        meter = SegmentThroughputMeter(update_period=1.0)
        meter.observe(1000, 0.0)
        meter.observe(1000, 1.0)
        meter.observe(1000, 2.0)
        assert len(meter.segments()) == 2

    def test_reset_clears_state(self):
        meter = SegmentThroughputMeter(update_period=1.0)
        meter.observe(1000, 0.0)
        meter.reset()
        assert meter.bits_pending == 0
        assert meter.segments() == ()

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ValueError):
            SegmentThroughputMeter(update_period=0.0)
        meter = SegmentThroughputMeter(update_period=1.0)
        with pytest.raises(ValueError):
            meter.observe(-1, 0.0)
