"""Tests for the weighted-fairness probability mapping (Lemma 1)."""

import numpy as np
import pytest

from repro.core.weighted_fairness import (
    attempt_probabilities,
    base_probability_from_station,
    station_attempt_probability,
    validate_weights,
)


class TestForwardMap:
    def test_weight_one_identity(self):
        for p in (0.0, 0.3, 0.9, 1.0):
            assert station_attempt_probability(1.0, p) == pytest.approx(p)

    def test_odds_scaling_property(self):
        p, w = 0.2, 2.5
        pw = station_attempt_probability(w, p)
        assert pw / (1 - pw) == pytest.approx(w * p / (1 - p))

    def test_monotone_in_p(self):
        values = [station_attempt_probability(2.0, p) for p in np.linspace(0, 1, 11)]
        assert values == sorted(values)

    def test_result_stays_in_unit_interval(self):
        for w in (0.1, 1.0, 10.0):
            for p in np.linspace(0, 1, 11):
                assert 0.0 <= station_attempt_probability(w, p) <= 1.0

    def test_boundary_p_one(self):
        assert station_attempt_probability(5.0, 1.0) == 1.0

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            station_attempt_probability(0.0, 0.5)
        with pytest.raises(ValueError):
            station_attempt_probability(1.0, -0.1)


class TestInverseMap:
    def test_round_trip(self):
        for w in (0.5, 1.0, 3.0):
            for p in (0.0, 0.1, 0.5, 0.9):
                pw = station_attempt_probability(w, p)
                assert base_probability_from_station(w, pw) == pytest.approx(p)

    def test_boundary(self):
        assert base_probability_from_station(3.0, 1.0) == 1.0

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            base_probability_from_station(-1.0, 0.5)
        with pytest.raises(ValueError):
            base_probability_from_station(1.0, 1.2)


class TestVectorisedHelpers:
    def test_attempt_probabilities_matches_scalar(self):
        weights = [1.0, 2.0, 3.0]
        p = 0.15
        vector = attempt_probabilities(weights, p)
        for w, value in zip(weights, vector):
            assert value == pytest.approx(station_attempt_probability(w, p))

    def test_validate_weights_accepts_positive(self):
        arr = validate_weights([1, 2, 3])
        assert arr.shape == (3,)

    def test_validate_weights_rejects_bad_values(self):
        with pytest.raises(ValueError):
            validate_weights([])
        with pytest.raises(ValueError):
            validate_weights([1.0, 0.0])
        with pytest.raises(ValueError):
            validate_weights([1.0, float("nan")])
