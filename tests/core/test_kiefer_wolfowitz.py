"""Tests for the Kiefer-Wolfowitz stochastic approximation machinery."""

import numpy as np
import pytest

from repro.core.kiefer_wolfowitz import (
    GainSchedule,
    KieferWolfowitzOptimizer,
    PAPER_GAIN_SCHEDULE,
    ProbeSide,
    TwoSidedGradientTracker,
)


class TestGainSchedule:
    def test_paper_schedule_values(self):
        assert PAPER_GAIN_SCHEDULE.a(1) == 1.0
        assert PAPER_GAIN_SCHEDULE.a(4) == pytest.approx(0.25)
        assert PAPER_GAIN_SCHEDULE.b(8) == pytest.approx(0.5)

    def test_paper_schedule_satisfies_kw_conditions(self):
        assert PAPER_GAIN_SCHEDULE.satisfies_kw_conditions()

    def test_bad_schedules_rejected_by_condition_check(self):
        # alpha = gamma = 1/2 violates 2(alpha - gamma) > 1.
        assert not GainSchedule(alpha=0.5, gamma=0.5).satisfies_kw_conditions()
        # alpha > 1 makes sum a_k converge (not allowed).
        assert not GainSchedule(alpha=1.5, gamma=0.25).satisfies_kw_conditions()

    def test_partial_sums_reflect_divergence_and_convergence(self):
        short = PAPER_GAIN_SCHEDULE.partial_sums(100)
        long = PAPER_GAIN_SCHEDULE.partial_sums(10_000)
        # sum a_k diverges (log growth): noticeably larger at longer horizon.
        assert long[0] > short[0] + 3.0
        # sum a_k b_k and sum (a_k / b_k)^2 converge: their tails past k=100
        # are bounded (integral test: ~3 * 100^(-1/3) ~ 0.65).
        assert long[1] - short[1] < 0.7
        assert long[2] - short[2] < 0.7

    def test_sequences_decrease(self):
        schedule = PAPER_GAIN_SCHEDULE
        assert schedule.a(10) < schedule.a(2)
        assert schedule.b(10) < schedule.b(2)

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            GainSchedule(a0=0.0)
        with pytest.raises(ValueError):
            GainSchedule(gamma=-0.1)
        with pytest.raises(ValueError):
            PAPER_GAIN_SCHEDULE.a(0)
        with pytest.raises(ValueError):
            PAPER_GAIN_SCHEDULE.partial_sums(0)


class TestTwoSidedGradientTracker:
    def test_probe_alternates_plus_minus(self):
        tracker = TwoSidedGradientTracker(initial=0.5)
        assert tracker.side == ProbeSide.PLUS
        first_probe = tracker.probe
        assert first_probe > 0.5 or first_probe == 1.0
        tracker.observe(1.0)
        assert tracker.side == ProbeSide.MINUS
        assert tracker.probe < 0.5 or tracker.probe == 0.0

    def test_update_moves_towards_larger_measurement(self):
        tracker = TwoSidedGradientTracker(
            initial=0.5, schedule=GainSchedule(a0=0.1, b0=0.1)
        )
        tracker.observe(2.0)   # plus side better
        updated = tracker.observe(1.0)
        assert updated
        assert tracker.center > 0.5

        tracker = TwoSidedGradientTracker(
            initial=0.5, schedule=GainSchedule(a0=0.1, b0=0.1)
        )
        tracker.observe(1.0)   # minus side better
        tracker.observe(2.0)
        assert tracker.center < 0.5

    def test_center_stays_within_bounds(self):
        tracker = TwoSidedGradientTracker(
            initial=0.5, schedule=GainSchedule(a0=100.0, b0=0.1), bounds=(0.0, 1.0)
        )
        tracker.observe(1e9)
        tracker.observe(0.0)
        assert tracker.center == 1.0
        tracker.observe(0.0)
        tracker.observe(1e9)
        assert tracker.center == 0.0

    def test_probe_respects_probe_bounds(self):
        tracker = TwoSidedGradientTracker(
            initial=0.85, bounds=(0.0, 0.9), probe_bounds=(0.0, 0.9)
        )
        assert tracker.probe <= 0.9

    def test_iteration_counter_advances_per_pair(self):
        tracker = TwoSidedGradientTracker(initial=0.5, initial_k=2)
        assert tracker.iteration == 2
        tracker.observe(1.0)
        assert tracker.iteration == 2
        tracker.observe(1.0)
        assert tracker.iteration == 3
        assert tracker.updates == 1

    def test_reset_center_and_iteration_independently(self):
        tracker = TwoSidedGradientTracker(initial=0.5)
        tracker.observe(1.0)
        tracker.observe(0.5)
        tracker.reset(center=0.3)
        assert tracker.center == pytest.approx(0.3)
        assert tracker.iteration == 3  # preserved
        tracker.reset(center=0.7, k=10)
        assert tracker.iteration == 10

    def test_gradient_estimate(self):
        tracker = TwoSidedGradientTracker(initial=0.5, initial_k=8)
        expected_b = PAPER_GAIN_SCHEDULE.b(8)
        assert tracker.gradient_estimate(3.0, 1.0) == pytest.approx(2.0 / expected_b)

    def test_rejects_invalid_construction(self):
        with pytest.raises(ValueError):
            TwoSidedGradientTracker(initial=2.0, bounds=(0.0, 1.0))
        with pytest.raises(ValueError):
            TwoSidedGradientTracker(initial=0.5, bounds=(1.0, 0.0))
        with pytest.raises(ValueError):
            TwoSidedGradientTracker(initial=0.5, initial_k=0)

    def test_rejects_non_finite_measurement(self):
        tracker = TwoSidedGradientTracker(initial=0.5)
        with pytest.raises(ValueError):
            tracker.observe(float("nan"))


class TestBatchOptimizer:
    def test_converges_on_noiseless_quadratic(self):
        objective = lambda x: -(x - 0.3) ** 2
        optimizer = KieferWolfowitzOptimizer(
            objective, initial=0.8, schedule=GainSchedule(a0=2.0, b0=0.2)
        )
        trace = optimizer.run(300)
        assert trace.final == pytest.approx(0.3, abs=0.05)

    def test_converges_on_noisy_quadratic(self):
        rng = np.random.default_rng(42)
        objective = lambda x: -(x - 0.6) ** 2 + rng.normal(0, 0.01)
        optimizer = KieferWolfowitzOptimizer(
            objective, initial=0.2, schedule=GainSchedule(a0=2.0, b0=0.2)
        )
        trace = optimizer.run(500)
        assert trace.final == pytest.approx(0.6, abs=0.1)

    def test_trace_lengths(self):
        optimizer = KieferWolfowitzOptimizer(lambda x: -x * x, initial=0.5)
        trace = optimizer.run(10)
        assert len(trace.centers) == 11
        assert len(trace.probes) == 20
        assert len(trace.measurements) == 20

    def test_rejects_zero_iterations(self):
        optimizer = KieferWolfowitzOptimizer(lambda x: x, initial=0.5)
        with pytest.raises(ValueError):
            optimizer.run(0)
