"""Tests for the wTOP-CSMA access-point controller (Algorithm 1)."""

import numpy as np
import pytest

from repro.analysis.persistent import optimal_attempt_probability, system_throughput_weighted
from repro.core.kiefer_wolfowitz import GainSchedule
from repro.core.mapping import LinearMapping
from repro.core.wtop import WTopCsmaController
from repro.phy.constants import PhyParameters


def feed_segment(controller, throughput_bps, start, duration, packets=10,
                 payload_bits=8000):
    """Simulate receptions producing a given throughput over one segment."""
    # Deliver `packets` packets spread over the segment, then one more just
    # after the boundary to trigger the close (mirrors real operation).
    total_bits = throughput_bps * duration
    per_packet = total_bits / packets
    times = np.linspace(start, start + duration * 0.99, packets)
    for t in times:
        controller.on_packet_received(0, int(per_packet), float(t))
    controller.on_tick(start + duration)


class TestAdvertisedControl:
    def test_control_contains_p_within_mapping_range(self):
        controller = WTopCsmaController(update_period=0.1)
        control = controller.control()
        assert set(control) == {"p"}
        assert controller.mapping.low <= control["p"] <= controller.mapping.high

    def test_initial_p_parameter_sets_start_point(self):
        controller = WTopCsmaController(update_period=0.1, initial_p=0.01)
        assert controller.center_p == pytest.approx(0.01, rel=1e-6)

    def test_probe_alternates_above_and_below_center(self):
        controller = WTopCsmaController(update_period=1.0)
        center = controller.center
        plus_probe = controller.control()["p"]
        feed_segment(controller, 10e6, 0.0, 1.0)
        minus_probe = controller.control()["p"]
        assert plus_probe >= controller.mapping.to_parameter(center)
        assert minus_probe <= plus_probe

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            WTopCsmaController(update_period=1.0, throughput_scale=0.0)
        with pytest.raises(ValueError):
            WTopCsmaController(update_period=1.0, initial_control=1.5)


class TestMeasurementAndUpdates:
    def test_no_update_before_period_elapses(self):
        controller = WTopCsmaController(update_period=10.0)
        controller.on_packet_received(0, 8000, 0.1)
        controller.on_packet_received(1, 8000, 0.2)
        assert controller.updates == 0
        assert controller.history() == ()

    def test_update_after_two_segments(self):
        controller = WTopCsmaController(update_period=0.5)
        feed_segment(controller, 12e6, 0.0, 0.5)
        assert controller.updates == 0   # only the + segment measured
        feed_segment(controller, 8e6, 0.5, 0.5)
        assert controller.updates == 1   # (+, -) pair complete
        assert controller.iteration == 3

    def test_center_moves_towards_better_probe(self):
        controller = WTopCsmaController(update_period=0.5)
        start_center = controller.center
        # The + probe measures much better than the - probe, so the centre
        # should move up.
        feed_segment(controller, 20e6, 0.0, 0.5)
        feed_segment(controller, 2e6, 0.5, 0.5)
        assert controller.center > start_center

        controller = WTopCsmaController(update_period=0.5)
        start_center = controller.center
        feed_segment(controller, 2e6, 0.0, 0.5)
        feed_segment(controller, 20e6, 0.5, 0.5)
        assert controller.center < start_center

    def test_on_tick_closes_starved_segment(self):
        controller = WTopCsmaController(update_period=0.2)
        assert controller.on_tick(0.0) is False       # opens the segment
        assert controller.on_tick(0.1) is False
        assert controller.on_tick(0.25) is True       # closed with 0 bits
        assert controller.tick_interval == pytest.approx(0.2)

    def test_history_and_trace_record_updates(self):
        controller = WTopCsmaController(update_period=0.5)
        feed_segment(controller, 10e6, 0.0, 0.5)
        feed_segment(controller, 10e6, 0.5, 0.5)
        assert len(controller.history()) == 2
        trace = controller.convergence_trace()
        assert len(trace) == 2
        assert all(0 <= p <= 1 for _, p in trace)

    def test_reset_restores_initial_state(self):
        controller = WTopCsmaController(update_period=0.5)
        feed_segment(controller, 10e6, 0.0, 0.5)
        feed_segment(controller, 10e6, 0.5, 0.5)
        controller.reset()
        assert controller.updates == 0
        assert controller.history() == ()
        assert controller.center == pytest.approx(0.5)


class TestClosedLoopConvergence:
    def test_converges_near_optimum_against_analytic_plant(self, phy):
        """Drive the controller with the analytical throughput function.

        The 'plant' is Eq. (3) evaluated at the advertised probability plus
        small multiplicative noise; after a few hundred updates the centre
        should sit near the analytic optimum and deliver near-optimal
        throughput.
        """
        n = 20
        rng = np.random.default_rng(7)
        controller = WTopCsmaController(update_period=1.0)
        optimum_p = optimal_attempt_probability(n, phy)
        optimum_s = system_throughput_weighted(optimum_p, [1.0] * n, phy)

        now = 0.0
        for _ in range(400):
            p = controller.control()["p"]
            throughput = system_throughput_weighted(p, [1.0] * n, phy)
            throughput *= 1.0 + rng.normal(0, 0.02)
            feed_segment(controller, max(throughput, 0.0), now, 1.0, packets=5)
            now += 1.0

        achieved = system_throughput_weighted(controller.center_p, [1.0] * n, phy)
        assert achieved >= 0.93 * optimum_s

    def test_linear_mapping_mode_available(self, phy):
        controller = WTopCsmaController(
            update_period=1.0, mapping=LinearMapping(0.0, 0.9),
            schedule=GainSchedule(a0=0.4, b0=0.2),
        )
        assert controller.control()["p"] <= 0.9
        feed_segment(controller, 5e6, 0.0, 1.0)
        feed_segment(controller, 1e6, 1.0, 1.0)
        assert 0.0 <= controller.center_p <= 0.9
