"""Tests for control-variable mappings."""

import numpy as np
import pytest

from repro.core.mapping import LinearMapping, LogMapping


class TestLinearMapping:
    def test_endpoints(self):
        mapping = LinearMapping(0.0, 0.9)
        assert mapping.to_parameter(0.0) == 0.0
        assert mapping.to_parameter(1.0) == pytest.approx(0.9)

    def test_round_trip(self):
        mapping = LinearMapping(0.1, 0.7)
        for x in np.linspace(0, 1, 11):
            assert mapping.to_control(mapping.to_parameter(x)) == pytest.approx(x)

    def test_monotone(self):
        mapping = LinearMapping(0.0, 1.0)
        values = [mapping.to_parameter(x) for x in np.linspace(0, 1, 20)]
        assert values == sorted(values)

    def test_rejects_bad_range_and_inputs(self):
        with pytest.raises(ValueError):
            LinearMapping(1.0, 0.5)
        mapping = LinearMapping(0.0, 1.0)
        with pytest.raises(ValueError):
            mapping.to_parameter(1.5)
        with pytest.raises(ValueError):
            mapping.to_control(2.0)


class TestLogMapping:
    def test_endpoints(self):
        mapping = LogMapping(1e-4, 0.5)
        assert mapping.to_parameter(0.0) == pytest.approx(1e-4)
        assert mapping.to_parameter(1.0) == pytest.approx(0.5)

    def test_midpoint_is_geometric_mean(self):
        mapping = LogMapping(1e-4, 1e-2)
        assert mapping.to_parameter(0.5) == pytest.approx(1e-3)

    def test_round_trip(self):
        mapping = LogMapping(1e-4, 0.9)
        for x in np.linspace(0, 1, 11):
            assert mapping.to_control(mapping.to_parameter(x)) == pytest.approx(x)

    def test_strictly_increasing(self):
        mapping = LogMapping(1e-3, 0.5)
        values = [mapping.to_parameter(x) for x in np.linspace(0, 1, 30)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_rejects_non_positive_low(self):
        with pytest.raises(ValueError):
            LogMapping(0.0, 0.5)
        with pytest.raises(ValueError):
            LogMapping(0.5, 0.1)

    def test_rejects_out_of_range(self):
        mapping = LogMapping(1e-3, 0.5)
        with pytest.raises(ValueError):
            mapping.to_parameter(-0.1)
        with pytest.raises(ValueError):
            mapping.to_control(0.9)
