"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.phy.constants import PhyParameters


@pytest.fixture
def phy() -> PhyParameters:
    """The paper's default PHY parameters."""
    return PhyParameters()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_config() -> ExperimentConfig:
    """A very small experiment budget for integration tests."""
    return ExperimentConfig(
        node_counts=(5, 10),
        seeds=(1,),
        measure_duration=0.3,
        warmup=0.1,
        adaptive_warmup=1.0,
        update_period=0.02,
        report_interval=0.1,
        dynamic_segment_duration=1.0,
    )
