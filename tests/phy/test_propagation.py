"""Tests for the propagation models."""

import numpy as np
import pytest

from repro.phy.propagation import (
    LogDistancePropagation,
    RangeBasedPropagation,
    friis_path_loss_db,
)


class TestFriis:
    def test_loss_increases_with_distance(self):
        assert friis_path_loss_db(10.0) > friis_path_loss_db(1.0)

    def test_loss_increases_with_frequency(self):
        assert friis_path_loss_db(5.0, 5.8e9) > friis_path_loss_db(5.0, 2.4e9)

    def test_rejects_non_positive_distance(self):
        with pytest.raises(ValueError):
            friis_path_loss_db(0.0)


class TestRangeBased:
    def test_paper_default_ranges(self):
        model = RangeBasedPropagation()
        assert model.decode_range == 16.0
        assert model.sense_range == 24.0

    def test_decode_and_sense_boundaries(self):
        model = RangeBasedPropagation(transmission_range=10, carrier_sense_range=15)
        assert model.can_decode(10.0)
        assert not model.can_decode(10.01)
        assert model.can_sense(15.0)
        assert not model.can_sense(15.01)

    def test_sensing_is_superset_of_decoding(self):
        model = RangeBasedPropagation()
        for distance in np.linspace(0, 30, 61):
            if model.can_decode(distance):
                assert model.can_sense(distance)

    def test_rx_power_decreases_with_distance(self):
        model = RangeBasedPropagation()
        assert model.rx_power_dbm(5.0) > model.rx_power_dbm(20.0)

    def test_rejects_sense_smaller_than_decode(self):
        with pytest.raises(ValueError):
            RangeBasedPropagation(transmission_range=20, carrier_sense_range=10)

    def test_rejects_non_positive_transmission_range(self):
        with pytest.raises(ValueError):
            RangeBasedPropagation(transmission_range=0)

    def test_validate_passes(self):
        RangeBasedPropagation().validate()


class TestLogDistance:
    def test_rx_power_monotone_decreasing(self):
        model = LogDistancePropagation()
        distances = np.linspace(1.0, 100.0, 50)
        powers = [model.rx_power_dbm(d) for d in distances]
        assert all(a >= b for a, b in zip(powers, powers[1:]))

    def test_ranges_follow_thresholds(self):
        model = LogDistancePropagation(
            decode_threshold_dbm=-70.0, sense_threshold_dbm=-76.0
        )
        assert model.sense_range > model.decode_range
        # Exactly at the derived range the power equals the threshold.
        assert model.rx_power_dbm(model.decode_range) == pytest.approx(-70.0, abs=1e-6)

    def test_can_decode_and_sense_respect_ranges(self):
        model = LogDistancePropagation()
        assert model.can_decode(model.decode_range * 0.99)
        assert not model.can_decode(model.decode_range * 1.01)
        assert model.can_sense(model.sense_range * 0.99)
        assert not model.can_sense(model.sense_range * 1.01)

    def test_calibrated_matches_paper_ranges(self):
        model = LogDistancePropagation.calibrated(decode_range=16.0, sense_range=24.0)
        assert model.decode_range == pytest.approx(16.0, rel=1e-6)
        assert model.sense_range == pytest.approx(24.0, rel=1e-6)

    def test_calibrated_rejects_inverted_ranges(self):
        with pytest.raises(ValueError):
            LogDistancePropagation.calibrated(decode_range=24.0, sense_range=16.0)

    def test_rejects_sense_threshold_above_decode(self):
        with pytest.raises(ValueError):
            LogDistancePropagation(decode_threshold_dbm=-80.0, sense_threshold_dbm=-70.0)

    def test_shadowing_draw_zero_when_disabled(self, rng):
        model = LogDistancePropagation(shadowing_sigma_db=0.0)
        assert model.link_shadowing_db(rng) == 0.0

    def test_shadowing_draw_varies_when_enabled(self, rng):
        model = LogDistancePropagation(shadowing_sigma_db=6.0)
        draws = {model.link_shadowing_db(rng) for _ in range(5)}
        assert len(draws) > 1

    def test_rejects_negative_shadowing(self):
        with pytest.raises(ValueError):
            LogDistancePropagation(shadowing_sigma_db=-1.0)

    def test_rejects_non_positive_exponent_and_reference(self):
        with pytest.raises(ValueError):
            LogDistancePropagation(path_loss_exponent=0.0)
        with pytest.raises(ValueError):
            LogDistancePropagation(reference_distance_m=0.0)

    def test_rx_power_clamped_below_reference_distance(self):
        """Inside the reference distance the model reports the reference
        power instead of extrapolating the log towards +infinity."""
        model = LogDistancePropagation(reference_distance_m=2.0)
        at_reference = model.rx_power_dbm(2.0)
        assert model.rx_power_dbm(0.5) == at_reference
        assert model.rx_power_dbm(1e-9) == at_reference
        assert model.rx_power_dbm(4.0) < at_reference

    def test_rx_power_matches_friis_at_reference(self):
        model = LogDistancePropagation(tx_power_dbm=16.0, frequency_hz=2.4e9)
        expected = 16.0 - friis_path_loss_db(1.0, 2.4e9)
        assert model.rx_power_dbm(1.0) == pytest.approx(expected)

    def test_path_loss_slope_is_10n_per_decade(self):
        model = LogDistancePropagation(path_loss_exponent=3.0)
        drop = model.rx_power_dbm(10.0) - model.rx_power_dbm(100.0)
        assert drop == pytest.approx(30.0, rel=1e-9)

    def test_range_zero_when_threshold_unreachable(self):
        model = LogDistancePropagation(tx_power_dbm=-120.0)
        assert model.decode_range == 0.0
        assert model.sense_range == 0.0

    def test_validate_passes_for_default_and_calibrated(self):
        LogDistancePropagation().validate()
        LogDistancePropagation.calibrated().validate()

    def test_shadowing_draws_match_requested_sigma(self):
        model = LogDistancePropagation(shadowing_sigma_db=6.0)
        rng = np.random.default_rng(7)
        draws = np.array([model.link_shadowing_db(rng) for _ in range(4000)])
        assert abs(draws.mean()) < 0.5
        assert draws.std() == pytest.approx(6.0, rel=0.1)

    def test_calibrated_sense_threshold_below_decode_threshold(self):
        model = LogDistancePropagation.calibrated(decode_range=16.0,
                                                  sense_range=24.0)
        assert model.sense_threshold_dbm < model.decode_threshold_dbm

    def test_equal_ranges_calibration_is_valid(self):
        model = LogDistancePropagation.calibrated(decode_range=20.0,
                                                  sense_range=20.0)
        assert model.decode_range == pytest.approx(20.0, rel=1e-6)
        assert model.sense_range == pytest.approx(20.0, rel=1e-6)
