"""Tests for frame construction."""

import pytest

from repro.phy.constants import PhyParameters
from repro.phy.frame import AckFrame, DataFrame, FrameFactory, FrameType


class TestFrameFactory:
    def test_data_frame_sizes(self, phy):
        factory = FrameFactory(phy)
        frame = factory.data(source=3, destination=-1)
        assert frame.frame_type is FrameType.DATA
        assert frame.payload_bits == phy.payload_bits
        assert frame.size_bits == phy.mac_header_bits + phy.payload_bits
        assert frame.source == 3
        assert frame.destination == -1

    def test_data_frame_custom_payload(self, phy):
        factory = FrameFactory(phy)
        frame = factory.data(source=0, destination=-1, payload_bits=1000)
        assert frame.payload_bits == 1000
        assert frame.goodput_bits == 1000

    def test_data_frame_rejects_non_positive_payload(self, phy):
        factory = FrameFactory(phy)
        with pytest.raises(ValueError):
            factory.data(source=0, destination=-1, payload_bits=0)

    def test_ack_frame_carries_control(self, phy):
        factory = FrameFactory(phy)
        ack = factory.ack(source=-1, destination=4, acked_frame_id=7,
                          control={"p": 0.05})
        assert ack.frame_type is FrameType.ACK
        assert ack.control == {"p": 0.05}
        assert ack.acked_frame_id == 7
        assert ack.size_bits == phy.ack_bits

    def test_ack_default_control_is_empty(self, phy):
        ack = FrameFactory(phy).ack(source=-1, destination=0, acked_frame_id=1)
        assert ack.control == {}

    def test_frame_ids_unique_and_increasing(self, phy):
        factory = FrameFactory(phy)
        ids = [factory.data(source=0, destination=-1).frame_id for _ in range(10)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 10

    def test_independent_factories_have_independent_counters(self, phy):
        first = FrameFactory(phy)
        second = FrameFactory(phy)
        assert first.data(0, -1).frame_id == second.data(0, -1).frame_id


class TestAirtime:
    def test_airtime_matches_size_over_rate(self, phy):
        frame = FrameFactory(phy).data(source=0, destination=-1)
        assert frame.airtime(phy) == pytest.approx(frame.size_bits / phy.bit_rate)

    def test_airtime_ns_rounds_to_integer(self, phy):
        frame = FrameFactory(phy).data(source=0, destination=-1)
        assert frame.airtime_ns(phy) == int(round(frame.airtime(phy) * 1e9))
