"""Tests for PHY timing constants and derived frame durations."""

import math

import pytest

from repro.phy.constants import (
    DEFAULT_PHY,
    NS_PER_SECOND,
    PhyParameters,
    ns_to_seconds,
    seconds_to_ns,
)


class TestConversions:
    def test_seconds_to_ns_round_trip(self):
        assert ns_to_seconds(seconds_to_ns(1.5e-3)) == pytest.approx(1.5e-3)

    def test_seconds_to_ns_rounds(self):
        assert seconds_to_ns(1e-9) == 1
        assert seconds_to_ns(1.4e-9) == 1
        assert seconds_to_ns(1.6e-9) == 2

    def test_ns_per_second_constant(self):
        assert NS_PER_SECOND == 1_000_000_000


class TestDefaults:
    def test_table1_values(self):
        phy = PhyParameters()
        assert phy.bit_rate == 54e6
        assert phy.payload_bits == 8000
        assert phy.cw_min == 8
        assert phy.cw_max == 1024
        assert phy.slot_time == pytest.approx(9e-6)
        assert phy.sifs == pytest.approx(16e-6)
        assert phy.difs == pytest.approx(34e-6)

    def test_default_instance_matches_fresh_construction(self):
        assert DEFAULT_PHY == PhyParameters()

    def test_num_backoff_stages_is_seven(self):
        # log2(1024 / 8) = 7, so 8 backoff stages (0..7) as in the paper.
        assert PhyParameters().num_backoff_stages == 7

    def test_as_table_contains_all_table1_entries(self):
        table = PhyParameters().as_table()
        for key in ("Bit Rate", "Packet Payload", "CWmin", "CWmax",
                    "EnergyDetectionThreshold", "CcaMode1Threshold"):
            assert key in table


class TestDerivedDurations:
    def test_data_tx_time_includes_header_and_preamble(self, phy):
        expected = phy.phy_header_duration + (phy.mac_header_bits + phy.payload_bits) / phy.bit_rate
        assert phy.data_tx_time == pytest.approx(expected)

    def test_ts_formula(self, phy):
        expected = phy.data_tx_time + phy.sifs + phy.ack_tx_time + phy.difs
        assert phy.ts == pytest.approx(expected)

    def test_tc_formula(self, phy):
        expected = phy.data_tx_time + phy.difs
        assert phy.tc == pytest.approx(expected)

    def test_ts_longer_than_tc(self, phy):
        assert phy.ts > phy.tc

    def test_slot_unit_durations(self, phy):
        assert phy.ts_slots == pytest.approx(phy.ts / phy.slot_time)
        assert phy.tc_slots == pytest.approx(phy.tc / phy.slot_time)
        assert phy.tc_slots > 1

    def test_nanosecond_views_consistent(self, phy):
        assert phy.slot_time_ns == 9_000
        assert phy.sifs_ns == 16_000
        assert phy.difs_ns == 34_000
        assert phy.ts_ns == pytest.approx(phy.ts * 1e9, abs=1)
        assert phy.tc_ns == pytest.approx(phy.tc * 1e9, abs=1)

    def test_contention_window_doubles_and_caps(self, phy):
        assert phy.contention_window(0) == 8
        assert phy.contention_window(1) == 16
        assert phy.contention_window(7) == 1024
        assert phy.contention_window(12) == 1024

    def test_contention_window_rejects_negative_stage(self, phy):
        with pytest.raises(ValueError):
            phy.contention_window(-1)


class TestEvolve:
    def test_evolve_changes_only_requested_fields(self, phy):
        bigger = phy.evolve(payload_bits=12000)
        assert bigger.payload_bits == 12000
        assert bigger.bit_rate == phy.bit_rate
        assert bigger.ts > phy.ts

    def test_evolve_returns_new_instance(self, phy):
        assert phy.evolve(cw_min=16) is not phy


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("slot_time", 0.0),
        ("slot_time", -1e-6),
        ("sifs", 0.0),
        ("difs", 0.0),
        ("bit_rate", 0.0),
        ("payload_bits", 0),
        ("mac_header_bits", -1),
        ("ack_bits", -8),
        ("cw_min", 0),
        ("phy_header_duration", -1e-6),
    ])
    def test_rejects_non_positive_fields(self, field, value):
        with pytest.raises(ValueError):
            PhyParameters(**{field: value})

    def test_rejects_difs_smaller_than_sifs(self):
        with pytest.raises(ValueError):
            PhyParameters(sifs=30e-6, difs=20e-6)

    def test_rejects_cw_max_below_cw_min(self):
        with pytest.raises(ValueError):
            PhyParameters(cw_min=64, cw_max=32)

    def test_rejects_non_power_of_two_window_ratio(self):
        with pytest.raises(ValueError):
            PhyParameters(cw_min=8, cw_max=24)

    def test_accepts_equal_cw_min_max(self):
        phy = PhyParameters(cw_min=16, cw_max=16)
        assert phy.num_backoff_stages == 0
