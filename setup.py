"""Legacy setup shim.

The project is configured through ``pyproject.toml``; this file only exists
so that ``pip install -e .`` works on environments whose setuptools/pip lack
PEP 660 editable-install support (e.g. offline machines without ``wheel``).
"""

from setuptools import setup

setup()
