"""Traffic workload models: arrival processes and per-station frame queues.

Every simulator in the repository originally hard-coded *saturated* uplink
sources — each station always has a frame ready, which is the paper's
operating point but only one point of the offered-load axis.  This package
describes unsaturated and bursty workloads declaratively and provides the
deterministic machinery all four backends (scalar slotted, event-driven,
batched renewal-slot, batched conflict-matrix) share:

* :class:`ArrivalProcess` — a frozen, hashable descriptor of one station's
  frame-arrival process (saturated, Poisson, deterministic CBR, or on-off
  bursty with Poisson arrivals inside exponentially distributed bursts) plus
  the bounded FIFO queue capacity.  It serialises to canonical JSON so the
  campaign engine can hash it into task keys — with the **saturated**
  process canonicalised away entirely, so pre-traffic cache entries stay
  valid.
* :class:`ArrivalStream` — scalar per-station arrival-time stream used by
  the slotted and event-driven simulators; all randomness flows through the
  inverse-CDF transform of uniform draws so the scalar and vectorized
  implementations sample identical distributions.
* :class:`FrameQueue` — scalar bounded FIFO of arrival timestamps (exact
  per-frame queueing delay at delivery, drops on overflow, flush on
  activity-schedule leave).
* :class:`BatchedArrivals` — vectorized arrival + queue state for the
  batched backends: per-(cell, station) next-arrival times, ring-buffered
  arrival timestamps and per-cell offered/dropped/delay accumulators.  Each
  cell consumes uniforms from its own block-buffered stream in an order
  that depends only on that cell's trajectory, so per-cell results are
  bit-identical under any batch composition (the same contract as
  :class:`repro.sim.batched.CellStreams`, which it reuses).

Determinism contract
--------------------

The *scalar* simulators derive one arrival generator per station from
``(seed, TRAFFIC_STREAM_SALT, station)`` (:func:`station_arrival_rng`), so
the slotted and event-driven backends see bit-identical per-station arrival
sequences for the same task seed.  The batched backends use per-cell
streams instead (arrival draws interleave across a cell's stations in
trajectory order); their arrival processes are identically distributed but
not bit-equal to the scalar ones — exactly the equivalence class the
existing backends already occupy for backoff draws.
"""

from __future__ import annotations

import collections
import math
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "TRAFFIC_KINDS",
    "TRAFFIC_STREAM_SALT",
    "ArrivalProcess",
    "ArrivalStream",
    "FrameQueue",
    "BatchedArrivals",
    "station_arrival_rng",
    "saturation_frame_rate",
]

#: Arrival-process kinds understood by every backend.
TRAFFIC_KINDS = ("saturated", "poisson", "cbr", "on-off", "window", "incast")

#: Kinds whose frames arrive autonomously (open loop, clocked by time).
OPEN_LOOP_KINDS = ("poisson", "cbr", "on-off", "incast")

#: Seed-sequence salt separating arrival streams from contention streams.
#: Arrival randomness must never share a stream with backoff randomness:
#: the saturated path must not consume (or even create) arrival draws, and
#: the unsaturated path must not perturb the backoff stream.
TRAFFIC_STREAM_SALT = 0x7452_6166

#: Default bounded per-station FIFO capacity (frames).
DEFAULT_QUEUE_LIMIT = 64

#: Sentinel "unbounded flow" frame budget for persistent window sources.
_NO_FLOW_BOUND = np.int64(2) ** 62


def station_arrival_rng(seed: int, station: int) -> np.random.Generator:
    """The scalar simulators' per-station arrival generator (both backends)."""
    return np.random.default_rng((int(seed), TRAFFIC_STREAM_SALT, int(station)))


def saturation_frame_rate(phy) -> float:
    """System-wide frame rate (frames/s) of back-to-back successes.

    ``1 / Ts`` is the service capacity of the channel with zero contention
    overhead — an upper bound on what any MAC can deliver, which makes it a
    natural normaliser for offered-load sweeps: per-station offered load
    ``x`` times saturation capacity is ``x * saturation_frame_rate(phy) / N``
    frames/s.  Real MACs saturate below ``x = 1`` (backoff and collisions
    consume airtime), so a sweep to ``2.0x`` comfortably covers the
    overload regime.
    """
    return 1.0 / phy.ts


def _exponential(u, mean: float):
    """Inverse-CDF exponential transform shared by scalar and batched code."""
    return -np.log1p(-u) * mean


@dataclass(frozen=True)
class ArrivalProcess:
    """Declarative per-station frame-arrival process plus queue bound.

    Use the factory classmethods rather than the raw constructor.  The
    ``saturated`` process is the degenerate "always backlogged" workload
    every simulator models natively; it carries no parameters and is
    canonicalised to ``None`` inside :class:`~repro.experiments.campaign
    .specs.RunTask` so that saturated task hashes are unchanged from the
    pre-traffic format.

    Attributes
    ----------
    kind:
        One of :data:`TRAFFIC_KINDS`.
    rate_fps:
        Mean frame arrival rate per station in frames/s (for ``on-off``:
        the Poisson rate *while a burst is on*).
    queue_limit:
        Bounded FIFO capacity; arrivals to a full queue are dropped.
    on_mean_s / off_mean_s:
        Mean burst / idle durations of the ``on-off`` process (both
        exponentially distributed).
    retry_limit:
        Maximum transmission *attempts* per frame before the MAC discards
        it (802.11 retry limit).  ``None`` — the default — retries forever,
        which is the historical behaviour of every backend; keeping it the
        default preserves committed baselines and cache task hashes
        bit-for-bit.
    window / flow_frames:
        ``window``-kind parameters: at most ``window`` frames are
        outstanding per station, and a new frame is released each time one
        leaves the MAC (delivered *or* retry-discarded) — a TCP-like
        closed loop clocked by the channel.  ``flow_frames`` bounds the
        per-station flow (``None`` = persistent source).
    burst_frames / epoch_s:
        ``incast``-kind parameters: every station deterministically
        receives ``burst_frames`` frames at once at each epoch boundary
        ``k * epoch_s`` (N-to-1 synchronized bursts).
    downlink:
        Model the AP as a contending transmitter: station 0 carries the
        aggregate downlink flow at ``(N - 1) x rate_fps`` while stations
        ``1..N-1`` keep the per-station uplink rate.  Applies to the
        open-loop rate-based kinds.
    """

    kind: str
    rate_fps: float = 0.0
    queue_limit: int = DEFAULT_QUEUE_LIMIT
    on_mean_s: Optional[float] = None
    off_mean_s: Optional[float] = None
    retry_limit: Optional[int] = None
    window: Optional[int] = None
    flow_frames: Optional[int] = None
    burst_frames: Optional[int] = None
    epoch_s: Optional[float] = None
    downlink: bool = False

    # ------------------------------------------------------------------
    @classmethod
    def saturated(cls, retry_limit: Optional[int] = None) -> "ArrivalProcess":
        """Every station always backlogged (the paper's workload)."""
        return cls(kind="saturated", rate_fps=0.0, queue_limit=0,
                   retry_limit=retry_limit)

    @classmethod
    def poisson(cls, rate_fps: float,
                queue_limit: int = DEFAULT_QUEUE_LIMIT,
                retry_limit: Optional[int] = None,
                downlink: bool = False) -> "ArrivalProcess":
        """Poisson arrivals at ``rate_fps`` frames/s per station."""
        return cls(kind="poisson", rate_fps=float(rate_fps),
                   queue_limit=int(queue_limit), retry_limit=retry_limit,
                   downlink=bool(downlink))

    @classmethod
    def cbr(cls, rate_fps: float,
            queue_limit: int = DEFAULT_QUEUE_LIMIT,
            retry_limit: Optional[int] = None,
            downlink: bool = False) -> "ArrivalProcess":
        """Deterministic constant-bit-rate arrivals, one frame every
        ``1 / rate_fps`` seconds, with a per-station uniform random phase
        (so stations do not arrive in lock-step)."""
        return cls(kind="cbr", rate_fps=float(rate_fps),
                   queue_limit=int(queue_limit), retry_limit=retry_limit,
                   downlink=bool(downlink))

    @classmethod
    def on_off(cls, rate_fps: float, on_mean_s: float, off_mean_s: float,
               queue_limit: int = DEFAULT_QUEUE_LIMIT,
               retry_limit: Optional[int] = None,
               downlink: bool = False) -> "ArrivalProcess":
        """Bursty on-off source: exponential ON bursts (mean ``on_mean_s``)
        with Poisson arrivals at ``rate_fps``, separated by exponential OFF
        gaps (mean ``off_mean_s``); sources start ON at time 0."""
        return cls(kind="on-off", rate_fps=float(rate_fps),
                   queue_limit=int(queue_limit),
                   on_mean_s=float(on_mean_s), off_mean_s=float(off_mean_s),
                   retry_limit=retry_limit, downlink=bool(downlink))

    @classmethod
    def window_limited(cls, window: int, flow_frames: Optional[int] = None,
                       queue_limit: Optional[int] = None,
                       retry_limit: Optional[int] = None) -> "ArrivalProcess":
        """TCP-like closed loop: ``window`` frames outstanding per station,
        each departure (delivery or retry discard) releases the next frame.
        ``flow_frames`` bounds the flow; ``None`` keeps the source
        persistent.  ``queue_limit`` defaults to ``window`` (the loop never
        holds more than the window, so the queue cannot overflow)."""
        window = int(window)
        limit = window if queue_limit is None else int(queue_limit)
        return cls(kind="window", queue_limit=limit, window=window,
                   flow_frames=None if flow_frames is None
                   else int(flow_frames),
                   retry_limit=retry_limit)

    @classmethod
    def incast(cls, burst_frames: int, epoch_s: float,
               queue_limit: int = DEFAULT_QUEUE_LIMIT,
               retry_limit: Optional[int] = None) -> "ArrivalProcess":
        """N-to-1 incast: every station receives ``burst_frames`` frames
        simultaneously at each epoch boundary ``k * epoch_s`` (fan-in
        request rounds), deterministically — no randomness at all."""
        return cls(kind="incast", queue_limit=int(queue_limit),
                   burst_frames=int(burst_frames), epoch_s=float(epoch_s),
                   retry_limit=retry_limit)

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if self.kind not in TRAFFIC_KINDS:
            raise ValueError(
                f"unknown traffic kind '{self.kind}'; expected one of "
                f"{TRAFFIC_KINDS}"
            )
        if self.retry_limit is not None and self.retry_limit < 1:
            raise ValueError(
                "retry_limit must be at least 1 attempt (or None for "
                "infinite retries)"
            )
        if self.downlink and self.kind not in ("poisson", "cbr", "on-off"):
            raise ValueError(
                f"downlink only applies to rate-based traffic, not "
                f"'{self.kind}'"
            )
        for field, kinds in (("window", ("window",)),
                             ("flow_frames", ("window",)),
                             ("burst_frames", ("incast",)),
                             ("epoch_s", ("incast",))):
            if getattr(self, field) is not None and self.kind not in kinds:
                raise ValueError(
                    f"{field} only applies to {kinds[0]} traffic, not "
                    f"'{self.kind}'"
                )
        if self.kind == "saturated":
            return
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        if self.kind == "window":
            if self.rate_fps:
                raise ValueError("window traffic is clocked by deliveries, "
                                 "not a rate")
            if self.window is None or self.window < 1:
                raise ValueError("window traffic needs a window of at "
                                 "least 1 frame")
            if self.queue_limit < self.window:
                raise ValueError("queue_limit must be at least the window "
                                 "(the loop keeps window frames queued)")
            if self.flow_frames is not None and self.flow_frames < 1:
                raise ValueError("flow_frames must be at least 1 (or None "
                                 "for a persistent source)")
            return
        if self.kind == "incast":
            if self.rate_fps:
                raise ValueError("incast traffic is an epoch burst, not a "
                                 "rate")
            if self.burst_frames is None or self.burst_frames < 1:
                raise ValueError("incast traffic needs at least 1 frame "
                                 "per burst")
            if self.epoch_s is None or self.epoch_s <= 0:
                raise ValueError("incast traffic needs a positive epoch_s")
            return
        if self.rate_fps <= 0:
            raise ValueError("rate_fps must be positive")
        if self.kind == "on-off":
            if not self.on_mean_s or self.on_mean_s <= 0:
                raise ValueError("on-off traffic needs a positive on_mean_s")
            if not self.off_mean_s or self.off_mean_s <= 0:
                raise ValueError("on-off traffic needs a positive off_mean_s")
        elif self.on_mean_s is not None or self.off_mean_s is not None:
            raise ValueError(
                f"on/off durations only apply to on-off traffic, not "
                f"'{self.kind}'"
            )

    # ------------------------------------------------------------------
    @property
    def is_saturated(self) -> bool:
        return self.kind == "saturated"

    @property
    def is_closed_loop(self) -> bool:
        """Releases clocked by frame departures instead of wall time."""
        return self.kind == "window"

    @property
    def mean_rate_fps(self) -> float:
        """Long-run mean arrival rate per station (inf when the source is
        always backlogged: saturated and window-limited closed loops)."""
        if self.is_saturated or self.kind == "window":
            return math.inf
        if self.kind == "incast":
            return self.burst_frames / self.epoch_s
        if self.kind == "on-off":
            duty = self.on_mean_s / (self.on_mean_s + self.off_mean_s)
            return self.rate_fps * duty
        return self.rate_fps

    def rate_for(self, station: int, num_stations: int) -> float:
        """Per-station arrival rate, with the downlink aggregate on
        station 0 (the AP's transmit queue) when ``downlink`` is set."""
        if self.downlink and station == 0:
            return self.rate_fps * max(num_stations - 1, 1)
        return self.rate_fps

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"kind": self.kind}
        if self.kind in ("poisson", "cbr", "on-off"):
            payload["rate_fps"] = self.rate_fps
            payload["queue_limit"] = self.queue_limit
        if self.kind == "on-off":
            payload["on_mean_s"] = self.on_mean_s
            payload["off_mean_s"] = self.off_mean_s
        if self.kind == "window":
            payload["window"] = self.window
            if self.flow_frames is not None:
                payload["flow_frames"] = self.flow_frames
            payload["queue_limit"] = self.queue_limit
        if self.kind == "incast":
            payload["burst_frames"] = self.burst_frames
            payload["epoch_s"] = self.epoch_s
            payload["queue_limit"] = self.queue_limit
        if self.downlink:
            payload["downlink"] = True
        if self.retry_limit is not None:
            payload["retry_limit"] = self.retry_limit
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "ArrivalProcess":
        kind = payload["kind"]
        retry_limit = payload.get("retry_limit")
        if kind == "saturated":
            return cls.saturated(retry_limit=retry_limit)
        if kind == "window":
            return cls.window_limited(
                window=payload["window"],
                flow_frames=payload.get("flow_frames"),
                queue_limit=payload.get("queue_limit"),
                retry_limit=retry_limit,
            )
        if kind == "incast":
            return cls.incast(
                burst_frames=payload["burst_frames"],
                epoch_s=payload["epoch_s"],
                queue_limit=payload.get("queue_limit", DEFAULT_QUEUE_LIMIT),
                retry_limit=retry_limit,
            )
        kwargs = dict(
            rate_fps=payload["rate_fps"],
            queue_limit=payload.get("queue_limit", DEFAULT_QUEUE_LIMIT),
            retry_limit=retry_limit,
            downlink=bool(payload.get("downlink", False)),
        )
        if kind == "on-off":
            return cls.on_off(on_mean_s=payload["on_mean_s"],
                              off_mean_s=payload["off_mean_s"], **kwargs)
        if kind == "poisson":
            return cls.poisson(**kwargs)
        if kind == "cbr":
            return cls.cbr(**kwargs)
        raise ValueError(f"unknown traffic kind '{kind}'")


class ArrivalStream:
    """Scalar per-station arrival-time stream (slotted / event simulators).

    ``next_time`` is the absolute time (seconds) of the next frame arrival;
    :meth:`advance` consumes it and draws the following one.  All draws go
    through the inverse-CDF transform of ``rng.random()`` so the scalar and
    batched implementations sample identical distributions.  ``rate_fps``
    overrides the spec's rate for this station (downlink aggregates —
    callers pass :meth:`ArrivalProcess.rate_for`); the deterministic
    ``incast`` kind consumes no randomness at all.
    """

    def __init__(self, spec: ArrivalProcess, rng: np.random.Generator,
                 rate_fps: Optional[float] = None) -> None:
        if spec.is_saturated or spec.is_closed_loop:
            raise ValueError(f"{spec.kind} traffic has no arrival stream")
        self._spec = spec
        self._rng = rng
        if spec.kind == "incast":
            self._burst_left = spec.burst_frames
            self.next_time = 0.0
            return
        self._period = 1.0 / (spec.rate_fps if rate_fps is None else rate_fps)
        if spec.kind == "cbr":
            self.next_time = float(rng.random()) * self._period
        elif spec.kind == "poisson":
            self.next_time = float(_exponential(rng.random(), self._period))
        else:  # on-off: sources start a burst at time 0
            self._on_until = float(_exponential(rng.random(), spec.on_mean_s))
            self.next_time = self._next_onoff(0.0)

    def _next_onoff(self, cursor: float) -> float:
        spec = self._spec
        while True:
            candidate = cursor + float(
                _exponential(self._rng.random(), self._period)
            )
            if candidate <= self._on_until:
                return candidate
            # The burst ended before the candidate arrival: skip the OFF gap
            # and restart the (memoryless) arrival clock at the next burst.
            cursor = self._on_until + float(
                _exponential(self._rng.random(), spec.off_mean_s)
            )
            self._on_until = cursor + float(
                _exponential(self._rng.random(), spec.on_mean_s)
            )

    def advance(self) -> float:
        """Consume and return the current arrival; compute the next one."""
        current = self.next_time
        if self._spec.kind == "incast":
            self._burst_left -= 1
            if self._burst_left == 0:
                self._burst_left = self._spec.burst_frames
                self.next_time = current + self._spec.epoch_s
            return current
        if self._spec.kind == "cbr":
            self.next_time = current + self._period
        elif self._spec.kind == "poisson":
            self.next_time = current + float(
                _exponential(self._rng.random(), self._period)
            )
        else:
            self.next_time = self._next_onoff(current)
        return current


class FrameQueue:
    """Bounded FIFO of frame-arrival timestamps for one station."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("queue limit must be at least 1")
        self._limit = int(limit)
        self._times: Deque[float] = collections.deque()

    def __len__(self) -> int:
        return len(self._times)

    @property
    def limit(self) -> int:
        return self._limit

    @property
    def head_time(self) -> Optional[float]:
        """Arrival time of the head-of-line frame, if any."""
        return self._times[0] if self._times else None

    def offer(self, arrival_time_s: float) -> bool:
        """Enqueue an arrival; False (a drop) when the queue is full."""
        if len(self._times) >= self._limit:
            return False
        self._times.append(float(arrival_time_s))
        return True

    def pop(self, now_s: float) -> float:
        """Dequeue the head frame (a delivery); returns its queueing delay."""
        return now_s - self._times.popleft()

    def flush(self) -> int:
        """Discard every queued frame (activity-schedule leave); returns
        the number flushed so the caller can account them as drops."""
        flushed = len(self._times)
        self._times.clear()
        return flushed


class BatchedArrivals:
    """Vectorized arrival + bounded-queue state for the batched backends.

    All arrays are laid out ``(cell, station)`` like the simulators' own
    state.  Uniform draws come from one block-buffered stream per cell
    (:class:`repro.sim.batched.CellStreams` seeded with
    ``(seed, TRAFFIC_STREAM_SALT)``), consumed in an order that is a
    deterministic function of the cell's own trajectory — so per-cell
    results are independent of batch composition, the same contract the
    contention streams obey.

    Offered/dropped counters and the queue-delay accumulator are per cell
    and reset at each cell's warm-up crossing
    (:meth:`reset_measurement`), mirroring how the simulators reset their
    success/failure counters.
    """

    def __init__(
        self,
        spec: ArrivalProcess,
        seeds: Sequence[int],
        num_stations: Sequence[int],
        max_stations: Optional[int] = None,
    ) -> None:
        if spec.is_saturated:
            raise ValueError("saturated traffic has no batched arrival state")
        from ..sim.batched import CellStreams  # local import: sim imports us

        self._spec = spec
        self._limit = int(spec.queue_limit)
        n = np.asarray(num_stations, dtype=np.int64)
        num_cells = n.size
        width = int(n.max()) if max_stations is None else int(max_stations)
        if width < int(n.max()):
            raise ValueError("max_stations is smaller than a cell's count")
        self._n = n
        self._exists = np.arange(width)[None, :] < n[:, None]
        self._streams = CellStreams(
            [(int(seed), TRAFFIC_STREAM_SALT) for seed in seeds],
            block=np.maximum(4096, 16 * n),
        )
        shape = (num_cells, width)
        self._period = None
        self._period_cs = None
        if spec.kind in ("poisson", "cbr", "on-off"):
            if spec.downlink:
                # Station 0 is the AP queue carrying the (N-1)x aggregate.
                rates = np.where(
                    np.arange(width)[None, :] == 0,
                    spec.rate_fps * np.maximum(n - 1, 1)[:, None].astype(float),
                    spec.rate_fps,
                )
                self._period_cs = 1.0 / rates
            else:
                self._period = 1.0 / spec.rate_fps
        self._next = np.full(shape, np.inf)
        self._qlen = np.zeros(shape, dtype=np.int64)
        self._head = np.zeros(shape, dtype=np.int64)
        self._ring = np.zeros(shape + (self._limit,))
        if spec.kind == "on-off":
            self._on_until = np.full(shape, np.inf)
        #: Per-cell counters over the current measurement window.
        self.offered = np.zeros(num_cells, dtype=np.int64)
        self.dropped = np.zeros(num_cells, dtype=np.int64)
        self.delay_sum = np.zeros(num_cells)
        #: Measurement epoch per cell (bumped by :meth:`reset_measurement`)
        #: tagging the per-frame delay log, so percentiles cover only the
        #: post-warm-up window.
        self._epoch = np.zeros(num_cells, dtype=np.int64)
        self._delay_log: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._completions: List[List[Tuple[int, float]]] = [
            [] for _ in range(num_cells)
        ]

        cells, stations = np.nonzero(self._exists)
        if spec.kind == "window":
            # Closed loop: pre-fill each queue with the window (release
            # times 0.0 — the ring is already zeroed); later releases are
            # clocked by departures, never by `_next`.
            flow = spec.flow_frames
            prefill = spec.window if flow is None else min(spec.window, flow)
            self._qlen[self._exists] = prefill
            self.offered[:] = prefill * n
            remaining = _NO_FLOW_BOUND if flow is None else flow - prefill
            self._flow_left = np.where(self._exists, remaining, 0)
            self._flow_done = np.zeros(shape, dtype=np.int64)
            self._flow_total = 0 if flow is None else int(flow)
            return
        if spec.kind == "incast":
            # Deterministic epoch bursts: every station is due at t=0 and
            # consumes zero uniforms, ever.
            self._next[cells, stations] = 0.0
            self._burst_left = np.where(self._exists, spec.burst_frames, 0)
            return
        # First arrivals: one draw per existing station (plus the initial
        # burst length for on-off), consumed cell-by-cell in station order.
        if spec.kind == "on-off":
            self._on_until[cells, stations] = _exponential(
                self._claim_one(cells), spec.on_mean_s
            )
        if spec.kind == "cbr":
            self._next[cells, stations] = (
                self._claim_one(cells) * self._period_of(cells, stations)
            )
        else:
            self._next[cells, stations] = 0.0
            self._draw_next(cells, stations)

    # ------------------------------------------------------------------
    def _period_of(self, cells: np.ndarray, stations: np.ndarray):
        """Mean inter-arrival period per (cell, station) pair — a scalar
        unless downlink skews station 0."""
        if self._period_cs is None:
            return self._period
        return self._period_cs[cells, stations]

    def _claim_one(self, cells: np.ndarray) -> np.ndarray:
        """Claim one uniform per entry of sorted ``cells`` (duplicates OK)."""
        counts = np.bincount(cells, minlength=self._n.size)
        base = self._streams.claim(counts)
        rank = np.arange(cells.size) - np.searchsorted(cells, cells)
        return self._streams.buffer[cells, base[cells] + rank]

    def _draw_next(self, cells: np.ndarray, stations: np.ndarray) -> None:
        """Advance ``next`` past the arrival currently stored there.

        ``cells`` must be sorted (``np.nonzero`` order), so per-cell stream
        claims land in station order — a deterministic function of the
        cell's own due set.
        """
        kind = self._spec.kind
        if kind == "incast":
            self._burst_left[cells, stations] -= 1
            done = self._burst_left[cells, stations] == 0
            dc, ds = cells[done], stations[done]
            self._burst_left[dc, ds] = self._spec.burst_frames
            self._next[dc, ds] += self._spec.epoch_s
            return
        if kind == "cbr":
            self._next[cells, stations] += self._period_of(cells, stations)
            return
        if kind == "poisson":
            self._next[cells, stations] += _exponential(
                self._claim_one(cells), self._period_of(cells, stations)
            )
            return
        # on-off: redraw until the candidate lands inside a burst; stations
        # whose candidate crosses the burst end skip the OFF gap (two more
        # draws) and retry.  Whether a station iterates again depends only
        # on its own state, so per-cell stream consumption stays a function
        # of the cell's own trajectory.
        cursor = self._next[cells, stations].copy()
        pending = np.arange(cells.size)
        while pending.size:
            pc, ps = cells[pending], stations[pending]
            candidate = cursor[pending] + _exponential(
                self._claim_one(pc), self._period_of(pc, ps)
            )
            ok = candidate <= self._on_until[pc, ps]
            self._next[pc[ok], ps[ok]] = candidate[ok]
            cross = pending[~ok]
            if not cross.size:
                break
            cc, cs = cells[cross], stations[cross]
            counts = np.bincount(cc, minlength=self._n.size) * 2
            base = self._streams.claim(counts)
            rank = np.arange(cc.size) - np.searchsorted(cc, cc)
            u = self._streams.gather(cc, base[cc] + rank * 2, 2)
            burst_start = self._on_until[cc, cs] + _exponential(
                u[:, 0], self._spec.off_mean_s
            )
            self._on_until[cc, cs] = burst_start + _exponential(
                u[:, 1], self._spec.on_mean_s
            )
            cursor[cross] = burst_start
            pending = cross

    # ------------------------------------------------------------------
    @property
    def queue_limit(self) -> int:
        return self._limit

    @property
    def queue_lengths(self) -> np.ndarray:
        """Per-(cell, station) queue lengths (diagnostics/tests)."""
        return self._qlen.copy()

    def has_frame(self) -> np.ndarray:
        """Boolean (cell, station) mask of stations with a queued frame."""
        return self._qlen > 0

    def next_min(self) -> np.ndarray:
        """Per-cell earliest pending arrival time (seconds; inf if none)."""
        return self._next.min(axis=1)

    # ------------------------------------------------------------------
    def advance(self, now_s: np.ndarray, active: np.ndarray) -> np.ndarray:
        """Process every arrival at or before each cell's ``now``.

        ``active[c, s]`` marks stations currently in the network (activity
        schedules); arrivals to inactive stations are counted offered and
        dropped.  Returns the (cell, station) mask of stations whose queue
        went empty -> non-empty (they must rejoin contention).
        """
        rejoined = np.zeros(self._qlen.shape, dtype=bool)
        while True:
            due = self._next <= now_s[:, None]
            if not due.any():
                return rejoined
            dc, ds = np.nonzero(due)
            arrival = self._next[dc, ds].copy()
            np.add.at(self.offered, dc, 1)
            accept = active[dc, ds] & (self._qlen[dc, ds] < self._limit)
            if accept.any():
                ac, as_ = dc[accept], ds[accept]
                slot = (self._head[ac, as_] + self._qlen[ac, as_]) % self._limit
                self._ring[ac, as_, slot] = arrival[accept]
                empty = self._qlen[ac, as_] == 0
                rejoined[ac[empty], as_[empty]] = True
                self._qlen[ac, as_] += 1
            if not accept.all():
                np.add.at(self.dropped, dc[~accept], 1)
            self._draw_next(dc, ds)

    def pop_success(self, cells: np.ndarray, stations: np.ndarray,
                    now_s: np.ndarray) -> None:
        """Dequeue the head frame of each delivered (cell, station) pair,
        accumulating its exact FIFO queueing delay (sum and per-frame log
        for the percentile metrics)."""
        head = self._head[cells, stations]
        delay = now_s[cells] - self._ring[cells, stations, head]
        np.add.at(self.delay_sum, cells, delay)
        if cells.size:
            self._delay_log.append(
                (cells.copy(), delay, self._epoch[cells].copy())
            )
        self._qlen[cells, stations] -= 1
        self._head[cells, stations] = (head + 1) % self._limit
        self._after_pop(cells, stations, now_s[cells])

    def pop_discard(self, cells: np.ndarray, stations: np.ndarray,
                    now_s: np.ndarray) -> None:
        """Dequeue the head frame of each retry-discarding pair *without*
        delay accounting (the frame was never delivered); the departure
        still clocks the closed-loop release like a delivery would —
        discard-blind flow control would deadlock the window."""
        head = self._head[cells, stations]
        self._qlen[cells, stations] -= 1
        self._head[cells, stations] = (head + 1) % self._limit
        self._after_pop(cells, stations, now_s[cells])

    def _after_pop(self, cells: np.ndarray, stations: np.ndarray,
                   now_pair: np.ndarray) -> None:
        """Closed-loop bookkeeping once a frame leaves the MAC: release the
        next window frame and record finished flows.  No-op for the
        open-loop kinds."""
        if self._spec.kind != "window":
            return
        self._flow_done[cells, stations] += 1
        release = self._flow_left[cells, stations] > 0
        if release.any():
            rc, rs = cells[release], stations[release]
            slot = (self._head[rc, rs] + self._qlen[rc, rs]) % self._limit
            self._ring[rc, rs, slot] = now_pair[release]
            self._qlen[rc, rs] += 1
            self._flow_left[rc, rs] -= 1
            np.add.at(self.offered, rc, 1)
        if self._flow_total:
            finished = self._flow_done[cells, stations] == self._flow_total
            for c, s, t in zip(cells[finished], stations[finished],
                               now_pair[finished]):
                self._completions[int(c)].append((int(s), float(t)))

    def flush(self, cells: np.ndarray, stations: np.ndarray) -> None:
        """Discard the queues of leaving stations, accounting the flushed
        frames as drops (they were offered but will never be delivered)."""
        np.add.at(self.dropped, cells, self._qlen[cells, stations])
        self._qlen[cells, stations] = 0

    def reset_measurement(self, cell_mask: np.ndarray) -> None:
        """Zero the measurement counters of cells crossing their warm-up."""
        self.offered[cell_mask] = 0
        self.dropped[cell_mask] = 0
        self.delay_sum[cell_mask] = 0.0
        self._epoch[cell_mask] += 1
        for cell in np.flatnonzero(cell_mask):
            self._completions[cell] = []

    def delays_for(self, cell: int) -> np.ndarray:
        """Per-frame queueing delays delivered by ``cell`` inside its
        current measurement epoch (for the p50/p99 metrics)."""
        epoch = self._epoch[cell]
        chunks = [delays[(cells == cell) & (epochs == epoch)]
                  for cells, delays, epochs in self._delay_log]
        if not chunks:
            return np.zeros(0)
        return np.concatenate(chunks)

    def annotate_result(self, cell: int, stations: int,
                        extra: Dict[str, object]) -> Dict[str, object]:
        """One cell's traffic contribution to a simulation result.

        Adds the workload metadata to ``extra`` in place and returns the
        :class:`~repro.sim.metrics.SimulationResult` counter fields
        (``offered_frames`` / ``dropped_frames`` / ``queue_delay_sum_s``
        plus the flow-level delay percentiles and completion times);
        shared by both vectorized backends so their serialisation cannot
        drift apart.
        """
        extra["traffic"] = self._spec.kind
        extra["offered_rate_fps"] = self._spec.mean_rate_fps
        extra["queued_frames"] = int(self._qlen[cell, :stations].sum())
        delays = self.delays_for(cell)
        if delays.size:
            p50, p99 = np.quantile(delays, (0.5, 0.99))
        else:
            p50 = p99 = 0.0
        return dict(
            offered_frames=int(self.offered[cell]),
            dropped_frames=int(self.dropped[cell]),
            queue_delay_sum_s=float(self.delay_sum[cell]),
            queue_delay_p50_s=float(p50),
            queue_delay_p99_s=float(p99),
            flow_completions=tuple(sorted(self._completions[cell])),
        )
