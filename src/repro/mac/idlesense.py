"""IdleSense adaptive backoff (Heusse et al., SIGCOMM 2005) — baseline.

IdleSense is the strongest prior scheme the paper compares against
(Figures 1, 3, 6, 7 and Table III).  Every station measures ``n_i``, the
number of idle slots between consecutive transmissions it observes on the
channel, and drives its contention window with AIMD so that the long-run
average of ``n_i`` sits at a PHY-dependent target (the paper uses a target
of 3.1 idle slots per transmission).  In a fully connected network this is
near-optimal; with hidden nodes the *correct* target depends on the hidden
configuration (Table III), which is exactly why IdleSense collapses there.

The implementation follows the published algorithm:

* maintain ``sum_idle`` and ``ntrans`` (number of observed transmissions);
* once ``ntrans >= maxtrans``, compute ``avg_idle = sum_idle / ntrans`` and
  apply AIMD to the contention window::

      if avg_idle < target:  cw <- cw + epsilon          (back off)
      else:                  cw <- alpha * cw            (be more aggressive)

* the backoff for every transmission (success or failure) is drawn uniformly
  from ``[0, round(cw) - 1]`` — IdleSense deliberately removes the binary
  exponential backoff.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..phy.constants import PhyParameters
from .backoff import BackoffPolicy

__all__ = ["IdleSenseBackoff", "DEFAULT_TARGET_IDLE_SLOTS"]

#: Target average idle slots per transmission used by the paper (Section VI).
DEFAULT_TARGET_IDLE_SLOTS = 3.1


class IdleSenseBackoff(BackoffPolicy):
    """Per-station IdleSense contention-window adaptation.

    Parameters
    ----------
    phy:
        PHY parameters; ``cw_min`` seeds the initial window and acts as the
        lower clamp.
    target_idle_slots:
        The AIMD set point ``n_target`` (paper: 3.1).
    epsilon:
        Additive increase applied to the window when the channel looks too
        busy (published value 6.0).
    alpha:
        Multiplicative decrease factor applied when the channel looks too
        idle (published value 1/1.0666).
    maxtrans:
        Number of observed transmissions per AIMD update (published value 5).
    max_window:
        Upper clamp for the adapted window.
    """

    name = "IdleSense"

    observes_channel = True

    def __init__(
        self,
        phy: Optional[PhyParameters] = None,
        target_idle_slots: float = DEFAULT_TARGET_IDLE_SLOTS,
        epsilon: float = 6.0,
        alpha: float = 1.0 / 1.0666,
        maxtrans: int = 5,
        max_window: int = 4096,
    ) -> None:
        if target_idle_slots <= 0:
            raise ValueError("target_idle_slots must be positive")
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must lie in (0, 1)")
        if maxtrans < 1:
            raise ValueError("maxtrans must be at least 1")
        self._phy = phy or PhyParameters()
        if max_window < self._phy.cw_min:
            raise ValueError("max_window must be at least cw_min")
        self._target = float(target_idle_slots)
        self._epsilon = float(epsilon)
        self._alpha = float(alpha)
        self._maxtrans = int(maxtrans)
        self._max_window = int(max_window)

        self._window = float(self._phy.cw_min)
        self._current_idle_run = 0
        self._sum_idle = 0.0
        self._ntrans = 0
        # Long-run statistics for Table III style reporting.
        self._total_idle_slots = 0
        self._total_transmissions = 0

    # ------------------------------------------------------------------
    # Channel observation and AIMD update
    # ------------------------------------------------------------------
    def observe_channel_slot(self, idle: bool) -> None:
        """Feed one observed channel slot (idle or busy/transmission)."""
        if idle:
            self._current_idle_run += 1
            return
        self.observe_transmission(self._current_idle_run)
        self._current_idle_run = 0

    def observe_transmission(self, idle_slots_before: int) -> None:
        """Record one observed transmission and the idle run preceding it."""
        if idle_slots_before < 0:
            raise ValueError("idle_slots_before must be non-negative")
        self._sum_idle += idle_slots_before
        self._total_idle_slots += idle_slots_before
        self._total_transmissions += 1
        self._ntrans += 1
        if self._ntrans >= self._maxtrans:
            self._apply_aimd()

    def _apply_aimd(self) -> None:
        avg_idle = self._sum_idle / self._ntrans
        if avg_idle < self._target:
            self._window += self._epsilon
        else:
            self._window *= self._alpha
        self._window = min(max(self._window, float(self._phy.cw_min)),
                           float(self._max_window))
        self._sum_idle = 0.0
        self._ntrans = 0

    # ------------------------------------------------------------------
    # BackoffPolicy interface
    # ------------------------------------------------------------------
    @property
    def window(self) -> float:
        """Current (real-valued) contention window."""
        return self._window

    @property
    def target_idle_slots(self) -> float:
        return self._target

    def _draw(self, rng: np.random.Generator) -> int:
        window = max(int(round(self._window)), 1)
        if window <= 1:
            return 0
        return int(rng.integers(0, window))

    def initial_backoff(self, rng: np.random.Generator) -> int:
        return self._draw(rng)

    def on_success(self, rng: np.random.Generator) -> int:
        return self._draw(rng)

    def on_failure(self, rng: np.random.Generator) -> int:
        return self._draw(rng)

    def attempt_probability(self) -> Optional[float]:
        return 2.0 / (self._window + 1.0)

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def observed_average_idle_slots(self) -> Optional[float]:
        """Long-run average idle slots per observed transmission."""
        if self._total_transmissions == 0:
            return None
        return self._total_idle_slots / self._total_transmissions

    def state(self) -> Dict[str, float]:
        return {
            "window": self._window,
            "target": self._target,
            "pending_idle_run": float(self._current_idle_run),
            "observed_transmissions": float(self._total_transmissions),
        }
