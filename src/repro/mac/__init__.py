"""MAC layer: backoff policies, IdleSense baseline and named schemes."""

from .backoff import (
    BackoffPolicy,
    FixedWindowBackoff,
    PPersistentBackoff,
    RandomResetBackoff,
    StandardExponentialBackoff,
)
from .batched import (
    BatchedDcfBank,
    BatchedIdleSenseBank,
    BatchedPPersistentBank,
    BatchedPolicyBank,
    BatchedRandomResetBank,
)
from .idlesense import DEFAULT_TARGET_IDLE_SLOTS, IdleSenseBackoff
from .ntuning import NEstimatingPersistentBackoff
from .schemes import (
    SCHEME_NAMES,
    Scheme,
    fixed_p_persistent_scheme,
    fixed_randomreset_scheme,
    idlesense_scheme,
    n_estimating_scheme,
    scheme_by_name,
    standard_80211_scheme,
    tora_csma_scheme,
    wtop_csma_scheme,
)

__all__ = [
    "BackoffPolicy",
    "BatchedDcfBank",
    "BatchedIdleSenseBank",
    "BatchedPPersistentBank",
    "BatchedPolicyBank",
    "BatchedRandomResetBank",
    "FixedWindowBackoff",
    "PPersistentBackoff",
    "RandomResetBackoff",
    "StandardExponentialBackoff",
    "DEFAULT_TARGET_IDLE_SLOTS",
    "IdleSenseBackoff",
    "NEstimatingPersistentBackoff",
    "SCHEME_NAMES",
    "Scheme",
    "fixed_p_persistent_scheme",
    "fixed_randomreset_scheme",
    "idlesense_scheme",
    "n_estimating_scheme",
    "scheme_by_name",
    "standard_80211_scheme",
    "tora_csma_scheme",
    "wtop_csma_scheme",
]
