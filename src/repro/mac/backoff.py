"""Contention-resolution (backoff) policies.

Section II of the paper defines three classes of contention resolution:

* **standard exponential backoff** — IEEE 802.11 DCF: the contention window
  doubles on every failure up to ``CWmax`` and resets to ``CWmin`` after a
  success;
* **p-persistent CSMA** — the backoff is geometric with per-slot attempt
  probability ``p``, independent of past successes/failures;
* **RandomReset** (the paper's proposal) — exponential backoff on failures,
  but on a success the backoff stage is redrawn from a reset distribution
  parameterised by ``(j, p0)``.

All policies implement :class:`BackoffPolicy`: they are per-station objects
that return the number of idle slots to wait before the next transmission
attempt, and optionally react to the control values the AP piggy-backs on
ACK frames (``apply_control``).  The interface is deliberately tiny so the
same policy objects drive the event-driven simulator, the slotted simulator
and unit tests.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, Mapping, Optional

import numpy as np

from ..core.weighted_fairness import station_attempt_probability
from ..phy.constants import PhyParameters

__all__ = [
    "BackoffPolicy",
    "StandardExponentialBackoff",
    "PPersistentBackoff",
    "RandomResetBackoff",
    "FixedWindowBackoff",
]


class BackoffPolicy(ABC):
    """Per-station contention resolution policy.

    The policy decides, after every transmission outcome, how many idle
    backoff slots the station waits before its next attempt.  The simulator
    calls exactly one of :meth:`on_success` / :meth:`on_failure` per
    transmission and :meth:`initial_backoff` once at start-up.
    """

    #: Short name used in reports.
    name: str = "policy"

    #: Whether the policy wants channel-activity observations (IdleSense does;
    #: the simulators skip the per-slot bookkeeping for policies that do not).
    observes_channel: bool = False

    @abstractmethod
    def initial_backoff(self, rng: np.random.Generator) -> int:
        """Backoff (in slots) before the very first transmission attempt."""

    @abstractmethod
    def on_success(self, rng: np.random.Generator) -> int:
        """Backoff (in slots) after a successful transmission."""

    @abstractmethod
    def on_failure(self, rng: np.random.Generator) -> int:
        """Backoff (in slots) after a failed (collided) transmission."""

    def apply_control(self, control: Mapping[str, float]) -> None:
        """React to AP-advertised control values (default: ignore)."""
        return None

    def observe_channel_slot(self, idle: bool) -> None:
        """Observe one channel slot (idle or busy); used by adaptive policies."""
        return None

    def observe_transmission(self, idle_slots_before: int) -> None:
        """Observe one transmission preceded by ``idle_slots_before`` idle slots.

        Batched form of :meth:`observe_channel_slot` used on the simulators'
        hot paths; the default implementation forwards to the per-slot hook.
        """
        for _ in range(idle_slots_before):
            self.observe_channel_slot(True)
        self.observe_channel_slot(False)

    def attempt_probability(self) -> Optional[float]:
        """Approximate per-slot attempt probability, if well defined."""
        return None

    def state(self) -> Dict[str, float]:
        """Diagnostic snapshot of internal state (for logging and tests)."""
        return {}


def _draw_uniform_window(window: int, rng: np.random.Generator) -> int:
    """Draw a backoff uniformly from ``{0, ..., window - 1}``."""
    if window <= 1:
        return 0
    return int(rng.integers(0, window))


class StandardExponentialBackoff(BackoffPolicy):
    """IEEE 802.11 DCF binary exponential backoff.

    After ``i`` consecutive failures the window is
    ``CW_i = min(2^i CWmin, CWmax)``; a success resets the stage to 0.
    """

    name = "802.11"

    def __init__(self, phy: Optional[PhyParameters] = None) -> None:
        self._phy = phy or PhyParameters()
        self._stage = 0

    @property
    def stage(self) -> int:
        """Current backoff stage ``i``."""
        return self._stage

    @property
    def current_window(self) -> int:
        return self._phy.contention_window(self._stage)

    def initial_backoff(self, rng: np.random.Generator) -> int:
        self._stage = 0
        return _draw_uniform_window(self.current_window, rng)

    def on_success(self, rng: np.random.Generator) -> int:
        self._stage = 0
        return _draw_uniform_window(self.current_window, rng)

    def on_failure(self, rng: np.random.Generator) -> int:
        self._stage = min(self._stage + 1, self._phy.num_backoff_stages)
        return _draw_uniform_window(self.current_window, rng)

    def attempt_probability(self) -> Optional[float]:
        # Mean backoff is (CW-1)/2, so the long-run per-slot attempt
        # probability in the current stage is roughly 2 / (CW + 1).
        return 2.0 / (self.current_window + 1.0)

    def state(self) -> Dict[str, float]:
        return {"stage": float(self._stage), "window": float(self.current_window)}


class PPersistentBackoff(BackoffPolicy):
    """p-persistent CSMA with a weighted attempt probability.

    The station stores the AP's shared control variable ``p`` and maps it
    through its weight (Lemma 1): ``p_t = w p / (1 + (w - 1) p)``.  The
    backoff count is geometric with per-slot attempt probability ``p_t``
    (``P(K = k) = p_t (1 - p_t)^k``), so in every idle slot the station
    transmits with probability exactly ``p_t``.
    """

    name = "p-persistent"

    def __init__(self, p: float = 0.1, weight: float = 1.0,
                 max_backoff_slots: int = 1_000_000) -> None:
        if weight <= 0:
            raise ValueError("weight must be positive")
        if max_backoff_slots < 1:
            raise ValueError("max_backoff_slots must be positive")
        self._weight = float(weight)
        self._max_backoff_slots = int(max_backoff_slots)
        self._base_p = 0.0
        self._attempt_p = 0.0
        self.set_base_probability(p)

    # ------------------------------------------------------------------
    @property
    def weight(self) -> float:
        return self._weight

    @property
    def base_probability(self) -> float:
        """The shared control variable ``p`` as last advertised."""
        return self._base_p

    def set_base_probability(self, p: float) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must lie in [0, 1]")
        self._base_p = float(p)
        self._attempt_p = station_attempt_probability(self._weight, self._base_p)

    def apply_control(self, control: Mapping[str, float]) -> None:
        """Pick up the shared ``p`` broadcast by wTOP-CSMA in ACKs."""
        if "p" in control:
            self.set_base_probability(float(control["p"]))

    # ------------------------------------------------------------------
    def _draw(self, rng: np.random.Generator) -> int:
        p = self._attempt_p
        if p <= 0.0:
            return self._max_backoff_slots
        if p >= 1.0:
            return 0
        # numpy's geometric returns k >= 1 with P(k) = p (1-p)^(k-1); shift to
        # k >= 0 so the per-slot attempt probability equals p.
        draw = int(rng.geometric(p)) - 1
        return min(draw, self._max_backoff_slots)

    def initial_backoff(self, rng: np.random.Generator) -> int:
        return self._draw(rng)

    def on_success(self, rng: np.random.Generator) -> int:
        return self._draw(rng)

    def on_failure(self, rng: np.random.Generator) -> int:
        return self._draw(rng)

    def attempt_probability(self) -> Optional[float]:
        return self._attempt_p

    def state(self) -> Dict[str, float]:
        return {
            "base_p": self._base_p,
            "attempt_p": self._attempt_p,
            "weight": self._weight,
        }


class RandomResetBackoff(BackoffPolicy):
    """RandomReset(j; p0) backoff (Definition 4) with standard failure doubling.

    On failure the stage increments (saturating at ``m``).  On success the
    stage resets to ``j`` with probability ``p0`` and to a uniformly chosen
    stage in ``{j+1, ..., m}`` otherwise.  The AP's TORA-CSMA controller
    advertises ``(p0, j)`` in ACKs; :meth:`apply_control` picks them up.
    """

    name = "RandomReset"

    def __init__(self, phy: Optional[PhyParameters] = None, stage: int = 0,
                 reset_probability: float = 1.0) -> None:
        self._phy = phy or PhyParameters()
        self._num_stages = self._phy.num_backoff_stages
        self._reset_stage = 0
        self._reset_probability = 1.0
        self.set_reset(stage, reset_probability)
        self._stage = self._reset_stage

    # ------------------------------------------------------------------
    @property
    def reset_stage(self) -> int:
        """The target stage ``j`` advertised by the AP."""
        return self._reset_stage

    @property
    def reset_probability(self) -> float:
        """The reset probability ``p0``."""
        return self._reset_probability

    @property
    def stage(self) -> int:
        """The station's current backoff stage ``i``."""
        return self._stage

    @property
    def current_window(self) -> int:
        return self._phy.contention_window(self._stage)

    def set_reset(self, stage: int, reset_probability: float) -> None:
        if not 0 <= stage <= self._num_stages:
            raise ValueError(f"stage must lie in [0, {self._num_stages}]")
        if not 0.0 <= reset_probability <= 1.0:
            raise ValueError("reset probability must lie in [0, 1]")
        self._reset_stage = int(stage)
        self._reset_probability = float(reset_probability)

    def apply_control(self, control: Mapping[str, float]) -> None:
        """Pick up ``(p0, stage)`` broadcast by TORA-CSMA in ACKs."""
        stage = self._reset_stage
        p0 = self._reset_probability
        if "stage" in control:
            stage = int(round(float(control["stage"])))
        if "p0" in control:
            p0 = float(control["p0"])
        self.set_reset(stage, p0)

    # ------------------------------------------------------------------
    def _draw_reset_stage(self, rng: np.random.Generator) -> int:
        j = self._reset_stage
        if j >= self._num_stages:
            return self._num_stages
        if rng.random() < self._reset_probability:
            return j
        return int(rng.integers(j + 1, self._num_stages + 1))

    def initial_backoff(self, rng: np.random.Generator) -> int:
        self._stage = self._draw_reset_stage(rng)
        return _draw_uniform_window(self.current_window, rng)

    def on_success(self, rng: np.random.Generator) -> int:
        self._stage = self._draw_reset_stage(rng)
        return _draw_uniform_window(self.current_window, rng)

    def on_failure(self, rng: np.random.Generator) -> int:
        self._stage = min(self._stage + 1, self._num_stages)
        return _draw_uniform_window(self.current_window, rng)

    def attempt_probability(self) -> Optional[float]:
        return 2.0 / (self.current_window + 1.0)

    def state(self) -> Dict[str, float]:
        return {
            "stage": float(self._stage),
            "reset_stage": float(self._reset_stage),
            "reset_probability": self._reset_probability,
            "window": float(self.current_window),
        }


class FixedWindowBackoff(BackoffPolicy):
    """A constant contention window irrespective of outcomes.

    Not part of the paper's comparisons but useful as the simplest possible
    baseline in tests and ablation benches (it is the ``RandomReset(j; 1)``
    policy without failure doubling).
    """

    name = "fixed-window"

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        self._window = int(window)

    @property
    def window(self) -> int:
        return self._window

    def initial_backoff(self, rng: np.random.Generator) -> int:
        return _draw_uniform_window(self._window, rng)

    def on_success(self, rng: np.random.Generator) -> int:
        return _draw_uniform_window(self._window, rng)

    def on_failure(self, rng: np.random.Generator) -> int:
        return _draw_uniform_window(self._window, rng)

    def attempt_probability(self) -> Optional[float]:
        return 2.0 / (self._window + 1.0)

    def state(self) -> Dict[str, float]:
        return {"window": float(self._window)}
