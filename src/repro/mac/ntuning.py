"""Model-based adaptive p-persistent baseline ("estimate N, set p*").

The prior work the paper argues against ([2], [4], [7] — Bianchi/Cali et al.)
tunes the attempt probability of p-persistent CSMA from an *estimate of the
number of active stations*: each station observes the channel, estimates how
many contenders there are, and sets

    p = 1 / (N_hat * sqrt(T*_c / 2))                     (paper Eq. 8)

This is near-optimal in a fully connected network but, exactly like IdleSense,
it relies on the Bianchi model: with hidden nodes a station cannot observe the
contenders it cannot sense, underestimates N and becomes too aggressive.  The
class below implements the scheme so the reproduction can compare the paper's
model-free approach against the *model-based* state of the art it criticises,
not just against static 802.11.

Estimation: for a station attempting with probability ``p`` among ``N``
stations, the number of idle backoff slots before an observed transmission is
geometric with mean ``(1 - P_busy) / P_busy`` where
``P_busy = 1 - (1 - p)^N``.  Inverting the smoothed observed mean idle run
gives ``P_busy`` and hence ``N_hat = log(1 - P_busy) / log(1 - p)``.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from ..phy.constants import PhyParameters
from .backoff import BackoffPolicy

__all__ = ["NEstimatingPersistentBackoff"]


class NEstimatingPersistentBackoff(BackoffPolicy):
    """Distributed p-persistent CSMA tuned from an estimate of N.

    Parameters
    ----------
    phy:
        PHY parameters (``T*_c`` enters the optimal-p formula).
    initial_estimate:
        Starting guess for the number of active stations.
    smoothing:
        EWMA factor applied to the observed mean idle-run length
        (0 < smoothing <= 1; 1 means "use only the latest observation").
    min_estimate / max_estimate:
        Clamp on the station-count estimate.
    update_every:
        Number of observed transmissions between re-estimations.
    """

    name = "N-estimating p-persistent"

    observes_channel = True

    def __init__(
        self,
        phy: Optional[PhyParameters] = None,
        initial_estimate: float = 10.0,
        smoothing: float = 0.02,
        min_estimate: float = 1.0,
        max_estimate: float = 500.0,
        update_every: int = 10,
        max_backoff_slots: int = 1_000_000,
    ) -> None:
        if initial_estimate < 1:
            raise ValueError("initial_estimate must be at least 1")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must lie in (0, 1]")
        if not 1.0 <= min_estimate <= max_estimate:
            raise ValueError("require 1 <= min_estimate <= max_estimate")
        if update_every < 1:
            raise ValueError("update_every must be at least 1")
        self._phy = phy or PhyParameters()
        self._smoothing = float(smoothing)
        self._min_estimate = float(min_estimate)
        self._max_estimate = float(max_estimate)
        self._update_every = int(update_every)
        self._max_backoff_slots = int(max_backoff_slots)

        self._estimate = float(initial_estimate)
        self._attempt_p = self._optimal_p(self._estimate)
        self._mean_idle_run: Optional[float] = None
        self._observations_since_update = 0
        self._total_observations = 0

    # ------------------------------------------------------------------
    # Estimation machinery
    # ------------------------------------------------------------------
    def _optimal_p(self, estimate: float) -> float:
        """Eq. (8): the near-optimal attempt probability for ``estimate`` stations."""
        p = 1.0 / (max(estimate, 1.0) * math.sqrt(self._phy.tc_slots / 2.0))
        return min(max(p, 1e-6), 1.0)

    def observe_transmission(self, idle_slots_before: int) -> None:
        """Update the smoothed idle-run statistic and occasionally re-tune."""
        if idle_slots_before < 0:
            raise ValueError("idle_slots_before must be non-negative")
        if self._mean_idle_run is None:
            self._mean_idle_run = float(idle_slots_before)
        else:
            self._mean_idle_run += self._smoothing * (
                idle_slots_before - self._mean_idle_run
            )
        self._total_observations += 1
        self._observations_since_update += 1
        if self._observations_since_update >= self._update_every:
            self._observations_since_update = 0
            self._re_estimate()

    def _re_estimate(self) -> None:
        if self._mean_idle_run is None:
            return
        # Mean idle run r  =>  P_busy = 1 / (1 + r).
        p_busy = 1.0 / (1.0 + max(self._mean_idle_run, 0.0))
        p_busy = min(max(p_busy, 1e-6), 1.0 - 1e-9)
        own_p = min(max(self._attempt_p, 1e-9), 1.0 - 1e-9)
        estimate = math.log(1.0 - p_busy) / math.log(1.0 - own_p)
        estimate = min(max(estimate, self._min_estimate), self._max_estimate)
        self._estimate = estimate
        self._attempt_p = self._optimal_p(estimate)

    # ------------------------------------------------------------------
    # BackoffPolicy interface
    # ------------------------------------------------------------------
    def _draw(self, rng: np.random.Generator) -> int:
        p = self._attempt_p
        if p >= 1.0:
            return 0
        draw = int(rng.geometric(p)) - 1
        return min(draw, self._max_backoff_slots)

    def initial_backoff(self, rng: np.random.Generator) -> int:
        return self._draw(rng)

    def on_success(self, rng: np.random.Generator) -> int:
        return self._draw(rng)

    def on_failure(self, rng: np.random.Generator) -> int:
        return self._draw(rng)

    def attempt_probability(self) -> Optional[float]:
        return self._attempt_p

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def station_estimate(self) -> float:
        """Current estimate of the number of active stations."""
        return self._estimate

    @property
    def mean_idle_run(self) -> Optional[float]:
        """Smoothed observed idle-run length (None before any observation)."""
        return self._mean_idle_run

    def state(self) -> Dict[str, float]:
        return {
            "estimate": self._estimate,
            "attempt_p": self._attempt_p,
            "mean_idle_run": float(self._mean_idle_run or 0.0),
            "observations": float(self._total_observations),
        }
