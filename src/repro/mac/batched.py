"""Vectorized (batched) station backoff policies.

The scalar policies in :mod:`repro.mac.backoff` are per-station objects whose
methods the simulators call once per transmission event.  That design is what
keeps the event-driven and slotted simulators simple, but it caps throughput
at Python-interpreter speed: a campaign cell with 60 stations performs a
couple of Python calls per virtual slot.

This module re-expresses the same policies as *banks*: one object holding the
state of every station of every cell in a batch as 2-D NumPy arrays (axis 0 =
cell, axis 1 = station).  The batched slotted simulator
(:mod:`repro.sim.batched`) advances all cells together and asks the bank to
redraw backoff counters for the (few) stations that transmitted in the
current virtual slot, passing pre-gathered uniform variates from each cell's
own random stream.

Equivalence contract: every draw is distributed exactly as its scalar
counterpart (uniform windows become ``floor(u * W)``, geometric counts become
the inverse-CDF transform), so batched results are statistically
indistinguishable from slotted ones, though not bit-identical — the random
streams are consumed in a different order.

A bank consumes a *fixed* number of uniforms per event kind
(:attr:`draws_initial` / :attr:`draws_success` / :attr:`draws_failure`),
even when a particular draw ends up unused (e.g. RandomReset resetting
straight to stage ``j``).  Fixed consumption is what makes a cell's random
stream a function of its own trajectory only, which in turn makes per-cell
results independent of the composition of the batch.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Sequence

import numpy as np

from ..phy.constants import PhyParameters

__all__ = [
    "BatchedPolicyBank",
    "BatchedDcfBank",
    "BatchedIdleSenseBank",
    "BatchedStationIdleSenseBank",
    "BatchedPPersistentBank",
    "BatchedRandomResetBank",
]

#: Cap on geometric backoff draws, mirroring ``PPersistentBackoff``.
MAX_BACKOFF_SLOTS = 1_000_000


def _uniform_window_draw(u: np.ndarray, window: np.ndarray) -> np.ndarray:
    """``floor(u * W)`` — uniform over ``{0, ..., W-1}`` (0 when ``W <= 1``)."""
    return (u * window).astype(np.int64)


def _log_survival(p: np.ndarray) -> np.ndarray:
    """``log(1 - p)`` with ``p`` clipped into (0, 1) so the value is finite."""
    return np.log1p(-np.clip(p, 1e-12, 1.0 - 1e-12))


def _geometric_draw(u: np.ndarray, log_q: np.ndarray) -> np.ndarray:
    """Shifted-geometric inverse CDF: ``P(K = k) = p (1-p)^k`` for ``k >= 0``.

    ``log_q`` is ``log(1 - p)`` precomputed by :func:`_log_survival`; both the
    quotient and the cap are non-negative, so truncation equals floor.
    """
    raw = np.log1p(-u) / log_q
    return np.minimum(raw, MAX_BACKOFF_SLOTS).astype(np.int64)


class BatchedPolicyBank(ABC):
    """State of one backoff policy for every (cell, station) of a batch.

    ``cells`` / ``stations`` arguments are parallel flat index arrays naming
    the (cell, station) pairs to redraw; ``u`` is a ``(len(cells), k)`` array
    of uniforms gathered from each cell's own stream, where ``k`` is the
    bank's fixed per-event draw count.
    """

    #: Whether stations observe channel activity (IdleSense does).
    observes_channel = False

    #: Whether channel observations are per (cell, station) rather than per
    #: cell.  Per-cell observation is only valid in fully connected cells
    #: (every station sees the identical channel); simulators for arbitrary
    #: sensing graphs require per-station observation state
    #: (:class:`BatchedStationIdleSenseBank`).
    per_station_observations = False

    #: Uniforms consumed per initial draw / success redraw / failure redraw.
    draws_initial = 1
    draws_success = 1
    draws_failure = 1

    @abstractmethod
    def initial_draw(self, cells: np.ndarray, stations: np.ndarray,
                     u: np.ndarray) -> np.ndarray:
        """Backoff counters before the very first transmission attempt."""

    @abstractmethod
    def success_draw(self, cells: np.ndarray, stations: np.ndarray,
                     u: np.ndarray) -> np.ndarray:
        """Backoff counters after a successful transmission."""

    @abstractmethod
    def failure_draw(self, cells: np.ndarray, stations: np.ndarray,
                     u: np.ndarray) -> np.ndarray:
        """Backoff counters after a failed (collided/errored) transmission."""

    def observe_transmission(self, cell_mask: np.ndarray,
                             idle_run: np.ndarray) -> None:
        """Feed one observed transmission per cell in ``cell_mask``.

        ``idle_run[c]`` is the number of idle slots that preceded it.  In a
        fully connected cell every station observes the same channel, so the
        observation state lives per cell, not per station.
        """
        return None

    def station_observed_idle(self) -> Optional[np.ndarray]:
        """Per-cell mean station-observed idle average (IdleSense only)."""
        return None

    def probe_state(self) -> Dict[str, np.ndarray]:
        """Controller-state snapshot for simulator probes (read-only).

        2-D ``(cells, stations)`` arrays become per-station series, 1-D
        ``(cells,)`` arrays cell-level series — see
        :func:`repro.telemetry.probes.flatten_bank_state`.  Must never
        mutate bank state or touch a random stream.
        """
        return {}


class _ExponentialWindowBank(BatchedPolicyBank):
    """Shared per-station backoff-stage machinery of DCF and RandomReset.

    Both schemes draw uniformly from ``CW_i = min(2^i CWmin, CWmax)`` and
    double on failure (stage saturating at ``m``); they differ only in what a
    success does to the stage.
    """

    def __init__(self, phy: PhyParameters, num_cells: int, max_stations: int) -> None:
        self._cw_min = np.int64(phy.cw_min)
        self._cw_max = np.int64(phy.cw_max)
        self._num_stages = int(phy.num_backoff_stages)
        self._stage = np.zeros((num_cells, max_stations), dtype=np.int64)

    def _window(self, cells: np.ndarray, stations: np.ndarray) -> np.ndarray:
        return np.minimum(self._cw_min << self._stage[cells, stations], self._cw_max)

    def failure_draw(self, cells, stations, u):
        self._stage[cells, stations] = np.minimum(
            self._stage[cells, stations] + 1, self._num_stages
        )
        return _uniform_window_draw(u[:, 0], self._window(cells, stations))

    @property
    def stages(self) -> np.ndarray:
        """Per-(cell, station) backoff stages (diagnostics/tests)."""
        return self._stage.copy()

    def probe_state(self) -> Dict[str, np.ndarray]:
        return {
            "cw": np.minimum(self._cw_min << self._stage, self._cw_max),
            "stage": self._stage.copy(),
        }


class BatchedDcfBank(_ExponentialWindowBank):
    """IEEE 802.11 DCF binary exponential backoff, batched.

    Mirrors :class:`~repro.mac.backoff.StandardExponentialBackoff`: per-station
    stage, doubling on failure up to ``m`` and resetting on success.
    """

    def initial_draw(self, cells, stations, u):
        self._stage[cells, stations] = 0
        return _uniform_window_draw(u[:, 0], self._window(cells, stations))

    success_draw = initial_draw


class BatchedIdleSenseBank(BatchedPolicyBank):
    """IdleSense AIMD contention window, batched.

    In a fully connected cell every station sees the identical idle/busy slot
    sequence, so all stations of a cell share one window trajectory (the
    scalar simulator reaches the same state through N identical per-station
    objects); the bank therefore keeps one window per cell.
    """

    observes_channel = True

    def __init__(
        self,
        phy: PhyParameters,
        num_cells: int,
        target_idle_slots: float = 3.1,
        epsilon: float = 6.0,
        alpha: float = 1.0 / 1.0666,
        maxtrans: int = 5,
        max_window: int = 4096,
    ) -> None:
        if target_idle_slots <= 0:
            raise ValueError("target_idle_slots must be positive")
        self._cw_min = float(phy.cw_min)
        self._target = float(target_idle_slots)
        self._epsilon = float(epsilon)
        self._alpha = float(alpha)
        self._maxtrans = int(maxtrans)
        self._max_window = float(max_window)
        self._window = np.full(num_cells, self._cw_min, dtype=np.float64)
        self._sum_idle = np.zeros(num_cells, dtype=np.float64)
        self._ntrans = np.zeros(num_cells, dtype=np.int64)
        self._total_idle = np.zeros(num_cells, dtype=np.int64)
        self._total_trans = np.zeros(num_cells, dtype=np.int64)

    def observe_transmission(self, cell_mask, idle_run):
        observed = idle_run[cell_mask]
        self._sum_idle[cell_mask] += observed
        self._total_idle[cell_mask] += observed
        self._total_trans[cell_mask] += 1
        self._ntrans[cell_mask] += 1
        due = cell_mask & (self._ntrans >= self._maxtrans)
        if np.any(due):
            avg_idle = self._sum_idle[due] / self._ntrans[due]
            window = np.where(
                avg_idle < self._target,
                self._window[due] + self._epsilon,
                self._window[due] * self._alpha,
            )
            self._window[due] = np.clip(window, self._cw_min, self._max_window)
            self._sum_idle[due] = 0.0
            self._ntrans[due] = 0

    def _draw(self, cells, u):
        window = np.maximum(np.rint(self._window[cells]), 1.0)
        return _uniform_window_draw(u, window)

    def initial_draw(self, cells, stations, u):
        return self._draw(cells, u[:, 0])

    def success_draw(self, cells, stations, u):
        return self._draw(cells, u[:, 0])

    def failure_draw(self, cells, stations, u):
        return self._draw(cells, u[:, 0])

    def station_observed_idle(self):
        out = self._total_idle / np.maximum(self._total_trans, 1)
        return np.where(self._total_trans > 0, out, np.nan)

    @property
    def windows(self) -> np.ndarray:
        """Per-cell contention windows (diagnostics/tests)."""
        return self._window.copy()

    def probe_state(self) -> Dict[str, np.ndarray]:
        return {
            "cw": self._window.copy(),
            "idle_est": self.station_observed_idle(),
        }


class BatchedStationIdleSenseBank(BatchedPolicyBank):
    """IdleSense AIMD contention windows, batched with per-station state.

    The per-cell :class:`BatchedIdleSenseBank` exploits that in a fully
    connected cell every station observes the identical idle/busy sequence.
    On an arbitrary sensing graph that no longer holds: each station sees
    only the transmissions of its sensing set, so windows, idle-run sums and
    AIMD epochs diverge per station — exactly like the scalar
    :class:`~repro.mac.idlesense.IdleSenseBackoff` objects the event-driven
    simulator drives.  The conflict-graph simulator feeds observations
    through :meth:`observe_station_transmissions` with explicit (cell,
    station) index arrays.
    """

    observes_channel = True
    per_station_observations = True

    def __init__(
        self,
        phy: PhyParameters,
        num_cells: int,
        max_stations: int,
        target_idle_slots: float = 3.1,
        epsilon: float = 6.0,
        alpha: float = 1.0 / 1.0666,
        maxtrans: int = 5,
        max_window: int = 4096,
    ) -> None:
        if target_idle_slots <= 0:
            raise ValueError("target_idle_slots must be positive")
        self._cw_min = float(phy.cw_min)
        self._target = float(target_idle_slots)
        self._epsilon = float(epsilon)
        self._alpha = float(alpha)
        self._maxtrans = int(maxtrans)
        self._max_window = float(max_window)
        shape = (num_cells, max_stations)
        self._window = np.full(shape, self._cw_min, dtype=np.float64)
        self._sum_idle = np.zeros(shape, dtype=np.float64)
        self._ntrans = np.zeros(shape, dtype=np.int64)
        self._total_idle = np.zeros(shape, dtype=np.int64)
        self._total_trans = np.zeros(shape, dtype=np.int64)

    def observe_station_transmissions(self, cells: np.ndarray,
                                      stations: np.ndarray,
                                      idle_slots: np.ndarray) -> None:
        """Record one observed transmission per (cell, station) pair.

        ``idle_slots[k]`` is the number of backoff slots station
        ``stations[k]`` of cell ``cells[k]`` counted down since the last
        transmission it observed.  Index pairs are unique per call (a
        station observes at most one channel onset per simulator event).
        """
        self._sum_idle[cells, stations] += idle_slots
        self._total_idle[cells, stations] += idle_slots
        self._total_trans[cells, stations] += 1
        self._ntrans[cells, stations] += 1
        due = self._ntrans[cells, stations] >= self._maxtrans
        if np.any(due):
            dc, ds = cells[due], stations[due]
            avg_idle = self._sum_idle[dc, ds] / self._ntrans[dc, ds]
            window = np.where(
                avg_idle < self._target,
                self._window[dc, ds] + self._epsilon,
                self._window[dc, ds] * self._alpha,
            )
            self._window[dc, ds] = np.clip(window, self._cw_min,
                                           self._max_window)
            self._sum_idle[dc, ds] = 0.0
            self._ntrans[dc, ds] = 0

    def _draw(self, cells, stations, u):
        window = np.maximum(np.rint(self._window[cells, stations]), 1.0)
        return _uniform_window_draw(u, window)

    def initial_draw(self, cells, stations, u):
        return self._draw(cells, stations, u[:, 0])

    def success_draw(self, cells, stations, u):
        return self._draw(cells, stations, u[:, 0])

    def failure_draw(self, cells, stations, u):
        return self._draw(cells, stations, u[:, 0])

    def station_observed_idle(self):
        """Per-cell mean of the stations' long-run observed idle averages.

        Each cell's mean is taken over a gathered 1-D array of only its own
        observed stations (not a vectorized sum over the padded station
        axis): NumPy's pairwise summation groups operands differently for
        different array widths, so a padded-axis sum would make the last
        bits of the mean depend on the *batch's* widest cell — breaking the
        per-cell composition-independence contract for a pure diagnostics
        value.  The gathered array's length is the cell's own observed
        count, so its summation order is a function of the cell alone.
        """
        per_station = self._total_idle / np.maximum(self._total_trans, 1)
        observed = self._total_trans > 0
        out = np.full(observed.shape[0], np.nan)
        for cell in range(observed.shape[0]):
            stations = np.flatnonzero(observed[cell])
            if stations.size:
                out[cell] = float(per_station[cell, stations].mean())
        return out

    @property
    def windows(self) -> np.ndarray:
        """Per-(cell, station) contention windows (diagnostics/tests)."""
        return self._window.copy()

    def probe_state(self) -> Dict[str, np.ndarray]:
        idle_est = np.where(
            self._total_trans > 0,
            self._total_idle / np.maximum(self._total_trans, 1),
            np.nan,
        )
        return {"cw": self._window.copy(), "idle_est": idle_est}


class BatchedPPersistentBank(BatchedPolicyBank):
    """p-persistent CSMA stations, batched.

    The per-cell base probability is either fixed (open-loop sweeps) or read
    live from a wTOP-CSMA controller bank (``control``), which replaces the
    scalar simulator's "broadcast on every ACK": since the slotted simulator
    re-broadcasts the advertised ``p`` to every station on each success and
    tick update, station state always equals the controller's current
    advertisement, so reading it at draw time is equivalent.  Per-station
    weights map through Lemma 1 exactly as in the scalar policy.
    """

    def __init__(
        self,
        num_cells: int,
        max_stations: int,
        initial_p: float,
        weights: Optional[Sequence[float]] = None,
        control=None,
    ) -> None:
        if not 0.0 <= initial_p <= 1.0:
            raise ValueError("p must lie in [0, 1]")
        self._initial_p = float(initial_p)
        self._initial_log_q = float(_log_survival(np.asarray(initial_p)))
        self._control = control
        self._log_q_cache = np.full(num_cells, self._initial_log_q)
        self._log_q_version = -1
        if weights is None:
            self._weights = None
        else:
            padded = np.ones(max_stations, dtype=np.float64)
            given = np.asarray(weights, dtype=np.float64)[:max_stations]
            if np.any(given <= 0):
                raise ValueError("weights must be positive")
            padded[: given.size] = given
            self._weights = padded

    def _base_p(self, cells: np.ndarray) -> np.ndarray:
        if self._control is None:
            return np.full(cells.shape, self._initial_p)
        return self._control.advertised_p()[cells]

    def _log_q(self, cells: np.ndarray) -> np.ndarray:
        """``log(1 - p_t)`` per draw; cached per control-version, cell-wise."""
        if self._weights is not None:
            return None  # weighted: per-station, computed by the caller
        if self._control is None:
            return self._log_q_cache[cells]
        version = self._control.version
        if version != self._log_q_version:
            self._log_q_cache = _log_survival(self._control.advertised_p())
            self._log_q_version = version
        return self._log_q_cache[cells]

    def _weighted_draw(self, cells, stations, u, base_p):
        # Lemma 1 forward map (array form of
        # ``repro.core.weighted_fairness.station_attempt_probability``).
        weight = self._weights[stations]
        station_p = weight * base_p / (1.0 + (weight - 1.0) * base_p)
        return _geometric_draw(u, _log_survival(station_p))

    def initial_draw(self, cells, stations, u):
        if self._weights is not None:
            base = np.full(cells.shape, self._initial_p)
            return self._weighted_draw(cells, stations, u[:, 0], base)
        return _geometric_draw(u[:, 0], self._initial_log_q)

    def success_draw(self, cells, stations, u):
        if self._weights is not None:
            return self._weighted_draw(cells, stations, u[:, 0], self._base_p(cells))
        return _geometric_draw(u[:, 0], self._log_q(cells))

    failure_draw = success_draw

    def probe_state(self) -> Dict[str, np.ndarray]:
        num_cells = self._log_q_cache.shape[0]
        base_p = self._base_p(np.arange(num_cells))
        if self._weights is None:
            return {"attempt_p": base_p}
        # Lemma 1 forward map per station, broadcast over all cells.
        weight = self._weights[np.newaxis, :]
        p = base_p[:, np.newaxis]
        return {"attempt_p": weight * p / (1.0 + (weight - 1.0) * p)}


class BatchedRandomResetBank(_ExponentialWindowBank):
    """RandomReset(j; p0) stations, batched.

    On failure the per-station stage increments (saturating at ``m``); on a
    success the stage is redrawn from the reset distribution parameterised by
    the advertised ``(j, p0)`` — fixed for open-loop sweeps, read live from a
    TORA-CSMA controller bank otherwise (see
    :class:`BatchedPPersistentBank` for why live reads are equivalent to
    per-ACK broadcasts).  Success and initial draws always consume three
    uniforms (reset Bernoulli, uniform stage, window draw) so the stream
    consumption is a fixed function of the event kind.
    """

    draws_initial = 3
    draws_success = 3
    draws_failure = 1

    def __init__(
        self,
        phy: PhyParameters,
        num_cells: int,
        max_stations: int,
        initial_stage: int = 0,
        initial_p0: float = 1.0,
        control=None,
    ) -> None:
        super().__init__(phy, num_cells, max_stations)
        if not 0 <= initial_stage <= self._num_stages:
            raise ValueError(f"stage must lie in [0, {self._num_stages}]")
        if not 0.0 <= initial_p0 <= 1.0:
            raise ValueError("reset probability must lie in [0, 1]")
        self._initial_stage = int(initial_stage)
        self._initial_p0 = float(initial_p0)
        self._control = control

    def _reset_draw(self, cells, stations, u, reset_stage, p0):
        m = self._num_stages
        # u[:, 0] decides reset-to-j, u[:, 1] picks a uniform higher stage.
        higher = reset_stage + 1 + (u[:, 1] * (m - reset_stage)).astype(np.int64)
        stage = np.where(u[:, 0] < p0, reset_stage, np.minimum(higher, m))
        stage = np.where(reset_stage >= m, m, stage)
        self._stage[cells, stations] = stage
        return _uniform_window_draw(u[:, 2], self._window(cells, stations))

    def initial_draw(self, cells, stations, u):
        reset_stage = np.full(cells.shape, self._initial_stage, dtype=np.int64)
        p0 = np.full(cells.shape, self._initial_p0)
        return self._reset_draw(cells, stations, u, reset_stage, p0)

    def success_draw(self, cells, stations, u):
        if self._control is None:
            reset_stage = np.full(cells.shape, self._initial_stage, dtype=np.int64)
            p0 = np.full(cells.shape, self._initial_p0)
        else:
            reset_stage = self._control.advertised_stage()[cells]
            p0 = self._control.advertised_p0()[cells]
        return self._reset_draw(cells, stations, u, reset_stage, p0)
