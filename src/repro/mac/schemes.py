"""Named MAC schemes: bundles of (station policy factory, AP controller).

The paper's evaluation compares four schemes:

* ``standard-802.11`` — DCF binary exponential backoff, no AP controller;
* ``idlesense``       — IdleSense adaptive contention window, no AP controller;
* ``wtop-csma``       — p-persistent stations + wTOP-CSMA AP controller;
* ``tora-csma``       — RandomReset stations + TORA-CSMA AP controller.

A :class:`Scheme` packages everything a simulator needs to instantiate one of
those systems for ``N`` stations (optionally with per-station weights), so the
experiment runners can be written once and parameterised by scheme name.

Open-loop variants (fixed ``p`` or fixed ``(j, p0)``) are also provided for
the control-variable sweeps of Figures 2, 4, 5 and 13.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

from ..core.controller import AccessPointController, StaticController
from ..core.tora import ToraCsmaController
from ..core.wtop import WTopCsmaController
from ..phy.constants import PhyParameters
from .backoff import (
    BackoffPolicy,
    PPersistentBackoff,
    RandomResetBackoff,
    StandardExponentialBackoff,
)
from .idlesense import IdleSenseBackoff
from .ntuning import NEstimatingPersistentBackoff

__all__ = [
    "Scheme",
    "standard_80211_scheme",
    "idlesense_scheme",
    "wtop_csma_scheme",
    "tora_csma_scheme",
    "n_estimating_scheme",
    "fixed_p_persistent_scheme",
    "fixed_randomreset_scheme",
    "scheme_by_name",
    "SCHEME_NAMES",
]

PolicyFactory = Callable[[int], BackoffPolicy]
ControllerFactory = Callable[[], AccessPointController]


@dataclass(frozen=True)
class Scheme:
    """A complete MAC scheme: per-station policies plus the AP controller.

    Attributes
    ----------
    name:
        Display name used in experiment reports.
    policy_factory:
        Callable mapping a station index to a fresh policy instance.
    controller_factory:
        Callable creating the AP controller (a no-op
        :class:`StaticController` for non-adaptive schemes).
    adaptive:
        Whether the AP controller actually adapts anything (affects how long
        experiments must run before measuring steady-state throughput).
    """

    name: str
    policy_factory: PolicyFactory
    controller_factory: ControllerFactory
    adaptive: bool = False

    def make_policies(self, num_stations: int) -> list:
        """Instantiate one policy per station."""
        if num_stations < 1:
            raise ValueError("num_stations must be at least 1")
        return [self.policy_factory(i) for i in range(num_stations)]

    def make_controller(self) -> AccessPointController:
        """Instantiate the AP controller."""
        return self.controller_factory()


def _weight_for(weights: Optional[Sequence[float]], station: int) -> float:
    if weights is None:
        return 1.0
    return float(weights[station])


def standard_80211_scheme(phy: Optional[PhyParameters] = None) -> Scheme:
    """Standard IEEE 802.11 DCF (the paper's baseline)."""
    phy = phy or PhyParameters()
    return Scheme(
        name="Standard 802.11",
        policy_factory=lambda station: StandardExponentialBackoff(phy),
        controller_factory=StaticController,
        adaptive=False,
    )


def idlesense_scheme(phy: Optional[PhyParameters] = None,
                     target_idle_slots: float = 3.1) -> Scheme:
    """IdleSense (Heusse et al.) — distributed adaptive baseline."""
    phy = phy or PhyParameters()
    return Scheme(
        name="IdleSense",
        policy_factory=lambda station: IdleSenseBackoff(
            phy, target_idle_slots=target_idle_slots
        ),
        controller_factory=StaticController,
        adaptive=True,
    )


def wtop_csma_scheme(
    phy: Optional[PhyParameters] = None,
    weights: Optional[Sequence[float]] = None,
    update_period: float = 0.25,
    initial_control: float = 0.5,
    initial_station_p: float = 0.1,
    **controller_kwargs,
) -> Scheme:
    """wTOP-CSMA: p-persistent stations driven by the Kiefer-Wolfowitz AP."""
    phy = phy or PhyParameters()
    return Scheme(
        name="wTOP-CSMA",
        policy_factory=lambda station: PPersistentBackoff(
            p=initial_station_p, weight=_weight_for(weights, station)
        ),
        controller_factory=lambda: WTopCsmaController(
            update_period=update_period,
            initial_control=initial_control,
            **controller_kwargs,
        ),
        adaptive=True,
    )


def tora_csma_scheme(
    phy: Optional[PhyParameters] = None,
    update_period: float = 0.25,
    initial_p0: float = 0.5,
    initial_stage: int = 0,
    **controller_kwargs,
) -> Scheme:
    """TORA-CSMA: RandomReset stations driven by the Kiefer-Wolfowitz AP."""
    phy = phy or PhyParameters()
    return Scheme(
        name="TORA-CSMA",
        policy_factory=lambda station: RandomResetBackoff(
            phy, stage=initial_stage, reset_probability=1.0
        ),
        controller_factory=lambda: ToraCsmaController(
            phy=phy,
            update_period=update_period,
            initial_p0=initial_p0,
            initial_stage=initial_stage,
            **controller_kwargs,
        ),
        adaptive=True,
    )


def n_estimating_scheme(phy: Optional[PhyParameters] = None,
                        initial_estimate: float = 10.0) -> Scheme:
    """Model-based prior art: estimate N and set ``p* = 1/(N sqrt(Tc*/2))``.

    This is the Bianchi/Cali style adaptive p-persistent scheme the paper's
    related-work section discusses ([2], [4], [7]); it is near-optimal in a
    fully connected network but mis-estimates N (and over-drives the channel)
    when hidden nodes exist.
    """
    phy = phy or PhyParameters()
    return Scheme(
        name="N-estimating p-persistent",
        policy_factory=lambda station: NEstimatingPersistentBackoff(
            phy, initial_estimate=initial_estimate
        ),
        controller_factory=StaticController,
        adaptive=True,
    )


def fixed_p_persistent_scheme(p: float,
                              weights: Optional[Sequence[float]] = None) -> Scheme:
    """Open-loop p-persistent CSMA at a fixed ``p`` (Figures 2 and 4)."""
    return Scheme(
        name=f"p-persistent(p={p:g})",
        policy_factory=lambda station: PPersistentBackoff(
            p=p, weight=_weight_for(weights, station)
        ),
        controller_factory=StaticController,
        adaptive=False,
    )


def fixed_randomreset_scheme(stage: int, reset_probability: float,
                             phy: Optional[PhyParameters] = None) -> Scheme:
    """Open-loop RandomReset(j; p0) at fixed parameters (Figures 5 and 13)."""
    phy = phy or PhyParameters()
    return Scheme(
        name=f"RandomReset(j={stage}, p0={reset_probability:g})",
        policy_factory=lambda station: RandomResetBackoff(
            phy, stage=stage, reset_probability=reset_probability
        ),
        controller_factory=StaticController,
        adaptive=False,
    )


#: Names accepted by :func:`scheme_by_name`.
SCHEME_NAMES = ("standard-802.11", "idlesense", "wtop-csma", "tora-csma")


def scheme_by_name(name: str, phy: Optional[PhyParameters] = None,
                   **kwargs) -> Scheme:
    """Look up one of the paper's four schemes by a short name."""
    key = name.strip().lower()
    if key in {"standard-802.11", "802.11", "dcf", "standard"}:
        return standard_80211_scheme(phy)
    if key in {"idlesense", "idle-sense"}:
        return idlesense_scheme(phy, **kwargs)
    if key in {"wtop-csma", "wtop", "top-csma"}:
        return wtop_csma_scheme(phy, **kwargs)
    if key in {"tora-csma", "tora"}:
        return tora_csma_scheme(phy, **kwargs)
    raise ValueError(f"unknown scheme '{name}'; expected one of {SCHEME_NAMES}")
