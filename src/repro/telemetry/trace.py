"""Trace persistence: JSONL record streams, validation, Chrome export.

A trace file is one JSON object per line (JSONL), each a record emitted by a
:class:`~repro.telemetry.Telemetry` collector.  Six record types exist:

``meta``
    One per campaign invocation: CLI arguments, backend policy, job count.
``span``
    A timed phase (``name``, wall-clock ``t0`` epoch, ``dur`` seconds).
``task``
    One completed campaign cell: backend, cache hit/miss, batch-group id,
    worker pid, queue-wait vs execute split, cells/sec, fallback reason.
``counters``
    One simulator run's loop-level counters under a backend ``scope``
    (``slotted`` / ``event`` / ``batched`` / ``conflict`` / ``campaign``).
``probe``
    One simulated cell's windowed controller time series (schema v2,
    additive): virtual-time sample grid ``t``, decimation ``stride`` and a
    ``series`` mapping of per-station/per-cell value columns — see
    :mod:`repro.telemetry.probes`.
``profile``
    Aggregated cProfile hotspots when ``--profile`` is active.

:func:`validate_record` is the schema both the tests and CI enforce —
dependency-free on purpose (no jsonschema in the container).
:func:`chrome_trace` converts a record list into the Chrome trace-event JSON
that Perfetto / ``chrome://tracing`` load directly: spans and executed tasks
become complete (``ph="X"``) events on their producing process's timeline,
probe series become counter tracks (``ph="C"``), everything else becomes
instant events.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, IO, Iterable, List, Mapping, Optional, Union

__all__ = [
    "JsonlTraceWriter",
    "read_trace",
    "validate_record",
    "validate_trace_file",
    "chrome_trace",
    "write_chrome_trace",
    "RECORD_TYPES",
    "TRACE_SCHEMA_VERSION",
]

#: Bumped when the record shapes below change.  v2 added the ``probe``
#: record type (additive — every v1 trace is a valid v2 trace, and the
#: validator still accepts v1 ``meta`` records).
TRACE_SCHEMA_VERSION = 2

#: Schema versions :func:`validate_record` accepts in a ``meta`` record.
_COMPATIBLE_SCHEMAS = (1, TRACE_SCHEMA_VERSION)

RECORD_TYPES = ("meta", "span", "task", "counters", "probe", "profile")

#: How a campaign cell was satisfied: executed, served from the result
#: cache, replayed from a resume journal, or quarantined after exhausting
#: its retry budget (a ``failed`` record carries ``failure_reason``).
_TASK_SOURCES = ("run", "cache", "journal", "failed")


class JsonlTraceWriter:
    """Streams records to a JSONL file as they are emitted.

    Use as the ``sink`` of a :class:`~repro.telemetry.Telemetry` collector;
    also usable as a context manager.  Records are written with sorted keys
    and flushed per line so a crashed campaign still leaves a readable
    prefix.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Optional[IO[str]] = self.path.open("w", encoding="utf-8")
        self.count = 0

    def write(self, record: Mapping[str, Any]) -> None:
        if self._fh is None:
            raise ValueError(f"trace writer for {self.path} is closed")
        json.dump(record, self._fh, sort_keys=True, default=_jsonable)
        self._fh.write("\n")
        self._fh.flush()
        self.count += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _jsonable(value: Any) -> Any:
    """Fallback encoder: numpy scalars (and friends) to plain python."""
    for attr in ("item",):  # numpy scalar protocol without importing numpy
        if hasattr(value, attr):
            return value.item()
    raise TypeError(f"record field of type {type(value).__name__} "
                    f"is not JSON-serialisable: {value!r}")


def read_trace(path: Union[str, Path],
               skip_torn_tail: bool = False) -> List[Dict[str, Any]]:
    """Load every record of a JSONL trace file (no validation).

    With ``skip_torn_tail=True`` an unparseable *final* line — the writer
    was killed mid-write — is dropped instead of raising, so the valid
    prefix of a crashed campaign's trace remains loadable.
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    stripped = [line.strip() for line in lines]
    nonempty = [(i, line) for i, line in enumerate(stripped) if line]
    records = []
    for position, (_, line) in enumerate(nonempty):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if skip_torn_tail and position == len(nonempty) - 1:
                break
            raise
    return records


# ----------------------------------------------------------------------
# Schema validation (dependency-free).

def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ValueError(message)


def _is_num(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_optional_num(record: Mapping[str, Any], field: str,
                        minimum: Optional[float] = None) -> None:
    value = record.get(field)
    if value is None:
        return
    _require(_is_num(value), f"'{field}' must be a number or null")
    if minimum is not None:
        _require(value >= minimum, f"'{field}' must be >= {minimum}")


def validate_record(record: Any) -> str:
    """Validate one trace record; returns its type or raises ValueError."""
    _require(isinstance(record, dict), "record must be a JSON object")
    rtype = record.get("type")
    _require(rtype in RECORD_TYPES,
             f"unknown record type {rtype!r}; expected one of {RECORD_TYPES}")
    _require(isinstance(record.get("pid"), int), "'pid' must be an integer")

    if rtype == "meta":
        _require(_is_num(record.get("t0")), "'t0' must be a number")
        _require(isinstance(record.get("info"), dict),
                 "'info' must be an object")
        _require(record.get("schema") in _COMPATIBLE_SCHEMAS,
                 f"'schema' must be one of {_COMPATIBLE_SCHEMAS}")
    elif rtype == "span":
        name = record.get("name")
        _require(isinstance(name, str) and bool(name),
                 "'name' must be a non-empty string")
        _require(_is_num(record.get("t0")), "'t0' must be a number")
        _require(_is_num(record.get("dur")) and record["dur"] >= 0,
                 "'dur' must be a non-negative number")
        _require(isinstance(record.get("args"), dict),
                 "'args' must be an object")
    elif rtype == "task":
        _require(isinstance(record.get("key"), str) and record["key"],
                 "'key' must be a non-empty string")
        _require(isinstance(record.get("label"), str),
                 "'label' must be a string")
        _require(isinstance(record.get("backend"), str) and record["backend"],
                 "'backend' must be a non-empty string")
        _require(record.get("source") in _TASK_SOURCES,
                 f"'source' must be one of {_TASK_SOURCES}")
        _require(isinstance(record.get("cache_hit"), bool),
                 "'cache_hit' must be a boolean")
        _require(_is_num(record.get("t0")), "'t0' must be a number")
        group = record.get("group")
        _require(group is None or isinstance(group, int),
                 "'group' must be an integer or null")
        worker = record.get("worker_pid")
        _require(worker is None or isinstance(worker, int),
                 "'worker_pid' must be an integer or null")
        _check_optional_num(record, "cells_per_s", minimum=0.0)
        _check_optional_num(record, "queue_wait_s", minimum=0.0)
        _check_optional_num(record, "execute_s", minimum=0.0)
        reason = record.get("fallback_reason")
        _require(reason is None or (isinstance(reason, str) and reason),
                 "'fallback_reason' must be a non-empty string or null")
    elif rtype == "counters":
        scope = record.get("scope")
        _require(isinstance(scope, str) and bool(scope),
                 "'scope' must be a non-empty string")
        _require(_is_num(record.get("t0")), "'t0' must be a number")
        counters = record.get("counters")
        _require(isinstance(counters, dict) and counters,
                 "'counters' must be a non-empty object")
        for name, value in counters.items():
            _require(isinstance(name, str) and bool(name),
                     "counter names must be non-empty strings")
            _require(_is_num(value), f"counter '{name}' must be a number")
    elif rtype == "probe":
        scope = record.get("scope")
        _require(isinstance(scope, str) and bool(scope),
                 "'scope' must be a non-empty string")
        _require(_is_num(record.get("t0")), "'t0' must be a number")
        _require(_is_num(record.get("interval")) and record["interval"] > 0,
                 "'interval' must be a positive number")
        stride = record.get("stride")
        _require(isinstance(stride, int) and stride >= 1,
                 "'stride' must be an integer >= 1")
        for field in ("cell", "seed"):
            value = record.get(field)
            _require(value is None or isinstance(value, int),
                     f"'{field}' must be an integer or null")
        times = record.get("t")
        _require(isinstance(times, list) and times,
                 "'t' must be a non-empty list")
        for t in times:
            _require(_is_num(t), "'t' entries must be numbers")
        series = record.get("series")
        _require(isinstance(series, dict), "'series' must be an object")
        for name, column in series.items():
            _require(isinstance(name, str) and bool(name),
                     "series names must be non-empty strings")
            _require(isinstance(column, list) and len(column) == len(times),
                     f"series '{name}' must be a list of len(t) values")
            for value in column:
                _require(value is None or _is_num(value),
                         f"series '{name}' values must be numbers or null")
    elif rtype == "profile":
        _require(_is_num(record.get("t0")), "'t0' must be a number")
        top = record.get("top")
        _require(isinstance(top, list), "'top' must be a list")
        for row in top:
            _require(isinstance(row, dict), "'top' rows must be objects")
            _require(isinstance(row.get("func"), str) and row["func"],
                     "'func' must be a non-empty string")
            _require(isinstance(row.get("ncalls"), int),
                     "'ncalls' must be an integer")
            _require(_is_num(row.get("tottime")), "'tottime' must be a number")
            _require(_is_num(row.get("cumtime")), "'cumtime' must be a number")
    return rtype


def validate_trace_file(path: Union[str, Path],
                        allow_torn_tail: bool = False) -> Dict[str, int]:
    """Validate every line of a JSONL trace; returns per-type counts.

    Raises :class:`ValueError` naming the 1-based line number of the first
    invalid record.  An empty file (or one with no ``meta`` record) is
    considered invalid — every trace begins with campaign metadata.

    With ``allow_torn_tail=True`` an invalid *final* record — the writer
    was killed mid-write — does not fail validation; it is reported as
    ``counts["torn_tail"] == 1`` so callers can summarise the valid prefix
    while still surfacing the tear.  The ``torn_tail`` key is present only
    under that flag, so default-mode callers see pure per-type counts.
    """
    counts: Dict[str, int] = {rtype: 0 for rtype in RECORD_TYPES}
    if allow_torn_tail:
        counts["torn_tail"] = 0
    with Path(path).open("r", encoding="utf-8") as fh:
        numbered = [(lineno, line.strip())
                    for lineno, line in enumerate(fh, start=1)]
    nonempty = [(lineno, line) for lineno, line in numbered if line]
    for position, (lineno, line) in enumerate(nonempty):
        is_final = position == len(nonempty) - 1
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if allow_torn_tail and is_final:
                counts["torn_tail"] = 1
                break
            raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}")
        try:
            counts[validate_record(record)] += 1
        except ValueError as exc:
            if allow_torn_tail and is_final:
                counts["torn_tail"] = 1
                break
            raise ValueError(f"{path}:{lineno}: {exc}")
    _require(sum(counts[rtype] for rtype in RECORD_TYPES) > 0,
             f"{path}: trace contains no records")
    _require(counts["meta"] > 0, f"{path}: trace has no 'meta' record")
    return counts


# ----------------------------------------------------------------------
# Chrome trace-event export (Perfetto / chrome://tracing loadable).

def chrome_trace(records: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Convert trace records to the Chrome trace-event JSON format.

    Timestamps are microseconds relative to the earliest record so the
    viewer's timeline starts at zero.  Spans and executed tasks become
    complete events (``ph="X"``); cache hits, counters and profiles become
    instant events (``ph="i"``); probe series become counter tracks
    (``ph="C"``) with the virtual sample grid mapped onto the record's
    wall-clock anchor.  Record types this exporter does not understand are
    counted and reported under a top-level ``skippedRecordTypes`` key
    instead of being dropped silently.
    """
    records = list(records)
    starts = []
    for record in records:
        t0 = record.get("t0")
        if _is_num(t0):
            start = t0
            if record.get("type") == "task" and _is_num(record.get("execute_s")):
                start = t0 - record["execute_s"]
            starts.append(start)
    origin = min(starts) if starts else 0.0

    def us(epoch: float) -> float:
        return (epoch - origin) * 1e6

    events: List[Dict[str, Any]] = []
    skipped: Dict[str, int] = {}
    for record in records:
        rtype = record.get("type")
        pid = record.get("pid", 0)
        if rtype == "span":
            events.append({
                "name": record["name"], "cat": "span", "ph": "X",
                "ts": us(record["t0"]), "dur": record["dur"] * 1e6,
                "pid": pid, "tid": pid, "args": record.get("args", {}),
            })
        elif rtype == "task":
            args = {
                k: record.get(k)
                for k in ("backend", "source", "group", "cells_per_s",
                          "queue_wait_s", "fallback_reason")
                if record.get(k) is not None
            }
            tid = record.get("worker_pid") or pid
            if record.get("source") == "run" and _is_num(record.get("execute_s")):
                events.append({
                    "name": record.get("label") or record["key"][:12],
                    "cat": "task", "ph": "X",
                    "ts": us(record["t0"] - record["execute_s"]),
                    "dur": record["execute_s"] * 1e6,
                    "pid": tid, "tid": tid, "args": args,
                })
            else:
                events.append({
                    "name": record.get("label") or record["key"][:12],
                    "cat": "task", "ph": "i", "s": "p",
                    "ts": us(record["t0"]), "pid": tid, "tid": tid,
                    "args": args,
                })
        elif rtype == "counters":
            events.append({
                "name": f"counters:{record['scope']}", "cat": "counters",
                "ph": "i", "s": "p", "ts": us(record["t0"]),
                "pid": pid, "tid": pid, "args": dict(record["counters"]),
            })
        elif rtype == "probe":
            cell = record.get("cell")
            track = f"probe:{record['scope']}" + (
                f"[{cell}]" if cell is not None else "")
            t_values = record.get("t", [])
            t_first = t_values[0] if t_values else 0.0
            for name, column in record.get("series", {}).items():
                for t, value in zip(t_values, column):
                    if value is None:
                        continue
                    events.append({
                        "name": f"{track}/{name}", "cat": "probe", "ph": "C",
                        "ts": us(record["t0"] + (t - t_first)),
                        "pid": pid, "tid": pid, "args": {"value": value},
                    })
        elif rtype in ("meta", "profile"):
            events.append({
                "name": rtype, "cat": rtype, "ph": "i", "s": "g",
                "ts": us(record.get("t0", origin)), "pid": pid, "tid": pid,
                "args": record.get("info", {}) if rtype == "meta" else {
                    "top": record.get("top", []),
                },
            })
        else:
            key = rtype if isinstance(rtype, str) else repr(rtype)
            skipped[key] = skipped.get(key, 0) + 1
    trace: Dict[str, Any] = {"traceEvents": events, "displayTimeUnit": "ms"}
    if skipped:
        trace["skippedRecordTypes"] = skipped
    return trace


def write_chrome_trace(records: Iterable[Mapping[str, Any]],
                       path: Union[str, Path]) -> Path:
    """Write :func:`chrome_trace` output as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(chrome_trace(records), fh, default=_jsonable)
    return path
