"""Simulator-level probes: windowed controller/queue/throughput time series.

PR 7's telemetry made the *campaign* observable; this module makes the
*simulation itself* observable.  A :class:`ProbeConfig` installed through
:func:`session` asks every simulator backend (scalar slotted, scalar
event-driven, batched renewal-slot, batched conflict-matrix) to sample
per-station and per-cell controller state on a fixed virtual-time grid —
contention window / attempt probability, IdleSense idle estimate, wTOP/TORA
controller stage, queue depth, windowed per-station throughput and channel
busy fraction — into bounded :class:`ProbeBuffer` rings, emitted at the end
of the run as one ``probe`` record per cell through the ambient
:class:`~repro.telemetry.Telemetry` session (and therefore the ``--trace``
JSONL stream, trace schema v2).

The contract matches telemetry's exactly:

* **Off by default and free when off** — each simulator hoists one
  ``probes.current() is not None`` check per run.
* **Observing never perturbs** — probes never touch a random stream, never
  alter an event/slot boundary, and never enter task hashes or cache keys;
  runs with probes on and off are bit-identical on every backend
  (``tests/sim/test_probe_differential.py`` proves it differentially and
  with Hypothesis).

Samples are taken *retroactively*: when a simulator's virtual clock crosses
one or more probe boundaries it records the state it is currently carrying
at each crossed boundary, instead of shrinking its time step to land on the
boundary (which would change fast-forward chunking and, on the event
backend, timer schedules).  Window accumulators (per-station bits, channel
busy time) reset at every boundary whether or not the sample is kept, so
windowed rates always describe exactly one interval.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional

import numpy as np

__all__ = [
    "ProbeConfig",
    "ProbeBuffer",
    "current",
    "session",
    "probe_record",
    "station_series",
    "controller_series",
    "flatten_bank_state",
]


@dataclass(frozen=True)
class ProbeConfig:
    """Sampling policy for simulator probes (picklable, ships to workers).

    ``interval`` is the virtual-time sampling period in seconds; ``capacity``
    bounds each cell's ring buffer.  When a run crosses more than
    ``capacity`` boundaries the buffer decimates itself (every other sample
    is dropped and the accept stride doubles), so memory stays bounded and
    the surviving samples still share one uniform time grid.
    """

    interval: float
    capacity: int = 512

    def __post_init__(self) -> None:
        if not (isinstance(self.interval, (int, float))
                and math.isfinite(self.interval) and self.interval > 0):
            raise ValueError(
                "probe interval must be a positive finite number of seconds"
            )
        if self.capacity < 2:
            raise ValueError("probe capacity must be at least 2 samples")


# ----------------------------------------------------------------------
# Ambient session (mirrors repro.telemetry.session exactly)
# ----------------------------------------------------------------------
_active: Optional[ProbeConfig] = None


def current() -> Optional[ProbeConfig]:
    """The ambient probe configuration (``None`` = probes off)."""
    return _active


@contextmanager
def session(config: Optional[ProbeConfig]) -> Iterator[Optional[ProbeConfig]]:
    """Install ``config`` as the ambient probe configuration.

    Simulators read the configuration once per ``run()`` through
    :func:`current`; nesting restores the previous configuration on exit,
    like :func:`repro.telemetry.session`.
    """
    global _active
    previous = _active
    _active = config
    try:
        yield config
    finally:
        _active = previous


# ----------------------------------------------------------------------
# Bounded ring buffer with stride-doubling decimation
# ----------------------------------------------------------------------
class ProbeBuffer:
    """Bounded sample store keeping a uniform time grid under decimation.

    Boundaries arrive as a monotone ``tick`` counter (every probe boundary
    increments it, kept or not); a sample is accepted when ``tick`` is a
    multiple of the current ``stride``.  When the buffer reaches capacity it
    keeps every other stored sample and doubles the stride — the invariant
    that every stored tick is a multiple of the *current* stride survives
    the halving, so the retained samples always sit on one uniform grid of
    spacing ``stride * interval`` (the property the decimation test pins).

    Series may appear after the first sample (e.g. a station only becomes
    active mid-run); earlier positions backfill as NaN, and every series
    column always has exactly ``len(buffer)`` entries.
    """

    __slots__ = ("_capacity", "_stride", "_tick", "_times", "_series")

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 2:
            raise ValueError("capacity must be at least 2")
        self._capacity = int(capacity)
        self._stride = 1
        self._tick = 0
        self._times: List[float] = []
        self._series: Dict[str, List[float]] = {}

    def __len__(self) -> int:
        return len(self._times)

    @property
    def stride(self) -> int:
        return self._stride

    @property
    def times(self) -> List[float]:
        return list(self._times)

    @property
    def series(self) -> Dict[str, List[float]]:
        return {name: list(column) for name, column in self._series.items()}

    def sample(self, t: float, values: Mapping[str, float]) -> None:
        """Record one boundary's state (may be decimated away)."""
        tick = self._tick
        self._tick = tick + 1
        if tick % self._stride:
            return
        if len(self._times) >= self._capacity:
            self._times = self._times[::2]
            for name in self._series:
                self._series[name] = self._series[name][::2]
            self._stride *= 2
            if tick % self._stride:
                return
        n = len(self._times)
        self._times.append(float(t))
        for name, value in values.items():
            column = self._series.get(name)
            if column is None:
                column = [math.nan] * n
                self._series[name] = column
            column.append(float(value))
        for column in self._series.values():
            if len(column) <= n:
                column.append(math.nan)


def probe_record(scope: str, buffer: ProbeBuffer, config: ProbeConfig,
                 t0: float, seed: Optional[int] = None,
                 cell: Optional[int] = None) -> Optional[Dict[str, Any]]:
    """Render one cell's buffer into a ``probe`` trace record.

    Returns ``None`` when the buffer holds no samples (the run ended before
    the first boundary).  NaN values (station not yet observed, series
    backfill) become JSON ``null``.
    """
    if not len(buffer):
        return None
    series = {
        name: [None if math.isnan(v) else v for v in column]
        for name, column in buffer.series.items()
    }
    record: Dict[str, Any] = {
        "type": "probe",
        "scope": scope,
        "t0": float(t0),
        "interval": float(config.interval),
        "stride": int(buffer.stride),
        "t": buffer.times,
        "series": series,
    }
    if seed is not None:
        record["seed"] = int(seed)
    if cell is not None:
        record["cell"] = int(cell)
    return record


# ----------------------------------------------------------------------
# State extraction helpers
# ----------------------------------------------------------------------
def station_series(index: int, policy) -> Dict[str, float]:
    """Controller-state series of one scalar station policy.

    Reads the policy's public observers only (``attempt_probability()``,
    ``state()``, IdleSense's ``observed_average_idle_slots()``) — never a
    random stream.
    """
    values: Dict[str, float] = {}
    p = policy.attempt_probability()
    if p is not None:
        values[f"attempt_p[{index}]"] = float(p)
    state = policy.state()
    if "window" in state:
        values[f"cw[{index}]"] = float(state["window"])
    if "stage" in state:
        values[f"stage[{index}]"] = float(state["stage"])
    observed = getattr(policy, "observed_average_idle_slots", None)
    if observed is not None:
        estimate = observed()
        if estimate is not None:
            values[f"idle_est[{index}]"] = float(estimate)
    return values


def controller_series(controller) -> Dict[str, float]:
    """Cell-level series from an AP controller's ``control()`` mapping.

    ``control`` is the controller's primary advertised value (wTOP's ``p``,
    TORA's ``p0``); ``ctrl_stage`` is TORA's advertised stage.
    """
    control = controller.control()
    values: Dict[str, float] = {}
    if not isinstance(control, Mapping):
        return values
    for key in ("p", "p0", "probability", "value"):
        value = control.get(key)
        if value is not None:
            values["control"] = float(value)
            break
    stage = control.get("stage")
    if stage is not None:
        values["ctrl_stage"] = float(stage)
    return values


def flatten_bank_state(state: Mapping[str, np.ndarray], cell: int,
                       num_stations: int) -> Dict[str, float]:
    """Flatten one cell's slice of a batched bank's ``probe_state()``.

    2-D ``(cells, stations)`` arrays become per-station ``name[i]`` series
    (restricted to the cell's real station count — batched banks pad to the
    widest cell); 1-D ``(cells,)`` arrays become a single cell-level series.
    """
    values: Dict[str, float] = {}
    for name, array in state.items():
        arr = np.asarray(array)
        if arr.ndim == 2:
            row = arr[cell]
            for i in range(num_stations):
                values[f"{name}[{i}]"] = float(row[i])
        elif arr.ndim == 1:
            values[name] = float(arr[cell])
        else:
            values[name] = float(arr)
    return values
