"""cProfile plumbing for campaign workers: collect, merge, summarise.

``--profile`` wraps every unit of campaign work (a vectorized batch or a
scalar task) in a :class:`cProfile.Profile`.  A live profiler is not
picklable, but its ``stats`` dict (produced by ``Profile.create_stats()``)
is — workers ship that dict back to the parent, which merges all of them
with :class:`pstats.Stats` and renders one top-N hotspot table: the direct
input to the ROADMAP kernel-speed item.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Any, Dict, List, Mapping, Optional, Sequence

__all__ = [
    "stats_dict",
    "merge_stats",
    "top_hotspots",
    "hotspot_report",
]


def stats_dict(profiler: cProfile.Profile) -> Dict[Any, Any]:
    """Extract a profiler's picklable stats mapping (ships across the pool)."""
    profiler.create_stats()
    return profiler.stats  # type: ignore[attr-defined]


class _StatsCarrier:
    """The minimal duck type :class:`pstats.Stats` accepts: a finished
    profiler — ``create_stats()`` already done, ``stats`` attached."""

    def __init__(self, stats: Mapping[Any, Any]) -> None:
        self.stats = dict(stats)

    def create_stats(self) -> None:  # pstats calls this before reading .stats
        pass


def merge_stats(stat_dicts: Sequence[Mapping[Any, Any]]) -> Optional[pstats.Stats]:
    """Merge worker stats dicts into one :class:`pstats.Stats` (or None)."""
    carriers = [_StatsCarrier(d) for d in stat_dicts if d]
    if not carriers:
        return None
    merged = pstats.Stats(carriers[0])
    for carrier in carriers[1:]:
        merged.add(carrier)
    return merged


def _func_name(func: Any) -> str:
    """Render a pstats function key ``(file, line, name)`` compactly."""
    filename, lineno, name = func
    if filename == "~":  # built-ins have no file
        return name
    return f"{filename}:{lineno}({name})"


def top_hotspots(stat_dicts: Sequence[Mapping[Any, Any]],
                 limit: int = 20) -> List[Dict[str, Any]]:
    """The ``limit`` most expensive functions by cumulative time.

    Returns JSON-ready rows (``func``/``ncalls``/``tottime``/``cumtime``)
    for the trace's ``profile`` record, sorted by ``cumtime`` descending.
    """
    merged = merge_stats(stat_dicts)
    if merged is None:
        return []
    rows = []
    for func, (cc, nc, tt, ct, _callers) in merged.stats.items():
        rows.append({
            "func": _func_name(func),
            "ncalls": int(nc),
            "tottime": float(tt),
            "cumtime": float(ct),
        })
    rows.sort(key=lambda row: row["cumtime"], reverse=True)
    return rows[:limit]


def hotspot_report(stat_dicts: Sequence[Mapping[Any, Any]],
                   limit: int = 20) -> str:
    """A human-readable top-N hotspot table aggregated over all workers."""
    merged = merge_stats(stat_dicts)
    if merged is None:
        return "no profile data collected"
    stream = io.StringIO()
    merged.stream = stream  # pstats prints to its .stream attribute
    merged.sort_stats("cumulative").print_stats(limit)
    body = stream.getvalue().rstrip()
    header = (f"profile: {len(stat_dicts)} unit(s) of work aggregated, "
              f"top {limit} by cumulative time")
    return f"{header}\n{body}"
