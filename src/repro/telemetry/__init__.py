"""Lightweight, dependency-free runtime telemetry (spans and counters).

The campaign stack and all four simulator backends report *what they spent
their time on* through this module: the executor opens :meth:`Telemetry.span`
blocks around its phases (plan / cache-lookup / group / dispatch / execute),
emits one ``task`` record per completed cell, and each simulator emits one
``counters`` record per ``run()`` summarising its inner loop (slots advanced,
idle fast-forwards, events processed, heap compactions, sensing-matrix
product sizes, retry discards, ...).

Design constraints, in order of importance:

1. **Results are sacred.**  Telemetry never touches a random stream, never
   mutates simulator state, and is only consulted *after* per-slot decisions
   are made — a run with telemetry enabled is bit-identical to one without.
2. **Disabled means free.**  The default collector is the module-level
   :data:`NULL` singleton whose ``enabled`` flag is ``False``; instrumented
   hot loops hoist that flag into a local once per run and skip all
   accumulation, so the no-op path costs one attribute read per ``run()``
   plus one predictable branch per loop iteration.
3. **No dependencies.**  Pure stdlib; records are plain dicts so any sink
   (JSONL file, in-memory list, test assertion) can consume them.

Collectors are activated per-thread-of-control with :func:`session`; code
that wants to report looks up :func:`current` and checks ``enabled``.
Worker processes build their own :class:`Telemetry` with ``keep_records=
True`` and ship the record list back to the parent, which re-emits it into
its own sink (records carry the originating ``pid``).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional

from .probes import ProbeBuffer, ProbeConfig

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL",
    "current",
    "session",
    "ProbeBuffer",
    "ProbeConfig",
]


class Telemetry:
    """An enabled collector: records spans and counters as plain dicts.

    Parameters
    ----------
    sink:
        Optional callable invoked with each record as it is emitted (the
        CLI passes a JSONL writer).  Exceptions from the sink propagate —
        a broken trace file should fail loudly, not silently drop records.
    keep_records:
        When True (default), emitted records are also appended to
        :attr:`records` so they can be shipped across process boundaries
        or asserted on in tests.
    """

    __slots__ = ("enabled", "records", "_sink", "_keep", "pid")

    def __init__(self, sink: Optional[Callable[[Dict[str, Any]], None]] = None,
                 keep_records: bool = True) -> None:
        self.enabled = True
        self.records: List[Dict[str, Any]] = []
        self._sink = sink
        self._keep = bool(keep_records)
        self.pid = os.getpid()

    # ------------------------------------------------------------------
    def emit(self, record: Dict[str, Any]) -> None:
        """Emit one record (adds the producing ``pid`` if absent)."""
        record.setdefault("pid", self.pid)
        if self._keep:
            self.records.append(record)
        if self._sink is not None:
            self._sink(record)

    @contextmanager
    def span(self, name: str, **args: Any) -> Iterator[Dict[str, Any]]:
        """Measure a phase: emits a ``span`` record when the block exits.

        ``t0`` is a wall-clock epoch (so spans from different processes
        align on one timeline); ``dur`` is measured with ``perf_counter``.
        The yielded dict is the span's ``args`` mapping — callers may add
        entries while the block runs (e.g. counts discovered mid-phase).
        """
        t0 = time.time()
        p0 = time.perf_counter()
        payload: Dict[str, Any] = dict(args)
        try:
            yield payload
        finally:
            self.emit({
                "type": "span",
                "name": name,
                "t0": t0,
                "dur": time.perf_counter() - p0,
                "args": payload,
            })

    def counter(self, scope: str, name: str, value: float) -> None:
        """Emit a single named counter (convenience over :meth:`counters`)."""
        self.counters(scope, {name: value})

    def counters(self, scope: str, values: Mapping[str, Any],
                 **args: Any) -> None:
        """Emit one ``counters`` record for a backend/component ``scope``."""
        record: Dict[str, Any] = {
            "type": "counters",
            "scope": scope,
            "t0": time.time(),
            "counters": {str(k): v for k, v in values.items()},
        }
        if args:
            record["args"] = dict(args)
        self.emit(record)


class NullTelemetry:
    """The disabled collector: every operation is a near-free no-op."""

    __slots__ = ()

    enabled = False
    records: List[Dict[str, Any]] = []  # always empty; shared sentinel

    def emit(self, record: Dict[str, Any]) -> None:
        pass

    @contextmanager
    def span(self, name: str, **args: Any) -> Iterator[Dict[str, Any]]:
        yield dict(args)

    def counter(self, scope: str, name: str, value: float) -> None:
        pass

    def counters(self, scope: str, values: Mapping[str, Any],
                 **args: Any) -> None:
        pass


#: Process-wide disabled collector; ``current()`` returns it by default.
NULL = NullTelemetry()

_active: Telemetry | NullTelemetry = NULL


def current() -> Telemetry | NullTelemetry:
    """The collector instrumented code should report to right now."""
    return _active


@contextmanager
def session(telemetry: Optional[Telemetry | NullTelemetry]) -> Iterator[None]:
    """Make ``telemetry`` the :func:`current` collector inside the block.

    ``None`` (and :data:`NULL`) deactivate collection.  Sessions nest: the
    previous collector is restored on exit, so an executor can activate its
    own collector around a unit of work without disturbing an outer one.
    """
    global _active
    previous = _active
    _active = telemetry if telemetry is not None else NULL
    try:
        yield
    finally:
        _active = previous
