"""``trace-report``: summarise a JSONL campaign trace for humans.

``python -m repro.experiments trace-report FILE.jsonl`` validates the trace
against the schema (:func:`~repro.telemetry.trace.validate_trace_file`),
prints a phase/task/counter summary table, and writes a Perfetto-loadable
Chrome trace-event file next to the input (override with ``--out``).
"""

from __future__ import annotations

import argparse
import sys
from collections import defaultdict
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from .trace import (
    chrome_trace,
    read_trace,
    validate_trace_file,
    write_chrome_trace,
)

__all__ = ["render_report", "trace_report_main"]


def _fmt_s(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds >= 100:
        return f"{seconds:.0f}s"
    if seconds >= 1:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def _table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Minimal fixed-width table (matches the repo's text-report style)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _mean(values: List[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


def render_report(records: Sequence[Mapping[str, Any]]) -> str:
    """Render the human summary of a record list (already validated)."""
    sections: List[str] = []

    metas = [r for r in records if r.get("type") == "meta"]
    if metas:
        info = metas[0].get("info", {})
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(info.items()))
        sections.append(f"campaign: {pairs}" if pairs else "campaign: (no metadata)")

    # Phases: one row per span name.
    spans: Dict[str, List[float]] = defaultdict(list)
    for record in records:
        if record.get("type") == "span":
            spans[record["name"]].append(float(record["dur"]))
    if spans:
        rows = [
            (name, len(durs), _fmt_s(sum(durs)), _fmt_s(_mean(durs)))
            for name, durs in sorted(spans.items(),
                                     key=lambda item: -sum(item[1]))
        ]
        sections.append("phases (by total time)\n" + _table(
            ("span", "count", "total", "mean"), rows))

    # Tasks: one row per backend.
    per_backend: Dict[str, List[Mapping[str, Any]]] = defaultdict(list)
    for record in records:
        if record.get("type") == "task":
            per_backend[record["backend"]].append(record)
    if per_backend:
        rows = []
        for backend, tasks in sorted(per_backend.items()):
            hits = sum(1 for t in tasks if t.get("cache_hit"))
            rates = [t["cells_per_s"] for t in tasks
                     if t.get("cells_per_s") is not None]
            waits = [t["queue_wait_s"] for t in tasks
                     if t.get("queue_wait_s") is not None]
            execs = [t["execute_s"] for t in tasks
                     if t.get("execute_s") is not None]
            workers = {t["worker_pid"] for t in tasks
                       if t.get("worker_pid") is not None}
            rate = _mean(rates)
            rows.append((
                backend, len(tasks), hits,
                f"{rate:.2f}" if rate is not None else "-",
                _fmt_s(_mean(waits)), _fmt_s(_mean(execs)),
                len(workers) or "-",
            ))
        sections.append("tasks (by backend)\n" + _table(
            ("backend", "cells", "cache hits", "cells/s",
             "mean queue wait", "mean execute", "workers"), rows))

    fallbacks: Dict[str, int] = defaultdict(int)
    for record in records:
        if record.get("type") == "task" and record.get("fallback_reason"):
            fallbacks[record["fallback_reason"]] += 1
    if fallbacks:
        rows = sorted(fallbacks.items(), key=lambda item: -item[1])
        sections.append("backend fallbacks\n" + _table(
            ("reason", "cells"), rows))

    failed = [r for r in records
              if r.get("type") == "task" and r.get("source") == "failed"]
    if failed:
        rows = [
            (r.get("label") or r["key"][:12], r.get("backend", "?"),
             r.get("failure_reason", "?"), r.get("attempts", "?"),
             r.get("error", "?"))
            for r in failed
        ]
        sections.append("quarantined tasks (exhausted retry budget)\n"
                        + _table(("task", "backend", "reason", "attempts",
                                  "error"), rows))

    # Counters: summed per scope across runs.
    totals: Dict[str, Dict[str, float]] = defaultdict(lambda: defaultdict(float))
    runs: Dict[str, int] = defaultdict(int)
    for record in records:
        if record.get("type") == "counters":
            runs[record["scope"]] += 1
            for name, value in record["counters"].items():
                totals[record["scope"]][name] += value
    if totals:
        rows = []
        for scope in sorted(totals):
            for name in sorted(totals[scope]):
                value = totals[scope][name]
                rows.append((scope, name,
                             f"{value:g}", runs[scope]))
        sections.append("simulator counters (summed over runs)\n" + _table(
            ("scope", "counter", "total", "runs"), rows))

    profiles = [r for r in records if r.get("type") == "profile"]
    if profiles:
        rows = [
            (row["func"], row["ncalls"],
             _fmt_s(row["tottime"]), _fmt_s(row["cumtime"]))
            for row in profiles[-1].get("top", [])
        ]
        if rows:
            sections.append("profile hotspots (aggregated, by cumulative time)\n"
                            + _table(("function", "ncalls", "tottime",
                                      "cumtime"), rows))

    if not sections:
        return "trace contains no reportable records"
    return "\n\n".join(sections)


def trace_report_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.experiments trace-report``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments trace-report",
        description="Summarise a --trace JSONL file and export a "
                    "Perfetto-loadable Chrome trace.",
    )
    parser.add_argument("trace", type=Path, help="JSONL file written by --trace")
    parser.add_argument(
        "--out", type=Path, default=None, metavar="FILE",
        help="Chrome trace-event output path "
             "(default: <trace>.chrome.json; '-' to skip)",
    )
    args = parser.parse_args(argv)

    try:
        counts = validate_trace_file(args.trace, allow_torn_tail=True)
    except (OSError, ValueError) as exc:
        print(f"trace-report: invalid trace: {exc}", file=sys.stderr)
        return 1

    torn = counts.pop("torn_tail", 0)
    if torn:
        print("trace-report: warning: the final record is torn (the writer "
              "was killed mid-write); summarising the valid prefix",
              file=sys.stderr)
    records = read_trace(args.trace, skip_torn_tail=True)
    print(render_report(records))
    total = sum(counts.values())
    breakdown = ", ".join(f"{n} {t}" for t, n in sorted(counts.items()) if n)
    tail_note = "; 1 torn final record ignored" if torn else ""
    print(f"\n[{args.trace}: {total} records ({breakdown}); "
          f"schema OK{tail_note}]")

    if args.out != Path("-"):
        out = args.out or args.trace.with_suffix(args.trace.suffix + ".chrome.json")
        write_chrome_trace(records, out)
        events = len(chrome_trace(records)["traceEvents"])
        print(f"[chrome trace: {out} ({events} events) — load in Perfetto "
              f"or chrome://tracing]")
    return 0
