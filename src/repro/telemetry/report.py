"""``trace-report``: summarise a JSONL campaign trace for humans and CI.

``python -m repro.experiments trace-report FILE.jsonl`` validates the trace
against the schema (:func:`~repro.telemetry.trace.validate_trace_file`),
prints a phase/task/counter/probe summary table, and writes a
Perfetto-loadable Chrome trace-event file next to the input (override with
``--out``).  ``--json`` emits the same summary as one machine-readable JSON
document (:func:`summarize_trace`) so CI smoke steps can assert on its
structure instead of parsing the text tables.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from .trace import (
    chrome_trace,
    read_trace,
    validate_trace_file,
    write_chrome_trace,
)

__all__ = ["summarize_trace", "render_report", "trace_report_main"]

#: Livelock floor for probe throughput series, which are in Mbps (the
#: analysis-module floor is in bps).
_LIVELOCK_FLOOR_MBPS = 1.0


def _fmt_s(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds >= 100:
        return f"{seconds:.0f}s"
    if seconds >= 1:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def _table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Minimal fixed-width table (matches the repo's text-report style)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _mean(values: List[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


# ----------------------------------------------------------------------
# Shared aggregation (feeds both the text report and --json)
# ----------------------------------------------------------------------
def summarize_trace(records: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Aggregate a validated record list into one JSON-able summary.

    The returned document holds one list ("table") per record family —
    ``phases``, ``backends``, ``fallbacks``, ``failures``, ``counters``,
    ``probes``, ``stability``, ``profile`` — plus the campaign ``meta``
    info.  Both the human text report and ``trace-report --json`` render
    from this structure, so the two views can never drift apart.
    """
    summary: Dict[str, Any] = {}

    metas = [r for r in records if r.get("type") == "meta"]
    if metas:
        summary["meta"] = dict(metas[0].get("info", {}))

    spans: Dict[str, List[float]] = defaultdict(list)
    for record in records:
        if record.get("type") == "span":
            spans[record["name"]].append(float(record["dur"]))
    summary["phases"] = [
        {"span": name, "count": len(durs), "total_s": sum(durs),
         "mean_s": _mean(durs)}
        for name, durs in sorted(spans.items(), key=lambda item: -sum(item[1]))
    ]

    per_backend: Dict[str, List[Mapping[str, Any]]] = defaultdict(list)
    for record in records:
        if record.get("type") == "task":
            per_backend[record["backend"]].append(record)
    backends = []
    for backend, tasks in sorted(per_backend.items()):
        rates = [t["cells_per_s"] for t in tasks
                 if t.get("cells_per_s") is not None]
        waits = [t["queue_wait_s"] for t in tasks
                 if t.get("queue_wait_s") is not None]
        execs = [t["execute_s"] for t in tasks
                 if t.get("execute_s") is not None]
        workers = {t["worker_pid"] for t in tasks
                   if t.get("worker_pid") is not None}
        backends.append({
            "backend": backend,
            "cells": len(tasks),
            "cache_hits": sum(1 for t in tasks if t.get("cache_hit")),
            "cells_per_s": _mean(rates),
            "mean_queue_wait_s": _mean(waits),
            "mean_execute_s": _mean(execs),
            "workers": len(workers),
        })
    summary["backends"] = backends

    fallbacks: Dict[str, int] = defaultdict(int)
    for record in records:
        if record.get("type") == "task" and record.get("fallback_reason"):
            fallbacks[record["fallback_reason"]] += 1
    summary["fallbacks"] = [
        {"reason": reason, "cells": count}
        for reason, count in sorted(fallbacks.items(), key=lambda item: -item[1])
    ]

    summary["failures"] = [
        {"task": r.get("label") or r["key"][:12],
         "backend": r.get("backend"),
         "reason": r.get("failure_reason"),
         "attempts": r.get("attempts"),
         "error": r.get("error")}
        for r in records
        if r.get("type") == "task" and r.get("source") == "failed"
    ]

    totals: Dict[str, Dict[str, float]] = defaultdict(lambda: defaultdict(float))
    runs: Dict[str, int] = defaultdict(int)
    for record in records:
        if record.get("type") == "counters":
            runs[record["scope"]] += 1
            for name, value in record["counters"].items():
                totals[record["scope"]][name] += value
    summary["counters"] = [
        {"scope": scope, "counter": name, "total": totals[scope][name],
         "runs": runs[scope]}
        for scope in sorted(totals)
        for name in sorted(totals[scope])
    ]

    probes = [r for r in records if r.get("type") == "probe"]
    summary["probes"] = [
        {"scope": r["scope"],
         "cell": r.get("cell"),
         "seed": r.get("seed"),
         "samples": len(r.get("t", [])),
         "series": len(r.get("series", {})),
         "interval_s": r.get("interval"),
         "stride": r.get("stride")}
        for r in probes
    ]

    stability = []
    if probes:
        from ..analysis.stability import stability_from_probe

        for r in probes:
            report = stability_from_probe(
                r, "throughput_mbps", livelock_floor=_LIVELOCK_FLOOR_MBPS,
            )
            if report is None:
                continue
            stability.append({
                "scope": r["scope"],
                "cell": r.get("cell"),
                "seed": r.get("seed"),
                "classification": report.classification,
                "tail_mean_mbps": report.tail_mean,
                "tail_std_mbps": report.tail_std,
                "oscillation_amplitude": report.oscillation_amplitude,
                "settling_time_s": report.settling_time_s,
            })
    summary["stability"] = stability

    profiles = [r for r in records if r.get("type") == "profile"]
    summary["profile"] = list(profiles[-1].get("top", [])) if profiles else []

    return summary


# ----------------------------------------------------------------------
# Text rendering
# ----------------------------------------------------------------------
def render_report(records: Sequence[Mapping[str, Any]]) -> str:
    """Render the human summary of a record list (already validated)."""
    summary = summarize_trace(records)
    sections: List[str] = []

    if "meta" in summary:
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(summary["meta"].items()))
        sections.append(f"campaign: {pairs}" if pairs else "campaign: (no metadata)")

    if summary["phases"]:
        rows = [
            (row["span"], row["count"], _fmt_s(row["total_s"]),
             _fmt_s(row["mean_s"]))
            for row in summary["phases"]
        ]
        sections.append("phases (by total time)\n" + _table(
            ("span", "count", "total", "mean"), rows))

    if summary["backends"]:
        rows = []
        for row in summary["backends"]:
            rate = row["cells_per_s"]
            rows.append((
                row["backend"], row["cells"], row["cache_hits"],
                f"{rate:.2f}" if rate is not None else "-",
                _fmt_s(row["mean_queue_wait_s"]),
                _fmt_s(row["mean_execute_s"]),
                row["workers"] or "-",
            ))
        sections.append("tasks (by backend)\n" + _table(
            ("backend", "cells", "cache hits", "cells/s",
             "mean queue wait", "mean execute", "workers"), rows))

    if summary["fallbacks"]:
        rows = [(row["reason"], row["cells"]) for row in summary["fallbacks"]]
        sections.append("backend fallbacks\n" + _table(
            ("reason", "cells"), rows))

    if summary["failures"]:
        rows = [
            (row["task"], row["backend"] or "?", row["reason"] or "?",
             row["attempts"] if row["attempts"] is not None else "?",
             row["error"] or "?")
            for row in summary["failures"]
        ]
        sections.append("quarantined tasks (exhausted retry budget)\n"
                        + _table(("task", "backend", "reason", "attempts",
                                  "error"), rows))

    if summary["counters"]:
        rows = [
            (row["scope"], row["counter"], f"{row['total']:g}", row["runs"])
            for row in summary["counters"]
        ]
        sections.append("simulator counters (summed over runs)\n" + _table(
            ("scope", "counter", "total", "runs"), rows))

    if summary["probes"]:
        rows = [
            (row["scope"],
             row["cell"] if row["cell"] is not None else "-",
             row["seed"] if row["seed"] is not None else "-",
             row["samples"], row["series"],
             _fmt_s(row["interval_s"]), row["stride"])
            for row in summary["probes"]
        ]
        sections.append("probes (one row per sampled cell)\n" + _table(
            ("scope", "cell", "seed", "samples", "series",
             "interval", "stride"), rows))

    if summary["stability"]:
        rows = [
            (row["scope"],
             row["cell"] if row["cell"] is not None else "-",
             row["seed"] if row["seed"] is not None else "-",
             row["classification"],
             f"{row['tail_mean_mbps']:.2f}",
             f"{row['oscillation_amplitude']:.2f}",
             _fmt_s(row["settling_time_s"]))
            for row in summary["stability"]
        ]
        sections.append("stability (windowed throughput per sampled cell)\n"
                        + _table(("scope", "cell", "seed", "classification",
                                  "tail Mbps", "amplitude", "settling"), rows))

    if summary["profile"]:
        rows = [
            (row["func"], row["ncalls"],
             _fmt_s(row["tottime"]), _fmt_s(row["cumtime"]))
            for row in summary["profile"]
        ]
        sections.append("profile hotspots (aggregated, by cumulative time)\n"
                        + _table(("function", "ncalls", "tottime",
                                  "cumtime"), rows))

    if not sections:
        return "trace contains no reportable records"
    return "\n\n".join(sections)


def trace_report_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.experiments trace-report``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments trace-report",
        description="Summarise a --trace JSONL file and export a "
                    "Perfetto-loadable Chrome trace.",
    )
    parser.add_argument("trace", type=Path, help="JSONL file written by --trace")
    parser.add_argument(
        "--out", type=Path, default=None, metavar="FILE",
        help="Chrome trace-event output path "
             "(default: <trace>.chrome.json; '-' to skip)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the summary as one machine-readable JSON document "
             "(phase/backend/fallback/counter/probe/stability tables plus "
             "record counts) instead of text tables; skips the Chrome "
             "trace export unless --out is given",
    )
    args = parser.parse_args(argv)

    try:
        counts = validate_trace_file(args.trace, allow_torn_tail=True)
    except (OSError, ValueError) as exc:
        print(f"trace-report: invalid trace: {exc}", file=sys.stderr)
        return 1

    torn = counts.pop("torn_tail", 0)
    if torn:
        print("trace-report: warning: the final record is torn (the writer "
              "was killed mid-write); summarising the valid prefix",
              file=sys.stderr)
    records = read_trace(args.trace, skip_torn_tail=True)

    if args.as_json:
        document = summarize_trace(records)
        document["recordCounts"] = {t: n for t, n in sorted(counts.items())}
        document["tornTail"] = bool(torn)
        print(json.dumps(document, indent=2, sort_keys=True))
        if args.out is not None and args.out != Path("-"):
            write_chrome_trace(records, args.out)
        return 0

    print(render_report(records))
    total = sum(counts.values())
    breakdown = ", ".join(f"{n} {t}" for t, n in sorted(counts.items()) if n)
    tail_note = "; 1 torn final record ignored" if torn else ""
    print(f"\n[{args.trace}: {total} records ({breakdown}); "
          f"schema OK{tail_note}]")

    if args.out != Path("-"):
        out = args.out or args.trace.with_suffix(args.trace.suffix + ".chrome.json")
        write_chrome_trace(records, out)
        trace = chrome_trace(records)
        events = len(trace["traceEvents"])
        skipped = trace.get("skippedRecordTypes")
        skip_note = ""
        if skipped:
            listing = ", ".join(f"{n} {t}" for t, n in sorted(skipped.items()))
            skip_note = f"; skipped non-exportable records: {listing}"
        print(f"[chrome trace: {out} ({events} events{skip_note}) — load in "
              f"Perfetto or chrome://tracing]")
    return 0
