"""Deterministic fault injection for the campaign executor.

The fault-tolerance test suite needs to reproduce the ugly failure modes of
real campaigns — a worker segfaulting mid-batch, a cell hanging forever, a
poisoned task raising on every attempt, a crash tearing the journal or
cache file mid-write — *deterministically*, including across the process
pool.  This module provides that:

* :class:`FaultRule` selects tasks by ``task_key`` prefix and/or label
  substring, names the failure ``kind`` to inject, and bounds how many
  times it fires (``times``, ``None`` = every time);
* :class:`FaultPlan` is a picklable bundle of rules plus an on-disk state
  directory.  Firing slots are claimed with ``O_CREAT | O_EXCL`` marker
  files, so "fire exactly twice" holds even when the matching task is
  retried in different worker processes;
* :func:`tear_file` truncates a JSONL file halfway into its final record,
  simulating a crash mid-write.

Execution-side kinds (checked by the worker before a unit runs):

``crash``
    The worker process dies via ``os._exit`` (the parent sees
    ``BrokenProcessPool``).  In-process execution raises
    :class:`InjectedCrash` instead so ``jobs=1`` campaigns survive.
``hang``
    The worker sleeps ``hang_s`` seconds (the parent's task timeout is
    expected to reclaim it).
``error``
    Raises :class:`InjectedFault` (an ordinary exception: retried, then
    quarantined).

Parent-side kinds (checked after a journal/cache write):

``torn-journal`` / ``torn-cache``
    The just-written file is torn with :func:`tear_file`.
"""

from __future__ import annotations

import os
import pathlib
import time
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

__all__ = [
    "FaultRule",
    "FaultPlan",
    "InjectedFault",
    "InjectedCrash",
    "tear_file",
]

#: Failure kinds injected in the executing process, before the unit runs.
EXECUTE_KINDS = ("crash", "hang", "error")
#: Failure kinds injected in the parent, after a journal/cache write.
WRITE_KINDS = ("torn-journal", "torn-cache")


class InjectedFault(RuntimeError):
    """An exception deliberately raised by a :class:`FaultRule`."""


class InjectedCrash(InjectedFault):
    """In-process stand-in for a worker death (``jobs=1`` campaigns)."""


@dataclass(frozen=True)
class FaultRule:
    """One deterministic failure: what to inject, where, and how often."""

    kind: str
    #: Fire only for tasks whose ``task_key()`` starts with this prefix.
    key_prefix: str = ""
    #: Fire only for tasks whose label contains this substring.
    label_contains: str = ""
    #: Maximum number of firings (``None`` = unlimited, e.g. a poison task
    #: that fails on every attempt).
    times: Optional[int] = 1
    #: Sleep duration for ``kind="hang"`` (the parent's timeout reclaims it).
    hang_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in EXECUTE_KINDS + WRITE_KINDS:
            raise ValueError(
                f"unknown fault kind '{self.kind}'; expected one of "
                f"{EXECUTE_KINDS + WRITE_KINDS}"
            )
        if self.times is not None and self.times < 1:
            raise ValueError("times must be at least 1 (or None for unlimited)")

    def matches(self, key: str, label: str) -> bool:
        if self.key_prefix and not key.startswith(self.key_prefix):
            return False
        if self.label_contains and self.label_contains not in label:
            return False
        return True


class FaultPlan:
    """A picklable set of :class:`FaultRule` entries with shared firing state.

    ``state_dir`` holds one marker file per claimed firing slot; claiming is
    an atomic ``O_CREAT | O_EXCL`` create, so concurrent workers (or the
    parent and a worker) agree on exactly how many times each rule fired.
    """

    def __init__(self, rules: Sequence[FaultRule],
                 state_dir: os.PathLike) -> None:
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.state_dir = pathlib.Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)

    # -- firing-slot bookkeeping ---------------------------------------
    def _claim(self, index: int) -> bool:
        """Atomically claim the next firing slot of rule ``index``."""
        rule = self.rules[index]
        if rule.times is None:
            return True
        for slot in range(rule.times):
            marker = self.state_dir / f"rule{index}.fire{slot}"
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False

    def fired(self, index: int) -> int:
        """How many firing slots of rule ``index`` have been claimed."""
        rule = self.rules[index]
        if rule.times is None:
            raise ValueError("unlimited rules do not track firing counts")
        return sum(
            1 for slot in range(rule.times)
            if (self.state_dir / f"rule{index}.fire{slot}").exists()
        )

    # -- execution-side injection --------------------------------------
    def inject(self, key: str, label: str, allow_exit: bool = True) -> None:
        """Fire any matching execution-side rule for this task.

        Called in the executing process immediately before a task runs.
        ``allow_exit=False`` (in-process execution) converts a ``crash``
        into an :class:`InjectedCrash` exception so the campaign process
        itself survives.
        """
        for index, rule in enumerate(self.rules):
            if rule.kind not in EXECUTE_KINDS:
                continue
            if not rule.matches(key, label) or not self._claim(index):
                continue
            if rule.kind == "crash":
                if allow_exit:
                    os._exit(13)
                raise InjectedCrash(f"injected crash for task {key[:12]}")
            if rule.kind == "hang":
                time.sleep(rule.hang_s)
                continue
            raise InjectedFault(f"injected error for task {key[:12]}")

    # -- parent-side injection -----------------------------------------
    def tear_after_write(self, kind: str, key: str, label: str,
                         path: os.PathLike) -> bool:
        """Tear ``path`` if a matching ``torn-*`` rule claims a slot."""
        if kind not in WRITE_KINDS:
            raise ValueError(f"kind must be one of {WRITE_KINDS}, got {kind!r}")
        for index, rule in enumerate(self.rules):
            if rule.kind != kind:
                continue
            if rule.matches(key, label) and self._claim(index):
                tear_file(path)
                return True
        return False

    # -- pickling (the plan crosses the process pool) ------------------
    def __getstate__(self):
        return {"rules": self.rules, "state_dir": str(self.state_dir)}

    def __setstate__(self, state) -> None:
        self.rules = state["rules"]
        self.state_dir = pathlib.Path(state["state_dir"])


def tear_file(path: os.PathLike) -> None:
    """Truncate a file halfway into its final record (crash mid-write).

    The result is a valid prefix of complete lines followed by one torn,
    non-newline-terminated fragment — exactly what an interrupted
    ``write()`` leaves behind.  Empty files are left alone.
    """
    path = pathlib.Path(path)
    data = path.read_bytes()
    if not data:
        return
    body = data.rstrip(b"\n")
    final_start = body.rfind(b"\n") + 1
    final_len = len(body) - final_start
    cut = final_start + max(1, final_len // 2)
    with path.open("r+b") as fh:
        fh.truncate(cut)
