"""Test-support utilities shipped with the library.

:mod:`repro.testing.faults` is the deterministic fault-injection harness
the campaign fault-tolerance suite drives: it can crash workers, hang
them, raise exceptions mid-unit and tear journal/cache files at exactly
chosen points, reproducibly across process boundaries.
"""

from .faults import FaultPlan, FaultRule, InjectedCrash, InjectedFault, tear_file

__all__ = [
    "FaultPlan",
    "FaultRule",
    "InjectedCrash",
    "InjectedFault",
    "tear_file",
]
