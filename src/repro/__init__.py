"""repro — reproduction of "Stochastic Approximation Algorithm for Optimal
Throughput Performance of Wireless LANs" (Krishnan & Chaporkar, 2010).

The package is organised as:

* :mod:`repro.phy`        — PHY timing constants, frames, propagation models;
* :mod:`repro.topology`   — node placement, sensing graphs, hidden-node analysis;
* :mod:`repro.mac`        — backoff policies (802.11 DCF, p-persistent,
  RandomReset, IdleSense) and named schemes;
* :mod:`repro.core`       — the paper's contribution: Kiefer-Wolfowitz
  stochastic approximation plus the wTOP-CSMA and TORA-CSMA AP controllers;
* :mod:`repro.sim`        — event-driven and slotted WLAN simulators;
* :mod:`repro.traffic`    — workload models: arrival processes (Poisson,
  CBR, on-off bursty) and bounded per-station frame queues;
* :mod:`repro.analysis`   — Bianchi / p-persistent / RandomReset analytical
  models, quasi-concavity checks and fairness metrics;
* :mod:`repro.experiments`— runners that regenerate every figure and table of
  the paper's evaluation.

Quickstart::

    from repro.mac import wtop_csma_scheme
    from repro.sim import run_slotted

    result = run_slotted(wtop_csma_scheme(), num_stations=20,
                         duration=2.0, warmup=2.0, seed=1)
    print(f"{result.total_throughput_mbps:.2f} Mbps")
"""

from .phy import DEFAULT_PHY, PhyParameters

__version__ = "1.0.0"

__all__ = ["DEFAULT_PHY", "PhyParameters", "__version__"]
