"""PHY and MAC timing constants for the IEEE 802.11 OFDM PHY.

The paper (Table I and Section II) evaluates an IEEE 802.11a/g style OFDM PHY
on a 20 MHz channel:

* idle slot duration ``sigma`` = 9 us
* SIFS = 16 us
* DIFS = 34 us
* data rate 54 Mbps, payload 8000 bits
* ``CWmin`` = 8, ``CWmax`` = 1024 (so ``m`` = log2(CWmax / CWmin) = 7)

Everything in this module is expressed twice: in SI seconds (floats, for the
analytical formulas) and in integer nanoseconds (for the discrete-event
simulator, which uses an integer clock to keep event ordering exact).

The central object is :class:`PhyParameters`, which derives the successful and
collided transmission durations ``Ts`` and ``Tc`` used throughout the paper::

    Ts = (L_H + E[P]) / R + SIFS + L_ACK / R + DIFS
    Tc = (L_H + E[P]) / R + DIFS
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

__all__ = [
    "NS_PER_SECOND",
    "US_PER_SECOND",
    "MICROSECOND",
    "DEFAULT_SLOT_TIME",
    "DEFAULT_SIFS",
    "DEFAULT_DIFS",
    "DEFAULT_BIT_RATE",
    "DEFAULT_PAYLOAD_BITS",
    "DEFAULT_MAC_HEADER_BITS",
    "DEFAULT_ACK_BITS",
    "DEFAULT_CW_MIN",
    "DEFAULT_CW_MAX",
    "PhyParameters",
    "seconds_to_ns",
    "ns_to_seconds",
]

#: Number of nanoseconds in one second (the simulator clock granularity).
NS_PER_SECOND = 1_000_000_000

#: Number of microseconds in one second.
US_PER_SECOND = 1_000_000

#: One microsecond expressed in seconds.
MICROSECOND = 1e-6

#: IEEE 802.11 OFDM (20 MHz channel spacing) slot time in seconds.
DEFAULT_SLOT_TIME = 9e-6

#: Short inter-frame space in seconds.
DEFAULT_SIFS = 16e-6

#: Distributed inter-frame space in seconds (SIFS + 2 * slot).
DEFAULT_DIFS = 34e-6

#: Data bit rate used by the paper (54 Mbps).
DEFAULT_BIT_RATE = 54e6

#: Payload size in bits used by the paper (Table I).
DEFAULT_PAYLOAD_BITS = 8000

#: MAC header size in bits (34 bytes: frame control .. FCS).
DEFAULT_MAC_HEADER_BITS = 34 * 8

#: ACK frame size in bits (14 bytes).
DEFAULT_ACK_BITS = 14 * 8

#: Minimum contention window used by the paper (Table I).
DEFAULT_CW_MIN = 8

#: Maximum contention window used by the paper (Table I).
DEFAULT_CW_MAX = 1024

#: PHY preamble + PLCP header duration for the OFDM PHY (20 us).
DEFAULT_PHY_HEADER_DURATION = 20e-6


def seconds_to_ns(value: float) -> int:
    """Convert a duration in seconds to integer nanoseconds (rounded)."""
    return int(round(value * NS_PER_SECOND))


def ns_to_seconds(value: int) -> float:
    """Convert a duration in integer nanoseconds to float seconds."""
    return value / NS_PER_SECOND


@dataclass(frozen=True)
class PhyParameters:
    """Bundle of PHY/MAC constants with derived frame durations.

    Parameters mirror Table I of the paper.  Instances are immutable; use
    :meth:`evolve` to derive variants (e.g. different payload sizes).

    Attributes
    ----------
    slot_time:
        Duration of an idle backoff slot (``sigma``), seconds.
    sifs:
        Short inter-frame space, seconds.
    difs:
        Distributed inter-frame space, seconds.
    bit_rate:
        Data rate in bits per second (data, header and ACK all use this rate,
        as in the paper's model).
    payload_bits:
        Expected MAC payload length ``E[P]`` in bits.
    mac_header_bits:
        MAC header length ``L_H`` in bits.
    ack_bits:
        ACK frame length ``L_ACK`` in bits.
    cw_min / cw_max:
        Minimum and maximum contention window sizes.
    energy_detection_dbm / cca_mode1_dbm:
        Receiver thresholds, retained for parity with the ns-3 configuration
        (Table I); used by :mod:`repro.phy.propagation` to derive ranges.
    """

    slot_time: float = DEFAULT_SLOT_TIME
    sifs: float = DEFAULT_SIFS
    difs: float = DEFAULT_DIFS
    bit_rate: float = DEFAULT_BIT_RATE
    payload_bits: int = DEFAULT_PAYLOAD_BITS
    mac_header_bits: int = DEFAULT_MAC_HEADER_BITS
    ack_bits: int = DEFAULT_ACK_BITS
    cw_min: int = DEFAULT_CW_MIN
    cw_max: int = DEFAULT_CW_MAX
    phy_header_duration: float = DEFAULT_PHY_HEADER_DURATION
    energy_detection_dbm: float = -70.0
    cca_mode1_dbm: float = -70.0

    def __post_init__(self) -> None:
        if self.slot_time <= 0:
            raise ValueError("slot_time must be positive")
        if self.sifs <= 0 or self.difs <= 0:
            raise ValueError("SIFS and DIFS must be positive")
        if self.difs < self.sifs:
            raise ValueError("DIFS must not be smaller than SIFS")
        if self.bit_rate <= 0:
            raise ValueError("bit_rate must be positive")
        if self.payload_bits <= 0:
            raise ValueError("payload_bits must be positive")
        if self.mac_header_bits < 0 or self.ack_bits < 0:
            raise ValueError("frame overheads must be non-negative")
        if self.phy_header_duration < 0:
            raise ValueError("phy_header_duration must be non-negative")
        if self.cw_min < 1:
            raise ValueError("cw_min must be at least 1")
        if self.cw_max < self.cw_min:
            raise ValueError("cw_max must be >= cw_min")
        if self.cw_max % self.cw_min != 0:
            raise ValueError("cw_max must be a power-of-two multiple of cw_min")
        ratio = self.cw_max // self.cw_min
        if ratio & (ratio - 1) != 0:
            raise ValueError("cw_max / cw_min must be a power of two")

    # ------------------------------------------------------------------
    # Derived frame durations (seconds)
    # ------------------------------------------------------------------
    @property
    def data_tx_time(self) -> float:
        """Airtime of a data frame: preamble + ``(L_H + E[P]) / R`` seconds."""
        return (
            self.phy_header_duration
            + (self.mac_header_bits + self.payload_bits) / self.bit_rate
        )

    @property
    def ack_tx_time(self) -> float:
        """Airtime of an ACK frame (preamble + payload) in seconds."""
        return self.phy_header_duration + self.ack_bits / self.bit_rate

    @property
    def ts(self) -> float:
        """Expected duration of a successful transmission ``Ts`` (seconds)."""
        return self.data_tx_time + self.sifs + self.ack_tx_time + self.difs

    @property
    def tc(self) -> float:
        """Expected duration of a failed (collided) transmission ``Tc``."""
        return self.data_tx_time + self.difs

    @property
    def ts_slots(self) -> float:
        """``Ts`` measured in idle-slot units (``T*_s`` in the paper)."""
        return self.ts / self.slot_time

    @property
    def tc_slots(self) -> float:
        """``Tc`` measured in idle-slot units (``T*_c`` in the paper)."""
        return self.tc / self.slot_time

    @property
    def num_backoff_stages(self) -> int:
        """Number of backoff stages minus one, ``m = log2(CWmax / CWmin)``."""
        ratio = self.cw_max // self.cw_min
        return ratio.bit_length() - 1

    # ------------------------------------------------------------------
    # Integer-nanosecond views (for the event-driven simulator)
    # ------------------------------------------------------------------
    @property
    def slot_time_ns(self) -> int:
        return seconds_to_ns(self.slot_time)

    @property
    def sifs_ns(self) -> int:
        return seconds_to_ns(self.sifs)

    @property
    def difs_ns(self) -> int:
        return seconds_to_ns(self.difs)

    @property
    def data_tx_time_ns(self) -> int:
        return seconds_to_ns(self.data_tx_time)

    @property
    def ack_tx_time_ns(self) -> int:
        return seconds_to_ns(self.ack_tx_time)

    @property
    def ts_ns(self) -> int:
        return seconds_to_ns(self.ts)

    @property
    def tc_ns(self) -> int:
        return seconds_to_ns(self.tc)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def evolve(self, **changes: object) -> "PhyParameters":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def contention_window(self, stage: int) -> int:
        """Contention window size ``CW_i = min(2^i CWmin, CWmax)`` for a stage."""
        if stage < 0:
            raise ValueError("backoff stage must be non-negative")
        return min(self.cw_min * (2 ** stage), self.cw_max)

    def as_table(self) -> Mapping[str, object]:
        """Return the Table I parameter listing as an ordered mapping."""
        return {
            "Bit Rate": f"{self.bit_rate / 1e6:g} Mbps",
            "Packet Payload": f"{self.payload_bits} bits",
            "CWmin": self.cw_min,
            "CWmax": self.cw_max,
            "Slot time": f"{self.slot_time * 1e6:g} us",
            "SIFS": f"{self.sifs * 1e6:g} us",
            "DIFS": f"{self.difs * 1e6:g} us",
            "EnergyDetectionThreshold": f"{self.energy_detection_dbm:g} dBm",
            "CcaMode1Threshold": f"{self.cca_mode1_dbm:g} dBm",
        }


#: Module-level default instance matching the paper's Table I.
DEFAULT_PHY = PhyParameters()

__all__.append("DEFAULT_PHY")
