"""Frame definitions used by the simulator.

The paper's MAC model only needs two frame types — saturated uplink DATA
frames from stations to the access point, and ACK frames from the access
point back to the originating station.  ACK frames additionally carry the
controller parameters (the ``p`` of wTOP-CSMA or the ``(p0, j)`` pair of
TORA-CSMA), which is how the paper's algorithms disseminate control state.

Frames are lightweight dataclasses; the simulator never serialises them.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Mapping, Optional

from .constants import PhyParameters

__all__ = ["FrameType", "Frame", "DataFrame", "AckFrame", "FrameFactory"]

_frame_counter = itertools.count(1)


class FrameType(enum.Enum):
    """Kind of MAC frame."""

    DATA = "data"
    ACK = "ack"


@dataclass(frozen=True)
class Frame:
    """Base class for MAC frames.

    Attributes
    ----------
    frame_id:
        Monotonically increasing identifier, unique within a process.
    frame_type:
        DATA or ACK.
    source / destination:
        Node identifiers.  The access point uses the reserved id ``-1``
        (see :data:`repro.sim.node.AP_NODE_ID`).
    size_bits:
        Number of bits on the air (header + payload for data frames).
    """

    frame_id: int
    frame_type: FrameType
    source: int
    destination: int
    size_bits: int

    def airtime(self, phy: PhyParameters) -> float:
        """Transmission duration of this frame in seconds."""
        return self.size_bits / phy.bit_rate

    def airtime_ns(self, phy: PhyParameters) -> int:
        """Transmission duration of this frame in integer nanoseconds."""
        return int(round(self.airtime(phy) * 1e9))


@dataclass(frozen=True)
class DataFrame(Frame):
    """An uplink data frame.

    ``arrival_time_s`` carries the frame's queue-arrival timestamp for
    unsaturated workloads (:mod:`repro.traffic`); saturated sources leave it
    ``None`` (the frame was "generated" the instant transmission began).
    """

    payload_bits: int = 0
    arrival_time_s: Optional[float] = None

    @property
    def goodput_bits(self) -> int:
        """Bits that count toward throughput (payload only)."""
        return self.payload_bits


@dataclass(frozen=True)
class AckFrame(Frame):
    """An ACK frame, optionally piggy-backing controller parameters.

    ``control`` maps parameter names (e.g. ``"p"`` or ``"p0"``/``"stage"``)
    to values; an empty mapping means the AP is not running an adaptive
    controller (plain 802.11 operation).
    """

    acked_frame_id: int = 0
    control: Mapping[str, float] = field(default_factory=dict)


class FrameFactory:
    """Builds frames with consistent sizes from a :class:`PhyParameters`.

    A factory exists mostly so that tests and simulators agree on frame
    sizes, and so frame ids stay unique per simulation rather than per
    process.
    """

    def __init__(self, phy: PhyParameters) -> None:
        self._phy = phy
        self._counter = itertools.count(1)

    @property
    def phy(self) -> PhyParameters:
        return self._phy

    def next_id(self) -> int:
        return next(self._counter)

    def data(self, source: int, destination: int,
             payload_bits: Optional[int] = None,
             arrival_time_s: Optional[float] = None) -> DataFrame:
        """Create a DATA frame from ``source`` to ``destination``.

        ``arrival_time_s`` attaches the queue-arrival timestamp for
        unsaturated workloads (see :class:`DataFrame`).
        """
        payload = self._phy.payload_bits if payload_bits is None else payload_bits
        if payload <= 0:
            raise ValueError("payload_bits must be positive")
        return DataFrame(
            frame_id=self.next_id(),
            frame_type=FrameType.DATA,
            source=source,
            destination=destination,
            size_bits=self._phy.mac_header_bits + payload,
            payload_bits=payload,
            arrival_time_s=arrival_time_s,
        )

    def ack(self, source: int, destination: int, acked_frame_id: int,
            control: Optional[Mapping[str, float]] = None) -> AckFrame:
        """Create an ACK for ``acked_frame_id`` carrying controller state."""
        return AckFrame(
            frame_id=self.next_id(),
            frame_type=FrameType.ACK,
            source=source,
            destination=destination,
            size_bits=self._phy.ack_bits,
            acked_frame_id=acked_frame_id,
            control=dict(control or {}),
        )
