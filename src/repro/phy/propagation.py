"""Radio propagation models.

The paper configures ns-3 so that a node can *decode* transmissions from
nodes within 16 distance units and can *carrier-sense* transmissions from
nodes within 24 units (Section I and Table I, via the YansWifiPhy
``EnergyDetectionThreshold`` / ``CcaMode1Threshold`` attributes).  Only these
two radii matter to the MAC-level behaviour the paper studies, so the
reproduction offers two interchangeable models:

* :class:`RangeBasedPropagation` — the radii are specified directly
  (decode range 16, sense range 24 by default), matching the paper exactly.
* :class:`LogDistancePropagation` — a standard log-distance path-loss model
  plus receiver thresholds; radii are *derived* from physical parameters.
  Optional log-normal shadowing lets experiments create "obstacle" hidden
  nodes as discussed in the paper's introduction.

Both expose the same small interface (:class:`PropagationModel`):
``can_decode(distance)``, ``can_sense(distance)``, and ``rx_power_dbm``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "PropagationModel",
    "RangeBasedPropagation",
    "LogDistancePropagation",
    "FREE_SPACE_EXPONENT",
    "friis_path_loss_db",
]

#: Path-loss exponent of free-space propagation.
FREE_SPACE_EXPONENT = 2.0


def friis_path_loss_db(distance_m: float, frequency_hz: float = 2.4e9) -> float:
    """Free-space (Friis) path loss in dB at ``distance_m`` metres.

    Used as the reference loss at 1 m by :class:`LogDistancePropagation`.
    """
    if distance_m <= 0:
        raise ValueError("distance must be positive")
    wavelength = 299_792_458.0 / frequency_hz
    return 20.0 * math.log10(4.0 * math.pi * distance_m / wavelength)


class PropagationModel(ABC):
    """Decides decodability and carrier-sense audibility between nodes."""

    @abstractmethod
    def rx_power_dbm(self, distance: float) -> float:
        """Received power in dBm for a transmission over ``distance``."""

    @abstractmethod
    def can_decode(self, distance: float) -> bool:
        """True if a receiver at ``distance`` can decode the transmission."""

    @abstractmethod
    def can_sense(self, distance: float) -> bool:
        """True if a receiver at ``distance`` senses the medium busy."""

    @property
    @abstractmethod
    def decode_range(self) -> float:
        """Maximum distance at which frames can be decoded."""

    @property
    @abstractmethod
    def sense_range(self) -> float:
        """Maximum distance at which transmissions are carrier-sensed."""

    def validate(self) -> None:
        """Sanity-check that sensing reaches at least as far as decoding."""
        if self.sense_range < self.decode_range:
            raise ValueError(
                "carrier-sense range must be at least the decode range "
                f"(sense={self.sense_range}, decode={self.decode_range})"
            )


@dataclass(frozen=True)
class RangeBasedPropagation(PropagationModel):
    """Deterministic disc model with explicit decode and sense radii.

    This is the model used by all paper experiments: transmission range 16
    units, sensing range 24 units.
    """

    transmission_range: float = 16.0
    carrier_sense_range: float = 24.0
    tx_power_dbm: float = 16.0
    path_loss_exponent: float = 3.0

    def __post_init__(self) -> None:
        if self.transmission_range <= 0:
            raise ValueError("transmission_range must be positive")
        if self.carrier_sense_range < self.transmission_range:
            raise ValueError(
                "carrier_sense_range must be >= transmission_range"
            )

    def rx_power_dbm(self, distance: float) -> float:
        if distance <= 0:
            return self.tx_power_dbm
        return self.tx_power_dbm - 10.0 * self.path_loss_exponent * math.log10(distance)

    def can_decode(self, distance: float) -> bool:
        return 0 <= distance <= self.transmission_range

    def can_sense(self, distance: float) -> bool:
        return 0 <= distance <= self.carrier_sense_range

    @property
    def decode_range(self) -> float:
        return self.transmission_range

    @property
    def sense_range(self) -> float:
        return self.carrier_sense_range


class LogDistancePropagation(PropagationModel):
    """Log-distance path loss with receiver thresholds (ns-3 style).

    The received power at distance ``d`` (metres) is::

        P_rx(d) = P_tx - PL(d0) - 10 * n * log10(d / d0) - X

    where ``PL(d0)`` is the Friis free-space loss at the reference distance,
    ``n`` is the path-loss exponent, and ``X`` is an optional per-link
    log-normal shadowing term (zero by default).  A frame is decodable when
    ``P_rx`` exceeds ``decode_threshold_dbm`` (the ns-3
    ``EnergyDetectionThreshold``) and the medium is sensed busy when ``P_rx``
    exceeds ``sense_threshold_dbm`` (the ns-3 ``CcaMode1Threshold``).

    Parameters
    ----------
    tx_power_dbm:
        Transmit power.
    path_loss_exponent:
        Environment exponent (2 free space, 3-4 indoor).
    decode_threshold_dbm / sense_threshold_dbm:
        Receiver sensitivity and carrier-sense thresholds.
    reference_distance_m / frequency_hz:
        Reference point of the log-distance model.
    shadowing_sigma_db:
        Standard deviation of log-normal shadowing.  When non-zero a
        deterministic per-link shadowing sample can be drawn with
        :meth:`link_shadowing_db` (the propagation model itself remains
        deterministic given a distance; shadowing is applied by
        :class:`repro.topology.graph.ConnectivityGraph` per link so that a
        link's state is stable for the whole simulation).
    """

    def __init__(
        self,
        tx_power_dbm: float = 16.0,
        path_loss_exponent: float = 3.0,
        decode_threshold_dbm: float = -70.0,
        sense_threshold_dbm: float = -75.3,
        reference_distance_m: float = 1.0,
        frequency_hz: float = 2.4e9,
        shadowing_sigma_db: float = 0.0,
    ) -> None:
        if path_loss_exponent <= 0:
            raise ValueError("path_loss_exponent must be positive")
        if reference_distance_m <= 0:
            raise ValueError("reference_distance_m must be positive")
        if sense_threshold_dbm > decode_threshold_dbm:
            raise ValueError(
                "sense threshold must not exceed decode threshold "
                "(sensing must be at least as permissive as decoding)"
            )
        if shadowing_sigma_db < 0:
            raise ValueError("shadowing_sigma_db must be non-negative")
        self.tx_power_dbm = tx_power_dbm
        self.path_loss_exponent = path_loss_exponent
        self.decode_threshold_dbm = decode_threshold_dbm
        self.sense_threshold_dbm = sense_threshold_dbm
        self.reference_distance_m = reference_distance_m
        self.frequency_hz = frequency_hz
        self.shadowing_sigma_db = shadowing_sigma_db
        self._reference_loss_db = friis_path_loss_db(reference_distance_m, frequency_hz)

    # ------------------------------------------------------------------
    def rx_power_dbm(self, distance: float) -> float:
        if distance <= self.reference_distance_m:
            return self.tx_power_dbm - self._reference_loss_db
        loss = self._reference_loss_db + 10.0 * self.path_loss_exponent * math.log10(
            distance / self.reference_distance_m
        )
        return self.tx_power_dbm - loss

    def can_decode(self, distance: float) -> bool:
        return self.rx_power_dbm(distance) >= self.decode_threshold_dbm

    def can_sense(self, distance: float) -> bool:
        return self.rx_power_dbm(distance) >= self.sense_threshold_dbm

    def link_shadowing_db(self, rng: np.random.Generator) -> float:
        """Draw one log-normal shadowing sample (dB) for a link."""
        if self.shadowing_sigma_db == 0:
            return 0.0
        return float(rng.normal(0.0, self.shadowing_sigma_db))

    # ------------------------------------------------------------------
    def _range_for_threshold(self, threshold_dbm: float) -> float:
        """Distance at which the received power equals ``threshold_dbm``."""
        margin_db = self.tx_power_dbm - self._reference_loss_db - threshold_dbm
        if margin_db <= 0:
            return 0.0
        return self.reference_distance_m * 10.0 ** (
            margin_db / (10.0 * self.path_loss_exponent)
        )

    @property
    def decode_range(self) -> float:
        return self._range_for_threshold(self.decode_threshold_dbm)

    @property
    def sense_range(self) -> float:
        return self._range_for_threshold(self.sense_threshold_dbm)

    @classmethod
    def calibrated(
        cls,
        decode_range: float = 16.0,
        sense_range: float = 24.0,
        tx_power_dbm: float = 16.0,
        path_loss_exponent: float = 3.0,
        frequency_hz: float = 2.4e9,
    ) -> "LogDistancePropagation":
        """Build a model whose derived radii match the paper's 16/24 setup.

        The thresholds are solved from the desired ranges so that
        ``decode_range`` and ``sense_range`` of the returned model equal the
        requested values (up to floating point rounding).
        """
        if sense_range < decode_range:
            raise ValueError("sense_range must be >= decode_range")
        reference_loss = friis_path_loss_db(1.0, frequency_hz)

        def threshold_for(target_range: float) -> float:
            return tx_power_dbm - reference_loss - 10.0 * path_loss_exponent * math.log10(
                target_range
            )

        return cls(
            tx_power_dbm=tx_power_dbm,
            path_loss_exponent=path_loss_exponent,
            decode_threshold_dbm=threshold_for(decode_range),
            sense_threshold_dbm=threshold_for(sense_range),
            reference_distance_m=1.0,
            frequency_hz=frequency_hz,
        )
