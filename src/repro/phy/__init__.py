"""PHY layer: timing constants, frames and propagation models."""

from .constants import (
    DEFAULT_PHY,
    NS_PER_SECOND,
    PhyParameters,
    ns_to_seconds,
    seconds_to_ns,
)
from .frame import AckFrame, DataFrame, Frame, FrameFactory, FrameType
from .propagation import (
    LogDistancePropagation,
    PropagationModel,
    RangeBasedPropagation,
    friis_path_loss_db,
)

__all__ = [
    "DEFAULT_PHY",
    "NS_PER_SECOND",
    "PhyParameters",
    "ns_to_seconds",
    "seconds_to_ns",
    "AckFrame",
    "DataFrame",
    "Frame",
    "FrameFactory",
    "FrameType",
    "LogDistancePropagation",
    "PropagationModel",
    "RangeBasedPropagation",
    "friis_path_loss_db",
]
