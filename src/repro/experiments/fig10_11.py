"""Figures 10 and 11 — TORA-CSMA under a time-varying number of stations.

Same protocol as Figures 8-9 but for the exponential-backoff controller:
Figure 10 plots throughput vs time, Figure 11 the reset probability ``p0``
vs time (with the reset stage ``j`` shifting when ``p0`` saturates).
"""

from __future__ import annotations

from typing import Optional

from ..phy.constants import PhyParameters
from .campaign import CampaignExecutor, SchemeSpec
from .config import ExperimentConfig, QUICK
from .fig8_9 import default_station_steps
from .runner import (
    ExperimentResult,
    ExperimentRow,
    connected_task,
    default_executor,
    hidden_task,
)

__all__ = ["run_fig10_11"]


def run_fig10_11(
    config: ExperimentConfig = QUICK,
    phy: Optional[PhyParameters] = None,
    include_hidden: bool = False,
    seed: int = 1,
    executor: Optional[CampaignExecutor] = None,
) -> ExperimentResult:
    """Reproduce Figures 10 and 11 (TORA-CSMA dynamics)."""
    executor = executor or default_executor()
    schedule = default_station_steps(config.dynamic_segment_duration)
    total_duration = config.dynamic_segment_duration * len(schedule.breakpoints)
    spec = SchemeSpec.make("tora-csma", update_period=config.update_period)

    dynamic_config = config.evolve(
        measure_duration=total_duration, adaptive_warmup=0.0, warmup=0.0
    )
    tasks = [connected_task(
        spec, schedule.max_active, dynamic_config, seed, phy=phy,
        activity=schedule.breakpoints, report_interval=config.report_interval,
        label=f"fig10_11/connected/seed={seed}",
    )]
    if include_hidden:
        tasks.append(hidden_task(
            spec, schedule.max_active, config.hidden_disc_radius_small, seed,
            dynamic_config, seed, phy=phy,
            activity=schedule.breakpoints, report_interval=config.report_interval,
            label=f"fig10_11/hidden/seed={seed}",
        ))
    results = executor.run(tasks)
    connected = results[0]
    hidden = results[1] if include_hidden else None

    columns = ["throughput (no hidden)", "p0 (no hidden)", "active stations"]
    if hidden is not None:
        columns.extend(["throughput (hidden)", "p0 (hidden)"])

    hidden_throughput = dict(hidden.throughput_timeline) if hidden else {}
    hidden_control = dict(hidden.control_timeline) if hidden else {}
    control_by_time = dict(connected.control_timeline)

    rows = []
    for time_s, throughput_bps in connected.throughput_timeline:
        values = {
            "throughput (no hidden)": throughput_bps / 1e6,
            "p0 (no hidden)": control_by_time.get(time_s, float("nan")),
            "active stations": float(schedule.active_count(time_s)),
        }
        if hidden is not None:
            values["throughput (hidden)"] = hidden_throughput.get(time_s, float("nan")) / 1e6
            values["p0 (hidden)"] = hidden_control.get(time_s, float("nan"))
        rows.append(ExperimentRow(label=f"t={time_s:.2f}s", values=values))

    return ExperimentResult(
        name="Figures 10-11",
        description=(
            "TORA-CSMA throughput and reset probability vs time as the number "
            "of active stations changes"
        ),
        columns=tuple(columns),
        rows=tuple(rows),
        metadata={
            "station_steps": schedule.breakpoints,
            "segment_duration_s": config.dynamic_segment_duration,
            "report_interval_s": config.report_interval,
            "update_period_s": config.update_period,
            "include_hidden": include_hidden,
            "seed": seed,
        },
    )
