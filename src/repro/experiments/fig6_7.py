"""Figures 6 and 7 — throughput vs number of stations with hidden nodes.

The four schemes are compared on random uniform-disc placements of radius
16 (Figure 6) and radius 20 (Figure 7).  Expected ordering (paper):
TORA-CSMA >= wTOP-CSMA, both well above IdleSense (which collapses), with
standard 802.11 in between — and in particular TORA-CSMA beating the optimal
p-persistent scheme, the paper's headline hidden-node result.
"""

from __future__ import annotations

from typing import Optional

from ..phy.constants import PhyParameters
from .campaign import CampaignExecutor
from .config import ExperimentConfig, QUICK
from .runner import (
    ExperimentResult,
    ExperimentRow,
    average_throughput_mbps,
    default_executor,
    group_results,
    hidden_task,
    paper_scheme_specs,
)

__all__ = ["run_fig6", "run_fig7", "run_hidden_comparison"]


def run_hidden_comparison(radius: float, name: str,
                          config: ExperimentConfig = QUICK,
                          phy: Optional[PhyParameters] = None,
                          executor: Optional[CampaignExecutor] = None
                          ) -> ExperimentResult:
    """Scheme comparison on hidden-node topologies of the given disc radius."""
    executor = executor or default_executor()
    specs = paper_scheme_specs(config)

    tasks, keys = [], []
    for num_stations in config.node_counts:
        for scheme_name, spec in specs.items():
            for seed in config.seeds:
                tasks.append(hidden_task(
                    spec, num_stations, radius, seed, config, seed, phy=phy,
                    label=f"{name}/{scheme_name}/N={num_stations}/seed={seed}",
                ))
                keys.append((scheme_name, num_stations))
    grouped = group_results(keys, executor.run(tasks))

    rows = [
        ExperimentRow(
            label=f"N={num_stations}",
            values={
                scheme_name: average_throughput_mbps(
                    grouped[(scheme_name, num_stations)]
                )
                for scheme_name in specs
            },
        )
        for num_stations in config.node_counts
    ]
    return ExperimentResult(
        name=name,
        description=(
            f"Throughput (Mbps) vs number of stations, nodes uniform in a disc "
            f"of radius {radius:g} (hidden nodes present)"
        ),
        columns=tuple(specs.keys()),
        rows=tuple(rows),
        metadata={
            "disc_radius": radius,
            "node_counts": config.node_counts,
            "seeds": config.seeds,
            "update_period_s": config.update_period,
            "adaptive_warmup_s": config.adaptive_warmup,
        },
    )


def run_fig6(config: ExperimentConfig = QUICK,
             phy: Optional[PhyParameters] = None,
             executor: Optional[CampaignExecutor] = None) -> ExperimentResult:
    """Reproduce Figure 6 (disc radius 16)."""
    return run_hidden_comparison(
        config.hidden_disc_radius_small, "Figure 6", config, phy, executor
    )


def run_fig7(config: ExperimentConfig = QUICK,
             phy: Optional[PhyParameters] = None,
             executor: Optional[CampaignExecutor] = None) -> ExperimentResult:
    """Reproduce Figure 7 (disc radius 20)."""
    return run_hidden_comparison(
        config.hidden_disc_radius_large, "Figure 7", config, phy, executor
    )
