"""On-disk JSON result cache for campaign tasks.

Each completed :class:`~repro.experiments.campaign.specs.RunTask` is stored
as one JSON file named after its :meth:`task_key`, containing the task
descriptor (for debuggability) and the full serialised
:class:`~repro.sim.metrics.SimulationResult`.  Because Python's JSON encoder
emits shortest round-trip float representations, a result loaded from the
cache is bit-identical to the freshly computed one, so cached and simulated
cells can be mixed freely inside one campaign.

Corrupt or version-mismatched entries are treated as misses (and re-run),
never as errors: a cache must not be able to break a campaign.  Corrupt
files (unparseable JSON, malformed result payloads) are additionally
*quarantined* — renamed to ``<entry>.corrupt`` so they stop shadowing the
key, counted on :attr:`ResultCache.corrupt_entries`, surfaced through a
telemetry counter and one stderr warning, and reported in the campaign
summary.  Version-mismatched entries are merely stale, not corrupt: they
stay in place (an older build may still want them).
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import tempfile
from typing import Dict, Optional

from ...sim.metrics import SimulationResult, StationStats
from ...telemetry import current as telemetry_current
from .specs import CACHE_VERSION, RunTask

__all__ = [
    "ResultCache",
    "result_to_dict",
    "result_from_dict",
    "RESULT_SCHEMA_VERSION",
]

#: Version of the *result payload* layout produced by :func:`result_to_dict`.
#: Distinct from :data:`~repro.experiments.campaign.specs.CACHE_VERSION`
#: (which covers the task descriptor and simulator semantics): bump this when
#: the serialised result shape changes so that entries written by older code
#: are invalidated on load instead of being deserialised into garbage.
RESULT_SCHEMA_VERSION = 2


def result_to_dict(result: SimulationResult) -> Dict[str, object]:
    """Serialise a :class:`SimulationResult` to plain JSON-able types.

    The traffic-workload counters are emitted only when set: saturated
    results serialise exactly as they did before the counters existed, so
    entries written by pre-traffic code still round-trip bit-identically
    (and vice versa) without a schema-version bump.
    """
    payload: Dict[str, object] = {
        "duration": result.duration,
        "total_throughput_bps": result.total_throughput_bps,
        "idle_slots": result.idle_slots,
        "busy_periods": result.busy_periods,
        "station_stats": [
            {
                "station": s.station,
                "successes": s.successes,
                "failures": s.failures,
                "payload_bits": s.payload_bits,
                "throughput_bps": s.throughput_bps,
            }
            for s in result.station_stats
        ],
        "throughput_timeline": [[t, v] for t, v in result.throughput_timeline],
        "control_timeline": [[t, v] for t, v in result.control_timeline],
        "extra": dict(result.extra),
    }
    if result.offered_frames or result.dropped_frames or result.queue_delay_sum_s:
        payload["offered_frames"] = result.offered_frames
        payload["dropped_frames"] = result.dropped_frames
        payload["queue_delay_sum_s"] = result.queue_delay_sum_s
    if result.retry_discards:
        payload["retry_discards"] = result.retry_discards
    if result.queue_delay_p50_s or result.queue_delay_p99_s:
        payload["queue_delay_p50_s"] = result.queue_delay_p50_s
        payload["queue_delay_p99_s"] = result.queue_delay_p99_s
    if result.flow_completions:
        payload["flow_completions"] = [
            [station, t] for station, t in result.flow_completions
        ]
    return payload


def result_from_dict(payload: Dict[str, object]) -> SimulationResult:
    """Inverse of :func:`result_to_dict` (exact float round-trip)."""
    return SimulationResult(
        duration=payload["duration"],
        station_stats=tuple(
            StationStats(
                station=s["station"],
                successes=s["successes"],
                failures=s["failures"],
                payload_bits=s["payload_bits"],
                throughput_bps=s["throughput_bps"],
            )
            for s in payload["station_stats"]
        ),
        total_throughput_bps=payload["total_throughput_bps"],
        idle_slots=payload["idle_slots"],
        busy_periods=payload["busy_periods"],
        throughput_timeline=tuple(
            (t, v) for t, v in payload["throughput_timeline"]
        ),
        control_timeline=tuple((t, v) for t, v in payload["control_timeline"]),
        offered_frames=payload.get("offered_frames", 0),
        dropped_frames=payload.get("dropped_frames", 0),
        queue_delay_sum_s=payload.get("queue_delay_sum_s", 0.0),
        retry_discards=payload.get("retry_discards", 0),
        queue_delay_p50_s=payload.get("queue_delay_p50_s", 0.0),
        queue_delay_p99_s=payload.get("queue_delay_p99_s", 0.0),
        flow_completions=tuple(
            (station, t) for station, t in payload.get("flow_completions", [])
        ),
        extra=dict(payload["extra"]),
    )


class ResultCache:
    """Directory of ``<task_key>.json`` files, one per completed task."""

    def __init__(self, root: os.PathLike) -> None:
        self._root = pathlib.Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        #: Corrupt entries quarantined (renamed to ``*.corrupt``) by
        #: :meth:`load` over this instance's lifetime.
        self.corrupt_entries = 0
        self._warned_corrupt = False

    @property
    def root(self) -> pathlib.Path:
        return self._root

    def path_for(self, key: str) -> pathlib.Path:
        return self._root / f"{key}.json"

    # ------------------------------------------------------------------
    def load(self, key: str) -> Optional[SimulationResult]:
        """Return the cached result for ``key``, or None on miss/corruption.

        Corrupt entries are quarantined (renamed to ``*.corrupt``), counted
        and warned about once per cache instance; the campaign re-simulates
        the cell.  Version mismatches are silent misses, not corruption.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("cache entry is not a JSON object")
        except ValueError as error:
            self._quarantine(path, f"invalid JSON ({error})")
            return None
        if payload.get("version") != CACHE_VERSION:
            return None
        if payload.get("schema_version") != RESULT_SCHEMA_VERSION:
            return None
        try:
            return result_from_dict(payload["result"])
        except (KeyError, TypeError, ValueError) as error:
            self._quarantine(path, f"malformed result payload ({error!r})")
            return None

    def _quarantine(self, path: pathlib.Path, why: str) -> None:
        """Move a corrupt entry aside so it stops shadowing its key."""
        corrupt_path = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, corrupt_path)
            where = f"; quarantined as {corrupt_path.name}"
        except OSError:
            where = "; could not be renamed aside"
        self.corrupt_entries += 1
        if not self._warned_corrupt:
            self._warned_corrupt = True
            print(
                f"[cache] corrupt entry {path.name}: {why}{where}. The cell "
                f"will be re-simulated (further corrupt entries are counted "
                f"silently).", file=sys.stderr, flush=True,
            )
        telemetry_current().counter("cache", "corrupt_entries", 1)

    def store(self, task: RunTask, result: SimulationResult) -> pathlib.Path:
        """Persist one completed task atomically; returns the entry path."""
        key = task.task_key()
        payload = {
            "version": CACHE_VERSION,
            "schema_version": RESULT_SCHEMA_VERSION,
            "task_key": key,
            "label": task.label,
            "task": task.to_json(),
            "result": result_to_dict(result),
        }
        path = self.path_for(key)
        # Atomic replace so a crashed/parallel writer never leaves a torn
        # file behind (concurrent writers of the same key write identical
        # content, so last-write-wins is safe).
        fd, tmp_name = tempfile.mkstemp(
            dir=self._root, prefix=f".{key[:12]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self._root.glob("*.json"))

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        for path in self._root.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
