"""Campaign execution: fan tasks out over processes, with caching.

:func:`execute_task` turns one :class:`RunTask` descriptor into a
:class:`~repro.sim.metrics.SimulationResult`; it is a pure function of the
descriptor, which is what makes everything else here trivial to reason
about: running tasks serially, in a process pool, or loading them from the
on-disk cache all produce bit-identical results.

:class:`CampaignExecutor` is the engine the per-figure runners hand their
task lists to.  It deduplicates identical tasks, satisfies what it can from
the :class:`~repro.experiments.campaign.cache.ResultCache`, fans the misses
out over a ``ProcessPoolExecutor`` (``jobs > 1``) or an in-process loop
(``jobs == 1``), stores fresh results back into the cache, and reports
progress through a callback.
"""

from __future__ import annotations

import dataclasses
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ...mac.idlesense import IdleSenseBackoff
from ...sim.dynamics import step_activity
from ...sim.metrics import SimulationResult
from ...sim.simulation import WlanSimulation
from ...sim.slotted import SlottedSimulator
from .cache import ResultCache
from .specs import RunTask

__all__ = [
    "execute_task",
    "CampaignExecutor",
    "CampaignStats",
    "CampaignEvent",
    "stderr_progress",
]


def _station_observed_idle(policies) -> Optional[float]:
    """Mean station-observed idle average (IdleSense stations), if any."""
    observed = [
        policy.observed_average_idle_slots()
        for policy in policies
        if isinstance(policy, IdleSenseBackoff)
        and policy.observed_average_idle_slots() is not None
    ]
    if not observed:
        return None
    return float(np.mean(observed))


def execute_task(task: RunTask) -> SimulationResult:
    """Run one task descriptor to completion (pure, process-safe).

    The returned result's ``extra`` mapping is annotated with the task key,
    seed and label, plus ``station_observed_idle`` when the scheme's stations
    track their own idle average (Table III needs it).
    """
    scheme = task.scheme.build(task.phy)
    activity = step_activity(task.activity) if task.activity else None

    if task.resolved_simulator() == "slotted":
        simulator = SlottedSimulator(
            scheme,
            num_stations=task.topology.num_stations,
            phy=task.phy,
            seed=task.seed,
            activity=activity,
            report_interval=task.report_interval,
            frame_error_rate=task.frame_error_rate,
        )
        result = simulator.run(duration=task.duration, warmup=task.warmup)
        policies = simulator.policies
    else:
        simulation = WlanSimulation(
            scheme=scheme,
            connectivity=task.topology.build(),
            phy=task.phy,
            seed=task.seed,
            activity=activity,
            report_interval=task.report_interval,
            frame_error_rate=task.frame_error_rate,
        )
        result = simulation.run(duration=task.duration, warmup=task.warmup)
        policies = simulation.policies

    extra = dict(result.extra)
    extra["task_key"] = task.task_key()
    extra["seed"] = task.seed
    if task.label:
        extra["label"] = task.label
    station_idle = _station_observed_idle(policies)
    if station_idle is not None:
        extra["station_observed_idle"] = station_idle
    return dataclasses.replace(result, extra=extra)


@dataclass
class CampaignStats:
    """Counters describing how a campaign's cells were satisfied."""

    total: int = 0
    executed: int = 0
    cached: int = 0
    deduplicated: int = 0

    def merge(self, other: "CampaignStats") -> None:
        self.total += other.total
        self.executed += other.executed
        self.cached += other.cached
        self.deduplicated += other.deduplicated

    def summary(self) -> str:
        return (
            f"{self.total} task(s): {self.executed} simulated, "
            f"{self.cached} from cache, {self.deduplicated} deduplicated"
        )


@dataclass(frozen=True)
class CampaignEvent:
    """One progress notification (a cell finished or was served from cache)."""

    completed: int
    total: int
    label: str
    key: str
    source: str  # "run" or "cache"
    elapsed_s: float


def stderr_progress(event: CampaignEvent) -> None:
    """Stock progress reporter: one line per completed cell on stderr."""
    print(
        f"[campaign {event.completed}/{event.total}] "
        f"{event.label or event.key[:12]} ({event.source}, {event.elapsed_s:.1f}s)",
        file=sys.stderr,
        flush=True,
    )


class CampaignExecutor:
    """Runs lists of :class:`RunTask` cells, in parallel and/or from cache.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` (default) runs tasks in-process;
        ``0``/negative means "one per CPU".  Because each task derives all of
        its randomness from its own descriptor, results are bit-identical for
        every value of ``jobs``.
    cache_dir:
        When given, completed cells are stored as JSON under this directory
        and later campaigns skip any cell whose task hash is already present.
    use_cache:
        Set False to ignore ``cache_dir`` entirely (force re-simulation).
    progress:
        Optional callback receiving a :class:`CampaignEvent` per completed
        cell (see :func:`stderr_progress`).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[os.PathLike] = None,
        use_cache: bool = True,
        progress: Optional[Callable[[CampaignEvent], None]] = None,
    ) -> None:
        if jobs <= 0:
            jobs = os.cpu_count() or 1
        self._jobs = int(jobs)
        self._cache = (
            ResultCache(cache_dir) if (cache_dir is not None and use_cache) else None
        )
        self._progress = progress
        #: Cumulative counters across every :meth:`run` call.
        self.stats = CampaignStats()
        #: Counters of the most recent :meth:`run` call only.
        self.last_run_stats = CampaignStats()

    # ------------------------------------------------------------------
    @property
    def jobs(self) -> int:
        return self._jobs

    @property
    def cache(self) -> Optional[ResultCache]:
        return self._cache

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[RunTask]) -> List[SimulationResult]:
        """Execute all tasks; results come back in input order.

        Identical tasks (same :meth:`RunTask.task_key`) are simulated once
        and fanned back out to every position that requested them.
        """
        tasks = list(tasks)
        stats = CampaignStats(total=len(tasks))
        started = time.perf_counter()

        # Deduplicate by content hash, preserving first-seen order.
        first_task: Dict[str, RunTask] = {}
        positions: Dict[str, List[int]] = {}
        for index, task in enumerate(tasks):
            key = task.task_key()
            if key in positions:
                stats.deduplicated += 1
            else:
                first_task[key] = task
            positions.setdefault(key, []).append(index)

        resolved: Dict[str, SimulationResult] = {}
        completed = 0

        def report(key: str, source: str) -> None:
            nonlocal completed
            completed += 1
            if self._progress is not None:
                self._progress(CampaignEvent(
                    completed=completed,
                    total=len(first_task),
                    label=first_task[key].label,
                    key=key,
                    source=source,
                    elapsed_s=time.perf_counter() - started,
                ))

        # Serve cache hits first so only true misses hit the pool.
        pending: List[str] = []
        for key in first_task:
            cached = self._cache.load(key) if self._cache is not None else None
            if cached is not None:
                resolved[key] = cached
                stats.cached += 1
                report(key, "cache")
            else:
                pending.append(key)

        if pending:
            if self._jobs == 1 or len(pending) == 1:
                for key in pending:
                    resolved[key] = execute_task(first_task[key])
                    stats.executed += 1
                    self._store(first_task[key], resolved[key])
                    report(key, "run")
            else:
                self._run_parallel(first_task, pending, resolved, stats, report)

        self.last_run_stats = stats
        self.stats.merge(stats)
        return [resolved[task.task_key()] for task in tasks]

    # ------------------------------------------------------------------
    def _run_parallel(
        self,
        first_task: Dict[str, RunTask],
        pending: Sequence[str],
        resolved: Dict[str, SimulationResult],
        stats: CampaignStats,
        report: Callable[[str, str], None],
    ) -> None:
        workers = min(self._jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(execute_task, first_task[key]): key for key in pending
            }
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in done:
                    key = futures[future]
                    resolved[key] = future.result()
                    stats.executed += 1
                    self._store(first_task[key], resolved[key])
                    report(key, "run")

    def _store(self, task: RunTask, result: SimulationResult) -> None:
        if self._cache is not None:
            self._cache.store(task, result)
