"""Campaign execution: fan tasks out over processes, with caching.

:func:`execute_task` turns one :class:`RunTask` descriptor into a
:class:`~repro.sim.metrics.SimulationResult`; it is a pure function of the
descriptor, which is what makes everything else here trivial to reason
about: running tasks serially, in a process pool, or loading them from the
on-disk cache all produce bit-identical results.

:class:`CampaignExecutor` is the engine the per-figure runners hand their
task lists to.  It resolves each ``auto`` task to a concrete backend
(``batched`` for eligible tasks under the default ``backend="auto"`` policy
— connected *and* hidden-node topologies both have vectorized kernels —
scalar ``slotted``/``event`` otherwise),
deduplicates identical tasks, satisfies what it can from the
:class:`~repro.experiments.campaign.cache.ResultCache`, groups batched
misses into vectorized calls (:mod:`~repro.experiments.campaign.batching`),
fans the remaining work out over a ``ProcessPoolExecutor`` (``jobs > 1``)
or an in-process loop (``jobs == 1``), stores fresh results back into the
cache, and reports progress through a callback.
"""

from __future__ import annotations

import dataclasses
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ...mac.idlesense import IdleSenseBackoff
from ...sim.dynamics import step_activity
from ...sim.metrics import SimulationResult
from ...sim.simulation import WlanSimulation
from ...sim.slotted import SlottedSimulator
from .batching import batch_eligible, execute_batch, plan_batches
from .cache import ResultCache
from .specs import RunTask

__all__ = [
    "execute_task",
    "CampaignExecutor",
    "CampaignStats",
    "CampaignEvent",
    "stderr_progress",
    "BACKENDS",
]

#: Backend policies accepted by :class:`CampaignExecutor` and the CLI.
#: ``auto`` prefers the vectorized batched simulators for eligible tasks —
#: the renewal-slot backend for connected topologies, the conflict-matrix
#: backend for hidden-node topologies — and falls back to the scalar
#: simulators; ``slotted`` is the scalar-only policy (the pre-batching
#: behaviour); ``event`` forces event-driven simulation everywhere;
#: ``batched`` is an alias of ``auto``'s preference that makes the intent
#: explicit.  Tasks whose ``simulator`` field is not ``auto`` are never
#: rewritten; ineligible hidden-node tasks (unbatchable scheme, activity
#: schedule) use the event simulator.
BACKENDS = ("auto", "slotted", "event", "batched")


def _station_observed_idle(policies) -> Optional[float]:
    """Mean station-observed idle average (IdleSense stations), if any."""
    observed = [
        policy.observed_average_idle_slots()
        for policy in policies
        if isinstance(policy, IdleSenseBackoff)
        and policy.observed_average_idle_slots() is not None
    ]
    if not observed:
        return None
    return float(np.mean(observed))


def execute_task(task: RunTask) -> SimulationResult:
    """Run one task descriptor to completion (pure, process-safe).

    The returned result's ``extra`` mapping is annotated with the task key,
    seed and label, plus ``station_observed_idle`` when the scheme's stations
    track their own idle average (Table III needs it).  Tasks resolved to the
    batched backend run as a batch of one (the executor groups them into
    larger batches instead of coming through here).
    """
    if task.resolved_simulator() == "batched":
        [result] = execute_batch([task])
        return result

    scheme = task.scheme.build(task.phy)
    activity = step_activity(task.activity) if task.activity else None

    if task.resolved_simulator() == "slotted":
        simulator = SlottedSimulator(
            scheme,
            num_stations=task.topology.num_stations,
            phy=task.phy,
            seed=task.seed,
            activity=activity,
            report_interval=task.report_interval,
            frame_error_rate=task.frame_error_rate,
            traffic=task.traffic,
        )
        result = simulator.run(duration=task.duration, warmup=task.warmup)
        policies = simulator.policies
    else:
        simulation = WlanSimulation(
            scheme=scheme,
            connectivity=task.topology.build(),
            phy=task.phy,
            seed=task.seed,
            activity=activity,
            report_interval=task.report_interval,
            frame_error_rate=task.frame_error_rate,
            traffic=task.traffic,
        )
        result = simulation.run(duration=task.duration, warmup=task.warmup)
        policies = simulation.policies

    extra = dict(result.extra)
    extra["task_key"] = task.task_key()
    extra["seed"] = task.seed
    if task.label:
        extra["label"] = task.label
    station_idle = _station_observed_idle(policies)
    if station_idle is not None:
        extra["station_observed_idle"] = station_idle
    return dataclasses.replace(result, extra=extra)


@dataclass
class CampaignStats:
    """Counters describing how a campaign's cells were satisfied."""

    total: int = 0
    executed: int = 0
    cached: int = 0
    deduplicated: int = 0
    #: Cells (not groups) that executed on the batched backend.
    batched_cells: int = 0

    def merge(self, other: "CampaignStats") -> None:
        self.total += other.total
        self.executed += other.executed
        self.cached += other.cached
        self.deduplicated += other.deduplicated
        self.batched_cells += other.batched_cells

    def summary(self) -> str:
        return (
            f"{self.total} task(s): {self.executed} simulated "
            f"({self.batched_cells} batched), {self.cached} from cache, "
            f"{self.deduplicated} deduplicated"
        )


@dataclass(frozen=True)
class CampaignEvent:
    """One progress notification (a cell finished or was served from cache)."""

    completed: int
    total: int
    label: str
    key: str
    source: str  # "run" or "cache"
    elapsed_s: float
    #: Simulator backend that produced (or would produce) the cell.
    backend: str = "?"

    @property
    def cells_per_s(self) -> float:
        """Completed-cell throughput of the campaign so far."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.completed / self.elapsed_s


def stderr_progress(event: CampaignEvent) -> None:
    """Stock progress reporter: one line per completed cell on stderr."""
    print(
        f"[campaign {event.completed}/{event.total}] "
        f"{event.label or event.key[:12]} ({event.source}:{event.backend}, "
        f"{event.elapsed_s:.1f}s, {event.cells_per_s:.1f} cells/s)",
        file=sys.stderr,
        flush=True,
    )


class CampaignExecutor:
    """Runs lists of :class:`RunTask` cells, in parallel and/or from cache.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` (default) runs tasks in-process;
        ``0``/negative means "one per CPU".  Because each task derives all of
        its randomness from its own descriptor, results are bit-identical for
        every value of ``jobs``.
    cache_dir:
        When given, completed cells are stored as JSON under this directory
        and later campaigns skip any cell whose task hash is already present.
    use_cache:
        Set False to ignore ``cache_dir`` entirely (force re-simulation).
    progress:
        Optional callback receiving a :class:`CampaignEvent` per completed
        cell (see :func:`stderr_progress`).
    backend:
        Backend policy for tasks whose ``simulator`` is ``auto`` (see
        :data:`BACKENDS`).  Backend resolution is per-task and deterministic,
        so results (and cache keys) depend only on the policy, never on
        which other tasks happen to share the campaign.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[os.PathLike] = None,
        use_cache: bool = True,
        progress: Optional[Callable[[CampaignEvent], None]] = None,
        backend: str = "auto",
    ) -> None:
        if jobs <= 0:
            jobs = os.cpu_count() or 1
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend '{backend}'; expected one of {BACKENDS}"
            )
        self._jobs = int(jobs)
        self._backend = backend
        self._cache = (
            ResultCache(cache_dir) if (cache_dir is not None and use_cache) else None
        )
        self._progress = progress
        #: Cumulative counters across every :meth:`run` call.
        self.stats = CampaignStats()
        #: Counters of the most recent :meth:`run` call only.
        self.last_run_stats = CampaignStats()

    # ------------------------------------------------------------------
    @property
    def jobs(self) -> int:
        return self._jobs

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def cache(self) -> Optional[ResultCache]:
        return self._cache

    # ------------------------------------------------------------------
    def _resolve_backend(self, task: RunTask) -> RunTask:
        """Rewrite an ``auto`` task to the backend this policy selects.

        Explicit simulator choices are always respected.  Under ``auto`` and
        ``batched``, eligible tasks run vectorized (connected topologies on
        the renewal-slot backend, hidden-node topologies on the
        conflict-matrix backend); everything else falls back to the scalar
        simulators (slotted for connected, event-driven otherwise).
        """
        if task.simulator != "auto":
            return task
        if self._backend == "event":
            return dataclasses.replace(task, simulator="event")
        if self._backend in ("auto", "batched") and batch_eligible(task):
            return dataclasses.replace(task, simulator="batched")
        return task  # auto: slotted for connected cells, event otherwise

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[RunTask]) -> List[SimulationResult]:
        """Execute all tasks; results come back in input order.

        Identical tasks (same :meth:`RunTask.task_key`) are simulated once
        and fanned back out to every position that requested them.  Pending
        batched tasks are grouped into vectorized calls; per-cell results do
        not depend on the grouping.
        """
        tasks = [self._resolve_backend(task) for task in tasks]
        stats = CampaignStats(total=len(tasks))
        started = time.perf_counter()

        # Deduplicate by content hash, preserving first-seen order.
        first_task: Dict[str, RunTask] = {}
        positions: Dict[str, List[int]] = {}
        for index, task in enumerate(tasks):
            key = task.task_key()
            if key in positions:
                stats.deduplicated += 1
            else:
                first_task[key] = task
            positions.setdefault(key, []).append(index)

        resolved: Dict[str, SimulationResult] = {}
        completed = 0

        def report(key: str, source: str) -> None:
            nonlocal completed
            completed += 1
            if self._progress is not None:
                self._progress(CampaignEvent(
                    completed=completed,
                    total=len(first_task),
                    label=first_task[key].label,
                    key=key,
                    source=source,
                    elapsed_s=time.perf_counter() - started,
                    backend=first_task[key].resolved_simulator(),
                ))

        def record(key: str, result: SimulationResult) -> None:
            resolved[key] = result
            stats.executed += 1
            if first_task[key].resolved_simulator() == "batched":
                stats.batched_cells += 1
            self._store(first_task[key], result)
            report(key, "run")

        # Serve cache hits first so only true misses hit the pool.
        pending: List[str] = []
        for key in first_task:
            cached = self._cache.load(key) if self._cache is not None else None
            if cached is not None:
                resolved[key] = cached
                stats.cached += 1
                report(key, "cache")
            else:
                pending.append(key)

        # Group pending batched tasks into vectorized units of work (split to
        # keep every worker busy when running in a pool); every other pending
        # task is a scalar unit of its own.
        batch_groups = plan_batches(
            [
                first_task[key] for key in pending
                if first_task[key].resolved_simulator() == "batched"
            ],
            target_units=self._jobs if self._jobs > 1 else None,
        )
        scalar_keys = [
            key for key in pending
            if first_task[key].resolved_simulator() != "batched"
        ]

        if pending:
            units = len(batch_groups) + len(scalar_keys)
            if self._jobs == 1 or units == 1:
                for group in batch_groups:
                    for task, result in zip(group, execute_batch(group)):
                        record(task.task_key(), result)
                for key in scalar_keys:
                    record(key, execute_task(first_task[key]))
            else:
                self._run_parallel(first_task, batch_groups, scalar_keys, record)

        self.last_run_stats = stats
        self.stats.merge(stats)
        return [resolved[task.task_key()] for task in tasks]

    # ------------------------------------------------------------------
    def _run_parallel(
        self,
        first_task: Dict[str, RunTask],
        batch_groups: Sequence[Sequence[RunTask]],
        scalar_keys: Sequence[str],
        record: Callable[[str, SimulationResult], None],
    ) -> None:
        units = len(batch_groups) + len(scalar_keys)
        workers = min(self._jobs, units)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {}
            for group in batch_groups:
                futures[pool.submit(execute_batch, list(group))] = list(group)
            for key in scalar_keys:
                futures[pool.submit(execute_task, first_task[key])] = key
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in done:
                    unit = futures[future]
                    if isinstance(unit, list):
                        for task, result in zip(unit, future.result()):
                            record(task.task_key(), result)
                    else:
                        record(unit, future.result())

    def _store(self, task: RunTask, result: SimulationResult) -> None:
        if self._cache is not None:
            self._cache.store(task, result)
