"""Campaign execution: fan tasks out over processes, with caching.

:func:`execute_task` turns one :class:`RunTask` descriptor into a
:class:`~repro.sim.metrics.SimulationResult`; it is a pure function of the
descriptor, which is what makes everything else here trivial to reason
about: running tasks serially, in a process pool, or loading them from the
on-disk cache all produce bit-identical results.

:class:`CampaignExecutor` is the engine the per-figure runners hand their
task lists to.  It resolves each ``auto`` task to a concrete backend
(``batched`` for eligible tasks under the default ``backend="auto"`` policy
— connected *and* hidden-node topologies both have vectorized kernels —
scalar ``slotted``/``event`` otherwise),
deduplicates identical tasks, satisfies what it can from a
:class:`~repro.experiments.campaign.journal.CampaignJournal` checkpoint and
the :class:`~repro.experiments.campaign.cache.ResultCache`, groups batched
misses into vectorized calls (:mod:`~repro.experiments.campaign.batching`),
fans the remaining work out over a ``ProcessPoolExecutor`` (``jobs > 1``)
or an in-process loop (``jobs == 1``), stores fresh results back into the
cache, and reports progress through a callback.

Fault tolerance
---------------
Campaign-scale runs must survive their own size, so dispatch is built
around small recoverable *work units* (:class:`_WorkUnit`) and one shared
failure policy (:class:`_UnitScheduler`):

* a dead worker (``BrokenProcessPool``) rebuilds the pool and re-dispatches
  only the lost units — completed results are never recomputed;
* a hung unit is reclaimed by the per-unit ``task_timeout_s`` (the pool is
  torn down and rebuilt; innocent in-flight units are re-dispatched
  uncharged);
* failing units are retried ``task_retries`` times with exponential
  backoff and deterministic per-task jitter, then quarantined as a named
  :class:`FailedTask` in ``CampaignStats.failures`` instead of aborting
  the campaign (their result positions come back as ``None``);
* a failed batched *group* is split into single-cell batched units first
  (composition independence keeps per-cell results bit-identical), so one
  poisoned cell cannot take down its batch-mates; a batched singleton that
  still exhausts its retries gets one last attempt on the scalar backend
  (:meth:`RunTask.scalar_equivalent`), surfaced through the same
  fallback-reason machinery as planner fallbacks;
* with a journal configured, every completed cell is durably checkpointed
  the moment it finishes, so a killed campaign resumes where it stopped.
"""

from __future__ import annotations

import cProfile
import dataclasses
import math
import os
import sys
import time
import traceback as traceback_module
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ...mac.idlesense import IdleSenseBackoff
from ...sim.dynamics import step_activity
from ...sim.metrics import SimulationResult
from ...sim.simulation import WlanSimulation
from ...sim.slotted import SlottedSimulator
from ...telemetry import NULL, NullTelemetry, Telemetry
from ...telemetry import session as telemetry_session
from ...telemetry.probes import ProbeConfig
from ...telemetry.probes import session as probe_session
from ...telemetry.profiling import hotspot_report, stats_dict, top_hotspots
from ...testing.faults import FaultPlan, InjectedCrash
from .batching import (
    batch_eligible,
    degraded_reason,
    execute_batch,
    fallback_reason,
    plan_batches,
)
from .cache import ResultCache
from .journal import CampaignJournal
from .specs import RunTask

__all__ = [
    "execute_task",
    "CampaignExecutor",
    "CampaignStats",
    "CampaignEvent",
    "FailedTask",
    "stderr_progress",
    "BACKENDS",
]

#: Backend policies accepted by :class:`CampaignExecutor` and the CLI.
#: ``auto`` prefers the vectorized batched simulators for eligible tasks —
#: the renewal-slot backend for connected topologies, the conflict-matrix
#: backend for hidden-node topologies — and falls back to the scalar
#: simulators; ``slotted`` is the scalar-only policy (the pre-batching
#: behaviour); ``event`` forces event-driven simulation everywhere;
#: ``batched`` is an alias of ``auto``'s preference that makes the intent
#: explicit.  Tasks whose ``simulator`` field is not ``auto`` are never
#: rewritten; ineligible hidden-node tasks (unbatchable scheme, activity
#: schedule) use the event simulator.
BACKENDS = ("auto", "slotted", "event", "batched")

#: Upper bound on one retry-backoff sleep, whatever the attempt count.
_MAX_BACKOFF_S = 30.0


def _station_observed_idle(policies) -> Optional[float]:
    """Mean station-observed idle average (IdleSense stations), if any."""
    observed = [
        policy.observed_average_idle_slots()
        for policy in policies
        if isinstance(policy, IdleSenseBackoff)
        and policy.observed_average_idle_slots() is not None
    ]
    if not observed:
        return None
    return float(np.mean(observed))


def execute_task(task: RunTask) -> SimulationResult:
    """Run one task descriptor to completion (pure, process-safe).

    The returned result's ``extra`` mapping is annotated with the task key,
    seed and label, plus ``station_observed_idle`` when the scheme's stations
    track their own idle average (Table III needs it).  Tasks resolved to the
    batched backend run as a batch of one (the executor groups them into
    larger batches instead of coming through here).
    """
    if task.resolved_simulator() == "batched":
        [result] = execute_batch([task])
        return result

    scheme = task.scheme.build(task.phy)
    activity = step_activity(task.activity) if task.activity else None

    if task.resolved_simulator() == "slotted":
        simulator = SlottedSimulator(
            scheme,
            num_stations=task.topology.num_stations,
            phy=task.phy,
            seed=task.seed,
            activity=activity,
            report_interval=task.report_interval,
            frame_error_rate=task.frame_error_rate,
            traffic=task.traffic,
        )
        result = simulator.run(duration=task.duration, warmup=task.warmup)
        policies = simulator.policies
    else:
        simulation = WlanSimulation(
            scheme=scheme,
            connectivity=task.topology.build(),
            phy=task.phy,
            seed=task.seed,
            activity=activity,
            report_interval=task.report_interval,
            frame_error_rate=task.frame_error_rate,
            traffic=task.traffic,
        )
        result = simulation.run(duration=task.duration, warmup=task.warmup)
        policies = simulation.policies

    extra = dict(result.extra)
    extra["task_key"] = task.task_key()
    extra["seed"] = task.seed
    if task.label:
        extra["label"] = task.label
    station_idle = _station_observed_idle(policies)
    if station_idle is not None:
        extra["station_observed_idle"] = station_idle
    return dataclasses.replace(result, extra=extra)


@dataclass(frozen=True)
class _UnitReport:
    """Worker-side measurements for one executed unit of work.

    Shipped back across the process pool next to the unit's results when
    telemetry or profiling is active: ``records`` are the telemetry records
    the unit emitted in the worker (simulator counters, nested spans),
    ``profile`` is the picklable cProfile stats mapping.
    """

    pid: int
    queue_wait_s: float
    execute_s: float
    records: Tuple[Dict[str, Any], ...] = ()
    profile: Optional[Dict[Any, Any]] = None


@dataclass
class _WorkUnit:
    """One recoverable dispatch unit: a batch group or a single scalar cell.

    Mutable on purpose — the scheduler tracks retry ``attempts``, the
    earliest re-dispatch time (``not_before``, a ``perf_counter`` value for
    backoff), and whether the unit is a crash/hang *suspect* (at most one
    suspect runs at a time so a repeat failure is attributable to it).
    """

    tasks: List[RunTask]
    keys: List[str]
    batched: bool
    group_id: Optional[int] = None
    attempts: int = 0
    suspect: bool = False
    not_before: float = 0.0
    #: Original task key when this unit is the scalar-degraded last attempt
    #: of a batched cell (results are recorded under that key).
    degraded_from: Optional[str] = None


def _execute_unit(tasks: Tuple[RunTask, ...], batched: bool, submitted: float,
                  collect: bool, profile: bool,
                  faults: Optional[FaultPlan] = None,
                  allow_exit: bool = True,
                  probe: Optional[ProbeConfig] = None,
                  ) -> Tuple[List[SimulationResult], _UnitReport]:
    """Run one unit of work (pool-side wrapper).

    ``submitted`` is the parent's wall-clock epoch at submission time, so
    queue wait (time spent waiting for a worker) is measured across the
    process boundary.  ``faults`` is the test-only injection plan; it fires
    before simulation starts so an injected crash/hang/error models a
    failure of the unit as a whole (``allow_exit=False`` keeps in-process
    crashes survivable).  ``probe`` installs a simulator probe session for
    the unit; the probe records land in ``records`` next to the simulator
    counters (probes never influence results — see
    :mod:`repro.telemetry.probes`).
    """
    started = time.time()
    if faults is not None:
        for task in tasks:
            faults.inject(task.task_key(), task.label, allow_exit=allow_exit)
    tel = Telemetry(keep_records=True) if collect else None
    profiler = cProfile.Profile() if profile else None
    begin = time.perf_counter()
    with telemetry_session(tel) if tel is not None else nullcontext(), \
            probe_session(probe) if probe is not None else nullcontext():
        if profiler is not None:
            profiler.enable()
        try:
            if batched:
                results = execute_batch(list(tasks))
            else:
                results = [execute_task(task) for task in tasks]
        finally:
            if profiler is not None:
                profiler.disable()
    report = _UnitReport(
        pid=os.getpid(),
        queue_wait_s=max(0.0, started - submitted),
        execute_s=time.perf_counter() - begin,
        records=tuple(tel.records) if tel is not None else (),
        profile=stats_dict(profiler) if profiler is not None else None,
    )
    return results, report


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a (possibly hung or broken) process pool down immediately.

    ``shutdown()`` alone would block forever behind a hung worker, so the
    workers are terminated first, then killed if they ignore SIGTERM.
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    for process in processes:
        try:
            process.join(timeout=5.0)
        except Exception:
            pass
    for process in processes:
        if process.is_alive():
            try:
                process.kill()
                process.join(timeout=5.0)
            except Exception:
                pass


@dataclass(frozen=True)
class FailedTask:
    """One campaign cell quarantined after exhausting its retry budget."""

    key: str
    label: str
    backend: str
    seed: int
    #: Failure class of the final attempt: ``error``, ``crash``, ``timeout``.
    reason: str
    attempts: int
    #: ``TypeName: message`` of the final exception.
    error: str
    #: Formatted traceback of the final exception (when one was available).
    traceback: str = ""

    def describe(self) -> str:
        name = self.label or self.key[:12]
        return (f"{name} (key={self.key[:12]}, backend={self.backend}, "
                f"seed={self.seed}, reason={self.reason}, "
                f"attempts={self.attempts}): {self.error}")


@dataclass
class CampaignStats:
    """Counters describing how a campaign's cells were satisfied."""

    total: int = 0
    executed: int = 0
    cached: int = 0
    deduplicated: int = 0
    #: Cells served from the resume journal without re-execution.
    journaled: int = 0
    #: Cells (not groups) that executed on the batched backend.
    batched_cells: int = 0
    #: Unique ``auto`` hidden-node cells that fell back from the
    #: conflict-matrix backend to the event-driven simulator.
    fallbacks: int = 0
    #: Unit re-dispatches after a retryable failure.
    retries: int = 0
    #: Units that exceeded ``task_timeout_s`` (each also counts a retry or
    #: a quarantine).
    timeouts: int = 0
    #: Worker-pool rebuilds (crash or timeout recovery).
    recoveries: int = 0
    #: Batched groups split into single-cell units after a failure.
    degraded_groups: int = 0
    #: Batched singletons given a final attempt on the scalar backend.
    scalar_retries: int = 0
    #: Corrupt result-cache entries quarantined during lookup.
    cache_corrupt: int = 0
    #: Tasks quarantined after exhausting every retry.
    failures: List[FailedTask] = field(default_factory=list)

    def merge(self, other: "CampaignStats") -> None:
        self.total += other.total
        self.executed += other.executed
        self.cached += other.cached
        self.deduplicated += other.deduplicated
        self.journaled += other.journaled
        self.batched_cells += other.batched_cells
        self.fallbacks += other.fallbacks
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.recoveries += other.recoveries
        self.degraded_groups += other.degraded_groups
        self.scalar_retries += other.scalar_retries
        self.cache_corrupt += other.cache_corrupt
        self.failures.extend(other.failures)

    def summary(self) -> str:
        text = (
            f"{self.total} task(s): {self.executed} simulated "
            f"({self.batched_cells} batched), {self.cached} from cache, "
            f"{self.deduplicated} deduplicated"
        )
        if self.journaled:
            text += f", {self.journaled} from journal"
        if self.fallbacks:
            text += f", {self.fallbacks} scalar fallback(s)"
        if self.retries:
            text += f", {self.retries} retried"
        if self.timeouts:
            text += f", {self.timeouts} timed out"
        if self.recoveries:
            text += f", {self.recoveries} pool rebuild(s)"
        if self.degraded_groups:
            text += f", {self.degraded_groups} batch group(s) split"
        if self.scalar_retries:
            text += f", {self.scalar_retries} degraded to scalar"
        if self.cache_corrupt:
            text += f", {self.cache_corrupt} corrupt cache entr(ies) quarantined"
        if self.failures:
            text += f", {len(self.failures)} task(s) quarantined"
        return text


@dataclass(frozen=True)
class CampaignEvent:
    """One progress notification (a cell finished or was served from cache)."""

    completed: int
    total: int
    label: str
    key: str
    source: str  # "run", "cache", "journal" or "failed"
    elapsed_s: float
    #: Simulator backend that produced (or would produce) the cell.
    backend: str = "?"
    #: Completion rate over the recent window (cells/s); falls back to the
    #: whole-campaign average until enough events accumulate.
    rolling_cells_per_s: float = 0.0
    #: Estimated seconds until the campaign completes, from the rolling rate
    #: and the remaining cell count (``None`` when the rate is still zero).
    eta_s: Optional[float] = None

    @property
    def cells_per_s(self) -> float:
        """Completed-cell throughput of the campaign so far."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.completed / self.elapsed_s


def _format_eta(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


def stderr_progress(event: CampaignEvent) -> None:
    """Stock progress reporter: one line per completed cell on stderr."""
    tail = ""
    if event.eta_s is not None and event.completed < event.total:
        tail = (f", {event.rolling_cells_per_s:.1f} cells/s rolling, "
                f"ETA {_format_eta(event.eta_s)}")
    print(
        f"[campaign {event.completed}/{event.total}] "
        f"{event.label or event.key[:12]} ({event.source}:{event.backend}, "
        f"{event.elapsed_s:.1f}s, {event.cells_per_s:.1f} cells/s{tail})",
        file=sys.stderr,
        flush=True,
    )


class _UnitScheduler:
    """Fault-tolerant dispatch loop shared by serial and parallel modes.

    Owns the work-unit queue and the failure policy; the executor supplies
    callbacks for delivering results (``deliver``), quarantining exhausted
    tasks (``quarantine``) and naming degradations (``note_fallback``).
    """

    def __init__(
        self,
        executor: "CampaignExecutor",
        units: Sequence[_WorkUnit],
        stats: CampaignStats,
        deliver: Callable[[_WorkUnit, List[SimulationResult],
                           Optional[_UnitReport]], None],
        quarantine: Callable[[_WorkUnit, str, BaseException], None],
        note_fallback: Callable[[str, str], None],
    ) -> None:
        self._ex = executor
        self._stats = stats
        self._deliver = deliver
        self._quarantine = quarantine
        self._note_fallback = note_fallback
        self._queue: deque = deque(units)

    # -- shared failure policy -----------------------------------------
    def _handle_failure(self, unit: _WorkUnit, kind: str,
                        exc: BaseException) -> None:
        """Decide a failed unit's fate: split, retry, degrade or quarantine."""
        ex = self._ex
        if unit.batched and len(unit.tasks) > 1:
            # Graceful degradation, step 1: don't let one poisoned cell take
            # down its batch-mates.  Single-cell *batched* units keep every
            # innocent cell bit-identical (composition independence); the
            # group failure is not charged to any cell's retry budget.
            self._stats.degraded_groups += 1
            print(
                f"[campaign] batched group of {len(unit.tasks)} cell(s) "
                f"failed ({kind}: {exc}); re-dispatching its cells "
                f"individually", file=sys.stderr, flush=True,
            )
            suspect = kind != "error"
            for task, key in zip(unit.tasks, unit.keys):
                self._queue.append(_WorkUnit(
                    tasks=[task], keys=[key], batched=True, suspect=suspect,
                ))
            return
        unit.attempts += 1
        if unit.attempts <= ex._task_retries:
            self._stats.retries += 1
            delay = ex._backoff_s(unit.attempts, unit.keys[0])
            unit.not_before = time.perf_counter() + delay
            self._queue.append(unit)
            return
        task = unit.tasks[0]
        if (unit.degraded_from is None
                and task.resolved_simulator() == "batched"):
            # Graceful degradation, step 2: one final attempt on the scalar
            # oracle backend before giving the cell up.  Reuses the
            # fallback-reason machinery so the degradation is named in the
            # trace and counted next to planner fallbacks.
            scalar = task.scalar_equivalent()
            reason = degraded_reason(kind, scalar.resolved_simulator())
            self._stats.scalar_retries += 1
            self._note_fallback(unit.keys[0], reason)
            print(
                f"[campaign] cell {task.label or unit.keys[0][:12]} failed "
                f"{unit.attempts} attempt(s) on the batched backend; "
                f"{reason}", file=sys.stderr, flush=True,
            )
            self._queue.append(_WorkUnit(
                tasks=[scalar], keys=[unit.keys[0]], batched=False,
                attempts=ex._task_retries, suspect=unit.suspect,
                degraded_from=unit.keys[0],
            ))
            return
        self._quarantine(unit, kind, exc)

    # -- serial execution ----------------------------------------------
    def run_serial(self) -> None:
        """In-process execution (timeouts cannot preempt; crash/error
        injection still exercises the retry/quarantine policy)."""
        ex = self._ex
        while self._queue:
            unit = self._queue.popleft()
            delay = unit.not_before - time.perf_counter()
            if delay > 0:
                time.sleep(min(delay, _MAX_BACKOFF_S))
            try:
                results, report = ex._execute_inline(unit)
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                kind = "crash" if isinstance(exc, InjectedCrash) else "error"
                self._handle_failure(unit, kind, exc)
                continue
            self._deliver(unit, results, report)

    # -- parallel execution --------------------------------------------
    def _pop_dispatchable(self, now: float,
                          suspects_in_flight: int) -> Optional[_WorkUnit]:
        for index, unit in enumerate(self._queue):
            if unit.not_before > now:
                continue
            if unit.suspect and suspects_in_flight > 0:
                # One suspect at a time: if the pool dies again, the lone
                # suspect in flight is unambiguously the culprit.
                continue
            del self._queue[index]
            return unit
        return None

    def _wait_budget(self, in_flight: Dict[Any, Tuple[_WorkUnit, float]],
                     workers: int) -> Optional[float]:
        now = time.perf_counter()
        budget: Optional[float] = None
        deadlines = [dl for _, dl in in_flight.values() if dl != math.inf]
        if deadlines:
            budget = max(0.0, min(deadlines) - now) + 0.01
        if self._queue and len(in_flight) < workers:
            # A queued unit is waiting on backoff (or on the suspect slot):
            # wake up when the earliest becomes dispatchable.
            release = max(0.05, min(u.not_before for u in self._queue) - now)
            budget = release if budget is None else min(budget, release)
        return budget

    def run_parallel(self, workers: int) -> None:
        ex = self._ex
        timeout = ex._task_timeout_s
        pool = ex._new_pool(workers)
        in_flight: Dict[Any, Tuple[_WorkUnit, float]] = {}
        suspects = 0
        try:
            while self._queue or in_flight:
                now = time.perf_counter()
                while self._queue and len(in_flight) < workers:
                    unit = self._pop_dispatchable(now, suspects)
                    if unit is None:
                        break
                    try:
                        future = pool.submit(
                            _execute_unit, tuple(unit.tasks), unit.batched,
                            time.time(), ex._telemetry.enabled, ex._profile,
                            ex._faults, True, ex._probe,
                        )
                    except BrokenExecutor as exc:
                        self._queue.appendleft(unit)
                        pool = self._recover(pool, workers, in_flight,
                                             [], exc)
                        suspects = 0
                        now = time.perf_counter()
                        continue
                    if unit.suspect:
                        suspects += 1
                    deadline = now + timeout if timeout is not None else math.inf
                    in_flight[future] = (unit, deadline)
                if not in_flight:
                    if not self._queue:
                        break
                    pause = (min(u.not_before for u in self._queue)
                             - time.perf_counter())
                    if pause > 0:
                        time.sleep(min(pause, 1.0))
                    continue
                done, _ = wait(set(in_flight),
                               timeout=self._wait_budget(in_flight, workers),
                               return_when=FIRST_COMPLETED)
                lost: List[_WorkUnit] = []
                broken: Optional[BaseException] = None
                for future in done:
                    unit, _ = in_flight.pop(future)
                    if unit.suspect:
                        suspects -= 1
                    try:
                        results, report = future.result()
                    except BrokenExecutor as exc:
                        broken = exc
                        lost.append(unit)
                    except Exception as exc:
                        self._handle_failure(unit, "error", exc)
                    else:
                        self._deliver(unit, results, report)
                if broken is not None:
                    pool = self._recover(pool, workers, in_flight, lost,
                                         broken)
                    suspects = 0
                    continue
                if timeout is not None:
                    now = time.perf_counter()
                    expired = {f for f, (u, dl) in in_flight.items()
                               if dl <= now}
                    if expired:
                        pool = self._expire(pool, workers, in_flight,
                                            expired, timeout)
                        suspects = 0
            pool.shutdown(wait=True)
        except KeyboardInterrupt:
            self._drain_on_interrupt(pool, in_flight)
            raise
        except BaseException:
            _kill_pool(pool)
            raise

    # -- crash recovery ------------------------------------------------
    def _recover(self, pool: ProcessPoolExecutor, workers: int,
                 in_flight: Dict[Any, Tuple[_WorkUnit, float]],
                 lost: List[_WorkUnit],
                 cause: BaseException) -> ProcessPoolExecutor:
        """A worker died: rebuild the pool, re-dispatch only lost units.

        Attribution is inherently ambiguous — every in-flight future fails
        with ``BrokenProcessPool`` when any worker dies — so only a *lone*
        lost unit, or a unit already marked suspect, is charged an attempt.
        The rest are marked suspect and re-dispatched uncharged (suspects
        then run one at a time, making the next crash attributable).
        """
        ex = self._ex
        for future, (unit, _) in list(in_flight.items()):
            del in_flight[future]
            got = None
            if future.done() and not future.cancelled():
                try:
                    got = future.result()
                except BaseException:
                    got = None
            if got is not None:
                self._deliver(unit, got[0], got[1])
            else:
                lost.append(unit)
        self._stats.recoveries += 1
        with ex._telemetry.span("recover", cause=type(cause).__name__,
                                lost_units=len(lost)):
            _kill_pool(pool)
            pool = ex._new_pool(workers)
        print(
            f"[campaign] worker process died ({type(cause).__name__}); "
            f"rebuilt the pool and re-dispatched {len(lost)} lost unit(s)",
            file=sys.stderr, flush=True,
        )
        for unit in lost:
            if unit.suspect or len(lost) == 1:
                self._handle_failure(unit, "crash", cause)
            else:
                unit.suspect = True
                unit.not_before = 0.0
                self._queue.appendleft(unit)
        return pool

    def _expire(self, pool: ProcessPoolExecutor, workers: int,
                in_flight: Dict[Any, Tuple[_WorkUnit, float]],
                expired: set, timeout: float) -> ProcessPoolExecutor:
        """Some units exceeded the task timeout: kill the pool, charge them.

        A hung worker cannot be reclaimed any other way — the pool has no
        per-task cancellation — so the whole pool is torn down.  Expired
        units are charged a timeout; innocent in-flight units re-dispatch
        uncharged.
        """
        ex = self._ex
        timed_out: List[_WorkUnit] = []
        survivors: List[_WorkUnit] = []
        for future, (unit, _) in list(in_flight.items()):
            del in_flight[future]
            if future.done() and not future.cancelled():
                try:
                    results, report = future.result()
                except BaseException as exc:
                    self._handle_failure(unit, "error", exc)
                else:
                    self._deliver(unit, results, report)
                continue
            if future in expired:
                timed_out.append(unit)
            else:
                survivors.append(unit)
        self._stats.recoveries += 1
        with ex._telemetry.span("recover", cause="timeout",
                                lost_units=len(timed_out)):
            _kill_pool(pool)
            pool = ex._new_pool(workers)
        print(
            f"[campaign] {len(timed_out)} unit(s) exceeded the "
            f"{timeout:g}s task timeout; killed the worker pool and "
            f"re-dispatched {len(survivors)} innocent unit(s)",
            file=sys.stderr, flush=True,
        )
        for unit in timed_out:
            self._stats.timeouts += 1
            self._handle_failure(
                unit, "timeout",
                TimeoutError(f"unit exceeded the task timeout of "
                             f"{timeout:g}s"),
            )
        for unit in survivors:
            unit.not_before = 0.0
            self._queue.appendleft(unit)
        return pool

    def _drain_on_interrupt(
        self, pool: ProcessPoolExecutor,
        in_flight: Dict[Any, Tuple[_WorkUnit, float]],
    ) -> None:
        """Ctrl-C: cancel queued work, give in-flight units a short grace
        period to finish (their results are delivered and journaled), then
        tear the pool down."""
        dropped = len(self._queue)
        self._queue.clear()
        grace = min(self._ex._task_timeout_s or 5.0, 5.0)
        print(
            f"[campaign] interrupt: cancelled {dropped} queued unit(s), "
            f"draining {len(in_flight)} in-flight unit(s) "
            f"(up to {grace:.0f}s)", file=sys.stderr, flush=True,
        )
        try:
            done, _ = wait(set(in_flight), timeout=grace)
            for future in done:
                unit, _ = in_flight.pop(future)
                try:
                    results, report = future.result()
                except BaseException:
                    continue
                self._deliver(unit, results, report)
        finally:
            _kill_pool(pool)


class CampaignExecutor:
    """Runs lists of :class:`RunTask` cells, in parallel and/or from cache.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` (default) runs tasks in-process;
        ``0``/negative means "one per CPU".  Because each task derives all of
        its randomness from its own descriptor, results are bit-identical for
        every value of ``jobs``.
    cache_dir:
        When given, completed cells are stored as JSON under this directory
        and later campaigns skip any cell whose task hash is already present.
    use_cache:
        Set False to ignore ``cache_dir`` entirely (force re-simulation).
    progress:
        Optional callback receiving a :class:`CampaignEvent` per completed
        cell (see :func:`stderr_progress`).
    backend:
        Backend policy for tasks whose ``simulator`` is ``auto`` (see
        :data:`BACKENDS`).  Backend resolution is per-task and deterministic,
        so results (and cache keys) depend only on the policy, never on
        which other tasks happen to share the campaign.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` collector.  When given,
        the executor emits spans for its plan / cache-lookup / group /
        dispatch / execute phases, one ``task`` record per completed cell,
        and relays the simulator counters workers collect.  Telemetry never
        influences results: runs with and without it are bit-identical.
    profile:
        When True, every unit of work runs under :mod:`cProfile` (in the
        worker processes when ``jobs > 1``); :meth:`profile_report` renders
        the aggregated top-N hotspots afterwards.
    task_timeout_s:
        Per-unit wall-clock budget (``jobs > 1`` only — an in-process hang
        cannot be preempted).  An expired unit's worker pool is torn down
        and rebuilt; the unit is charged one attempt.
    task_retries:
        How many times a failed unit is re-dispatched before quarantine
        (default 2; 0 disables retries).
    retry_backoff_s:
        Base of the exponential retry backoff: attempt *n* waits
        ``retry_backoff_s * 2**(n-1)`` scaled by a deterministic per-task
        jitter in ``[0.5, 1.5)``.
    journal:
        Path of a :class:`CampaignJournal` checkpoint file.  Every
        completed cell is durably appended; cells already present are
        served without re-execution (see ``resume``), making a killed
        campaign resumable with bit-identical results.
    resume:
        When False, an existing journal at ``journal`` is overwritten
        instead of replayed (default True: resume).
    faults:
        Test-only :class:`~repro.testing.faults.FaultPlan` injected into
        every unit execution and after journal/cache writes.
    probe:
        Optional :class:`~repro.telemetry.probes.ProbeConfig` installed
        around every executed unit (including in worker processes), making
        the simulators sample per-station controller state and emit
        ``probe`` records through ``telemetry``.  Like telemetry, probes
        never influence results and never enter task hashes or cache keys
        — but note that cache/journal hits skip execution entirely, so
        previously cached cells produce no probe records.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[os.PathLike] = None,
        use_cache: bool = True,
        progress: Optional[Callable[[CampaignEvent], None]] = None,
        backend: str = "auto",
        telemetry: Optional[Union[Telemetry, NullTelemetry]] = None,
        profile: bool = False,
        task_timeout_s: Optional[float] = None,
        task_retries: int = 2,
        retry_backoff_s: float = 0.1,
        journal: Optional[os.PathLike] = None,
        resume: bool = True,
        faults: Optional[FaultPlan] = None,
        probe: Optional[ProbeConfig] = None,
    ) -> None:
        if jobs <= 0:
            jobs = os.cpu_count() or 1
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend '{backend}'; expected one of {BACKENDS}"
            )
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ValueError("task_timeout_s must be positive (or None)")
        if task_retries < 0:
            raise ValueError("task_retries must be non-negative")
        if retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be non-negative")
        self._jobs = int(jobs)
        self._backend = backend
        self._cache = (
            ResultCache(cache_dir) if (cache_dir is not None and use_cache) else None
        )
        self._progress = progress
        self._telemetry = telemetry if telemetry is not None else NULL
        self._profile = bool(profile)
        self._task_timeout_s = task_timeout_s
        self._task_retries = int(task_retries)
        self._retry_backoff_s = float(retry_backoff_s)
        if journal is None or isinstance(journal, CampaignJournal):
            self._journal = journal
        else:
            self._journal = CampaignJournal(journal, resume=resume)
        self._faults = faults
        self._probe = probe
        #: Picklable cProfile stats mappings, one per profiled unit of work,
        #: accumulated across :meth:`run` calls (see :meth:`profile_report`).
        self.profile_stats: List[Dict[Any, Any]] = []
        #: Cumulative counters across every :meth:`run` call.
        self.stats = CampaignStats()
        #: Counters of the most recent :meth:`run` call only.
        self.last_run_stats = CampaignStats()

    # ------------------------------------------------------------------
    @property
    def jobs(self) -> int:
        return self._jobs

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def cache(self) -> Optional[ResultCache]:
        return self._cache

    @property
    def telemetry(self) -> Union[Telemetry, NullTelemetry]:
        return self._telemetry

    @property
    def journal(self) -> Optional[CampaignJournal]:
        return self._journal

    @property
    def probe(self) -> Optional[ProbeConfig]:
        return self._probe

    def close(self) -> None:
        """Flush and close the journal (results remain resumable)."""
        if self._journal is not None:
            self._journal.close()

    def profile_report(self, limit: int = 20) -> Optional[str]:
        """Aggregated top-``limit`` hotspot table (``None`` without data)."""
        if not self.profile_stats:
            return None
        return hotspot_report(self.profile_stats, limit)

    # ------------------------------------------------------------------
    def _new_pool(self, workers: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=workers)

    def _backoff_s(self, attempts: int, key: str) -> float:
        """Exponential backoff with deterministic per-task jitter.

        The jitter derives from the task key (not a RNG) so retry schedules
        are reproducible — the same property every other piece of campaign
        randomness has.
        """
        if self._retry_backoff_s <= 0:
            return 0.0
        jitter = 0.5 + int(key[:8], 16) / 0xFFFFFFFF  # [0.5, 1.5)
        delay = self._retry_backoff_s * (2 ** (attempts - 1)) * jitter
        return min(delay, _MAX_BACKOFF_S)

    def _execute_inline(
        self, unit: _WorkUnit,
    ) -> Tuple[List[SimulationResult], Optional[_UnitReport]]:
        """Run one unit in-process (serial mode)."""
        tel = self._telemetry
        if not (tel.enabled or self._profile or self._faults is not None
                or self._probe is not None):
            if unit.batched:
                return execute_batch(unit.tasks), None
            return [execute_task(task) for task in unit.tasks], None
        results, report = _execute_unit(
            tuple(unit.tasks), unit.batched, time.time(), tel.enabled,
            self._profile, self._faults, allow_exit=False,
            probe=self._probe,
        )
        return results, report

    def _absorb_report(self, report: _UnitReport) -> None:
        if report.profile is not None:
            self.profile_stats.append(report.profile)
        for rec in report.records:
            self._telemetry.emit(rec)

    # ------------------------------------------------------------------
    def _resolve_backend(self, task: RunTask) -> Tuple[RunTask, Optional[str]]:
        """Rewrite an ``auto`` task to the backend this policy selects.

        Explicit simulator choices are always respected.  Under ``auto`` and
        ``batched``, eligible tasks run vectorized (connected topologies on
        the renewal-slot backend, hidden-node topologies on the
        conflict-matrix backend); everything else falls back to the scalar
        simulators (slotted for connected, event-driven otherwise).

        The second element names *why* an ``auto`` hidden-node task degraded
        from the conflict-matrix backend to the much slower event-driven
        simulator (``None`` for every other outcome); the executor surfaces
        it as a one-line warning and in the cell's telemetry record.
        """
        if task.simulator != "auto":
            return task, None
        if self._backend == "event":
            return dataclasses.replace(task, simulator="event"), None
        if self._backend in ("auto", "batched"):
            reason = fallback_reason(task)
            if reason is None:
                return dataclasses.replace(task, simulator="batched"), None
            if task.topology.kind != "connected":
                # Hidden-node fallback: the slotted simulator cannot model
                # it, so the cell lands on the event-driven one.  Worth
                # naming — this is a ~3x slowdown per cell.
                return task, reason
        return task, None  # auto: slotted for connected cells, event otherwise

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[RunTask]) -> List[Optional[SimulationResult]]:
        """Execute all tasks; results come back in input order.

        Identical tasks (same :meth:`RunTask.task_key`) are simulated once
        and fanned back out to every position that requested them.  Pending
        batched tasks are grouped into vectorized calls; per-cell results do
        not depend on the grouping.

        Tasks that exhaust their retry budget are quarantined (named in
        ``last_run_stats.failures`` and reported on stderr) and their
        result positions are ``None`` — a partial campaign returns instead
        of aborting.  A :class:`KeyboardInterrupt` drains in-flight work,
        flushes the journal, prints the partial summary, then re-raises.
        """
        tel = self._telemetry
        stats = CampaignStats(total=len(tasks))
        started = time.perf_counter()

        with tel.span("plan", tasks=len(tasks)) as plan_args:
            resolutions = [self._resolve_backend(task) for task in tasks]
            tasks = [task for task, _ in resolutions]

            # Deduplicate by content hash, preserving first-seen order; the
            # fallback diagnosis travels with the unique cell.
            first_task: Dict[str, RunTask] = {}
            positions: Dict[str, List[int]] = {}
            fallbacks: Dict[str, str] = {}
            fallback_counts: Dict[str, int] = {}
            for index, (task, reason) in enumerate(resolutions):
                key = task.task_key()
                if key in positions:
                    stats.deduplicated += 1
                else:
                    first_task[key] = task
                    if reason is not None:
                        stats.fallbacks += 1
                        fallbacks[key] = reason
                        fallback_counts[reason] = fallback_counts.get(reason, 0) + 1
                positions.setdefault(key, []).append(index)
            plan_args["unique"] = len(first_task)
            plan_args["fallbacks"] = stats.fallbacks

        for reason, count in sorted(fallback_counts.items()):
            print(
                f"[campaign] {count} hidden-node cell(s) fell back from the "
                f"conflict-matrix backend to the event-driven simulator: "
                f"{reason}",
                file=sys.stderr, flush=True,
            )

        resolved: Dict[str, SimulationResult] = {}
        completed = 0
        # Rolling completion window for the progress line's rate and ETA.
        window: deque = deque(maxlen=32)

        def report(key: str, source: str) -> None:
            nonlocal completed
            completed += 1
            elapsed = time.perf_counter() - started
            window.append((elapsed, completed))
            if self._progress is not None:
                span = elapsed - window[0][0]
                gain = completed - window[0][1]
                if span > 0 and gain > 0:
                    rolling = gain / span
                elif elapsed > 0:
                    rolling = completed / elapsed
                else:
                    rolling = 0.0
                remaining = len(first_task) - completed
                eta = remaining / rolling if rolling > 0 else None
                self._progress(CampaignEvent(
                    completed=completed,
                    total=len(first_task),
                    label=first_task[key].label,
                    key=key,
                    source=source,
                    elapsed_s=elapsed,
                    backend=first_task[key].resolved_simulator(),
                    rolling_cells_per_s=rolling,
                    eta_s=eta,
                ))

        def trace_task(key: str, source: str, task: RunTask,
                       group: Optional[int] = None,
                       unit: Optional[_UnitReport] = None,
                       unit_cells: int = 1,
                       extra: Optional[Dict[str, Any]] = None) -> None:
            if not tel.enabled:
                return
            execute_s = unit.execute_s if unit is not None else None
            record = {
                "type": "task",
                "key": key,
                "label": task.label,
                "backend": task.resolved_simulator(),
                "source": source,
                "cache_hit": source == "cache",
                "t0": time.time(),
                "group": group,
                "worker_pid": unit.pid if unit is not None else None,
                "queue_wait_s": unit.queue_wait_s if unit is not None else None,
                "execute_s": execute_s,
                "cells_per_s": (unit_cells / execute_s
                                if execute_s else None),
                "fallback_reason": fallbacks.get(key),
            }
            if extra:
                record.update(extra)
            tel.emit(record)

        def record(key: str, task: RunTask, result: SimulationResult,
                   group: Optional[int] = None,
                   unit: Optional[_UnitReport] = None,
                   unit_cells: int = 1) -> None:
            # ``key`` is the campaign's key for the cell; ``task`` is the
            # descriptor that actually executed (they differ only for a
            # scalar-degraded cell, whose result is cached under its own
            # scalar key but resolved/journaled under the campaign key).
            resolved[key] = result
            stats.executed += 1
            if task.resolved_simulator() == "batched":
                stats.batched_cells += 1
            self._store(task, result)
            if self._journal is not None:
                self._journal.record(key, result, label=task.label)
                if self._faults is not None:
                    self._faults.tear_after_write(
                        "torn-journal", key, task.label, self._journal.path)
            trace_task(key, "run", task, group=group, unit=unit,
                       unit_cells=unit_cells)
            report(key, "run")

        def note_fallback(key: str, reason: str) -> None:
            fallbacks[key] = reason

        def deliver(unit: _WorkUnit, results: List[SimulationResult],
                    unit_report: Optional[_UnitReport]) -> None:
            if unit_report is not None:
                # Relay the worker's simulator counters / profile exactly
                # once per delivered unit (serial and parallel both land
                # here, including recovery-harvested futures).
                self._absorb_report(unit_report)
            for task, key, result in zip(unit.tasks, unit.keys, results):
                record(key, task, result, group=unit.group_id,
                       unit=unit_report, unit_cells=len(unit.tasks))

        def quarantine(unit: _WorkUnit, kind: str, exc: BaseException) -> None:
            error_text = f"{type(exc).__name__}: {exc}"
            tb = "".join(traceback_module.format_exception(
                type(exc), exc, exc.__traceback__))
            for task, key in zip(unit.tasks, unit.keys):
                stats.failures.append(FailedTask(
                    key=key,
                    label=task.label,
                    backend=task.resolved_simulator(),
                    seed=task.seed,
                    reason=kind,
                    attempts=unit.attempts,
                    error=error_text,
                    traceback=tb,
                ))
                trace_task(key, "failed", task, group=unit.group_id,
                           extra={"failure_reason": kind,
                                  "error": error_text,
                                  "attempts": unit.attempts})
                report(key, "failed")

        # Serve journaled cells first (a resumed campaign skips them), then
        # cache hits, so only true misses reach the pool.
        if self._journal is not None:
            with tel.span("journal-lookup",
                          candidates=len(first_task)) as journal_args:
                for key, task in first_task.items():
                    hit = self._journal.lookup(key)
                    if hit is not None:
                        resolved[key] = hit
                        stats.journaled += 1
                        trace_task(key, "journal", task)
                        report(key, "journal")
                journal_args["hits"] = stats.journaled

        pending: List[str] = []
        corrupt_before = (self._cache.corrupt_entries
                          if self._cache is not None else 0)
        candidates = [key for key in first_task if key not in resolved]
        with tel.span("cache-lookup", candidates=len(candidates)) as cache_args:
            # The cache reports corrupt-entry counters through the ambient
            # telemetry session; install ours so they land in this trace.
            with telemetry_session(tel if tel.enabled else None):
                for key in candidates:
                    cached = (self._cache.load(key)
                              if self._cache is not None else None)
                    if cached is not None:
                        resolved[key] = cached
                        stats.cached += 1
                        trace_task(key, "cache", first_task[key])
                        report(key, "cache")
                    else:
                        pending.append(key)
            cache_args["hits"] = stats.cached
            cache_args["misses"] = len(pending)
            if self._cache is not None:
                stats.cache_corrupt = (self._cache.corrupt_entries
                                       - corrupt_before)
                if stats.cache_corrupt:
                    cache_args["corrupt"] = stats.cache_corrupt

        # Group pending batched tasks into vectorized units of work (split to
        # keep every worker busy when running in a pool); every other pending
        # task is a scalar unit of its own.
        with tel.span("group") as group_args:
            batch_groups = plan_batches(
                [
                    first_task[key] for key in pending
                    if first_task[key].resolved_simulator() == "batched"
                ],
                target_units=self._jobs if self._jobs > 1 else None,
            )
            scalar_keys = [
                key for key in pending
                if first_task[key].resolved_simulator() != "batched"
            ]
            group_args["batch_groups"] = len(batch_groups)
            group_args["scalar_units"] = len(scalar_keys)

        try:
            if pending:
                units = [
                    _WorkUnit(
                        tasks=list(group),
                        keys=[task.task_key() for task in group],
                        batched=True,
                        group_id=index,
                    )
                    for index, group in enumerate(batch_groups)
                ] + [
                    _WorkUnit(tasks=[first_task[key]], keys=[key],
                              batched=False)
                    for key in scalar_keys
                ]
                # A single unit still goes through the pool when a timeout
                # or fault plan needs a killable worker process.
                serial = self._jobs == 1 or (
                    len(units) == 1 and self._task_timeout_s is None
                )
                workers = min(self._jobs, len(units))
                mode = "serial" if serial else "parallel"
                with tel.span("dispatch", mode=mode, units=len(units),
                              workers=workers):
                    scheduler = _UnitScheduler(
                        self, units, stats, deliver, quarantine, note_fallback,
                    )
                if serial:
                    with tel.span("execute", mode="serial"):
                        scheduler.run_serial()
                else:
                    with tel.span("execute", mode="parallel",
                                  workers=workers):
                        scheduler.run_parallel(workers)
        except KeyboardInterrupt:
            self._finish_run(stats, tel, interrupted=True)
            print(
                f"[campaign] interrupted: {completed}/{len(first_task)} "
                f"task(s) complete"
                + (f"; progress journaled in {self._journal.path} "
                   f"(re-run with the same journal to resume)"
                   if self._journal is not None else ""),
                file=sys.stderr, flush=True,
            )
            raise

        if self._profile and tel.enabled and self.profile_stats:
            tel.emit({
                "type": "profile",
                "t0": time.time(),
                "units": len(self.profile_stats),
                "top": top_hotspots(self.profile_stats),
            })

        self._finish_run(stats, tel)
        return [resolved.get(task.task_key()) for task in tasks]

    def _finish_run(self, stats: CampaignStats,
                    tel: Union[Telemetry, NullTelemetry],
                    interrupted: bool = False) -> None:
        """Book stats, emit campaign counters, print the failure report."""
        if stats.failures:
            print(
                f"[campaign] {len(stats.failures)} task(s) quarantined "
                f"after repeated failures:", file=sys.stderr, flush=True,
            )
            for failed in stats.failures:
                print(f"  - {failed.describe()}", file=sys.stderr, flush=True)
        if tel.enabled:
            fault_counters = {
                name: value
                for name, value in (
                    ("retries", stats.retries),
                    ("timeouts", stats.timeouts),
                    ("recoveries", stats.recoveries),
                    ("quarantined", len(stats.failures)),
                    ("degraded_groups", stats.degraded_groups),
                    ("scalar_retries", stats.scalar_retries),
                    ("journal_hits", stats.journaled),
                    ("cache_corrupt", stats.cache_corrupt),
                    ("interrupted", int(interrupted)),
                )
                if value
            }
            if fault_counters:
                tel.counters("campaign", fault_counters)
        self.last_run_stats = stats
        self.stats.merge(stats)

    # ------------------------------------------------------------------
    def _store(self, task: RunTask, result: SimulationResult) -> None:
        if self._cache is not None:
            path = self._cache.store(task, result)
            if self._faults is not None:
                self._faults.tear_after_write(
                    "torn-cache", task.task_key(), task.label, path)
