"""Campaign execution: fan tasks out over processes, with caching.

:func:`execute_task` turns one :class:`RunTask` descriptor into a
:class:`~repro.sim.metrics.SimulationResult`; it is a pure function of the
descriptor, which is what makes everything else here trivial to reason
about: running tasks serially, in a process pool, or loading them from the
on-disk cache all produce bit-identical results.

:class:`CampaignExecutor` is the engine the per-figure runners hand their
task lists to.  It resolves each ``auto`` task to a concrete backend
(``batched`` for eligible tasks under the default ``backend="auto"`` policy
— connected *and* hidden-node topologies both have vectorized kernels —
scalar ``slotted``/``event`` otherwise),
deduplicates identical tasks, satisfies what it can from the
:class:`~repro.experiments.campaign.cache.ResultCache`, groups batched
misses into vectorized calls (:mod:`~repro.experiments.campaign.batching`),
fans the remaining work out over a ``ProcessPoolExecutor`` (``jobs > 1``)
or an in-process loop (``jobs == 1``), stores fresh results back into the
cache, and reports progress through a callback.
"""

from __future__ import annotations

import cProfile
import dataclasses
import os
import sys
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ...mac.idlesense import IdleSenseBackoff
from ...sim.dynamics import step_activity
from ...sim.metrics import SimulationResult
from ...sim.simulation import WlanSimulation
from ...sim.slotted import SlottedSimulator
from ...telemetry import NULL, NullTelemetry, Telemetry
from ...telemetry import session as telemetry_session
from ...telemetry.profiling import hotspot_report, stats_dict, top_hotspots
from .batching import batch_eligible, execute_batch, fallback_reason, plan_batches
from .cache import ResultCache
from .specs import RunTask

__all__ = [
    "execute_task",
    "CampaignExecutor",
    "CampaignStats",
    "CampaignEvent",
    "stderr_progress",
    "BACKENDS",
]

#: Backend policies accepted by :class:`CampaignExecutor` and the CLI.
#: ``auto`` prefers the vectorized batched simulators for eligible tasks —
#: the renewal-slot backend for connected topologies, the conflict-matrix
#: backend for hidden-node topologies — and falls back to the scalar
#: simulators; ``slotted`` is the scalar-only policy (the pre-batching
#: behaviour); ``event`` forces event-driven simulation everywhere;
#: ``batched`` is an alias of ``auto``'s preference that makes the intent
#: explicit.  Tasks whose ``simulator`` field is not ``auto`` are never
#: rewritten; ineligible hidden-node tasks (unbatchable scheme, activity
#: schedule) use the event simulator.
BACKENDS = ("auto", "slotted", "event", "batched")


def _station_observed_idle(policies) -> Optional[float]:
    """Mean station-observed idle average (IdleSense stations), if any."""
    observed = [
        policy.observed_average_idle_slots()
        for policy in policies
        if isinstance(policy, IdleSenseBackoff)
        and policy.observed_average_idle_slots() is not None
    ]
    if not observed:
        return None
    return float(np.mean(observed))


def execute_task(task: RunTask) -> SimulationResult:
    """Run one task descriptor to completion (pure, process-safe).

    The returned result's ``extra`` mapping is annotated with the task key,
    seed and label, plus ``station_observed_idle`` when the scheme's stations
    track their own idle average (Table III needs it).  Tasks resolved to the
    batched backend run as a batch of one (the executor groups them into
    larger batches instead of coming through here).
    """
    if task.resolved_simulator() == "batched":
        [result] = execute_batch([task])
        return result

    scheme = task.scheme.build(task.phy)
    activity = step_activity(task.activity) if task.activity else None

    if task.resolved_simulator() == "slotted":
        simulator = SlottedSimulator(
            scheme,
            num_stations=task.topology.num_stations,
            phy=task.phy,
            seed=task.seed,
            activity=activity,
            report_interval=task.report_interval,
            frame_error_rate=task.frame_error_rate,
            traffic=task.traffic,
        )
        result = simulator.run(duration=task.duration, warmup=task.warmup)
        policies = simulator.policies
    else:
        simulation = WlanSimulation(
            scheme=scheme,
            connectivity=task.topology.build(),
            phy=task.phy,
            seed=task.seed,
            activity=activity,
            report_interval=task.report_interval,
            frame_error_rate=task.frame_error_rate,
            traffic=task.traffic,
        )
        result = simulation.run(duration=task.duration, warmup=task.warmup)
        policies = simulation.policies

    extra = dict(result.extra)
    extra["task_key"] = task.task_key()
    extra["seed"] = task.seed
    if task.label:
        extra["label"] = task.label
    station_idle = _station_observed_idle(policies)
    if station_idle is not None:
        extra["station_observed_idle"] = station_idle
    return dataclasses.replace(result, extra=extra)


@dataclass(frozen=True)
class _UnitReport:
    """Worker-side measurements for one executed unit of work.

    Shipped back across the process pool next to the unit's results when
    telemetry or profiling is active: ``records`` are the telemetry records
    the unit emitted in the worker (simulator counters, nested spans),
    ``profile`` is the picklable cProfile stats mapping.
    """

    pid: int
    queue_wait_s: float
    execute_s: float
    records: Tuple[Dict[str, Any], ...] = ()
    profile: Optional[Dict[Any, Any]] = None


#: A unit of campaign work: a batch group (list of tasks) or one scalar task.
_Unit = Union[List[RunTask], RunTask]


def _execute_unit(unit: _Unit, submitted: float, collect: bool,
                  profile: bool) -> Tuple[List[SimulationResult], _UnitReport]:
    """Run one unit with telemetry/profiling active (pool-side wrapper).

    ``submitted`` is the parent's wall-clock epoch at submission time, so
    queue wait (time spent waiting for a worker) is measured across the
    process boundary.  The plain, uninstrumented path submits
    :func:`execute_batch`/:func:`execute_task` directly instead — this
    wrapper only exists when there is something to measure.
    """
    started = time.time()
    tel = Telemetry(keep_records=True) if collect else None
    profiler = cProfile.Profile() if profile else None
    begin = time.perf_counter()
    with telemetry_session(tel) if tel is not None else nullcontext():
        if profiler is not None:
            profiler.enable()
        try:
            if isinstance(unit, list):
                results = execute_batch(unit)
            else:
                results = [execute_task(unit)]
        finally:
            if profiler is not None:
                profiler.disable()
    report = _UnitReport(
        pid=os.getpid(),
        queue_wait_s=max(0.0, started - submitted),
        execute_s=time.perf_counter() - begin,
        records=tuple(tel.records) if tel is not None else (),
        profile=stats_dict(profiler) if profiler is not None else None,
    )
    return results, report


@dataclass
class CampaignStats:
    """Counters describing how a campaign's cells were satisfied."""

    total: int = 0
    executed: int = 0
    cached: int = 0
    deduplicated: int = 0
    #: Cells (not groups) that executed on the batched backend.
    batched_cells: int = 0
    #: Unique ``auto`` hidden-node cells that fell back from the
    #: conflict-matrix backend to the event-driven simulator.
    fallbacks: int = 0

    def merge(self, other: "CampaignStats") -> None:
        self.total += other.total
        self.executed += other.executed
        self.cached += other.cached
        self.deduplicated += other.deduplicated
        self.batched_cells += other.batched_cells
        self.fallbacks += other.fallbacks

    def summary(self) -> str:
        text = (
            f"{self.total} task(s): {self.executed} simulated "
            f"({self.batched_cells} batched), {self.cached} from cache, "
            f"{self.deduplicated} deduplicated"
        )
        if self.fallbacks:
            text += f", {self.fallbacks} scalar fallback(s)"
        return text


@dataclass(frozen=True)
class CampaignEvent:
    """One progress notification (a cell finished or was served from cache)."""

    completed: int
    total: int
    label: str
    key: str
    source: str  # "run" or "cache"
    elapsed_s: float
    #: Simulator backend that produced (or would produce) the cell.
    backend: str = "?"
    #: Completion rate over the recent window (cells/s); falls back to the
    #: whole-campaign average until enough events accumulate.
    rolling_cells_per_s: float = 0.0
    #: Estimated seconds until the campaign completes, from the rolling rate
    #: and the remaining cell count (``None`` when the rate is still zero).
    eta_s: Optional[float] = None

    @property
    def cells_per_s(self) -> float:
        """Completed-cell throughput of the campaign so far."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.completed / self.elapsed_s


def _format_eta(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


def stderr_progress(event: CampaignEvent) -> None:
    """Stock progress reporter: one line per completed cell on stderr."""
    tail = ""
    if event.eta_s is not None and event.completed < event.total:
        tail = (f", {event.rolling_cells_per_s:.1f} cells/s rolling, "
                f"ETA {_format_eta(event.eta_s)}")
    print(
        f"[campaign {event.completed}/{event.total}] "
        f"{event.label or event.key[:12]} ({event.source}:{event.backend}, "
        f"{event.elapsed_s:.1f}s, {event.cells_per_s:.1f} cells/s{tail})",
        file=sys.stderr,
        flush=True,
    )


class CampaignExecutor:
    """Runs lists of :class:`RunTask` cells, in parallel and/or from cache.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` (default) runs tasks in-process;
        ``0``/negative means "one per CPU".  Because each task derives all of
        its randomness from its own descriptor, results are bit-identical for
        every value of ``jobs``.
    cache_dir:
        When given, completed cells are stored as JSON under this directory
        and later campaigns skip any cell whose task hash is already present.
    use_cache:
        Set False to ignore ``cache_dir`` entirely (force re-simulation).
    progress:
        Optional callback receiving a :class:`CampaignEvent` per completed
        cell (see :func:`stderr_progress`).
    backend:
        Backend policy for tasks whose ``simulator`` is ``auto`` (see
        :data:`BACKENDS`).  Backend resolution is per-task and deterministic,
        so results (and cache keys) depend only on the policy, never on
        which other tasks happen to share the campaign.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` collector.  When given,
        the executor emits spans for its plan / cache-lookup / group /
        dispatch / execute phases, one ``task`` record per completed cell,
        and relays the simulator counters workers collect.  Telemetry never
        influences results: runs with and without it are bit-identical.
    profile:
        When True, every unit of work runs under :mod:`cProfile` (in the
        worker processes when ``jobs > 1``); :meth:`profile_report` renders
        the aggregated top-N hotspots afterwards.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[os.PathLike] = None,
        use_cache: bool = True,
        progress: Optional[Callable[[CampaignEvent], None]] = None,
        backend: str = "auto",
        telemetry: Optional[Union[Telemetry, NullTelemetry]] = None,
        profile: bool = False,
    ) -> None:
        if jobs <= 0:
            jobs = os.cpu_count() or 1
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend '{backend}'; expected one of {BACKENDS}"
            )
        self._jobs = int(jobs)
        self._backend = backend
        self._cache = (
            ResultCache(cache_dir) if (cache_dir is not None and use_cache) else None
        )
        self._progress = progress
        self._telemetry = telemetry if telemetry is not None else NULL
        self._profile = bool(profile)
        #: Picklable cProfile stats mappings, one per profiled unit of work,
        #: accumulated across :meth:`run` calls (see :meth:`profile_report`).
        self.profile_stats: List[Dict[Any, Any]] = []
        #: Cumulative counters across every :meth:`run` call.
        self.stats = CampaignStats()
        #: Counters of the most recent :meth:`run` call only.
        self.last_run_stats = CampaignStats()

    # ------------------------------------------------------------------
    @property
    def jobs(self) -> int:
        return self._jobs

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def cache(self) -> Optional[ResultCache]:
        return self._cache

    @property
    def telemetry(self) -> Union[Telemetry, NullTelemetry]:
        return self._telemetry

    def profile_report(self, limit: int = 20) -> Optional[str]:
        """Aggregated top-``limit`` hotspot table (``None`` without data)."""
        if not self.profile_stats:
            return None
        return hotspot_report(self.profile_stats, limit)

    # ------------------------------------------------------------------
    def _resolve_backend(self, task: RunTask) -> Tuple[RunTask, Optional[str]]:
        """Rewrite an ``auto`` task to the backend this policy selects.

        Explicit simulator choices are always respected.  Under ``auto`` and
        ``batched``, eligible tasks run vectorized (connected topologies on
        the renewal-slot backend, hidden-node topologies on the
        conflict-matrix backend); everything else falls back to the scalar
        simulators (slotted for connected, event-driven otherwise).

        The second element names *why* an ``auto`` hidden-node task degraded
        from the conflict-matrix backend to the much slower event-driven
        simulator (``None`` for every other outcome); the executor surfaces
        it as a one-line warning and in the cell's telemetry record.
        """
        if task.simulator != "auto":
            return task, None
        if self._backend == "event":
            return dataclasses.replace(task, simulator="event"), None
        if self._backend in ("auto", "batched"):
            reason = fallback_reason(task)
            if reason is None:
                return dataclasses.replace(task, simulator="batched"), None
            if task.topology.kind != "connected":
                # Hidden-node fallback: the slotted simulator cannot model
                # it, so the cell lands on the event-driven one.  Worth
                # naming — this is a ~3x slowdown per cell.
                return task, reason
        return task, None  # auto: slotted for connected cells, event otherwise

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[RunTask]) -> List[SimulationResult]:
        """Execute all tasks; results come back in input order.

        Identical tasks (same :meth:`RunTask.task_key`) are simulated once
        and fanned back out to every position that requested them.  Pending
        batched tasks are grouped into vectorized calls; per-cell results do
        not depend on the grouping.
        """
        tel = self._telemetry
        stats = CampaignStats(total=len(tasks))
        started = time.perf_counter()

        with tel.span("plan", tasks=len(tasks)) as plan_args:
            resolutions = [self._resolve_backend(task) for task in tasks]
            tasks = [task for task, _ in resolutions]

            # Deduplicate by content hash, preserving first-seen order; the
            # fallback diagnosis travels with the unique cell.
            first_task: Dict[str, RunTask] = {}
            positions: Dict[str, List[int]] = {}
            fallbacks: Dict[str, str] = {}
            fallback_counts: Dict[str, int] = {}
            for index, (task, reason) in enumerate(resolutions):
                key = task.task_key()
                if key in positions:
                    stats.deduplicated += 1
                else:
                    first_task[key] = task
                    if reason is not None:
                        stats.fallbacks += 1
                        fallbacks[key] = reason
                        fallback_counts[reason] = fallback_counts.get(reason, 0) + 1
                positions.setdefault(key, []).append(index)
            plan_args["unique"] = len(first_task)
            plan_args["fallbacks"] = stats.fallbacks

        for reason, count in sorted(fallback_counts.items()):
            print(
                f"[campaign] {count} hidden-node cell(s) fell back from the "
                f"conflict-matrix backend to the event-driven simulator: "
                f"{reason}",
                file=sys.stderr, flush=True,
            )

        resolved: Dict[str, SimulationResult] = {}
        completed = 0
        # Rolling completion window for the progress line's rate and ETA.
        window: deque = deque(maxlen=32)

        def report(key: str, source: str) -> None:
            nonlocal completed
            completed += 1
            elapsed = time.perf_counter() - started
            window.append((elapsed, completed))
            if self._progress is not None:
                span = elapsed - window[0][0]
                gain = completed - window[0][1]
                if span > 0 and gain > 0:
                    rolling = gain / span
                elif elapsed > 0:
                    rolling = completed / elapsed
                else:
                    rolling = 0.0
                remaining = len(first_task) - completed
                eta = remaining / rolling if rolling > 0 else None
                self._progress(CampaignEvent(
                    completed=completed,
                    total=len(first_task),
                    label=first_task[key].label,
                    key=key,
                    source=source,
                    elapsed_s=elapsed,
                    backend=first_task[key].resolved_simulator(),
                    rolling_cells_per_s=rolling,
                    eta_s=eta,
                ))

        def trace_task(key: str, source: str, group: Optional[int] = None,
                       unit: Optional[_UnitReport] = None,
                       unit_cells: int = 1) -> None:
            if not tel.enabled:
                return
            execute_s = unit.execute_s if unit is not None else None
            tel.emit({
                "type": "task",
                "key": key,
                "label": first_task[key].label,
                "backend": first_task[key].resolved_simulator(),
                "source": source,
                "cache_hit": source == "cache",
                "t0": time.time(),
                "group": group,
                "worker_pid": unit.pid if unit is not None else None,
                "queue_wait_s": unit.queue_wait_s if unit is not None else None,
                "execute_s": execute_s,
                "cells_per_s": (unit_cells / execute_s
                                if execute_s else None),
                "fallback_reason": fallbacks.get(key),
            })

        def record(key: str, result: SimulationResult,
                   group: Optional[int] = None,
                   unit: Optional[_UnitReport] = None,
                   unit_cells: int = 1) -> None:
            resolved[key] = result
            stats.executed += 1
            if first_task[key].resolved_simulator() == "batched":
                stats.batched_cells += 1
            self._store(first_task[key], result)
            trace_task(key, "run", group=group, unit=unit,
                       unit_cells=unit_cells)
            report(key, "run")

        # Serve cache hits first so only true misses hit the pool.
        pending: List[str] = []
        with tel.span("cache-lookup", candidates=len(first_task)) as cache_args:
            for key in first_task:
                cached = self._cache.load(key) if self._cache is not None else None
                if cached is not None:
                    resolved[key] = cached
                    stats.cached += 1
                    trace_task(key, "cache")
                    report(key, "cache")
                else:
                    pending.append(key)
            cache_args["hits"] = stats.cached
            cache_args["misses"] = len(pending)

        # Group pending batched tasks into vectorized units of work (split to
        # keep every worker busy when running in a pool); every other pending
        # task is a scalar unit of its own.
        with tel.span("group") as group_args:
            batch_groups = plan_batches(
                [
                    first_task[key] for key in pending
                    if first_task[key].resolved_simulator() == "batched"
                ],
                target_units=self._jobs if self._jobs > 1 else None,
            )
            scalar_keys = [
                key for key in pending
                if first_task[key].resolved_simulator() != "batched"
            ]
            group_args["batch_groups"] = len(batch_groups)
            group_args["scalar_units"] = len(scalar_keys)

        if pending:
            units = len(batch_groups) + len(scalar_keys)
            if self._jobs == 1 or units == 1:
                self._run_serial(first_task, batch_groups, scalar_keys, record)
            else:
                self._run_parallel(first_task, batch_groups, scalar_keys, record)

        if self._profile and tel.enabled and self.profile_stats:
            tel.emit({
                "type": "profile",
                "t0": time.time(),
                "units": len(self.profile_stats),
                "top": top_hotspots(self.profile_stats),
            })

        self.last_run_stats = stats
        self.stats.merge(stats)
        return [resolved[task.task_key()] for task in tasks]

    # ------------------------------------------------------------------
    def _run_serial(
        self,
        first_task: Dict[str, RunTask],
        batch_groups: Sequence[Sequence[RunTask]],
        scalar_keys: Sequence[str],
        record: Callable[..., None],
    ) -> None:
        """In-process execution (``jobs == 1`` or a single unit of work).

        With telemetry active, the executor's collector is installed as the
        process-wide session so simulator counters land in the same trace;
        with profiling active one profiler spans all units (enabled only
        while simulation code runs).
        """
        tel = self._telemetry
        instrumented = tel.enabled or self._profile
        with tel.span("dispatch", mode="serial",
                      units=len(batch_groups) + len(scalar_keys)):
            ordered: List[Tuple[Optional[int], _Unit]] = [
                (index, list(group)) for index, group in enumerate(batch_groups)
            ] + [(None, first_task[key]) for key in scalar_keys]

        with tel.span("execute", mode="serial"):
            if not instrumented:
                for _, unit in ordered:
                    if isinstance(unit, list):
                        for task, result in zip(unit, execute_batch(unit)):
                            record(task.task_key(), result)
                    else:
                        record(unit.task_key(), execute_task(unit))
                return
            submitted = time.time()
            for group_id, unit in ordered:
                results, unit_report = _execute_unit(
                    unit, submitted, tel.enabled, self._profile,
                )
                if unit_report.profile is not None:
                    self.profile_stats.append(unit_report.profile)
                for rec in unit_report.records:
                    tel.emit(rec)
                cells = len(unit) if isinstance(unit, list) else 1
                unit_tasks = unit if isinstance(unit, list) else [unit]
                for task, result in zip(unit_tasks, results):
                    record(task.task_key(), result, group=group_id,
                           unit=unit_report, unit_cells=cells)
                submitted = time.time()

    # ------------------------------------------------------------------
    def _run_parallel(
        self,
        first_task: Dict[str, RunTask],
        batch_groups: Sequence[Sequence[RunTask]],
        scalar_keys: Sequence[str],
        record: Callable[..., None],
    ) -> None:
        tel = self._telemetry
        instrumented = tel.enabled or self._profile
        units = len(batch_groups) + len(scalar_keys)
        workers = min(self._jobs, units)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures: Dict[Any, Tuple[Optional[int], _Unit]] = {}

            def submit(group_id: Optional[int], unit: _Unit) -> None:
                if instrumented:
                    future = pool.submit(_execute_unit, unit, time.time(),
                                         tel.enabled, self._profile)
                elif isinstance(unit, list):
                    future = pool.submit(execute_batch, unit)
                else:
                    future = pool.submit(execute_task, unit)
                futures[future] = (group_id, unit)

            with tel.span("dispatch", mode="parallel", units=units,
                          workers=workers):
                for index, group in enumerate(batch_groups):
                    submit(index, list(group))
                for key in scalar_keys:
                    submit(None, first_task[key])

            with tel.span("execute", mode="parallel", workers=workers):
                outstanding = set(futures)
                while outstanding:
                    done, outstanding = wait(outstanding,
                                             return_when=FIRST_COMPLETED)
                    for future in done:
                        group_id, unit = futures[future]
                        unit_tasks = unit if isinstance(unit, list) else [unit]
                        if instrumented:
                            results, unit_report = future.result()
                            if unit_report.profile is not None:
                                self.profile_stats.append(unit_report.profile)
                            for rec in unit_report.records:
                                tel.emit(rec)
                        else:
                            results = (future.result() if isinstance(unit, list)
                                       else [future.result()])
                            unit_report = None
                        for task, result in zip(unit_tasks, results):
                            record(task.task_key(), result, group=group_id,
                                   unit=unit_report,
                                   unit_cells=len(unit_tasks))

    def _store(self, task: RunTask, result: SimulationResult) -> None:
        if self._cache is not None:
            self._cache.store(task, result)
