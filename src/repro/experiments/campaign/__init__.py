"""Parallel experiment campaign engine.

Every evaluation cell of the paper — one (scheme, topology, seed) simulation
— is independent of every other, so the full figure/table grid is
embarrassingly parallel.  This package turns that observation into
infrastructure:

* :mod:`~repro.experiments.campaign.specs` — declarative, picklable
  :class:`RunTask` / :class:`SweepSpec` descriptors with deterministic
  per-cell seed derivation (:func:`derive_seed`);
* :mod:`~repro.experiments.campaign.executor` — :func:`execute_task` (a pure
  function of a descriptor) and :class:`CampaignExecutor`, which fans task
  lists out over a process pool and keeps parallel results bit-identical to
  serial ones;
* :mod:`~repro.experiments.campaign.cache` — an on-disk JSON
  :class:`ResultCache` keyed by stable task hashes, so re-running a campaign
  only simulates the cells that changed.

Typical use::

    from repro.experiments.campaign import (
        CampaignExecutor, RunTask, SchemeSpec, TopologySpec,
    )

    task = RunTask(
        scheme=SchemeSpec.make("wtop-csma", update_period=0.05),
        topology=TopologySpec.connected(20),
        seed=1, duration=2.0, warmup=6.0,
    )
    executor = CampaignExecutor(jobs=8, cache_dir=".repro-cache")
    [result] = executor.run([task])

The per-figure runners in :mod:`repro.experiments` all emit their grids
through this API, and ``python -m repro.experiments all --jobs N`` runs the
entire evaluation as one campaign.
"""

from .batching import (
    batch_eligible,
    batch_key,
    degraded_reason,
    execute_batch,
    fallback_reason,
    plan_batches,
    topology_fingerprint,
)
from .cache import (
    RESULT_SCHEMA_VERSION,
    ResultCache,
    result_from_dict,
    result_to_dict,
)
from .executor import (
    BACKENDS,
    CampaignEvent,
    CampaignExecutor,
    CampaignStats,
    FailedTask,
    execute_task,
    stderr_progress,
)
from .journal import JOURNAL_SCHEMA_VERSION, CampaignJournal
from .specs import (
    CACHE_VERSION,
    SCHEME_SPEC_KINDS,
    RunTask,
    SchemeSpec,
    SweepSpec,
    TopologySpec,
    derive_seed,
)
from ...traffic import ArrivalProcess

__all__ = [
    "ArrivalProcess",
    "BACKENDS",
    "CACHE_VERSION",
    "JOURNAL_SCHEMA_VERSION",
    "RESULT_SCHEMA_VERSION",
    "SCHEME_SPEC_KINDS",
    "batch_eligible",
    "batch_key",
    "degraded_reason",
    "execute_batch",
    "fallback_reason",
    "plan_batches",
    "topology_fingerprint",
    "CampaignEvent",
    "CampaignExecutor",
    "CampaignJournal",
    "CampaignStats",
    "FailedTask",
    "ResultCache",
    "RunTask",
    "SchemeSpec",
    "SweepSpec",
    "TopologySpec",
    "derive_seed",
    "execute_task",
    "result_from_dict",
    "result_to_dict",
    "stderr_progress",
]
