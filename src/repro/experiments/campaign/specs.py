"""Declarative run descriptors for the experiment campaign engine.

The per-figure runners used to call the simulators directly from nested
loops, which made the evaluation inherently serial: nothing described a run
without executing it.  This module introduces picklable, hashable *value
objects* that fully describe one simulation:

* :class:`SchemeSpec` — names a MAC scheme factory plus its keyword
  parameters (schemes themselves hold lambdas and mutable controllers, so
  they cannot cross process boundaries; the spec is rebuilt in each worker);
* :class:`TopologySpec` — a fully connected ring or a seeded uniform-disc
  hidden-node placement;
* :class:`RunTask` — one complete simulation cell: scheme, topology,
  activity schedule, PHY, seed, durations and sampling options;
* :class:`SweepSpec` — a declarative (scheme x station-count x repetition)
  grid that expands into :class:`RunTask` lists with deterministic per-cell
  seed derivation (:func:`derive_seed`), so the same spec always yields the
  same tasks regardless of expansion or execution order.

Every descriptor serialises to canonical JSON (:meth:`RunTask.to_json`), and
:meth:`RunTask.task_key` hashes that JSON into the stable cache key used by
:class:`~repro.experiments.campaign.cache.ResultCache`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ...mac.schemes import (
    Scheme,
    fixed_p_persistent_scheme,
    fixed_randomreset_scheme,
    idlesense_scheme,
    n_estimating_scheme,
    standard_80211_scheme,
    tora_csma_scheme,
    wtop_csma_scheme,
)
from ...phy.constants import PhyParameters
from ...topology.graph import ConnectivityGraph
from ...topology.scenarios import (
    fully_connected_scenario,
    hidden_node_scenario,
    two_cluster_hidden_scenario,
)
from ...traffic import ArrivalProcess

__all__ = [
    "SCHEME_SPEC_KINDS",
    "SchemeSpec",
    "TopologySpec",
    "RunTask",
    "SweepSpec",
    "derive_seed",
    "CACHE_VERSION",
]

#: Bump when the serialised task format or simulator semantics change in a
#: way that invalidates previously cached results.
CACHE_VERSION = 1


def _canonical(value):
    """Coerce a parameter value into plain JSON-able Python types.

    numpy scalars (which leak out of ``np.exp`` / ``np.linspace`` grids) are
    converted to their Python equivalents so that task hashes do not depend
    on whether the caller used numpy or builtin floats.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return float(value)
    if hasattr(value, "item") and not isinstance(value, (tuple, list, dict)):
        return _canonical(value.item())
    if isinstance(value, (tuple, list)):
        return tuple(_canonical(v) for v in value)
    if isinstance(value, Mapping):
        return tuple(sorted((str(k), _canonical(v)) for k, v in value.items()))
    raise TypeError(f"unsupported spec parameter type: {type(value)!r}")


def _jsonable(value):
    """Canonical value -> JSON structure (tuples become lists)."""
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    return value


# ----------------------------------------------------------------------
# Scheme specifications
# ----------------------------------------------------------------------
def _build_fixed_p(phy, p, weights=None):
    return fixed_p_persistent_scheme(p, weights)


def _build_fixed_randomreset(phy, stage, p0):
    return fixed_randomreset_scheme(stage, p0, phy)


_SCHEME_BUILDERS = {
    "standard-802.11": lambda phy, **kw: standard_80211_scheme(phy, **kw),
    "idlesense": lambda phy, **kw: idlesense_scheme(phy, **kw),
    "wtop-csma": lambda phy, **kw: wtop_csma_scheme(phy, **kw),
    "tora-csma": lambda phy, **kw: tora_csma_scheme(phy, **kw),
    "n-estimating": lambda phy, **kw: n_estimating_scheme(phy, **kw),
    "fixed-p": _build_fixed_p,
    "fixed-randomreset": _build_fixed_randomreset,
}

#: Scheme kinds accepted by :meth:`SchemeSpec.make`.
SCHEME_SPEC_KINDS = tuple(sorted(_SCHEME_BUILDERS))

#: Kinds whose controllers/policies adapt over time (they need the longer
#: adaptive warm-up before steady-state throughput is measured).
_ADAPTIVE_KINDS = frozenset({"idlesense", "wtop-csma", "tora-csma", "n-estimating"})


@dataclass(frozen=True)
class SchemeSpec:
    """Declarative, picklable reference to a MAC scheme factory.

    ``kind`` selects one of the factories in :mod:`repro.mac.schemes` and
    ``params`` holds its keyword arguments as a sorted tuple of pairs (so the
    spec is hashable and its serialisation canonical).  Use :meth:`make`
    rather than the raw constructor.
    """

    kind: str
    params: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(cls, kind: str, **params: object) -> "SchemeSpec":
        if kind not in _SCHEME_BUILDERS:
            raise ValueError(
                f"unknown scheme kind '{kind}'; expected one of {SCHEME_SPEC_KINDS}"
            )
        normalized = tuple(
            sorted((name, _canonical(value)) for name, value in params.items())
        )
        return cls(kind=kind, params=normalized)

    @property
    def adaptive(self) -> bool:
        """Whether the scheme adapts (determines the warm-up budget)."""
        return self.kind in _ADAPTIVE_KINDS

    def build(self, phy: Optional[PhyParameters] = None) -> Scheme:
        """Instantiate a fresh :class:`~repro.mac.schemes.Scheme`."""
        builder = _SCHEME_BUILDERS[self.kind]
        return builder(phy, **dict(self.params))

    def to_json(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "params": {name: _jsonable(value) for name, value in self.params},
        }


# ----------------------------------------------------------------------
# Topology specifications
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TopologySpec:
    """Declarative placement: connected ring, hidden-node disc or two clusters.

    ``two-cluster`` is the controlled hidden-terminal geometry the stability
    atlas sweeps: two equal clusters of stations whose cross-cluster distance
    (``separation``) decides whether the clusters can carrier-sense each
    other, with ``spread`` controlling the jitter inside each cluster.
    """

    kind: str
    num_stations: int
    radius: Optional[float] = None
    topology_seed: Optional[int] = None
    require_hidden_pairs: bool = True
    separation: Optional[float] = None
    spread: Optional[float] = None

    @classmethod
    def connected(cls, num_stations: int) -> "TopologySpec":
        """The paper's fully connected placement (ring of radius 8)."""
        return cls(kind="connected", num_stations=int(num_stations))

    @classmethod
    def hidden_disc(cls, num_stations: int, radius: float, topology_seed: int,
                    require_hidden_pairs: bool = True) -> "TopologySpec":
        """The paper's hidden-node placement (uniform disc of ``radius``)."""
        return cls(
            kind="hidden-disc",
            num_stations=int(num_stations),
            radius=float(radius),
            topology_seed=int(topology_seed),
            require_hidden_pairs=bool(require_hidden_pairs),
        )

    @classmethod
    def two_cluster(cls, stations_per_cluster: int, separation: float,
                    topology_seed: int, spread: float = 1.0) -> "TopologySpec":
        """Two seeded clusters ``separation`` metres apart (stability atlas)."""
        return cls(
            kind="two-cluster",
            num_stations=2 * int(stations_per_cluster),
            topology_seed=int(topology_seed),
            separation=float(separation),
            spread=float(spread),
        )

    def __post_init__(self) -> None:
        if self.kind not in ("connected", "hidden-disc", "two-cluster"):
            raise ValueError(f"unknown topology kind '{self.kind}'")
        if self.num_stations < 1:
            raise ValueError("num_stations must be at least 1")
        if self.kind == "hidden-disc":
            if self.radius is None or self.radius <= 0:
                raise ValueError("hidden-disc topologies need a positive radius")
            if self.topology_seed is None:
                raise ValueError("hidden-disc topologies need a topology_seed")
        if self.kind == "two-cluster":
            if self.num_stations % 2 != 0:
                raise ValueError("two-cluster topologies need an even station count")
            if self.separation is None or self.separation <= 0:
                raise ValueError("two-cluster topologies need a positive separation")
            if self.spread is None or self.spread < 0:
                raise ValueError("two-cluster topologies need a non-negative spread")
            if self.topology_seed is None:
                raise ValueError("two-cluster topologies need a topology_seed")

    def build(self) -> ConnectivityGraph:
        """Materialise the :class:`ConnectivityGraph` for the event simulator."""
        import numpy as np

        if self.kind == "connected":
            return fully_connected_scenario(self.num_stations)
        rng = np.random.default_rng(self.topology_seed)
        if self.kind == "two-cluster":
            return two_cluster_hidden_scenario(
                self.num_stations // 2, rng,
                separation=self.separation, spread=self.spread,
            )
        return hidden_node_scenario(
            self.num_stations, rng, radius=self.radius,
            require_hidden_pairs=self.require_hidden_pairs,
        )

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "kind": self.kind,
            "num_stations": self.num_stations,
        }
        if self.kind == "hidden-disc":
            payload.update(
                radius=self.radius,
                topology_seed=self.topology_seed,
                require_hidden_pairs=self.require_hidden_pairs,
            )
        elif self.kind == "two-cluster":
            payload.update(
                separation=self.separation,
                spread=self.spread,
                topology_seed=self.topology_seed,
            )
        return payload


# ----------------------------------------------------------------------
# Run tasks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunTask:
    """One independently schedulable simulation cell.

    A task is a pure value: executing it twice (in any process) yields
    bit-identical :class:`~repro.sim.metrics.SimulationResult` objects, which
    is what makes both process-level parallelism and on-disk caching safe.

    ``simulator`` is ``"auto"`` (slotted for connected topologies, event-
    driven otherwise), ``"slotted"``, ``"event"`` or ``"batched"`` (the
    vectorized multi-cell simulators: the renewal-slot backend for connected
    topologies, the conflict-matrix backend for hidden-node topologies — the
    executor's planner assigns it to eligible ``auto`` tasks, see
    :mod:`repro.experiments.campaign.batching`).  ``label`` is cosmetic
    (progress lines, result metadata) and deliberately excluded from
    :meth:`task_key` so renaming a sweep does not invalidate its cache.

    ``traffic`` is the per-station workload
    (:class:`~repro.traffic.ArrivalProcess`); ``None`` means saturated.  A
    saturated :class:`ArrivalProcess` with the default (infinite) retry
    policy is canonicalised to ``None`` and the field is omitted from
    :meth:`to_json` in that case, so saturated task hashes — and therefore
    every pre-traffic :class:`ResultCache` entry — are unchanged.

    ``retry_limit`` is sugar for bounding MAC retries without spelling out a
    workload: it folds into ``traffic`` (defaulting to saturated) at
    construction and is always ``None`` afterwards.
    """

    scheme: SchemeSpec
    topology: TopologySpec
    seed: int
    duration: float
    warmup: float = 0.0
    simulator: str = "auto"
    report_interval: Optional[float] = None
    frame_error_rate: float = 0.0
    activity: Optional[Tuple[Tuple[float, int], ...]] = None
    phy: Optional[PhyParameters] = None
    traffic: Optional[ArrivalProcess] = None
    retry_limit: Optional[int] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.retry_limit is not None:
            base = (self.traffic if self.traffic is not None
                    else ArrivalProcess.saturated())
            if (base.retry_limit is not None
                    and base.retry_limit != int(self.retry_limit)):
                raise ValueError(
                    "retry_limit conflicts with traffic.retry_limit "
                    f"({self.retry_limit} vs {base.retry_limit})"
                )
            object.__setattr__(
                self, "traffic",
                dataclasses.replace(base, retry_limit=int(self.retry_limit)),
            )
            object.__setattr__(self, "retry_limit", None)
        if (self.traffic is not None and self.traffic.is_saturated
                and self.traffic.retry_limit is None):
            object.__setattr__(self, "traffic", None)
        if self.simulator not in ("auto", "slotted", "event", "batched"):
            raise ValueError(
                "simulator must be 'auto', 'slotted', 'event' or 'batched'"
            )
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.warmup < 0:
            raise ValueError("warmup must be non-negative")
        if self.simulator == "slotted" and self.topology.kind != "connected":
            raise ValueError(
                "the slotted simulator only models connected topologies"
            )
        if (self.simulator == "batched" and self.topology.kind != "connected"
                and self.activity is not None):
            raise ValueError(
                "the batched conflict-matrix backend does not support "
                "activity schedules on hidden-node topologies"
            )
        if self.activity is not None:
            object.__setattr__(
                self, "activity",
                tuple((float(t), int(c)) for t, c in self.activity),
            )

    # ------------------------------------------------------------------
    def resolved_simulator(self) -> str:
        """The simulator that will actually execute this task."""
        if self.simulator != "auto":
            return self.simulator
        return "slotted" if self.topology.kind == "connected" else "event"

    def to_json(self) -> Dict[str, object]:
        """Canonical JSON description (the input of :meth:`task_key`)."""
        phy = None
        if self.phy is not None:
            phy = dict(sorted(dataclasses.asdict(self.phy).items()))
        payload = {
            "version": CACHE_VERSION,
            "scheme": self.scheme.to_json(),
            "topology": self.topology.to_json(),
            "seed": self.seed,
            "duration": self.duration,
            "warmup": self.warmup,
            "simulator": self.resolved_simulator(),
            "report_interval": self.report_interval,
            "frame_error_rate": self.frame_error_rate,
            "activity": [[t, c] for t, c in self.activity] if self.activity else None,
            "phy": phy,
        }
        if self.traffic is not None:
            # Only unsaturated workloads contribute a key dimension: the
            # saturated default must hash exactly as before this field
            # existed, keeping every pre-traffic cache entry valid.
            payload["traffic"] = self.traffic.to_json()
        return payload

    def task_key(self) -> str:
        """Stable content hash identifying this task across runs/processes."""
        payload = json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def with_label(self, label: str) -> "RunTask":
        return dataclasses.replace(self, label=label)

    def scalar_equivalent(self) -> "RunTask":
        """This cell retargeted at its scalar oracle simulator.

        The fault-tolerant executor uses this as the last resort for a cell
        whose batched kernel keeps failing: connected cells re-run on the
        slotted simulator, everything else on the event-driven one.  The
        scalar simulators are cross-validated oracles of the batched
        kernels, not bit-exact clones, so the executor names the
        degradation (it is a fallback, not a transparent retry).
        """
        target = "slotted" if self.topology.kind == "connected" else "event"
        return dataclasses.replace(self, simulator=target)


# ----------------------------------------------------------------------
# Deterministic seed derivation
# ----------------------------------------------------------------------
def derive_seed(*components: object) -> int:
    """Derive a stable 63-bit seed from arbitrary hashable components.

    Unlike ``hash()`` this is stable across processes and Python versions
    (it goes through SHA-256 of the canonical JSON of the components), so a
    sweep expanded on one machine and resumed on another maps every cell to
    the same seed — the property that makes parallel campaign execution
    bit-identical to serial execution.
    """
    payload = json.dumps(
        [_jsonable(_canonical(c)) for c in components],
        sort_keys=True, separators=(",", ":"),
    )
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


# ----------------------------------------------------------------------
# Sweep specifications
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepSpec:
    """A declarative (scheme x station count x repetition) campaign grid.

    ``schemes`` maps display labels to :class:`SchemeSpec` entries.  Each
    grid cell receives a deterministic seed from :func:`derive_seed` applied
    to ``(name, base_seed, scheme label, node count, repetition)``, so tasks
    are reproducible regardless of iteration or execution order.  Hidden-node
    cells additionally derive a per-cell topology seed (matching the paper's
    practice of drawing a fresh placement per repetition).
    """

    name: str
    schemes: Tuple[Tuple[str, SchemeSpec], ...]
    node_counts: Tuple[int, ...]
    duration: float
    warmup: float = 0.0
    adaptive_warmup: Optional[float] = None
    repetitions: int = 1
    base_seed: int = 0
    topology: str = "connected"
    radius: Optional[float] = None
    report_interval: Optional[float] = None
    frame_error_rate: float = 0.0
    phy: Optional[PhyParameters] = None
    traffic: Optional[ArrivalProcess] = None

    @classmethod
    def make(cls, name: str, schemes: Mapping[str, SchemeSpec],
             node_counts: Sequence[int], duration: float, **kwargs) -> "SweepSpec":
        return cls(
            name=name,
            schemes=tuple(schemes.items()),
            node_counts=tuple(int(n) for n in node_counts),
            duration=float(duration),
            **kwargs,
        )

    def __post_init__(self) -> None:
        if not self.schemes:
            raise ValueError("a sweep needs at least one scheme")
        if not self.node_counts:
            raise ValueError("a sweep needs at least one node count")
        if self.repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        if self.topology not in ("connected", "hidden-disc"):
            raise ValueError(f"unknown topology kind '{self.topology}'")
        if self.topology == "hidden-disc" and not self.radius:
            raise ValueError("hidden-disc sweeps need a radius")

    def _warmup_for(self, spec: SchemeSpec) -> float:
        if spec.adaptive and self.adaptive_warmup is not None:
            return self.adaptive_warmup
        return self.warmup

    def expand(self) -> Tuple[RunTask, ...]:
        """Expand the grid into concrete :class:`RunTask` descriptors."""
        tasks = []
        for scheme_label, spec in self.schemes:
            for num_stations in self.node_counts:
                for rep in range(self.repetitions):
                    seed = derive_seed(
                        self.name, self.base_seed, scheme_label, num_stations, rep
                    )
                    if self.topology == "connected":
                        topology = TopologySpec.connected(num_stations)
                    else:
                        topo_seed = derive_seed(
                            self.name, self.base_seed, "topology", num_stations, rep
                        )
                        topology = TopologySpec.hidden_disc(
                            num_stations, self.radius, topo_seed
                        )
                    tasks.append(RunTask(
                        scheme=spec,
                        topology=topology,
                        seed=seed,
                        duration=self.duration,
                        warmup=self._warmup_for(spec),
                        report_interval=self.report_interval,
                        frame_error_rate=self.frame_error_rate,
                        phy=self.phy,
                        traffic=self.traffic,
                        label=f"{self.name}/{scheme_label}/N={num_stations}/rep={rep}",
                    ))
        return tuple(tasks)
