"""Append-only campaign journal: checkpoint every completed task.

The :class:`~repro.experiments.campaign.cache.ResultCache` makes *tasks*
resumable but is per-cell, silent and optional; a long campaign killed
mid-run still has to rediscover what completed.  The journal makes the
*campaign* resumable: every finished cell is appended as one fsync'd JSONL
record, and a later run constructed with the same journal path serves the
recorded cells without re-simulating them.  Because task execution is a
pure function of the descriptor, replaying the remainder is bit-identical
to the uninterrupted campaign.

File layout (one JSON object per line)::

    {"type": "meta", "journal_schema": 1, "cache_version": ...,
     "result_schema": ...}
    {"type": "task", "key": "<task_key>", "label": "...", "result": {...}}

The meta line pins the same version pair the result cache uses
(:data:`~repro.experiments.campaign.specs.CACHE_VERSION` and
:data:`~repro.experiments.campaign.cache.RESULT_SCHEMA_VERSION`); a journal
written by incompatible code is discarded with a warning rather than
replayed into garbage.  A torn final line (the writer was killed mid-write)
is truncated away on load so appends continue from the last complete
record.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
from typing import Dict, Optional

from ...sim.metrics import SimulationResult
from .cache import RESULT_SCHEMA_VERSION, result_from_dict, result_to_dict
from .specs import CACHE_VERSION

__all__ = ["CampaignJournal", "JOURNAL_SCHEMA_VERSION"]

#: Bump when the journal record layout changes incompatibly.
JOURNAL_SCHEMA_VERSION = 1


class CampaignJournal:
    """Append-only, fsync'd JSONL record of completed campaign tasks."""

    def __init__(self, path: os.PathLike, resume: bool = True) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._entries: Dict[str, SimulationResult] = {}
        #: Torn final records truncated away on load (0 or 1).
        self.torn_records = 0
        #: Complete-but-unusable records skipped on load.
        self.invalid_records = 0
        keep = 0
        if resume and self.path.exists():
            keep = self._load()
        if keep:
            size = self.path.stat().st_size
            if keep < size:
                with self.path.open("r+b") as fh:
                    fh.truncate(keep)
                print(
                    f"[journal] {self.path}: truncated a torn final record "
                    f"(writer was killed mid-write); resuming after "
                    f"{len(self._entries)} complete task(s)",
                    file=sys.stderr, flush=True,
                )
            self._fh = self.path.open("a", encoding="utf-8")
        else:
            self._entries = {}
            self._fh = self.path.open("w", encoding="utf-8")
            self._append({
                "type": "meta",
                "journal_schema": JOURNAL_SCHEMA_VERSION,
                "cache_version": CACHE_VERSION,
                "result_schema": RESULT_SCHEMA_VERSION,
            })

    # ------------------------------------------------------------------
    def _load(self) -> int:
        """Replay the file; returns the byte length of the usable prefix.

        A return of 0 means "start fresh" (empty, unreadable, or written by
        incompatible code).  Only newline-terminated lines count: a torn
        final fragment is excluded from the usable prefix so the caller can
        truncate it away before appending.
        """
        data = self.path.read_bytes()
        if not data:
            return 0
        keep = 0
        offset = 0
        first = True
        while offset < len(data):
            end = data.find(b"\n", offset)
            if end < 0:  # torn final record: no terminating newline
                self.torn_records = 1
                break
            line = data[offset:end].strip()
            offset = end + 1
            if not line:
                keep = offset
                continue
            try:
                record = json.loads(line.decode("utf-8"))
                if not isinstance(record, dict):
                    raise ValueError("journal record is not a JSON object")
            except (ValueError, UnicodeDecodeError):
                # A complete-but-corrupt line poisons everything after it
                # (we cannot trust the stream); keep only the prefix.
                self.invalid_records += 1
                print(
                    f"[journal] {self.path}: corrupt record at byte "
                    f"{offset - len(line) - 1}; ignoring the rest of the "
                    f"journal", file=sys.stderr, flush=True,
                )
                break
            if first:
                first = False
                if not self._meta_compatible(record):
                    return 0
                keep = offset
                continue
            if record.get("type") != "task":
                keep = offset
                continue
            try:
                key = record["key"]
                result = result_from_dict(record["result"])
            except (KeyError, TypeError, ValueError):
                self.invalid_records += 1
                print(
                    f"[journal] {self.path}: malformed task record; "
                    f"ignoring the rest of the journal",
                    file=sys.stderr, flush=True,
                )
                break
            self._entries[key] = result
            keep = offset
        return keep

    def _meta_compatible(self, record: Dict[str, object]) -> bool:
        expected = {
            "journal_schema": JOURNAL_SCHEMA_VERSION,
            "cache_version": CACHE_VERSION,
            "result_schema": RESULT_SCHEMA_VERSION,
        }
        if record.get("type") != "meta":
            print(
                f"[journal] {self.path}: first record is not journal "
                f"metadata; discarding and starting fresh",
                file=sys.stderr, flush=True,
            )
            return False
        for field, want in expected.items():
            if record.get(field) != want:
                print(
                    f"[journal] {self.path}: {field}={record.get(field)!r} "
                    f"does not match this build ({want}); discarding the "
                    f"journal and starting fresh",
                    file=sys.stderr, flush=True,
                )
                return False
        return True

    # ------------------------------------------------------------------
    def _append(self, record: Dict[str, object]) -> None:
        if self._fh is None:
            raise ValueError(f"journal {self.path} is closed")
        # One write per record keeps the torn-write window to a single
        # line; fsync makes a completed task durable before the campaign
        # moves on (the whole point of a crash journal).
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record(self, key: str, result: SimulationResult,
               label: str = "") -> pathlib.Path:
        """Durably append one completed task; returns the journal path."""
        self._append({
            "type": "task",
            "key": key,
            "label": label,
            "result": result_to_dict(result),
        })
        self._entries[key] = result
        return self.path

    def lookup(self, key: str) -> Optional[SimulationResult]:
        """The journaled result for ``key``, or None."""
        return self._entries.get(key)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
