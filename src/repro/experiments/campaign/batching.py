"""Batch planning: group compatible campaign tasks into vectorized calls.

Two vectorized backends exist, selected by a task's topology family:

* :mod:`repro.sim.batched` advances many *fully connected* cells at once as
  a renewal-slot process; cells in one batch share everything except station
  count and seed.
* :mod:`repro.sim.conflict` advances many *arbitrary sensing-graph* cells
  (the hidden-node figures) at once, carrying a per-cell conflict/sensing
  matrix; cells in one batch share everything except station count,
  topology and seed.

This module decides which tasks qualify (:func:`batch_eligible`), groups
them (:func:`plan_batches` — the grouping key includes the topology family
so the two backends never mix inside one call) and executes one group as a
single vectorized run (:func:`execute_batch`), annotating each cell's
result exactly like
:func:`~repro.experiments.campaign.executor.execute_task` does.

Because per-cell results are independent of batch composition (each cell
consumes its own seeded random stream — see :mod:`repro.sim.batched`),
grouping is purely a performance decision: any partition of the same tasks
produces bit-identical per-cell results, so caching, deduplication and
process-level parallelism all compose with batching.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ...phy.constants import PhyParameters
from ...sim.batched import (
    BatchedSlottedSimulator,
    batchable_scheme,
    make_batched_system,
)
from ...sim.conflict import BatchedConflictSimulator, stack_sensing_matrices
from ...sim.dynamics import step_activity
from ...sim.metrics import SimulationResult
from .specs import RunTask

__all__ = [
    "batch_eligible",
    "fallback_reason",
    "degraded_reason",
    "batch_key",
    "topology_fingerprint",
    "plan_batches",
    "execute_batch",
]


def topology_fingerprint(task: RunTask) -> str:
    """The batching dimension a task's topology contributes.

    ``"connected"`` tasks run on the renewal-slot backend (the topology is
    fully described by the station count, which batches pad over);
    ``"graph"`` tasks run on the conflict-matrix backend (each cell carries
    its own sensing matrix, so topologies may differ freely inside one
    batch).  The fingerprint is part of :func:`batch_key` so one vectorized
    call never mixes backends.
    """
    return "connected" if task.topology.kind == "connected" else "graph"


def fallback_reason(task: RunTask) -> Optional[str]:
    """Why a task has no batched kernel (``None`` when it is eligible).

    This is the single source of truth for batch eligibility, phrased as a
    diagnosis: the executor surfaces the reason when an ``auto`` hidden-node
    task silently degrades from the conflict-matrix backend to the (3x
    slower) event-driven simulator, and telemetry attaches it to the task's
    trace record.  It is a pure function of the task (never of its
    neighbours), so backend resolution stays deterministic and cache keys
    stable across campaigns that submit different task mixes.
    """
    params = dict(task.scheme.params)
    if not batchable_scheme(task.scheme.kind, params):
        return f"unbatchable scheme '{task.scheme.kind}'"
    weights = params.get("weights")
    if weights is not None and len(weights) < task.topology.num_stations:
        return "unbatchable scheme (weight vector shorter than the cell)"
    if task.topology.kind == "connected":
        return None
    if task.topology.kind in ("hidden-disc", "two-cluster"):
        if task.activity is not None:
            return ("activity schedule (the conflict-matrix backend models "
                    "static populations only)")
        return None
    return f"topology kind '{task.topology.kind}' has no batched kernel"


def degraded_reason(kind: str, target: str) -> str:
    """Fallback-style diagnosis for a cell re-dispatched after batch failure.

    Companion of :func:`fallback_reason` for the *runtime* degradation path:
    when a batched cell exhausts its retry budget (worker crash, hang or
    exception), the fault-tolerant executor gives it one final attempt on
    its scalar oracle simulator and names the degradation with this string
    in the same places planner fallbacks appear (stderr warning, trace
    record ``fallback_reason``).
    """
    return (f"batched kernel failed repeatedly ({kind}); cell re-dispatched "
            f"on the scalar '{target}' simulator")


def batch_eligible(task: RunTask) -> bool:
    """Whether this task can execute on a batched backend.

    Connected tasks need a batched scheme kernel; hidden-node tasks
    additionally must not use an activity schedule (the conflict-matrix
    backend does not model dynamic populations — those cells fall back to
    the event-driven simulator).  See :func:`fallback_reason` for the
    diagnosis behind a ``False``.
    """
    return fallback_reason(task) is None


def batch_key(task: RunTask) -> Tuple:
    """Grouping key: everything a batch must share (not N, seed, topology).

    The topology contributes only its :func:`fingerprint
    <topology_fingerprint>`: connected batches pad over station counts,
    conflict-matrix batches carry per-cell sensing matrices, so the concrete
    placement never needs to be shared.
    """
    return (
        topology_fingerprint(task),
        task.scheme,
        task.phy,
        task.duration,
        task.warmup,
        task.frame_error_rate,
        task.report_interval,
        task.activity,
        task.traffic,
    )


def plan_batches(tasks: Sequence[RunTask],
                 target_units: Optional[int] = None) -> List[List[RunTask]]:
    """Partition tasks into compatible groups, preserving first-seen order.

    When ``target_units`` is given (the executor passes its worker count),
    the largest groups are split in half until at least that many independent
    units of work exist (or every group is a single cell), so process-level
    parallelism is not capped at the number of distinct batch keys.  Splitting
    is invisible in the per-cell results because cells are composition
    independent.
    """
    groups: Dict[Tuple, List[RunTask]] = {}
    for task in tasks:
        groups.setdefault(batch_key(task), []).append(task)
    planned = list(groups.values())
    # An empty plan stays empty (a fully cache-served campaign has nothing
    # to split across workers).
    if target_units is not None and planned:
        while len(planned) < target_units:
            largest = max(range(len(planned)), key=lambda i: len(planned[i]))
            group = planned[largest]
            if len(group) < 2:
                break
            middle = len(group) // 2
            planned[largest:largest + 1] = [group[:middle], group[middle:]]
    return planned


def execute_batch(tasks: Sequence[RunTask]) -> List[SimulationResult]:
    """Run one compatible group through its vectorized backend (pure).

    Results come back in task order, each annotated with the task key, seed
    and label exactly as :func:`execute_task` annotates scalar runs, so the
    two execution paths are interchangeable for callers and for the cache.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    key = batch_key(tasks[0])
    for task in tasks[1:]:
        if batch_key(task) != key:
            raise ValueError("tasks in a batch must share a batch_key")
    first = tasks[0]
    phy = first.phy or PhyParameters()
    num_stations = [task.topology.num_stations for task in tasks]
    seeds = [task.seed for task in tasks]
    if topology_fingerprint(first) == "connected":
        policy_bank, controller_bank, scheme_name = make_batched_system(
            first.scheme.kind, dict(first.scheme.params),
            len(tasks), max(num_stations), phy,
        )
        simulator = BatchedSlottedSimulator(
            policy_bank,
            controller_bank,
            num_stations=num_stations,
            seeds=seeds,
            duration=first.duration,
            warmup=first.warmup,
            phy=phy,
            frame_error_rate=first.frame_error_rate,
            report_interval=first.report_interval,
            activity=step_activity(first.activity) if first.activity else None,
            scheme_name=scheme_name,
            traffic=first.traffic,
        )
    else:
        policy_bank, controller_bank, scheme_name = make_batched_system(
            first.scheme.kind, dict(first.scheme.params),
            len(tasks), max(num_stations), phy,
            station_observations=True,
        )
        sensing = stack_sensing_matrices(
            [task.topology.build().sensing_matrix() for task in tasks],
            max_stations=max(num_stations),
        )
        simulator = BatchedConflictSimulator(
            policy_bank,
            controller_bank,
            sensing,
            num_stations=num_stations,
            seeds=seeds,
            duration=first.duration,
            warmup=first.warmup,
            phy=phy,
            frame_error_rate=first.frame_error_rate,
            report_interval=first.report_interval,
            scheme_name=scheme_name,
            traffic=first.traffic,
        )
    annotated = []
    for task, result in zip(tasks, simulator.run()):
        extra = dict(result.extra)
        extra["task_key"] = task.task_key()
        extra["seed"] = task.seed
        if task.label:
            extra["label"] = task.label
        annotated.append(dataclasses.replace(result, extra=extra))
    return annotated
