"""Batch planning: group compatible campaign tasks into vectorized calls.

The batched simulator (:mod:`repro.sim.batched`) advances many fully
connected cells at once, but only when they share everything except station
count and seed: the scheme (with batched-kernel-supported parameters), PHY,
durations, frame error rate, reporting options and activity schedule.  This
module decides which tasks qualify (:func:`batch_eligible`), groups them
(:func:`plan_batches`) and executes one group as a single vectorized run
(:func:`execute_batch`), annotating each cell's result exactly like
:func:`~repro.experiments.campaign.executor.execute_task` does.

Because per-cell results are independent of batch composition (each cell
consumes its own seeded random stream — see :mod:`repro.sim.batched`),
grouping is purely a performance decision: any partition of the same tasks
produces bit-identical per-cell results, so caching, deduplication and
process-level parallelism all compose with batching.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ...phy.constants import PhyParameters
from ...sim.batched import (
    BatchedSlottedSimulator,
    batchable_scheme,
    make_batched_system,
)
from ...sim.dynamics import step_activity
from ...sim.metrics import SimulationResult
from .specs import RunTask

__all__ = ["batch_eligible", "batch_key", "plan_batches", "execute_batch"]


def batch_eligible(task: RunTask) -> bool:
    """Whether this task can execute on the batched backend.

    Eligibility is a pure function of the task (never of its neighbours), so
    backend resolution is deterministic and cache keys stay stable across
    campaigns that submit different task mixes.
    """
    if task.topology.kind != "connected":
        return False
    params = dict(task.scheme.params)
    if not batchable_scheme(task.scheme.kind, params):
        return False
    weights = params.get("weights")
    if weights is not None and len(weights) < task.topology.num_stations:
        return False
    return True


def batch_key(task: RunTask) -> Tuple:
    """Grouping key: everything a batch must share (not N, not seed)."""
    return (
        task.scheme,
        task.phy,
        task.duration,
        task.warmup,
        task.frame_error_rate,
        task.report_interval,
        task.activity,
    )


def plan_batches(tasks: Sequence[RunTask],
                 target_units: Optional[int] = None) -> List[List[RunTask]]:
    """Partition tasks into compatible groups, preserving first-seen order.

    When ``target_units`` is given (the executor passes its worker count),
    the largest groups are split in half until at least that many independent
    units of work exist (or every group is a single cell), so process-level
    parallelism is not capped at the number of distinct batch keys.  Splitting
    is invisible in the per-cell results because cells are composition
    independent.
    """
    groups: Dict[Tuple, List[RunTask]] = {}
    for task in tasks:
        groups.setdefault(batch_key(task), []).append(task)
    planned = list(groups.values())
    if target_units is not None:
        while len(planned) < target_units:
            largest = max(range(len(planned)), key=lambda i: len(planned[i]))
            group = planned[largest]
            if len(group) < 2:
                break
            middle = len(group) // 2
            planned[largest:largest + 1] = [group[:middle], group[middle:]]
    return planned


def execute_batch(tasks: Sequence[RunTask]) -> List[SimulationResult]:
    """Run one compatible group through the batched simulator (pure).

    Results come back in task order, each annotated with the task key, seed
    and label exactly as :func:`execute_task` annotates scalar runs, so the
    two execution paths are interchangeable for callers and for the cache.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    key = batch_key(tasks[0])
    for task in tasks[1:]:
        if batch_key(task) != key:
            raise ValueError("tasks in a batch must share a batch_key")
    first = tasks[0]
    phy = first.phy or PhyParameters()
    policy_bank, controller_bank, scheme_name = make_batched_system(
        first.scheme.kind,
        dict(first.scheme.params),
        len(tasks),
        max(task.topology.num_stations for task in tasks),
        phy,
    )
    simulator = BatchedSlottedSimulator(
        policy_bank,
        controller_bank,
        num_stations=[task.topology.num_stations for task in tasks],
        seeds=[task.seed for task in tasks],
        duration=first.duration,
        warmup=first.warmup,
        phy=phy,
        frame_error_rate=first.frame_error_rate,
        report_interval=first.report_interval,
        activity=step_activity(first.activity) if first.activity else None,
        scheme_name=scheme_name,
    )
    annotated = []
    for task, result in zip(tasks, simulator.run()):
        extra = dict(result.extra)
        extra["task_key"] = task.task_key()
        extra["seed"] = task.seed
        if task.label:
            extra["label"] = task.label
        annotated.append(dataclasses.replace(result, extra=extra))
    return annotated
