"""Command-line entry point for regenerating the paper's experiments.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments fig3
    python -m repro.experiments table2 fig12 --preset quick
    python -m repro.experiments fig6 --preset paper --output results/
    python -m repro.experiments all --jobs 8 --cache-dir .repro-cache

Each experiment id corresponds to one table or figure of the paper (see
DESIGN.md section 4); the pseudo-id ``all`` expands to every experiment so
the entire evaluation runs as one campaign.  Results are printed as text
tables and optionally written to ``<output>/<experiment>.txt``.

Simulation cells are executed through a shared
:class:`~repro.experiments.campaign.CampaignExecutor`: ``--jobs`` fans them
out over worker processes (bit-identical to serial execution), and
``--cache-dir`` persists every completed cell so interrupted or repeated
invocations only simulate what is missing.  ``--progress`` streams one line
per completed cell to stderr (with a rolling cells/s rate and ETA).

Observability: ``--trace FILE.jsonl`` streams telemetry records (phase
spans, per-cell task records, simulator loop counters) to a JSONL file;
``--probe-interval SECONDS`` additionally samples per-station controller
state inside every simulator backend and streams the time series as
``probe`` records into the same file;
``python -m repro.experiments trace-report FILE.jsonl`` summarises one and
exports a Perfetto-loadable Chrome trace (probe series become counter
tracks); ``--profile`` runs cProfile in every worker and prints an
aggregated hotspot table.  None of these flags changes results: runs with
and without them are bit-identical.
"""

from __future__ import annotations

import argparse
import math
import pathlib
import sys
import time
from typing import List, Optional

from ..telemetry import ProbeConfig
from . import EXPERIMENT_REGISTRY, PAPER, QUICK
from .campaign import BACKENDS, CampaignExecutor, stderr_progress
from .config import ExperimentConfig
from .reporting import format_result

__all__ = ["main", "build_parser"]

_PRESETS = {"quick": QUICK, "paper": PAPER}

#: Experiments whose runners take no ExperimentConfig (purely analytical).
_ANALYTICAL = {"table1", "fig12"}

#: Pseudo experiment id expanding to the whole evaluation.
_ALL = "all"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate tables and figures from the paper.",
    )
    parser.add_argument(
        "experiments", nargs="*",
        help=(
            "experiment ids (e.g. fig3 table2), or 'all' for the entire "
            "evaluation; omit with --list to enumerate"
        ),
    )
    parser.add_argument("--list", action="store_true", dest="list_experiments",
                        help="list available experiment ids and exit")
    parser.add_argument("--preset", choices=sorted(_PRESETS), default="quick",
                        help="simulation budget preset (default: quick)")
    parser.add_argument("--output", type=pathlib.Path, default=None,
                        help="directory to write <experiment>.txt files into")
    parser.add_argument("--precision", type=int, default=3,
                        help="decimal places in printed tables (default: 3)")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help=(
            "worker processes for simulation cells (default: 1 = serial; "
            "0 = one per CPU); results are identical for every value"
        ),
    )
    parser.add_argument(
        "--backend", choices=BACKENDS, default="auto",
        help=(
            "simulator backend policy: 'auto' (default) runs eligible cells "
            "on the vectorized batched simulators (renewal-slot kernel for "
            "fully connected cells, conflict-matrix kernel for hidden-node "
            "cells) and everything else on the scalar slotted/event "
            "simulators, 'slotted' is the scalar-only policy, 'event' "
            "forces event-driven simulation, 'batched' makes the batched "
            "preference explicit; cells with no batched kernel (dynamic-"
            "activity hidden-node scenarios, n-estimating schemes) always "
            "fall back to the scalar simulators"
        ),
    )
    parser.add_argument(
        "--traffic", choices=("poisson", "cbr", "on-off"), default=None,
        help=(
            "arrival-process family for the unsaturated-workload experiments "
            "(fig_load_sweep); overrides the preset's traffic_kind "
            "(default: poisson)"
        ),
    )
    parser.add_argument(
        "--load", type=float, action="append", default=None, metavar="X",
        help=(
            "offered-load multiplier (fraction of the channel's saturation "
            "frame rate) for fig_load_sweep; repeat for several points; "
            "overrides the preset's load grid"
        ),
    )
    parser.add_argument(
        "--queue-limit", type=int, default=None, metavar="FRAMES",
        help=(
            "per-station FIFO capacity for the unsaturated-workload "
            "experiments; must be at least 1 (default: the preset's "
            "traffic_queue_limit)"
        ),
    )
    parser.add_argument(
        "--retry-limit", type=int, default=None, metavar="N",
        help=(
            "MAC retry limit for fig_fct_sweep: frames are discarded after "
            "N transmission attempts; must be at least 1 (default: the "
            "preset's retry_limit, 7)"
        ),
    )
    parser.add_argument(
        "--cache-dir", type=pathlib.Path, default=None, metavar="DIR",
        help="cache completed simulation cells as JSON under DIR and reuse "
             "them on later runs",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore the result cache even if --cache-dir is set",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print one line per completed simulation cell to stderr "
             "(includes a rolling cells/s rate and ETA)",
    )
    parser.add_argument(
        "--trace", type=pathlib.Path, default=None, metavar="FILE.jsonl",
        help="stream campaign telemetry (phase spans, per-cell task records, "
             "simulator loop counters) to FILE as JSONL; summarise it later "
             "with 'python -m repro.experiments trace-report FILE'",
    )
    parser.add_argument(
        "--probe-interval", type=float, default=None, metavar="SECONDS",
        help="sample per-station controller state (contention window / "
             "attempt probability, IdleSense idle estimate, queue depth, "
             "windowed throughput, channel busy fraction) every SECONDS of "
             "virtual time in every simulator backend and stream the series "
             "as 'probe' records into the --trace file (requires --trace; "
             "probes never change simulation results)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run cProfile around every unit of simulation work (inside the "
             "worker processes under --jobs) and print an aggregated top-20 "
             "hotspot table at the end",
    )
    parser.add_argument(
        "--journal", type=pathlib.Path, default=None, metavar="FILE.jsonl",
        help="durably append every completed simulation cell to FILE "
             "(fsync'd JSONL); combine with --resume to skip the recorded "
             "cells after a crash or Ctrl-C, with bit-identical results",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="replay completed cells from the --journal file instead of "
             "overwriting it (requires --journal)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-unit wall-clock budget under --jobs > 1: a hung unit's "
             "worker pool is torn down and the unit retried (default: no "
             "timeout)",
    )
    parser.add_argument(
        "--task-retries", type=int, default=2, metavar="N",
        help="re-dispatch a failed simulation unit up to N times before "
             "quarantining it as a named failure (default: 2; 0 disables "
             "retries)",
    )
    parser.add_argument(
        "--retry-backoff", type=float, default=0.1, metavar="SECONDS",
        help="base of the exponential retry backoff (attempt n waits "
             "about SECONDS * 2^(n-1), with deterministic per-task jitter; "
             "default: 0.1)",
    )
    return parser


def _resolve_experiments(requested: List[str],
                         parser: argparse.ArgumentParser) -> List[str]:
    unknown = [
        name for name in requested
        if name not in EXPERIMENT_REGISTRY and name != _ALL
    ]
    if unknown:
        parser.error(
            f"unknown experiment id(s): {', '.join(unknown)}; "
            f"available: {', '.join(sorted(EXPERIMENT_REGISTRY))} (or 'all')"
        )
    if _ALL in requested:
        # 'all' expands in registry order (table1 first, then the figures as
        # the paper presents them); explicit extra ids are redundant.
        return list(EXPERIMENT_REGISTRY)
    return requested


def _run_one(name: str, config: ExperimentConfig,
             executor: CampaignExecutor) -> str:
    runner = EXPERIMENT_REGISTRY[name]
    if name in _ANALYTICAL:
        result = runner()
    else:
        result = runner(config, executor=executor)
    return format_result(result)


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # ``trace-report`` is a subcommand with its own argument set; dispatch
    # before the main parser sees (and rejects) its options.
    if argv and argv[0] == "trace-report":
        from ..telemetry.report import trace_report_main

        return trace_report_main(argv[1:])

    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_experiments:
        for name in sorted(EXPERIMENT_REGISTRY):
            print(name)
        return 0

    if not args.experiments:
        parser.error("no experiments given (use --list to see the available ids)")

    names = _resolve_experiments(args.experiments, parser)
    config = _PRESETS[args.preset]
    if args.traffic is not None:
        config = config.evolve(traffic_kind=args.traffic)
    if args.load:
        for load in args.load:
            if not math.isfinite(load) or load <= 0:
                parser.error(
                    f"--load must be a positive finite multiplier, got {load!r}"
                )
        config = config.evolve(load_points=tuple(args.load))
    if args.queue_limit is not None:
        if args.queue_limit < 1:
            parser.error(
                f"--queue-limit must be at least 1 frame, got {args.queue_limit}"
            )
        config = config.evolve(traffic_queue_limit=args.queue_limit)
    if args.retry_limit is not None:
        if args.retry_limit < 1:
            parser.error(
                "--retry-limit must allow at least one transmission attempt, "
                f"got {args.retry_limit}"
            )
        config = config.evolve(retry_limit=args.retry_limit)
    if args.output is not None:
        args.output.mkdir(parents=True, exist_ok=True)
    if (args.cache_dir is not None and args.cache_dir.exists()
            and not args.cache_dir.is_dir()):
        parser.error(f"--cache-dir: '{args.cache_dir}' exists and is not a directory")
    if args.resume and args.journal is None:
        parser.error("--resume requires --journal FILE.jsonl")
    if args.task_timeout is not None and (
            not math.isfinite(args.task_timeout) or args.task_timeout <= 0):
        parser.error(
            f"--task-timeout must be a positive finite number of seconds, "
            f"got {args.task_timeout!r}"
        )
    if args.task_retries < 0:
        parser.error(f"--task-retries must be non-negative, got {args.task_retries}")
    if not math.isfinite(args.retry_backoff) or args.retry_backoff < 0:
        parser.error(
            f"--retry-backoff must be a non-negative finite number of "
            f"seconds, got {args.retry_backoff!r}"
        )
    if args.probe_interval is not None:
        if not math.isfinite(args.probe_interval) or args.probe_interval <= 0:
            parser.error(
                f"--probe-interval must be a positive finite number of "
                f"seconds, got {args.probe_interval!r}"
            )
        if args.trace is None:
            parser.error("--probe-interval requires --trace FILE.jsonl "
                         "(probe records stream into the trace)")

    writer = None
    telemetry = None
    if args.trace is not None:
        from ..telemetry import Telemetry
        from ..telemetry.trace import TRACE_SCHEMA_VERSION, JsonlTraceWriter

        writer = JsonlTraceWriter(args.trace)
        # Records stream straight to disk; keeping them in memory too would
        # double the footprint of long campaigns for no benefit.
        telemetry = Telemetry(sink=writer.write, keep_records=False)
        telemetry.emit({
            "type": "meta",
            "t0": time.time(),
            "schema": TRACE_SCHEMA_VERSION,
            "info": {
                "experiments": " ".join(names),
                "preset": args.preset,
                "backend": args.backend,
                "jobs": args.jobs,
                "profile": args.profile,
                "probe_interval": args.probe_interval,
            },
        })

    executor = CampaignExecutor(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        progress=stderr_progress if args.progress else None,
        backend=args.backend,
        telemetry=telemetry,
        profile=args.profile,
        task_timeout_s=args.task_timeout,
        task_retries=args.task_retries,
        retry_backoff_s=args.retry_backoff,
        journal=args.journal,
        resume=args.resume,
        probe=(ProbeConfig(args.probe_interval)
               if args.probe_interval is not None else None),
    )

    interrupted = False
    try:
        for name in names:
            started = time.perf_counter()
            text = _run_one(name, config, executor)
            elapsed = time.perf_counter() - started
            print(text)
            print(f"[{name} regenerated in {elapsed:.1f} s]\n")
            if args.output is not None:
                (args.output / f"{name}.txt").write_text(text + "\n",
                                                         encoding="utf-8")
    except KeyboardInterrupt:
        # The executor has already drained in-flight work and flushed the
        # journal; report the partial state and exit nonzero (130 = SIGINT)
        # instead of dumping a pool traceback.
        interrupted = True
        print("\n[campaign] interrupted by user (Ctrl-C); partial results "
              "reported above", file=sys.stderr, flush=True)
    finally:
        executor.close()
        if writer is not None:
            writer.close()
            print(f"[trace: {writer.count} record(s) written to {args.trace}; "
                  f"summarise with 'python -m repro.experiments trace-report "
                  f"{args.trace}']")

    if args.profile:
        report = executor.profile_report()
        if report is not None:
            print(report)

    if executor.stats.total:
        print(f"[campaign: {executor.stats.summary()}, jobs={executor.jobs}, "
              f"backend={executor.backend}]")
    if args.journal is not None and executor.journal is not None:
        print(f"[journal: {len(executor.journal)} completed cell(s) recorded "
              f"in {args.journal}; resume with --journal {args.journal} "
              f"--resume]")
    if interrupted:
        return 130
    if executor.stats.failures:
        print(f"[campaign] {len(executor.stats.failures)} task(s) were "
              f"quarantined — see the failure report above", file=sys.stderr,
              flush=True)
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())
