"""Command-line entry point for regenerating the paper's experiments.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments fig3
    python -m repro.experiments table2 fig12 --preset quick
    python -m repro.experiments fig6 --preset paper --output results/

Each experiment id corresponds to one table or figure of the paper (see
DESIGN.md section 4).  Results are printed as text tables and optionally
written to ``<output>/<experiment>.txt``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import List, Optional

from . import EXPERIMENT_REGISTRY, PAPER, QUICK
from .config import ExperimentConfig
from .reporting import format_result

__all__ = ["main", "build_parser"]

_PRESETS = {"quick": QUICK, "paper": PAPER}

#: Experiments whose runners take no ExperimentConfig (purely analytical).
_ANALYTICAL = {"table1", "fig12"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate tables and figures from the paper.",
    )
    parser.add_argument(
        "experiments", nargs="*",
        help="experiment ids (e.g. fig3 table2); omit with --list to enumerate",
    )
    parser.add_argument("--list", action="store_true", dest="list_experiments",
                        help="list available experiment ids and exit")
    parser.add_argument("--preset", choices=sorted(_PRESETS), default="quick",
                        help="simulation budget preset (default: quick)")
    parser.add_argument("--output", type=pathlib.Path, default=None,
                        help="directory to write <experiment>.txt files into")
    parser.add_argument("--precision", type=int, default=3,
                        help="decimal places in printed tables (default: 3)")
    return parser


def _run_one(name: str, config: ExperimentConfig) -> str:
    runner = EXPERIMENT_REGISTRY[name]
    if name in _ANALYTICAL:
        result = runner()
    else:
        result = runner(config)
    return format_result(result)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_experiments:
        for name in sorted(EXPERIMENT_REGISTRY):
            print(name)
        return 0

    if not args.experiments:
        parser.error("no experiments given (use --list to see the available ids)")

    unknown = [name for name in args.experiments if name not in EXPERIMENT_REGISTRY]
    if unknown:
        parser.error(
            f"unknown experiment id(s): {', '.join(unknown)}; "
            f"available: {', '.join(sorted(EXPERIMENT_REGISTRY))}"
        )

    config = _PRESETS[args.preset]
    if args.output is not None:
        args.output.mkdir(parents=True, exist_ok=True)

    for name in args.experiments:
        started = time.perf_counter()
        text = _run_one(name, config)
        elapsed = time.perf_counter() - started
        print(text)
        print(f"[{name} regenerated in {elapsed:.1f} s]\n")
        if args.output is not None:
            (args.output / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    return 0


if __name__ == "__main__":
    sys.exit(main())
