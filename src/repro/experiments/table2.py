"""Table II — weighted fairness of wTOP-CSMA.

Ten stations with weights (1, 1, 1, 2, 2, 2, 3, 3, 3, 3) share a fully
connected channel under wTOP-CSMA.  The paper's result: every station's
*normalised* throughput (throughput / weight) is essentially equal
(~1.06 Mbps) and the total is ~22.4 Mbps — i.e. the scheme is weighted-fair
*and* throughput-optimal simultaneously.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..analysis.fairness import weighted_fairness_report
from ..phy.constants import PhyParameters
from .campaign import CampaignExecutor, SchemeSpec
from .config import ExperimentConfig, QUICK
from .runner import (
    ExperimentResult,
    ExperimentRow,
    connected_task,
    default_executor,
)

__all__ = ["run_table2", "PAPER_WEIGHTS"]

#: The weight assignment used in the paper's Table II.
PAPER_WEIGHTS: Tuple[float, ...] = (1, 1, 1, 2, 2, 2, 3, 3, 3, 3)


def run_table2(
    config: ExperimentConfig = QUICK,
    phy: Optional[PhyParameters] = None,
    weights: Sequence[float] = PAPER_WEIGHTS,
    seed: int = 1,
    executor: Optional[CampaignExecutor] = None,
) -> ExperimentResult:
    """Reproduce Table II (per-station weighted fairness under wTOP-CSMA)."""
    executor = executor or default_executor()
    weights = tuple(float(w) for w in weights)
    spec = SchemeSpec.make(
        "wtop-csma", weights=weights, update_period=config.update_period
    )
    [result] = executor.run([connected_task(
        spec, len(weights), config, seed, phy=phy,
        label=f"table2/seed={seed}",
    )])
    report = weighted_fairness_report(result.per_station_throughput_bps, weights)

    rows = [
        ExperimentRow(
            label=f"station {station}",
            values={
                "weight": weight,
                "throughput (Mbps)": throughput_mbps,
                "normalized (Mbps)": normalized_mbps,
            },
        )
        for station, weight, throughput_mbps, normalized_mbps in report.rows()
    ]
    return ExperimentResult(
        name="Table II",
        description="wTOP-CSMA weighted fairness, 10 stations, fully connected",
        columns=("weight", "throughput (Mbps)", "normalized (Mbps)"),
        rows=tuple(rows),
        metadata={
            "total_throughput_mbps": round(report.total_throughput_bps / 1e6, 3),
            "jain_index_normalized": round(report.jain_index_normalized, 5),
            "max_relative_deviation": round(report.max_relative_deviation, 4),
            "weights": weights,
            "seed": seed,
            "adaptive_warmup_s": config.adaptive_warmup,
            "measure_duration_s": config.measure_duration,
        },
    )
