"""Figures 8 and 9 — wTOP-CSMA under a time-varying number of stations.

The number of active stations steps through a predefined sequence; Figure 8
plots throughput vs time and Figure 9 plots the control variable (the
advertised attempt probability) vs time.  Expected behaviour: throughput
stays near the optimum across the steps (no-hidden case) and the control
variable re-converges after every step, decreasing when stations join and
increasing when they leave.

The fully connected series uses the fast slotted simulator; the hidden-node
series (optional, off by default in the quick preset because it is
expensive) uses the event-driven simulator on a radius-16 disc placement.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..phy.constants import PhyParameters
from ..sim.dynamics import ActivitySchedule, step_activity
from .campaign import CampaignExecutor, SchemeSpec
from .config import ExperimentConfig, QUICK
from .runner import (
    ExperimentResult,
    ExperimentRow,
    connected_task,
    default_executor,
    hidden_task,
)

__all__ = ["run_fig8_9", "default_station_steps"]


def default_station_steps(segment_duration: float) -> ActivitySchedule:
    """The step sequence of active stations used by the dynamic figures.

    The paper steps the population up and down (10 -> 30 -> 60 -> 20 ...);
    the exact values are not critical, only that the controller re-converges
    after each change.
    """
    counts = (10, 30, 60, 20, 40)
    return step_activity(
        [(index * segment_duration, count) for index, count in enumerate(counts)]
    )


def run_fig8_9(
    config: ExperimentConfig = QUICK,
    phy: Optional[PhyParameters] = None,
    include_hidden: bool = False,
    seed: int = 1,
    executor: Optional[CampaignExecutor] = None,
) -> ExperimentResult:
    """Reproduce Figures 8 and 9 (wTOP-CSMA dynamics).

    The result rows are time samples; columns are the throughput (Mbps), the
    advertised attempt probability and the active station count, for the
    no-hidden case and (optionally) a hidden-node case.
    """
    executor = executor or default_executor()
    schedule = default_station_steps(config.dynamic_segment_duration)
    total_duration = config.dynamic_segment_duration * len(schedule.breakpoints)
    spec = SchemeSpec.make("wtop-csma", update_period=config.update_period)

    dynamic_config = config.evolve(
        measure_duration=total_duration, adaptive_warmup=0.0, warmup=0.0
    )
    tasks = [connected_task(
        spec, schedule.max_active, dynamic_config, seed, phy=phy,
        activity=schedule.breakpoints, report_interval=config.report_interval,
        label=f"fig8_9/connected/seed={seed}",
    )]
    if include_hidden:
        tasks.append(hidden_task(
            spec, schedule.max_active, config.hidden_disc_radius_small, seed,
            dynamic_config, seed, phy=phy,
            activity=schedule.breakpoints, report_interval=config.report_interval,
            label=f"fig8_9/hidden/seed={seed}",
        ))
    results = executor.run(tasks)
    connected = results[0]
    hidden = results[1] if include_hidden else None

    columns = ["throughput (no hidden)", "p (no hidden)", "active stations"]
    if hidden is not None:
        columns.extend(["throughput (hidden)", "p (hidden)"])

    hidden_throughput = dict(hidden.throughput_timeline) if hidden else {}
    hidden_control = dict(hidden.control_timeline) if hidden else {}
    control_by_time = dict(connected.control_timeline)

    rows = []
    for time_s, throughput_bps in connected.throughput_timeline:
        values = {
            "throughput (no hidden)": throughput_bps / 1e6,
            "p (no hidden)": control_by_time.get(time_s, float("nan")),
            "active stations": float(schedule.active_count(time_s)),
        }
        if hidden is not None:
            values["throughput (hidden)"] = hidden_throughput.get(time_s, float("nan")) / 1e6
            values["p (hidden)"] = hidden_control.get(time_s, float("nan"))
        rows.append(ExperimentRow(label=f"t={time_s:.2f}s", values=values))

    return ExperimentResult(
        name="Figures 8-9",
        description=(
            "wTOP-CSMA throughput and control variable vs time as the number "
            "of active stations changes"
        ),
        columns=tuple(columns),
        rows=tuple(rows),
        metadata={
            "station_steps": schedule.breakpoints,
            "segment_duration_s": config.dynamic_segment_duration,
            "report_interval_s": config.report_interval,
            "update_period_s": config.update_period,
            "include_hidden": include_hidden,
            "seed": seed,
        },
    )
