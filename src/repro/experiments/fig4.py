"""Figure 4 — throughput of p-persistent CSMA vs attempt probability in the
presence of hidden nodes.

The paper uses this sweep as empirical evidence that the throughput remains a
quasi-concave function of the control variable when hidden nodes exist (the
property the Kiefer-Wolfowitz argument needs but cannot be proven
analytically).  The runner sweeps a fixed ``p`` over random disc topologies
with the event-driven simulator and reports the unimodality check.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..analysis.quasiconcavity import check_quasiconcavity
from ..phy.constants import PhyParameters
from .campaign import CampaignExecutor, SchemeSpec
from .config import ExperimentConfig, QUICK
from .fig2 import default_probability_grid
from .runner import (
    ExperimentResult,
    ExperimentRow,
    average_throughput_mbps,
    default_executor,
    group_results,
    hidden_task,
)

__all__ = ["run_fig4"]


def run_fig4(
    config: ExperimentConfig = QUICK,
    phy: Optional[PhyParameters] = None,
    node_counts: Sequence[int] = (20, 40),
    probabilities: Optional[Sequence[float]] = None,
    topology_seeds: Sequence[int] = (11, 12),
    executor: Optional[CampaignExecutor] = None,
) -> ExperimentResult:
    """Reproduce Figure 4 (p-persistent sweep with hidden nodes).

    ``topology_seeds`` picks the random hidden-node placements; the paper
    similarly shows two scenarios per node count.
    """
    executor = executor or default_executor()
    phy = phy or PhyParameters()
    probabilities = tuple(probabilities or default_probability_grid(9))
    columns = [
        f"N={n} scenario {scenario_index + 1}"
        for n in node_counts
        for scenario_index in range(len(topology_seeds))
    ]
    curves = {column: [] for column in columns}

    tasks, keys = [], []
    for p in probabilities:
        for n in node_counts:
            for scenario_index, topo_seed in enumerate(topology_seeds):
                column = f"N={n} scenario {scenario_index + 1}"
                for seed in config.seeds:
                    tasks.append(hidden_task(
                        SchemeSpec.make("fixed-p", p=p), n,
                        config.hidden_disc_radius_small, topo_seed,
                        config, seed, phy=phy,
                        label=(
                            f"fig4/p={float(p):.6g}/N={n}"
                            f"/scenario={scenario_index + 1}/seed={seed}"
                        ),
                    ))
                    keys.append((float(p), column))
    grouped = group_results(keys, executor.run(tasks))

    rows = []
    for p in probabilities:
        values = {}
        for n in node_counts:
            for scenario_index in range(len(topology_seeds)):
                column = f"N={n} scenario {scenario_index + 1}"
                value = average_throughput_mbps(grouped[(float(p), column)])
                values[column] = value
                curves[column].append(value)
        rows.append(ExperimentRow(label=f"log(p)={np.log(p):.2f}", values=values))

    quasiconcavity = {
        name: check_quasiconcavity(
            np.log(probabilities), curve, noise_tolerance=0.15
        ).is_quasiconcave
        for name, curve in curves.items()
    }
    return ExperimentResult(
        name="Figure 4",
        description=(
            "Throughput (Mbps) of p-persistent CSMA vs log(attempt probability) "
            "with hidden nodes"
        ),
        columns=tuple(columns),
        rows=tuple(rows),
        metadata={
            "probabilities": tuple(round(float(p), 6) for p in probabilities),
            "quasi_concave": quasiconcavity,
            "hidden_disc_radius": config.hidden_disc_radius_small,
            "topology_seeds": tuple(topology_seeds),
            "seeds": config.seeds,
        },
    )
