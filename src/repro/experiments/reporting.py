"""Plain-text rendering of experiment results.

The paper's figures are line plots and its tables are simple grids; the
benchmark harness regenerates the underlying numbers and prints them as
aligned text tables so the "who wins, by how much, where are the crossovers"
comparisons can be made directly from the console output (and are captured in
``bench_output.txt``).
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence

from .runner import ExperimentResult

__all__ = ["format_table", "format_result", "summarize_series"]


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(columns: Sequence[str], rows: Sequence[Sequence[object]],
                 precision: int = 3) -> str:
    """Render ``rows`` under ``columns`` as an aligned monospace table."""
    if not columns:
        raise ValueError("need at least one column")
    rendered_rows = [[_format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(str(col)) for col in columns]
    for row in rendered_rows:
        if len(row) != len(columns):
            raise ValueError("row length does not match the number of columns")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in rendered_rows
    ]
    return "\n".join([header, separator, *body])


def format_result(result: ExperimentResult, precision: int = 3) -> str:
    """Render an :class:`ExperimentResult` with its title and metadata."""
    rows = []
    for row in result.rows:
        rendered = [row.label]
        for column in result.columns:
            rendered.append(row.values.get(column, float("nan")))
        rows.append(rendered)
    table = format_table(["case", *result.columns], rows, precision=precision)
    meta_lines = [f"  {key}: {value}" for key, value in sorted(result.metadata.items())]
    header = f"== {result.name} ==\n{result.description}"
    if meta_lines:
        header += "\n" + "\n".join(meta_lines)
    return f"{header}\n{table}"


def summarize_series(xs: Iterable[float], ys: Iterable[float],
                     x_label: str = "x", y_label: str = "y") -> str:
    """One-line summary of a curve: range of x, max y and its location."""
    xs = list(xs)
    ys = list(ys)
    if len(xs) != len(ys) or not xs:
        raise ValueError("xs and ys must be equal-length and non-empty")
    best = max(range(len(ys)), key=lambda i: ys[i])
    return (
        f"{y_label} over {x_label} in [{min(xs):g}, {max(xs):g}]: "
        f"max {ys[best]:.3f} at {x_label}={xs[best]:g}"
    )
