"""Figure 13 — throughput of RandomReset(0; p0) vs ``p0`` in a fully
connected network (20 and 40 stations).

Compared to the p-persistent curve (Figure 2), this curve is much flatter
around its maximum — the paper's argument for why TORA-CSMA tolerates
oscillation of its control variable better than wTOP-CSMA.  The runner
produces both the analytical fixed-point curve and a slotted-simulation
curve.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.quasiconcavity import check_quasiconcavity
from ..analysis.randomreset import randomreset_throughput
from ..phy.constants import PhyParameters
from .campaign import CampaignExecutor, SchemeSpec
from .config import ExperimentConfig, QUICK
from .runner import (
    ExperimentResult,
    ExperimentRow,
    average_throughput_mbps,
    connected_task,
    default_executor,
    group_results,
)

__all__ = ["run_fig13"]


def run_fig13(
    config: ExperimentConfig = QUICK,
    phy: Optional[PhyParameters] = None,
    node_counts: Sequence[int] = (20, 40),
    reset_probabilities: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    stage: int = 0,
    simulate: bool = True,
    executor: Optional[CampaignExecutor] = None,
) -> ExperimentResult:
    """Reproduce Figure 13 (RandomReset p0 sweep, fully connected)."""
    executor = executor or default_executor()
    phy = phy or PhyParameters()
    columns = []
    for n in node_counts:
        columns.append(f"analytic N={n}")
        if simulate:
            columns.append(f"simulated N={n}")

    tasks, keys = [], []
    if simulate:
        for p0 in reset_probabilities:
            for n in node_counts:
                for seed in config.seeds:
                    tasks.append(connected_task(
                        SchemeSpec.make("fixed-randomreset", stage=stage, p0=p0),
                        n, config, seed, phy=phy,
                        label=f"fig13/p0={float(p0):.2f}/N={n}/seed={seed}",
                    ))
                    keys.append((float(p0), n))
    grouped = group_results(keys, executor.run(tasks))

    curves = {column: [] for column in columns}
    rows = []
    for p0 in reset_probabilities:
        values = {}
        for n in node_counts:
            analytic = randomreset_throughput(stage, p0, n, phy) / 1e6
            values[f"analytic N={n}"] = analytic
            curves[f"analytic N={n}"].append(analytic)
            if simulate:
                simulated = average_throughput_mbps(grouped[(float(p0), n)])
                values[f"simulated N={n}"] = simulated
                curves[f"simulated N={n}"].append(simulated)
        rows.append(ExperimentRow(label=f"p0={p0:.2f}", values=values))

    quasiconcavity = {
        name: check_quasiconcavity(
            list(reset_probabilities), curve, noise_tolerance=0.1
        ).is_quasiconcave
        for name, curve in curves.items()
    }
    return ExperimentResult(
        name="Figure 13",
        description=(
            "Throughput (Mbps) of RandomReset(0; p0) vs reset probability, "
            "fully connected network"
        ),
        columns=tuple(columns),
        rows=tuple(rows),
        metadata={
            "reset_probabilities": tuple(reset_probabilities),
            "stage": stage,
            "quasi_concave": quasiconcavity,
            "seeds": config.seeds,
        },
    )
