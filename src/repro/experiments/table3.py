"""Table III — average idle slots and throughput, with and without hidden
nodes, for IdleSense and wTOP-CSMA (40 stations).

The paper's point: IdleSense always drives the network to its fixed target of
~3.1-3.4 idle slots per transmission, which is near-optimal without hidden
nodes but catastrophically wrong with them; wTOP-CSMA, which tracks
throughput directly, settles at a *different* idle-slot level for every
hidden-node configuration (≈5 without hidden nodes, ≈10 and ≈25 in the
paper's two hidden cases) and therefore retains much more throughput.

Reported idle-slot metrics:

* for IdleSense — the station-observed average (what the AIMD law actually
  regulates), averaged over stations;
* for wTOP-CSMA — the system-level contention idle slots per transmission
  measured at the channel.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..mac.idlesense import IdleSenseBackoff
from ..mac.schemes import idlesense_scheme, wtop_csma_scheme
from ..phy.constants import PhyParameters
from ..sim.simulation import WlanSimulation
from ..sim.slotted import SlottedSimulator
from .config import ExperimentConfig, QUICK
from .runner import (
    ExperimentResult,
    ExperimentRow,
    make_connected_topology,
    make_hidden_topology,
)

__all__ = ["run_table3"]


def _station_observed_idle(policies) -> float:
    """Mean of the per-station observed idle averages (IdleSense stations)."""
    observed = [
        policy.observed_average_idle_slots()
        for policy in policies
        if isinstance(policy, IdleSenseBackoff)
        and policy.observed_average_idle_slots() is not None
    ]
    if not observed:
        return float("nan")
    return float(np.mean(observed))


def _run_case(scheme_factory, topology, config: ExperimentConfig,
              phy: Optional[PhyParameters], seed: int, connected: bool):
    scheme = scheme_factory()
    warmup = config.adaptive_warmup if scheme.adaptive else config.warmup
    if connected:
        simulator = SlottedSimulator(
            scheme, num_stations=topology.num_stations, phy=phy, seed=seed
        )
        result = simulator.run(duration=config.measure_duration, warmup=warmup)
        policies = simulator.policies
    else:
        simulation = WlanSimulation(
            scheme=scheme, connectivity=topology, phy=phy, seed=seed
        )
        result = simulation.run(duration=config.measure_duration, warmup=warmup)
        policies = simulation.policies
    station_idle = _station_observed_idle(policies)
    idle_metric = (
        station_idle if not np.isnan(station_idle)
        else result.average_idle_slots_per_transmission
    )
    return result, idle_metric


def run_table3(
    config: ExperimentConfig = QUICK,
    phy: Optional[PhyParameters] = None,
    num_stations: int = 40,
    hidden_case_seeds: Sequence[int] = (11, 12),
    seed: int = 1,
) -> ExperimentResult:
    """Reproduce Table III (idle slots and throughput, 40 stations)."""
    cases = [("Without hidden nodes", None)]
    cases.extend(
        (f"With hidden nodes (case {index + 1})", topo_seed)
        for index, topo_seed in enumerate(hidden_case_seeds)
    )

    schemes = {
        "IdleSense": lambda: idlesense_scheme(phy),
        "wTOP-CSMA": lambda: wtop_csma_scheme(phy, update_period=config.update_period),
    }

    rows = []
    for case_label, topo_seed in cases:
        connected = topo_seed is None
        if connected:
            topology = make_connected_topology(num_stations)
        else:
            topology = make_hidden_topology(
                num_stations, config.hidden_disc_radius_small, topo_seed
            )
        values = {}
        for scheme_name, factory in schemes.items():
            result, idle_metric = _run_case(
                factory, topology, config, phy, seed, connected
            )
            values[f"{scheme_name} idle slots"] = idle_metric
            values[f"{scheme_name} throughput (Mbps)"] = result.total_throughput_mbps
        rows.append(ExperimentRow(label=case_label, values=values))

    return ExperimentResult(
        name="Table III",
        description=(
            "Average idle slots per transmission and throughput for IdleSense "
            f"and wTOP-CSMA, {num_stations} stations, with and without hidden nodes"
        ),
        columns=(
            "IdleSense idle slots",
            "IdleSense throughput (Mbps)",
            "wTOP-CSMA idle slots",
            "wTOP-CSMA throughput (Mbps)",
        ),
        rows=tuple(rows),
        metadata={
            "num_stations": num_stations,
            "hidden_disc_radius": config.hidden_disc_radius_small,
            "hidden_case_seeds": tuple(hidden_case_seeds),
            "seed": seed,
            "adaptive_warmup_s": config.adaptive_warmup,
        },
    )
