"""Table III — average idle slots and throughput, with and without hidden
nodes, for IdleSense and wTOP-CSMA (40 stations).

The paper's point: IdleSense always drives the network to its fixed target of
~3.1-3.4 idle slots per transmission, which is near-optimal without hidden
nodes but catastrophically wrong with them; wTOP-CSMA, which tracks
throughput directly, settles at a *different* idle-slot level for every
hidden-node configuration (≈5 without hidden nodes, ≈10 and ≈25 in the
paper's two hidden cases) and therefore retains much more throughput.

Reported idle-slot metrics:

* for IdleSense — the station-observed average (what the AIMD law actually
  regulates), averaged over stations;
* for wTOP-CSMA — the system-level contention idle slots per transmission
  measured at the channel.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..phy.constants import PhyParameters
from ..sim.metrics import SimulationResult
from .campaign import CampaignExecutor, SchemeSpec
from .config import ExperimentConfig, QUICK
from .runner import (
    ExperimentResult,
    ExperimentRow,
    connected_task,
    default_executor,
    group_results,
    hidden_task,
)

__all__ = ["run_table3"]


def _idle_metric(result: SimulationResult) -> float:
    """The idle-slot figure reported for one case.

    ``station_observed_idle`` is the mean of the per-station observed idle
    averages — :func:`~repro.experiments.campaign.execute_task` annotates it
    whenever the scheme's stations (IdleSense) track one, because that is the
    quantity the AIMD law actually regulates.  Other schemes fall back to the
    system-level contention idle slots measured at the channel.
    """
    station_idle = result.extra.get("station_observed_idle")
    if station_idle is not None:
        return float(station_idle)
    return result.average_idle_slots_per_transmission


def run_table3(
    config: ExperimentConfig = QUICK,
    phy: Optional[PhyParameters] = None,
    num_stations: int = 40,
    hidden_case_seeds: Sequence[int] = (11, 12),
    seed: int = 1,
    executor: Optional[CampaignExecutor] = None,
) -> ExperimentResult:
    """Reproduce Table III (idle slots and throughput, 40 stations)."""
    executor = executor or default_executor()
    cases = [("Without hidden nodes", None)]
    cases.extend(
        (f"With hidden nodes (case {index + 1})", topo_seed)
        for index, topo_seed in enumerate(hidden_case_seeds)
    )

    schemes = {
        "IdleSense": SchemeSpec.make("idlesense"),
        "wTOP-CSMA": SchemeSpec.make(
            "wtop-csma", update_period=config.update_period
        ),
    }

    tasks, keys = [], []
    for case_label, topo_seed in cases:
        for scheme_name, spec in schemes.items():
            label = f"table3/{case_label}/{scheme_name}/seed={seed}"
            if topo_seed is None:
                task = connected_task(
                    spec, num_stations, config, seed, phy=phy, label=label
                )
            else:
                task = hidden_task(
                    spec, num_stations, config.hidden_disc_radius_small,
                    topo_seed, config, seed, phy=phy, label=label,
                )
            tasks.append(task)
            keys.append((case_label, scheme_name))
    grouped = group_results(keys, executor.run(tasks))

    rows = []
    for case_label, _topo_seed in cases:
        values = {}
        for scheme_name in schemes:
            [result] = grouped[(case_label, scheme_name)]
            values[f"{scheme_name} idle slots"] = _idle_metric(result)
            values[f"{scheme_name} throughput (Mbps)"] = result.total_throughput_mbps
        rows.append(ExperimentRow(label=case_label, values=values))

    return ExperimentResult(
        name="Table III",
        description=(
            "Average idle slots per transmission and throughput for IdleSense "
            f"and wTOP-CSMA, {num_stations} stations, with and without hidden nodes"
        ),
        columns=(
            "IdleSense idle slots",
            "IdleSense throughput (Mbps)",
            "wTOP-CSMA idle slots",
            "wTOP-CSMA throughput (Mbps)",
        ),
        rows=tuple(rows),
        metadata={
            "num_stations": num_stations,
            "hidden_disc_radius": config.hidden_disc_radius_small,
            "hidden_case_seeds": tuple(hidden_case_seeds),
            "seed": seed,
            "adaptive_warmup_s": config.adaptive_warmup,
        },
    )
