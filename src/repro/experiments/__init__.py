"""Experiment runners regenerating every figure and table of the paper.

Each ``run_*`` function returns an :class:`~repro.experiments.runner.ExperimentResult`
that can be rendered with :func:`~repro.experiments.reporting.format_result`.
``EXPERIMENT_REGISTRY`` maps experiment ids to their runners so the benchmark
harness and the examples can iterate over them uniformly.
"""

from .config import PAPER, QUICK, ExperimentConfig
from .fig1 import run_fig1
from .fig2 import default_probability_grid, run_fig2
from .fig3 import run_fig3
from .fig4 import run_fig4
from .fig5 import run_fig5
from .fig6_7 import run_fig6, run_fig7, run_hidden_comparison
from .fig8_9 import default_station_steps, run_fig8_9
from .fig10_11 import run_fig10_11
from .fig12 import run_fig12
from .fig13 import run_fig13
from .reporting import format_result, format_table, summarize_series
from .runner import (
    ExperimentResult,
    ExperimentRow,
    average_throughput_mbps,
    make_connected_topology,
    make_hidden_topology,
    paper_scheme_factories,
    run_scheme_connected,
    run_scheme_on_topology,
)
from .table1 import run_table1
from .table2 import PAPER_WEIGHTS, run_table2
from .table3 import run_table3

#: Mapping from experiment id (as used in DESIGN.md / EXPERIMENTS.md) to runner.
EXPERIMENT_REGISTRY = {
    "table1": run_table1,
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8_9": run_fig8_9,
    "fig10_11": run_fig10_11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "table2": run_table2,
    "table3": run_table3,
}

__all__ = [
    "PAPER",
    "QUICK",
    "ExperimentConfig",
    "run_fig1",
    "default_probability_grid",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_hidden_comparison",
    "default_station_steps",
    "run_fig8_9",
    "run_fig10_11",
    "run_fig12",
    "run_fig13",
    "format_result",
    "format_table",
    "summarize_series",
    "ExperimentResult",
    "ExperimentRow",
    "average_throughput_mbps",
    "make_connected_topology",
    "make_hidden_topology",
    "paper_scheme_factories",
    "run_scheme_connected",
    "run_scheme_on_topology",
    "run_table1",
    "PAPER_WEIGHTS",
    "run_table2",
    "run_table3",
    "EXPERIMENT_REGISTRY",
]
