"""Experiment runners regenerating every figure and table of the paper.

Each ``run_*`` function returns an :class:`~repro.experiments.runner.ExperimentResult`
that can be rendered with :func:`~repro.experiments.reporting.format_result`.
``EXPERIMENT_REGISTRY`` maps experiment ids to their runners so the benchmark
harness and the examples can iterate over them uniformly.

Every simulation-backed runner accepts an optional ``executor`` — a
:class:`~repro.experiments.campaign.CampaignExecutor` — through which it
submits its whole (scheme x topology x seed) grid as one flat task list.
Passing a shared executor with ``jobs > 1`` parallelises the evaluation over
worker processes, and a ``cache_dir`` makes re-runs skip completed cells;
``python -m repro.experiments all --jobs N`` wires this up from the command
line.  Without an executor the runners fall back to serial in-process
execution, producing bit-identical results.
"""

from .campaign import (
    CampaignExecutor,
    CampaignStats,
    ResultCache,
    RunTask,
    SchemeSpec,
    SweepSpec,
    TopologySpec,
    derive_seed,
    execute_task,
)
from .config import PAPER, QUICK, ExperimentConfig
from .fig1 import run_fig1
from .fig2 import default_probability_grid, run_fig2
from .fig3 import run_fig3
from .fig4 import run_fig4
from .fig5 import run_fig5
from .fig6_7 import run_fig6, run_fig7, run_hidden_comparison
from .fig8_9 import default_station_steps, run_fig8_9
from .fig10_11 import run_fig10_11
from .fig12 import run_fig12
from .fig13 import run_fig13
from .fig_fct_sweep import run_fig_fct_sweep
from .fig_load_sweep import run_fig_load_sweep
from .fig_stability_atlas import run_fig_stability_atlas
from .reporting import format_result, format_table, summarize_series
from .runner import (
    ExperimentResult,
    ExperimentRow,
    average_throughput_mbps,
    connected_task,
    default_executor,
    group_results,
    hidden_task,
    make_connected_topology,
    make_hidden_topology,
    paper_scheme_factories,
    paper_scheme_specs,
    run_scheme_connected,
    run_scheme_on_topology,
)
from .table1 import run_table1
from .table2 import PAPER_WEIGHTS, run_table2
from .table3 import run_table3

#: Mapping from experiment id (as used in DESIGN.md / EXPERIMENTS.md) to runner.
EXPERIMENT_REGISTRY = {
    "table1": run_table1,
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8_9": run_fig8_9,
    "fig10_11": run_fig10_11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "table2": run_table2,
    "table3": run_table3,
    "fig_load_sweep": run_fig_load_sweep,
    "fig_fct_sweep": run_fig_fct_sweep,
    "fig_stability_atlas": run_fig_stability_atlas,
}

__all__ = [
    "PAPER",
    "QUICK",
    "ExperimentConfig",
    "CampaignExecutor",
    "CampaignStats",
    "ResultCache",
    "RunTask",
    "SchemeSpec",
    "SweepSpec",
    "TopologySpec",
    "derive_seed",
    "execute_task",
    "connected_task",
    "default_executor",
    "group_results",
    "hidden_task",
    "paper_scheme_specs",
    "run_fig1",
    "default_probability_grid",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_hidden_comparison",
    "default_station_steps",
    "run_fig8_9",
    "run_fig10_11",
    "run_fig12",
    "run_fig13",
    "run_fig_fct_sweep",
    "run_fig_load_sweep",
    "run_fig_stability_atlas",
    "format_result",
    "format_table",
    "summarize_series",
    "ExperimentResult",
    "ExperimentRow",
    "average_throughput_mbps",
    "make_connected_topology",
    "make_hidden_topology",
    "paper_scheme_factories",
    "run_scheme_connected",
    "run_scheme_on_topology",
    "run_table1",
    "PAPER_WEIGHTS",
    "run_table2",
    "run_table3",
    "EXPERIMENT_REGISTRY",
]
