"""Experiment configuration presets.

Every experiment runner accepts an :class:`ExperimentConfig` controlling how
long simulations run, how many seeds are averaged and which node counts are
swept.  Two presets are provided:

* :data:`QUICK` — small budgets so the full benchmark suite finishes in
  minutes on a laptop; used by ``benchmarks/`` and the test suite.
* :data:`PAPER` — budgets comparable to the paper's ns-3 runs (long
  adaptation warm-ups, 20 repetitions); used when regenerating the numbers in
  EXPERIMENTS.md with more statistical weight.

The paper's absolute settings (250 ms update period, 20 iterations, hundreds
of simulated seconds) are reachable by constructing a custom config.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

__all__ = ["ExperimentConfig", "QUICK", "PAPER"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Budgets and sweep ranges shared by the experiment runners.

    Attributes
    ----------
    node_counts:
        Station counts for throughput-vs-N figures (paper: 10..60).
    seeds:
        Random seeds; results are averaged across them (paper: 20 runs).
    measure_duration / warmup:
        Measurement window and warm-up for *non-adaptive* schemes (seconds).
    adaptive_warmup:
        Warm-up for adaptive schemes (wTOP/TORA/IdleSense) so the controller
        converges before measuring.
    update_period:
        Controller UPDATE_PERIOD (paper: 0.25 s; the quick preset shrinks it
        together with the warm-up so the same number of Kiefer-Wolfowitz
        updates happen in less simulated time).
    report_interval:
        Sampling period of the convergence time lines (Figures 8-11).
    hidden_disc_radius_small / hidden_disc_radius_large:
        Disc radii of the two hidden-node placements (paper: 16 and 20).
    dynamic_segment_duration:
        Length of each constant-N segment in the dynamic scenarios.
    load_points:
        Offered-load multipliers (fractions of the channel's saturation
        frame rate) swept by the ``fig_load_sweep`` experiment.
    traffic_kind:
        Arrival-process family used by the load sweep (``poisson``, ``cbr``
        or ``on-off``; see :mod:`repro.traffic`).
    traffic_queue_limit:
        Bounded per-station FIFO capacity for unsaturated workloads.
    retry_limit:
        MAC retry limit used by the flow-level experiments
        (``fig_fct_sweep``); 7 matches 802.11's default short retry limit.
        The saturated figure/table experiments keep the historical
        infinite-retry MAC and do not read this field.
    """

    node_counts: Tuple[int, ...] = (10, 20, 30, 40, 50, 60)
    seeds: Tuple[int, ...] = (1, 2, 3)
    measure_duration: float = 2.0
    warmup: float = 0.5
    adaptive_warmup: float = 10.0
    update_period: float = 0.05
    report_interval: float = 0.25
    hidden_disc_radius_small: float = 16.0
    hidden_disc_radius_large: float = 20.0
    dynamic_segment_duration: float = 10.0
    load_points: Tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0)
    traffic_kind: str = "poisson"
    traffic_queue_limit: int = 64
    retry_limit: int = 7

    def __post_init__(self) -> None:
        import math

        for load in self.load_points:
            if not math.isfinite(load) or load <= 0:
                raise ValueError(
                    f"load points must be positive finite multipliers, got {load!r}"
                )
        if self.traffic_queue_limit < 1:
            raise ValueError(
                "traffic_queue_limit must be at least 1 frame, got "
                f"{self.traffic_queue_limit!r}"
            )
        if self.retry_limit < 1:
            raise ValueError(
                "retry_limit must allow at least one transmission attempt, "
                f"got {self.retry_limit!r}"
            )

    def evolve(self, **changes: object) -> "ExperimentConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def durations_for(self, adaptive: bool) -> Tuple[float, float]:
        """``(measure_duration, warmup)`` appropriate for a scheme.

        Adaptive schemes (IdleSense, wTOP-CSMA, TORA-CSMA) get the longer
        :attr:`adaptive_warmup` so their controllers converge before
        steady-state throughput is measured; open-loop schemes get the short
        :attr:`warmup`.  Both the legacy direct-run helpers and the campaign
        task builders in :mod:`repro.experiments.runner` use this, so every
        execution path measures with identical budgets.
        """
        return self.measure_duration, (self.adaptive_warmup if adaptive else self.warmup)


#: Fast preset used by the benchmark harness (minutes, not hours).
QUICK = ExperimentConfig(
    node_counts=(10, 20, 40, 60),
    seeds=(1, 2),
    measure_duration=1.0,
    warmup=0.3,
    adaptive_warmup=6.0,
    update_period=0.05,
    report_interval=0.25,
    dynamic_segment_duration=6.0,
    load_points=(0.1, 0.5, 1.0, 2.0),
)

#: Heavier preset closer to the paper's simulation budgets.
PAPER = ExperimentConfig(
    node_counts=(10, 20, 30, 40, 50, 60),
    seeds=tuple(range(1, 11)),
    measure_duration=5.0,
    warmup=1.0,
    adaptive_warmup=60.0,
    update_period=0.25,
    report_interval=1.0,
    dynamic_segment_duration=100.0,
)
