"""Flow-completion-time sweep — closed-loop window flows, N-to-1 incast
bursts and AP-downlink traffic under a bounded MAC retry limit.

The paper evaluates open-loop saturated sources only; every congestion-
coupled workload of the related datacenter/real-time literature is *closed
loop*: sources release new frames only when earlier ones leave the MAC, so
MAC-level behaviour (collisions, retries, discards) feeds back into the
offered load.  This experiment measures that regime across the paper's
schemes on the connected topology family:

* ``window`` — every station runs one TCP-like window-limited flow
  (window 4, 200 frames); the primary metric is the per-flow completion
  time (FCT).
* ``incast`` — all N stations burst a fixed batch at the same epoch
  instants (the N-to-1 incast pattern); queues absorb the bursts and the
  p99 queueing delay exposes the synchronised contention.
* ``downlink`` — station 0 models the AP carrying the aggregate downlink
  at (N-1) x the per-station rate, contending against N-1 uplink stations.

All workloads run with the configured MAC retry limit
(:attr:`~repro.experiments.config.ExperimentConfig.retry_limit`, default 7
to match 802.11's short retry limit), so frames that repeatedly collide are
*discarded* instead of blocking the head of the queue forever — the
``retry discards`` column counts them.  Measurement starts at t = 0
(``warmup = 0``): a closed-loop flow's completion time includes the
contention it actually experienced from its first frame.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..phy.constants import PhyParameters
from ..traffic import ArrivalProcess, saturation_frame_rate
from .campaign import CampaignExecutor, RunTask, SchemeSpec, TopologySpec
from .config import ExperimentConfig, QUICK
from .runner import (
    ExperimentResult,
    ExperimentRow,
    default_executor,
    group_results,
)

__all__ = ["run_fig_fct_sweep", "fct_workloads_for"]

#: Window size of the closed-loop flows (frames in flight per station).
FLOW_WINDOW = 4
#: Frames per closed-loop flow.
FLOW_FRAMES = 200
#: Frames per incast burst and the burst repetition period.
INCAST_BURST = 32
INCAST_EPOCH_S = 0.25
#: Downlink load as a fraction of the channel's saturation frame rate.
DOWNLINK_LOAD = 0.9


def fct_workloads_for(config: ExperimentConfig, phy: PhyParameters,
                      num_stations: int) -> List[Tuple[str, ArrivalProcess]]:
    """The labelled closed-loop/congestion workloads of the sweep."""
    retry = config.retry_limit
    rate = DOWNLINK_LOAD * saturation_frame_rate(phy) / num_stations
    return [
        ("window", ArrivalProcess.window_limited(
            FLOW_WINDOW, flow_frames=FLOW_FRAMES, retry_limit=retry,
        )),
        ("incast", ArrivalProcess.incast(
            INCAST_BURST, INCAST_EPOCH_S,
            queue_limit=config.traffic_queue_limit, retry_limit=retry,
        )),
        ("downlink", ArrivalProcess.poisson(
            rate, queue_limit=config.traffic_queue_limit,
            retry_limit=retry, downlink=True,
        )),
    ]


def run_fig_fct_sweep(config: ExperimentConfig = QUICK,
                      phy: Optional[PhyParameters] = None,
                      executor: Optional[CampaignExecutor] = None,
                      ) -> ExperimentResult:
    """Closed-loop window, incast and downlink workloads across schemes."""
    executor = executor or default_executor()
    phy_obj = phy or PhyParameters()
    num_stations = min(config.node_counts)
    schemes: Dict[str, SchemeSpec] = {
        "Standard 802.11": SchemeSpec.make("standard-802.11"),
        "IdleSense": SchemeSpec.make("idlesense"),
        "wTOP-CSMA": SchemeSpec.make(
            "wtop-csma", update_period=config.update_period
        ),
    }
    workloads = fct_workloads_for(config, phy_obj, num_stations)

    tasks, keys = [], []
    for workload, traffic in workloads:
        for name, spec in schemes.items():
            for seed in config.seeds:
                tasks.append(RunTask(
                    scheme=spec,
                    topology=TopologySpec.connected(num_stations),
                    seed=seed,
                    duration=config.measure_duration,
                    warmup=0.0,
                    phy=phy,
                    traffic=traffic,
                    label=(f"fig_fct_sweep/{workload}/{name}"
                           f"/seed={seed}"),
                ))
                keys.append((workload, name))
    grouped = group_results(keys, executor.run(tasks))

    columns = []
    for name in schemes:
        columns += [f"{name} FCT ms", f"{name} p99 ms",
                    f"{name} discards", f"{name} Mbps", f"{name} drop"]
    rows = []
    for workload, _ in workloads:
        values: Dict[str, object] = {}
        for name in schemes:
            cells = grouped[(workload, name)]
            values[f"{name} FCT ms"] = sum(
                r.mean_flow_completion_s for r in cells
            ) / len(cells) * 1e3
            values[f"{name} p99 ms"] = sum(
                r.queue_delay_p99_s for r in cells
            ) / len(cells) * 1e3
            values[f"{name} discards"] = sum(
                r.retry_discards for r in cells
            ) / len(cells)
            values[f"{name} Mbps"] = sum(
                r.total_throughput_mbps for r in cells
            ) / len(cells)
            values[f"{name} drop"] = sum(
                r.drop_rate for r in cells
            ) / len(cells)
        rows.append(ExperimentRow(label=workload, values=values))

    return ExperimentResult(
        name="Flow-completion sweep",
        description=(
            "Mean flow completion time (ms), p99 queueing delay (ms), MAC "
            f"retry discards (limit {config.retry_limit}), throughput and "
            "drop rate for closed-loop window flows "
            f"(W={FLOW_WINDOW}, {FLOW_FRAMES} frames), "
            f"{INCAST_BURST}-frame incast bursts every "
            f"{INCAST_EPOCH_S * 1e3:.0f} ms and AP downlink at "
            f"{DOWNLINK_LOAD:g} x saturation, connected topology"
        ),
        columns=tuple(columns),
        rows=tuple(rows),
        metadata={
            "num_stations": num_stations,
            "seeds": config.seeds,
            "retry_limit": config.retry_limit,
            "flow_window": FLOW_WINDOW,
            "flow_frames": FLOW_FRAMES,
            "incast_burst": INCAST_BURST,
            "incast_epoch_s": INCAST_EPOCH_S,
            "downlink_load": DOWNLINK_LOAD,
            "queue_limit": config.traffic_queue_limit,
            "update_period_s": config.update_period,
        },
    )
