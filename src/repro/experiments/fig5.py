"""Figure 5 — throughput of RandomReset CSMA vs the reset probability ``p0``
in the presence of hidden nodes.

Together with Figure 4 this is the paper's empirical quasi-concavity evidence
for the exponential-backoff control variable.  The runner fixes the reset
stage at ``j = 0`` (as in the paper's figure) and sweeps ``p0`` over random
disc topologies with the event-driven simulator.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..analysis.quasiconcavity import check_quasiconcavity
from ..phy.constants import PhyParameters
from .campaign import CampaignExecutor, SchemeSpec
from .config import ExperimentConfig, QUICK
from .runner import (
    ExperimentResult,
    ExperimentRow,
    average_throughput_mbps,
    default_executor,
    group_results,
    hidden_task,
)

__all__ = ["run_fig5"]


def run_fig5(
    config: ExperimentConfig = QUICK,
    phy: Optional[PhyParameters] = None,
    node_counts: Sequence[int] = (20, 40),
    reset_probabilities: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    stage: int = 0,
    topology_seeds: Sequence[int] = (11, 12),
    executor: Optional[CampaignExecutor] = None,
) -> ExperimentResult:
    """Reproduce Figure 5 (RandomReset p0 sweep with hidden nodes)."""
    executor = executor or default_executor()
    phy = phy or PhyParameters()
    columns = [
        f"N={n} scenario {scenario_index + 1}"
        for n in node_counts
        for scenario_index in range(len(topology_seeds))
    ]
    curves = {column: [] for column in columns}

    tasks, keys = [], []
    for p0 in reset_probabilities:
        for n in node_counts:
            for scenario_index, topo_seed in enumerate(topology_seeds):
                column = f"N={n} scenario {scenario_index + 1}"
                for seed in config.seeds:
                    tasks.append(hidden_task(
                        SchemeSpec.make("fixed-randomreset", stage=stage, p0=p0),
                        n, config.hidden_disc_radius_small, topo_seed,
                        config, seed, phy=phy,
                        label=(
                            f"fig5/p0={float(p0):.2f}/N={n}"
                            f"/scenario={scenario_index + 1}/seed={seed}"
                        ),
                    ))
                    keys.append((float(p0), column))
    grouped = group_results(keys, executor.run(tasks))

    rows = []
    for p0 in reset_probabilities:
        values = {}
        for n in node_counts:
            for scenario_index in range(len(topology_seeds)):
                column = f"N={n} scenario {scenario_index + 1}"
                value = average_throughput_mbps(grouped[(float(p0), column)])
                values[column] = value
                curves[column].append(value)
        rows.append(ExperimentRow(label=f"p0={p0:.2f}", values=values))

    quasiconcavity = {
        name: check_quasiconcavity(
            list(reset_probabilities), curve, noise_tolerance=0.15
        ).is_quasiconcave
        for name, curve in curves.items()
    }
    return ExperimentResult(
        name="Figure 5",
        description=(
            "Throughput (Mbps) of RandomReset CSMA vs reset probability p0 "
            "with hidden nodes (j=0)"
        ),
        columns=tuple(columns),
        rows=tuple(rows),
        metadata={
            "reset_probabilities": tuple(reset_probabilities),
            "stage": stage,
            "quasi_concave": quasiconcavity,
            "hidden_disc_radius": config.hidden_disc_radius_small,
            "topology_seeds": tuple(topology_seeds),
            "seeds": config.seeds,
        },
    )
