"""Load sweep — throughput, queueing delay, drop rate and fairness of
standard 802.11 (DCF), IdleSense and wTOP-CSMA as the offered load sweeps
from far below to well past the channel's saturation capacity, on both the
fully connected and the hidden-node topology families.

This experiment goes beyond the paper: every figure of the original
evaluation runs saturated sources, which is a single point of the offered-
load axis.  Sweeping the load exposes the behaviour the related work on
real-time and datacenter communication treats as primary — throughput
should track the offered load in the unsaturated regime, queueing delay
should explode at the saturation knee, and drops should absorb the excess
past it — and exercises all three simulator backends (slotted/batched for
connected cells, event-driven/conflict-matrix for hidden cells) on the
same task grid.

Offered load is expressed as a multiple of the channel's zero-contention
service capacity ``1 / Ts`` (:func:`repro.traffic.saturation_frame_rate`);
the per-station arrival rate of a cell at multiplier ``x`` is
``x / Ts / N``.  The arrival-process family and the load grid come from the
config (``traffic_kind`` / ``load_points``; CLI ``--traffic`` /
``--load``).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.fairness import jain_index
from ..phy.constants import PhyParameters
from ..traffic import ArrivalProcess, saturation_frame_rate
from .campaign import CampaignExecutor, SchemeSpec, derive_seed
from .config import ExperimentConfig, QUICK
from .runner import (
    ExperimentResult,
    ExperimentRow,
    connected_task,
    default_executor,
    group_results,
    hidden_task,
)

__all__ = ["run_fig_load_sweep", "arrival_process_for"]


def arrival_process_for(config: ExperimentConfig, load: float,
                        phy: PhyParameters, num_stations: int) -> ArrivalProcess:
    """The per-station arrival process of a cell at load multiplier ``load``.

    ``on-off`` sources burst at twice the target rate with equal 50 ms
    on/off phases, so their *mean* rate matches the poisson/cbr grid and
    the three families sweep the identical offered-load axis.
    """
    rate = load * saturation_frame_rate(phy) / num_stations
    kind = config.traffic_kind
    limit = config.traffic_queue_limit
    if kind == "poisson":
        return ArrivalProcess.poisson(rate, queue_limit=limit)
    if kind == "cbr":
        return ArrivalProcess.cbr(rate, queue_limit=limit)
    if kind == "on-off":
        return ArrivalProcess.on_off(2.0 * rate, on_mean_s=0.05,
                                     off_mean_s=0.05, queue_limit=limit)
    raise ValueError(f"unknown traffic kind '{kind}'")


def run_fig_load_sweep(config: ExperimentConfig = QUICK,
                       phy: Optional[PhyParameters] = None,
                       executor: Optional[CampaignExecutor] = None,
                       ) -> ExperimentResult:
    """Sweep offered load across schemes, topologies and backends."""
    executor = executor or default_executor()
    phy_obj = phy or PhyParameters()
    num_stations = min(config.node_counts)
    schemes: Dict[str, SchemeSpec] = {
        "Standard 802.11": SchemeSpec.make("standard-802.11"),
        "IdleSense": SchemeSpec.make("idlesense"),
        "wTOP-CSMA": SchemeSpec.make(
            "wtop-csma", update_period=config.update_period
        ),
    }

    tasks, keys = [], []
    for family in ("connected", "hidden"):
        for load in config.load_points:
            traffic = arrival_process_for(config, load, phy_obj, num_stations)
            for name, spec in schemes.items():
                for seed in config.seeds:
                    label = (f"fig_load_sweep/{family}/{name}/x={load:g}"
                             f"/seed={seed}")
                    if family == "connected":
                        task = connected_task(
                            spec, num_stations, config, seed, phy=phy,
                            traffic=traffic, label=label,
                        )
                    else:
                        topo_seed = derive_seed(
                            "fig_load_sweep", "topology", num_stations, seed
                        )
                        task = hidden_task(
                            spec, num_stations,
                            config.hidden_disc_radius_small, topo_seed,
                            config, seed, phy=phy, traffic=traffic,
                            label=label,
                        )
                    tasks.append(task)
                    keys.append((family, load, name))
    grouped = group_results(keys, executor.run(tasks))

    columns = []
    for name in schemes:
        columns += [f"{name} Mbps", f"{name} delay ms",
                    f"{name} drop", f"{name} Jain"]
    rows = []
    for family in ("connected", "hidden"):
        for load in config.load_points:
            values: Dict[str, object] = {}
            for name in schemes:
                cells = grouped[(family, load, name)]
                values[f"{name} Mbps"] = sum(
                    r.total_throughput_mbps for r in cells
                ) / len(cells)
                values[f"{name} delay ms"] = sum(
                    r.mean_queue_delay_s for r in cells
                ) / len(cells) * 1e3
                values[f"{name} drop"] = sum(
                    r.drop_rate for r in cells
                ) / len(cells)
                values[f"{name} Jain"] = sum(
                    jain_index(r.per_station_throughput_bps) for r in cells
                ) / len(cells)
            rows.append(ExperimentRow(
                label=f"{family}/x={load:g}", values=values,
            ))

    offered_fps = saturation_frame_rate(phy_obj)
    return ExperimentResult(
        name="Load sweep",
        description=(
            "Throughput (Mbps), mean queueing delay (ms), drop rate and "
            "Jain fairness vs offered load (fraction of the saturation "
            f"frame rate {offered_fps:.0f} fps), {config.traffic_kind} "
            "arrivals, connected and hidden topologies"
        ),
        columns=tuple(columns),
        rows=tuple(rows),
        metadata={
            "num_stations": num_stations,
            "seeds": config.seeds,
            "load_points": config.load_points,
            "traffic_kind": config.traffic_kind,
            "queue_limit": config.traffic_queue_limit,
            "saturation_frame_rate_fps": offered_fps,
            "hidden_disc_radius": config.hidden_disc_radius_small,
            "update_period_s": config.update_period,
            "adaptive_warmup_s": config.adaptive_warmup,
        },
    )
