"""Figure 1 — motivation: IdleSense vs standard 802.11, with and without
hidden nodes, as a function of the number of stations.

Expected shape (paper):

* without hidden nodes IdleSense clearly beats standard 802.11 and stays
  roughly flat with N while 802.11 degrades;
* with hidden nodes IdleSense drops *below* standard 802.11 — the motivating
  observation of the paper.
"""

from __future__ import annotations

from typing import Optional

from ..mac.schemes import idlesense_scheme, standard_80211_scheme
from ..phy.constants import PhyParameters
from .config import ExperimentConfig, QUICK
from .runner import (
    ExperimentResult,
    ExperimentRow,
    average_throughput_mbps,
    make_connected_topology,
    make_hidden_topology,
    run_scheme_connected,
    run_scheme_on_topology,
)

__all__ = ["run_fig1"]


def run_fig1(config: ExperimentConfig = QUICK,
             phy: Optional[PhyParameters] = None) -> ExperimentResult:
    """Reproduce Figure 1 (throughput vs N for 802.11/IdleSense, +- hidden)."""
    columns = (
        "IdleSense (no hidden)",
        "802.11 (no hidden)",
        "802.11 (hidden)",
        "IdleSense (hidden)",
    )
    rows = []
    for num_stations in config.node_counts:
        values = {}
        # Fully connected cases: slotted simulator.
        for name, factory in (
            ("IdleSense (no hidden)", lambda: idlesense_scheme(phy)),
            ("802.11 (no hidden)", lambda: standard_80211_scheme(phy)),
        ):
            results = [
                run_scheme_connected(factory, num_stations, config, seed, phy=phy)
                for seed in config.seeds
            ]
            values[name] = average_throughput_mbps(results)
        # Hidden-node cases: event-driven simulator on random disc placements.
        for name, factory in (
            ("802.11 (hidden)", lambda: standard_80211_scheme(phy)),
            ("IdleSense (hidden)", lambda: idlesense_scheme(phy)),
        ):
            results = []
            for seed in config.seeds:
                topology = make_hidden_topology(
                    num_stations, config.hidden_disc_radius_small, seed
                )
                results.append(
                    run_scheme_on_topology(factory, topology, config, seed, phy=phy)
                )
            values[name] = average_throughput_mbps(results)
        rows.append(ExperimentRow(label=f"N={num_stations}", values=values))
    return ExperimentResult(
        name="Figure 1",
        description=(
            "Throughput (Mbps) of IdleSense and standard 802.11, without and "
            "with hidden nodes"
        ),
        columns=columns,
        rows=tuple(rows),
        metadata={
            "node_counts": config.node_counts,
            "seeds": config.seeds,
            "hidden_disc_radius": config.hidden_disc_radius_small,
            "measure_duration_s": config.measure_duration,
        },
    )
