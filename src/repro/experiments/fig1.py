"""Figure 1 — motivation: IdleSense vs standard 802.11, with and without
hidden nodes, as a function of the number of stations.

Expected shape (paper):

* without hidden nodes IdleSense clearly beats standard 802.11 and stays
  roughly flat with N while 802.11 degrades;
* with hidden nodes IdleSense drops *below* standard 802.11 — the motivating
  observation of the paper.

The grid (4 scheme/topology columns x node counts x seeds) is emitted as one
flat campaign so the executor can parallelise and cache every cell.
"""

from __future__ import annotations

from typing import Optional

from ..phy.constants import PhyParameters
from .campaign import CampaignExecutor, SchemeSpec
from .config import ExperimentConfig, QUICK
from .runner import (
    ExperimentResult,
    ExperimentRow,
    average_throughput_mbps,
    connected_task,
    default_executor,
    group_results,
    hidden_task,
)

__all__ = ["run_fig1"]


def run_fig1(config: ExperimentConfig = QUICK,
             phy: Optional[PhyParameters] = None,
             executor: Optional[CampaignExecutor] = None) -> ExperimentResult:
    """Reproduce Figure 1 (throughput vs N for 802.11/IdleSense, +- hidden)."""
    executor = executor or default_executor()
    columns = (
        "IdleSense (no hidden)",
        "802.11 (no hidden)",
        "802.11 (hidden)",
        "IdleSense (hidden)",
    )
    specs = {
        "IdleSense (no hidden)": SchemeSpec.make("idlesense"),
        "802.11 (no hidden)": SchemeSpec.make("standard-802.11"),
        "802.11 (hidden)": SchemeSpec.make("standard-802.11"),
        "IdleSense (hidden)": SchemeSpec.make("idlesense"),
    }

    tasks, keys = [], []
    for num_stations in config.node_counts:
        for name in columns:
            hidden = "(hidden)" in name
            for seed in config.seeds:
                label = f"fig1/{name}/N={num_stations}/seed={seed}"
                if hidden:
                    # Hidden-node cases: event-driven simulator on random
                    # disc placements, one placement per seed.
                    task = hidden_task(
                        specs[name], num_stations,
                        config.hidden_disc_radius_small, seed,
                        config, seed, phy=phy, label=label,
                    )
                else:
                    # Fully connected cases: slotted simulator.
                    task = connected_task(
                        specs[name], num_stations, config, seed,
                        phy=phy, label=label,
                    )
                tasks.append(task)
                keys.append((name, num_stations))
    grouped = group_results(keys, executor.run(tasks))

    rows = [
        ExperimentRow(
            label=f"N={num_stations}",
            values={
                name: average_throughput_mbps(grouped[(name, num_stations)])
                for name in columns
            },
        )
        for num_stations in config.node_counts
    ]
    return ExperimentResult(
        name="Figure 1",
        description=(
            "Throughput (Mbps) of IdleSense and standard 802.11, without and "
            "with hidden nodes"
        ),
        columns=columns,
        rows=tuple(rows),
        metadata={
            "node_counts": config.node_counts,
            "seeds": config.seeds,
            "hidden_disc_radius": config.hidden_disc_radius_small,
            "measure_duration_s": config.measure_duration,
        },
    )
