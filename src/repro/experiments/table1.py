"""Table I — simulation parameters.

Trivially regenerated from :class:`~repro.phy.constants.PhyParameters`; the
benchmark exists so the parameter set used by every other experiment is
printed alongside their outputs (and so a change to the defaults is caught).
"""

from __future__ import annotations

from typing import Optional

from ..phy.constants import PhyParameters
from .runner import ExperimentResult, ExperimentRow

__all__ = ["run_table1"]


def run_table1(phy: Optional[PhyParameters] = None) -> ExperimentResult:
    """Return the Table I parameter listing as an experiment result."""
    phy = phy or PhyParameters()
    rows = tuple(
        ExperimentRow(label=name, values={"value": value})
        for name, value in phy.as_table().items()
    )
    metadata = {}
    metadata["Ts (us)"] = round(phy.ts * 1e6, 2)
    metadata["Tc (us)"] = round(phy.tc * 1e6, 2)
    metadata["backoff stages (m)"] = phy.num_backoff_stages
    return ExperimentResult(
        name="Table I",
        description="Simulation parameters (IEEE 802.11 OFDM PHY, 20 MHz)",
        columns=("value",),
        rows=rows,
        metadata=metadata,
    )
