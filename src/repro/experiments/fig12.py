"""Figure 12 — fixed-point structure of the RandomReset attempt probability.

The appendix plots, for ``N = 10``, ``m = 5`` and ``CWmin = 2``:

* the conditional attempt probability ``tau_c(0; p0)`` as a function of the
  conditional collision probability ``c`` for several values of ``p0``
  (monotonically decreasing in ``c``, increasing in ``p0``); and
* the curve ``c = 1 - (1 - tau)^(N-1)``.

Their intersections are the fixed points; as ``p0`` grows the intersection
moves up and to the right (higher attempt probability, higher collision
probability), which is Lemma 5's monotonicity.  The runner regenerates both
families of curves and the fixed points.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..analysis.randomreset import (
    randomreset_attempt_probability,
    randomreset_conditional_attempt_probability,
)
from ..phy.constants import PhyParameters
from .runner import ExperimentResult, ExperimentRow

__all__ = ["run_fig12"]


def run_fig12(
    num_stations: int = 10,
    cw_min: int = 2,
    num_stages: int = 5,
    reset_probabilities: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8),
    collision_grid: Optional[Sequence[float]] = None,
    stage: int = 0,
) -> ExperimentResult:
    """Reproduce Figure 12 (fixed point and monotonicity in p0)."""
    collision_grid = tuple(collision_grid or np.linspace(0.0, 0.99, 23))
    columns = [f"tau_c(p0={p0:g})" for p0 in reset_probabilities]
    columns.append("c(tau) inverse")

    rows = []
    for c in collision_grid:
        values = {}
        for p0 in reset_probabilities:
            values[f"tau_c(p0={p0:g})"] = randomreset_conditional_attempt_probability(
                stage, p0, c, cw_min, num_stages
            )
        # The "load" curve c = 1 - (1 - tau)^(N-1) expressed as tau(c) so both
        # families share the x-axis of the figure.
        values["c(tau) inverse"] = 1.0 - (1.0 - c) ** (1.0 / (num_stations - 1))
        rows.append(ExperimentRow(label=f"c={c:.3f}", values=values))

    fixed_points = {
        f"p0={p0:g}": round(
            randomreset_attempt_probability(stage, p0, num_stations, cw_min, num_stages),
            6,
        )
        for p0 in reset_probabilities
    }
    return ExperimentResult(
        name="Figure 12",
        description=(
            "Conditional attempt probability tau_c(0; p0) vs conditional "
            "collision probability, and the resulting fixed points"
        ),
        columns=tuple(columns),
        rows=tuple(rows),
        metadata={
            "num_stations": num_stations,
            "cw_min": cw_min,
            "num_stages": num_stages,
            "stage": stage,
            "fixed_point_tau": fixed_points,
        },
    )
