"""Figure 2 — throughput of p-persistent CSMA vs the attempt probability in a
fully connected network (20 and 40 stations).

The paper plots throughput against ``log(p)`` and uses the bell shape as
visual evidence of quasi-concavity (Theorem 2 proves it).  The runner
produces both the analytical curve (Eq. 3) and a simulated curve from the
slotted simulator, and checks unimodality.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..analysis.persistent import system_throughput_weighted
from ..analysis.quasiconcavity import check_quasiconcavity
from ..phy.constants import PhyParameters
from .campaign import CampaignExecutor, SchemeSpec
from .config import ExperimentConfig, QUICK
from .runner import (
    ExperimentResult,
    ExperimentRow,
    average_throughput_mbps,
    connected_task,
    default_executor,
    group_results,
)

__all__ = ["run_fig2", "default_probability_grid"]


def default_probability_grid(num_points: int = 13) -> Tuple[float, ...]:
    """Log-spaced attempt probabilities covering the paper's x-axis range.

    The paper sweeps log(p) from about -10 to -2 (natural log), i.e. p from
    ~4.5e-5 to ~0.135.
    """
    return tuple(np.exp(np.linspace(-10.0, -2.0, num_points)))


def run_fig2(
    config: ExperimentConfig = QUICK,
    phy: Optional[PhyParameters] = None,
    node_counts: Sequence[int] = (20, 40),
    probabilities: Optional[Sequence[float]] = None,
    simulate: bool = True,
    executor: Optional[CampaignExecutor] = None,
) -> ExperimentResult:
    """Reproduce Figure 2 (throughput vs attempt probability, connected)."""
    executor = executor or default_executor()
    phy = phy or PhyParameters()
    probabilities = tuple(probabilities or default_probability_grid())
    columns = []
    for n in node_counts:
        columns.append(f"analytic N={n}")
        if simulate:
            columns.append(f"simulated N={n}")

    tasks, keys = [], []
    if simulate:
        for p in probabilities:
            for n in node_counts:
                for seed in config.seeds:
                    tasks.append(connected_task(
                        SchemeSpec.make("fixed-p", p=p), n, config, seed,
                        phy=phy, label=f"fig2/p={float(p):.6g}/N={n}/seed={seed}",
                    ))
                    keys.append((float(p), n))
    grouped = group_results(keys, executor.run(tasks))

    rows = []
    curves = {}
    for p in probabilities:
        values = {}
        for n in node_counts:
            analytic = system_throughput_weighted(p, [1.0] * n, phy) / 1e6
            values[f"analytic N={n}"] = analytic
            curves.setdefault(f"analytic N={n}", []).append(analytic)
            if simulate:
                simulated = average_throughput_mbps(grouped[(float(p), n)])
                values[f"simulated N={n}"] = simulated
                curves.setdefault(f"simulated N={n}", []).append(simulated)
        rows.append(ExperimentRow(label=f"log(p)={np.log(p):.2f}", values=values))

    quasiconcavity = {
        name: check_quasiconcavity(np.log(probabilities), curve).is_quasiconcave
        for name, curve in curves.items()
    }
    return ExperimentResult(
        name="Figure 2",
        description=(
            "Throughput (Mbps) of p-persistent CSMA vs log(attempt probability), "
            "fully connected network"
        ),
        columns=tuple(columns),
        rows=tuple(rows),
        metadata={
            "probabilities": tuple(round(float(p), 6) for p in probabilities),
            "quasi_concave": quasiconcavity,
            "seeds": config.seeds,
        },
    )
