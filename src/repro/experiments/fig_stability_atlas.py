"""Stability atlas — a phase diagram of controller stability over
(offered load, cluster separation, scheme) on the two-cluster
hidden-terminal geometry.

The regression suite pins a dramatic failure mode: IdleSense on two
mutually hidden clusters can fall into a *livelock* where both clusters
open their windows in lockstep, collide almost every transmission and
deliver well under 1 Mb/s (seeds 1 and 5 of the documented scenario).
This experiment maps the basin of that failure instead of sampling it at a
point: it sweeps the two-cluster separation through the carrier-sense
boundary (below the sense range the clusters coordinate; above it they are
hidden), crosses that with offered load (an unsaturated point and the
saturated paper workload) and the paper's scheme set, runs every cell over
a seed sweep on the batched conflict backend, and classifies each cell's
throughput time line with :mod:`repro.analysis.stability` into
converged / oscillating / livelock.

The per-cell time lines come from the simulators' ``report_interval``
sampling; with ``--trace`` and ``--probe-interval`` the same cells also
emit per-station ``probe`` records, so ``trace-report`` can show the
controller state inside the livelock basin.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.stability import StabilityReport, classify_stability
from ..phy.constants import PhyParameters
from ..sim.metrics import SimulationResult
from .campaign import CampaignExecutor, RunTask, SchemeSpec, TopologySpec
from .config import ExperimentConfig, QUICK
from .fig_load_sweep import arrival_process_for
from .runner import ExperimentResult, ExperimentRow, default_executor, group_results

__all__ = [
    "run_fig_stability_atlas",
    "ATLAS_SEPARATIONS",
    "ATLAS_LOADS",
    "ATLAS_STATIONS_PER_CLUSTER",
]

#: Cross-cluster separations (metres) swept by the atlas.  The paper PHY
#: senses at 24 m: 20 m keeps the clusters mutually sensing, 28 m makes
#: them hidden (the documented livelock geometry).
ATLAS_SEPARATIONS: Tuple[float, ...] = (20.0, 28.0)

#: Offered-load multipliers; ``None`` is the saturated paper workload.
ATLAS_LOADS: Tuple[Optional[float], ...] = (0.5, None)

ATLAS_STATIONS_PER_CLUSTER = 3

# The documented livelock reproduction runs 1 s measurement after 1 s
# warm-up with intra-cluster spread 0.5 m and the deterministic placement
# seed 0 (tests/sim/test_simulation.py pins seeds 1 and 5 as livelocked).
_ATLAS_DURATION = 1.0
_ATLAS_WARMUP = 1.0
_ATLAS_REPORT_INTERVAL = 0.25
_ATLAS_SPREAD = 0.5
_ATLAS_TOPOLOGY_SEED = 0

#: Seeds that must be part of every atlas sweep so the documented
#: IdleSense livelock region is always sampled.
_LIVELOCK_SEEDS = (1, 5)


def _default_schemes(config: ExperimentConfig) -> Dict[str, SchemeSpec]:
    return {
        "Standard 802.11": SchemeSpec.make("standard-802.11"),
        "IdleSense": SchemeSpec.make("idlesense"),
        "wTOP-CSMA": SchemeSpec.make(
            "wtop-csma", update_period=config.update_period
        ),
    }


def _classify_cell(result: SimulationResult) -> StabilityReport:
    """Classify one cell's throughput time line."""
    return classify_stability(result.throughput_timeline)


def run_fig_stability_atlas(config: ExperimentConfig = QUICK,
                            phy: Optional[PhyParameters] = None,
                            executor: Optional[CampaignExecutor] = None,
                            separations: Optional[Sequence[float]] = None,
                            loads: Optional[Sequence[Optional[float]]] = None,
                            schemes: Optional[Mapping[str, SchemeSpec]] = None,
                            ) -> ExperimentResult:
    """Map controller stability over (load, separation, scheme).

    ``separations`` / ``loads`` / ``schemes`` override the swept axes (the
    acceptance test trims the grid to the IdleSense livelock corner); by
    default the full :data:`ATLAS_SEPARATIONS` x :data:`ATLAS_LOADS` x
    paper-scheme grid runs, over ``config.seeds`` extended with the
    documented livelock seeds 1 and 5.
    """
    executor = executor or default_executor()
    phy_obj = phy or PhyParameters()
    scheme_map = dict(schemes) if schemes is not None else _default_schemes(config)
    separations = tuple(separations) if separations is not None else ATLAS_SEPARATIONS
    loads = tuple(loads) if loads is not None else ATLAS_LOADS
    seeds = tuple(sorted(set(config.seeds) | set(_LIVELOCK_SEEDS)))
    num_stations = 2 * ATLAS_STATIONS_PER_CLUSTER

    tasks: List[RunTask] = []
    keys: List[Tuple[str, float, Optional[float]]] = []
    for name, spec in scheme_map.items():
        for separation in separations:
            topology = TopologySpec.two_cluster(
                ATLAS_STATIONS_PER_CLUSTER, separation,
                _ATLAS_TOPOLOGY_SEED, spread=_ATLAS_SPREAD,
            )
            for load in loads:
                traffic = None
                if load is not None:
                    traffic = arrival_process_for(
                        config, load, phy_obj, num_stations
                    )
                for seed in seeds:
                    load_label = "sat" if load is None else f"x={load:g}"
                    tasks.append(RunTask(
                        scheme=spec,
                        topology=topology,
                        seed=seed,
                        duration=_ATLAS_DURATION,
                        warmup=_ATLAS_WARMUP,
                        report_interval=_ATLAS_REPORT_INTERVAL,
                        phy=phy,
                        traffic=traffic,
                        label=(f"fig_stability_atlas/{name}/sep={separation:g}"
                               f"/{load_label}/seed={seed}"),
                    ))
                    keys.append((name, separation, load))
    grouped = group_results(keys, executor.run(tasks))

    columns = ("Mbps", "classification", "livelock frac",
               "settling s", "amplitude")
    rows: List[ExperimentRow] = []
    livelock_seeds: Dict[str, Tuple[int, ...]] = {}
    for name in scheme_map:
        for separation in separations:
            for load in loads:
                cells = grouped[(name, separation, load)]
                reports = [_classify_cell(r) for r in cells]
                counts: Dict[str, int] = {}
                for report in reports:
                    counts[report.classification] = (
                        counts.get(report.classification, 0) + 1
                    )
                # Modal classification; livelock wins ties (it is the
                # phase boundary the atlas exists to surface).
                modal = max(
                    counts, key=lambda c: (counts[c], c == "livelock")
                )
                settles = [r.settling_time_s for r in reports
                           if r.settling_time_s is not None]
                load_label = "sat" if load is None else f"x={load:g}"
                label = f"{name}/sep={separation:g}/{load_label}"
                rows.append(ExperimentRow(label=label, values={
                    "Mbps": sum(r.total_throughput_mbps for r in cells)
                            / len(cells),
                    "classification": modal,
                    "livelock frac": counts.get("livelock", 0) / len(reports),
                    "settling s": (sum(settles) / len(settles)
                                   if settles else float("nan")),
                    "amplitude": sum(r.oscillation_amplitude for r in reports)
                                 / len(reports),
                }))
                flagged = tuple(
                    seed for seed, report in zip(seeds, reports)
                    if report.is_livelock
                )
                if flagged:
                    livelock_seeds[label] = flagged

    return ExperimentResult(
        name="Stability atlas",
        description=(
            "Controller stability phase diagram on the two-cluster "
            "hidden-terminal geometry: mean throughput (Mbps), modal "
            "stability classification, livelock fraction across seeds, "
            "mean settling time (s) and mean relative tail amplitude vs "
            "(scheme, cluster separation, offered load)"
        ),
        columns=columns,
        rows=tuple(rows),
        metadata={
            "stations_per_cluster": ATLAS_STATIONS_PER_CLUSTER,
            "separations_m": separations,
            "loads": loads,
            "seeds": seeds,
            "duration_s": _ATLAS_DURATION,
            "warmup_s": _ATLAS_WARMUP,
            "report_interval_s": _ATLAS_REPORT_INTERVAL,
            "spread_m": _ATLAS_SPREAD,
            "topology_seed": _ATLAS_TOPOLOGY_SEED,
            "livelock": livelock_seeds,
        },
    )
