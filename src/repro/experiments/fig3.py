"""Figure 3 — throughput vs number of stations in a fully connected network
for standard 802.11, IdleSense, wTOP-CSMA and TORA-CSMA.

Expected shape: the three adaptive schemes stay near the optimal throughput
(flat in N) while standard 802.11 degrades as N grows.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.persistent import optimal_attempt_probability, system_throughput_weighted
from ..phy.constants import PhyParameters
from .campaign import CampaignExecutor
from .config import ExperimentConfig, QUICK
from .runner import (
    ExperimentResult,
    ExperimentRow,
    average_throughput_mbps,
    connected_task,
    default_executor,
    group_results,
    paper_scheme_specs,
)

__all__ = ["run_fig3"]


def run_fig3(config: ExperimentConfig = QUICK,
             phy: Optional[PhyParameters] = None,
             include_optimum: bool = True,
             executor: Optional[CampaignExecutor] = None) -> ExperimentResult:
    """Reproduce Figure 3 (scheme comparison, fully connected)."""
    executor = executor or default_executor()
    phy_obj = phy or PhyParameters()
    specs = paper_scheme_specs(config)
    columns = list(specs.keys())
    if include_optimum:
        columns.append("Analytic optimum")

    tasks, keys = [], []
    for num_stations in config.node_counts:
        for name, spec in specs.items():
            for seed in config.seeds:
                tasks.append(connected_task(
                    spec, num_stations, config, seed, phy=phy,
                    label=f"fig3/{name}/N={num_stations}/seed={seed}",
                ))
                keys.append((name, num_stations))
    grouped = group_results(keys, executor.run(tasks))

    rows = []
    for num_stations in config.node_counts:
        values = {
            name: average_throughput_mbps(grouped[(name, num_stations)])
            for name in specs
        }
        if include_optimum:
            p_star = optimal_attempt_probability(num_stations, phy_obj)
            values["Analytic optimum"] = (
                system_throughput_weighted(p_star, [1.0] * num_stations, phy_obj) / 1e6
            )
        rows.append(ExperimentRow(label=f"N={num_stations}", values=values))
    return ExperimentResult(
        name="Figure 3",
        description=(
            "Throughput (Mbps) vs number of stations, fully connected network"
        ),
        columns=tuple(columns),
        rows=tuple(rows),
        metadata={
            "node_counts": config.node_counts,
            "seeds": config.seeds,
            "update_period_s": config.update_period,
            "adaptive_warmup_s": config.adaptive_warmup,
        },
    )
