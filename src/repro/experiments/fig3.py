"""Figure 3 — throughput vs number of stations in a fully connected network
for standard 802.11, IdleSense, wTOP-CSMA and TORA-CSMA.

Expected shape: the three adaptive schemes stay near the optimal throughput
(flat in N) while standard 802.11 degrades as N grows.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.persistent import optimal_attempt_probability, system_throughput_weighted
from ..phy.constants import PhyParameters
from .config import ExperimentConfig, QUICK
from .runner import (
    ExperimentResult,
    ExperimentRow,
    average_throughput_mbps,
    paper_scheme_factories,
    run_scheme_connected,
)

__all__ = ["run_fig3"]


def run_fig3(config: ExperimentConfig = QUICK,
             phy: Optional[PhyParameters] = None,
             include_optimum: bool = True) -> ExperimentResult:
    """Reproduce Figure 3 (scheme comparison, fully connected)."""
    phy_obj = phy or PhyParameters()
    factories = paper_scheme_factories(config, phy)
    columns = list(factories.keys())
    if include_optimum:
        columns.append("Analytic optimum")

    rows = []
    for num_stations in config.node_counts:
        values = {}
        for name, factory in factories.items():
            results = [
                run_scheme_connected(factory, num_stations, config, seed, phy=phy)
                for seed in config.seeds
            ]
            values[name] = average_throughput_mbps(results)
        if include_optimum:
            p_star = optimal_attempt_probability(num_stations, phy_obj)
            values["Analytic optimum"] = (
                system_throughput_weighted(p_star, [1.0] * num_stations, phy_obj) / 1e6
            )
        rows.append(ExperimentRow(label=f"N={num_stations}", values=values))
    return ExperimentResult(
        name="Figure 3",
        description=(
            "Throughput (Mbps) vs number of stations, fully connected network"
        ),
        columns=tuple(columns),
        rows=tuple(rows),
        metadata={
            "node_counts": config.node_counts,
            "seeds": config.seeds,
            "update_period_s": config.update_period,
            "adaptive_warmup_s": config.adaptive_warmup,
        },
    )
