"""Shared plumbing for the per-figure experiment runners.

The runners all need the same few operations:

* build the paper's topologies (ring of radius 8, or uniform disc of radius
  16/20) for a given node count and seed;
* run one MAC scheme on a topology with the right simulator (slotted for
  fully connected topologies, event-driven whenever hidden nodes can exist);
* average throughput over seeds;
* express results as plain rows that the reporting module can format.

Keeping this logic in one place guarantees that every figure uses identical
measurement methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..mac.schemes import Scheme
from ..phy.constants import PhyParameters
from ..sim.dynamics import ActivitySchedule
from ..sim.metrics import SimulationResult
from ..sim.simulation import WlanSimulation
from ..sim.slotted import SlottedSimulator
from ..topology.graph import ConnectivityGraph
from ..topology.scenarios import fully_connected_scenario, hidden_node_scenario
from .config import ExperimentConfig

__all__ = [
    "SchemeFactory",
    "ExperimentRow",
    "ExperimentResult",
    "make_connected_topology",
    "make_hidden_topology",
    "run_scheme_connected",
    "run_scheme_on_topology",
    "average_throughput_mbps",
    "paper_scheme_factories",
]

#: A callable producing a fresh Scheme (schemes hold mutable controllers, so
#: each run needs its own instance).
SchemeFactory = Callable[[], Scheme]


@dataclass(frozen=True)
class ExperimentRow:
    """One row of an experiment's output table.

    Values are usually floats (throughputs, probabilities) but strings are
    allowed for descriptive tables such as Table I.
    """

    label: str
    values: Mapping[str, object]


@dataclass(frozen=True)
class ExperimentResult:
    """Structured output of one experiment runner.

    ``columns`` fixes the column ordering used when rendering text tables;
    ``rows`` hold the data; ``metadata`` records the configuration that
    produced them (durations, seeds, topology parameters).
    """

    name: str
    description: str
    columns: Tuple[str, ...]
    rows: Tuple[ExperimentRow, ...]
    metadata: Mapping[str, object] = field(default_factory=dict)

    def column(self, name: str) -> List[float]:
        """Extract one column as a list (missing cells become NaN)."""
        return [float(row.values.get(name, float("nan"))) for row in self.rows]

    def row_labels(self) -> List[str]:
        return [row.label for row in self.rows]


# ----------------------------------------------------------------------
# Topology construction
# ----------------------------------------------------------------------
def make_connected_topology(num_stations: int) -> ConnectivityGraph:
    """The paper's fully connected placement (ring of radius 8)."""
    return fully_connected_scenario(num_stations)


def make_hidden_topology(num_stations: int, radius: float,
                         seed: int) -> ConnectivityGraph:
    """The paper's hidden-node placement (uniform disc of the given radius)."""
    rng = np.random.default_rng(seed)
    return hidden_node_scenario(
        num_stations, rng, radius=radius, require_hidden_pairs=True
    )


# ----------------------------------------------------------------------
# Simulation execution helpers
# ----------------------------------------------------------------------
def _durations_for(scheme: Scheme, config: ExperimentConfig) -> Tuple[float, float]:
    warmup = config.adaptive_warmup if scheme.adaptive else config.warmup
    return config.measure_duration, warmup


def run_scheme_connected(
    scheme_factory: SchemeFactory,
    num_stations: int,
    config: ExperimentConfig,
    seed: int,
    phy: Optional[PhyParameters] = None,
    activity: Optional[ActivitySchedule] = None,
    report_interval: Optional[float] = None,
) -> SimulationResult:
    """Run a scheme on a fully connected network using the slotted simulator."""
    scheme = scheme_factory()
    duration, warmup = _durations_for(scheme, config)
    simulator = SlottedSimulator(
        scheme,
        num_stations=num_stations,
        phy=phy,
        seed=seed,
        activity=activity,
        report_interval=report_interval,
    )
    return simulator.run(duration=duration, warmup=warmup)


def run_scheme_on_topology(
    scheme_factory: SchemeFactory,
    topology: ConnectivityGraph,
    config: ExperimentConfig,
    seed: int,
    phy: Optional[PhyParameters] = None,
    activity: Optional[ActivitySchedule] = None,
    report_interval: Optional[float] = None,
) -> SimulationResult:
    """Run a scheme on an arbitrary topology using the event-driven simulator."""
    scheme = scheme_factory()
    duration, warmup = _durations_for(scheme, config)
    simulation = WlanSimulation(
        scheme=scheme,
        connectivity=topology,
        phy=phy,
        seed=seed,
        activity=activity,
        report_interval=report_interval,
    )
    return simulation.run(duration=duration, warmup=warmup)


def average_throughput_mbps(results: Sequence[SimulationResult]) -> float:
    """Mean system throughput over repeated runs, in Mbps."""
    if not results:
        raise ValueError("need at least one result")
    return float(np.mean([r.total_throughput_mbps for r in results]))


# ----------------------------------------------------------------------
# The paper's four schemes, as factories parameterised by the config
# ----------------------------------------------------------------------
def paper_scheme_factories(config: ExperimentConfig,
                           phy: Optional[PhyParameters] = None
                           ) -> Dict[str, SchemeFactory]:
    """Factories for the four schemes compared throughout the evaluation."""
    from ..mac.schemes import (
        idlesense_scheme,
        standard_80211_scheme,
        tora_csma_scheme,
        wtop_csma_scheme,
    )

    return {
        "Standard 802.11": lambda: standard_80211_scheme(phy),
        "IdleSense": lambda: idlesense_scheme(phy),
        "wTOP-CSMA": lambda: wtop_csma_scheme(phy, update_period=config.update_period),
        "TORA-CSMA": lambda: tora_csma_scheme(phy, update_period=config.update_period),
    }
