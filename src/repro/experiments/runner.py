"""Shared plumbing for the per-figure experiment runners.

The runners all need the same few operations:

* build the paper's topologies (ring of radius 8, or uniform disc of radius
  16/20) for a given node count and seed;
* describe one MAC-scheme-on-topology simulation as a declarative
  :class:`~repro.experiments.campaign.RunTask` (:func:`connected_task`,
  :func:`hidden_task`) so whole figures execute through a
  :class:`~repro.experiments.campaign.CampaignExecutor` — in parallel and
  with result caching;
* run one such cell directly (:func:`run_scheme_connected`,
  :func:`run_scheme_on_topology`) for interactive/benchmark use;
* average throughput over seeds and express results as plain rows that the
  reporting module can format.

Keeping this logic in one place guarantees that every figure uses identical
measurement methodology, whichever execution path it takes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..mac.schemes import Scheme
from ..phy.constants import PhyParameters
from ..sim.dynamics import ActivitySchedule
from ..sim.metrics import SimulationResult
from ..sim.simulation import WlanSimulation
from ..sim.slotted import SlottedSimulator
from ..topology.graph import ConnectivityGraph
from ..topology.scenarios import fully_connected_scenario, hidden_node_scenario
from ..traffic import ArrivalProcess
from .campaign import CampaignExecutor, RunTask, SchemeSpec, TopologySpec
from .config import ExperimentConfig

__all__ = [
    "SchemeFactory",
    "ExperimentRow",
    "ExperimentResult",
    "make_connected_topology",
    "make_hidden_topology",
    "run_scheme_connected",
    "run_scheme_on_topology",
    "average_throughput_mbps",
    "paper_scheme_factories",
    "paper_scheme_specs",
    "connected_task",
    "hidden_task",
    "group_results",
    "default_executor",
]

#: A callable producing a fresh Scheme (schemes hold mutable controllers, so
#: each run needs its own instance).
SchemeFactory = Callable[[], Scheme]


@dataclass(frozen=True)
class ExperimentRow:
    """One row of an experiment's output table.

    Values are usually floats (throughputs, probabilities) but strings are
    allowed for descriptive tables such as Table I.
    """

    label: str
    values: Mapping[str, object]


@dataclass(frozen=True)
class ExperimentResult:
    """Structured output of one experiment runner.

    ``columns`` fixes the column ordering used when rendering text tables;
    ``rows`` hold the data; ``metadata`` records the configuration that
    produced them (durations, seeds, topology parameters).
    """

    name: str
    description: str
    columns: Tuple[str, ...]
    rows: Tuple[ExperimentRow, ...]
    metadata: Mapping[str, object] = field(default_factory=dict)

    def column(self, name: str) -> List[float]:
        """Extract one column as a list (missing cells become NaN)."""
        return [float(row.values.get(name, float("nan"))) for row in self.rows]

    def row_labels(self) -> List[str]:
        return [row.label for row in self.rows]


# ----------------------------------------------------------------------
# Topology construction
# ----------------------------------------------------------------------
def make_connected_topology(num_stations: int) -> ConnectivityGraph:
    """The paper's fully connected placement (ring of radius 8)."""
    return fully_connected_scenario(num_stations)


def make_hidden_topology(num_stations: int, radius: float,
                         seed: int) -> ConnectivityGraph:
    """The paper's hidden-node placement (uniform disc of the given radius)."""
    rng = np.random.default_rng(seed)
    return hidden_node_scenario(
        num_stations, rng, radius=radius, require_hidden_pairs=True
    )


# ----------------------------------------------------------------------
# Campaign task construction
# ----------------------------------------------------------------------
def default_executor() -> CampaignExecutor:
    """Serial, cache-less executor used when a runner gets none injected."""
    return CampaignExecutor(jobs=1)


def connected_task(
    spec: SchemeSpec,
    num_stations: int,
    config: ExperimentConfig,
    seed: int,
    phy: Optional[PhyParameters] = None,
    activity: Optional[Sequence[Tuple[float, int]]] = None,
    report_interval: Optional[float] = None,
    traffic: Optional["ArrivalProcess"] = None,
    label: str = "",
) -> RunTask:
    """Task for one scheme on a fully connected network (slotted simulator)."""
    duration, warmup = config.durations_for(spec.adaptive)
    return RunTask(
        scheme=spec,
        topology=TopologySpec.connected(num_stations),
        seed=seed,
        duration=duration,
        warmup=warmup,
        report_interval=report_interval,
        activity=tuple(activity) if activity is not None else None,
        phy=phy,
        traffic=traffic,
        label=label,
    )


def hidden_task(
    spec: SchemeSpec,
    num_stations: int,
    radius: float,
    topology_seed: int,
    config: ExperimentConfig,
    seed: int,
    phy: Optional[PhyParameters] = None,
    activity: Optional[Sequence[Tuple[float, int]]] = None,
    report_interval: Optional[float] = None,
    traffic: Optional["ArrivalProcess"] = None,
    label: str = "",
) -> RunTask:
    """Task for one scheme on a hidden-node disc (event-driven simulator)."""
    duration, warmup = config.durations_for(spec.adaptive)
    return RunTask(
        scheme=spec,
        topology=TopologySpec.hidden_disc(num_stations, radius, topology_seed),
        seed=seed,
        duration=duration,
        warmup=warmup,
        report_interval=report_interval,
        activity=tuple(activity) if activity is not None else None,
        phy=phy,
        traffic=traffic,
        label=label,
    )


def group_results(
    keys: Sequence[object], results: Sequence[SimulationResult]
) -> Dict[object, List[SimulationResult]]:
    """Re-group a flat campaign result list by the caller's cell keys.

    The runners submit their whole figure grid as one flat task list (so the
    executor can parallelise across every cell at once) and tag each task
    with a key such as ``(column, num_stations)``; this folds the flat result
    list back into per-cell buckets, preserving submission order within each.
    """
    grouped: Dict[object, List[SimulationResult]] = {}
    for key, result in zip(keys, results):
        grouped.setdefault(key, []).append(result)
    return grouped


# ----------------------------------------------------------------------
# Simulation execution helpers
# ----------------------------------------------------------------------
def _durations_for(scheme: Scheme, config: ExperimentConfig) -> Tuple[float, float]:
    return config.durations_for(scheme.adaptive)


def run_scheme_connected(
    scheme_factory: SchemeFactory,
    num_stations: int,
    config: ExperimentConfig,
    seed: int,
    phy: Optional[PhyParameters] = None,
    activity: Optional[ActivitySchedule] = None,
    report_interval: Optional[float] = None,
) -> SimulationResult:
    """Run a scheme on a fully connected network using the slotted simulator."""
    scheme = scheme_factory()
    duration, warmup = _durations_for(scheme, config)
    simulator = SlottedSimulator(
        scheme,
        num_stations=num_stations,
        phy=phy,
        seed=seed,
        activity=activity,
        report_interval=report_interval,
    )
    return simulator.run(duration=duration, warmup=warmup)


def run_scheme_on_topology(
    scheme_factory: SchemeFactory,
    topology: ConnectivityGraph,
    config: ExperimentConfig,
    seed: int,
    phy: Optional[PhyParameters] = None,
    activity: Optional[ActivitySchedule] = None,
    report_interval: Optional[float] = None,
) -> SimulationResult:
    """Run a scheme on an arbitrary topology using the event-driven simulator."""
    scheme = scheme_factory()
    duration, warmup = _durations_for(scheme, config)
    simulation = WlanSimulation(
        scheme=scheme,
        connectivity=topology,
        phy=phy,
        seed=seed,
        activity=activity,
        report_interval=report_interval,
    )
    return simulation.run(duration=duration, warmup=warmup)


def average_throughput_mbps(results: Sequence[SimulationResult]) -> float:
    """Mean system throughput over repeated runs, in Mbps."""
    if not results:
        raise ValueError("need at least one result")
    return float(np.mean([r.total_throughput_mbps for r in results]))


# ----------------------------------------------------------------------
# The paper's four schemes, as factories parameterised by the config
# ----------------------------------------------------------------------
def paper_scheme_factories(config: ExperimentConfig,
                           phy: Optional[PhyParameters] = None
                           ) -> Dict[str, SchemeFactory]:
    """Factories for the four schemes compared throughout the evaluation."""
    from ..mac.schemes import (
        idlesense_scheme,
        standard_80211_scheme,
        tora_csma_scheme,
        wtop_csma_scheme,
    )

    return {
        "Standard 802.11": lambda: standard_80211_scheme(phy),
        "IdleSense": lambda: idlesense_scheme(phy),
        "wTOP-CSMA": lambda: wtop_csma_scheme(phy, update_period=config.update_period),
        "TORA-CSMA": lambda: tora_csma_scheme(phy, update_period=config.update_period),
    }


def paper_scheme_specs(config: ExperimentConfig) -> Dict[str, SchemeSpec]:
    """Declarative counterparts of :func:`paper_scheme_factories`.

    These build the same four schemes (the PHY is supplied by the task that
    embeds the spec), but as picklable descriptors the campaign engine can
    hash, cache and ship to worker processes.
    """
    return {
        "Standard 802.11": SchemeSpec.make("standard-802.11"),
        "IdleSense": SchemeSpec.make("idlesense"),
        "wTOP-CSMA": SchemeSpec.make(
            "wtop-csma", update_period=config.update_period
        ),
        "TORA-CSMA": SchemeSpec.make(
            "tora-csma", update_period=config.update_period
        ),
    }
