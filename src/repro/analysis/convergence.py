"""Convergence and short-term behaviour diagnostics.

The paper's dynamic experiments (Figures 8-11) show throughput and the control
variable as time series; the interesting quantities are *how fast* the
controller re-converges after a change and *how stable* it is afterwards.
This module extracts those quantities from the time lines the simulators
record, and adds the sliding-window (short-term) fairness metric that the
IdleSense line of work emphasises.

Functions operate on plain ``(time, value)`` sequences so they work equally on
:class:`~repro.sim.metrics.SimulationResult` time lines and on controller
histories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from .fairness import jain_index

__all__ = [
    "settling_time",
    "steady_state_statistics",
    "segment_settling_times",
    "sliding_window_jain",
    "ConvergenceReport",
    "analyze_convergence",
]


def _split(series: Sequence[Tuple[float, float]]) -> Tuple[np.ndarray, np.ndarray]:
    if not series:
        raise ValueError("series must be non-empty")
    times = np.array([t for t, _ in series], dtype=float)
    values = np.array([v for _, v in series], dtype=float)
    if np.any(np.diff(times) < 0):
        raise ValueError("series times must be non-decreasing")
    return times, values


def settling_time(series: Sequence[Tuple[float, float]],
                  target: float,
                  tolerance: float = 0.1,
                  start: Optional[float] = None) -> Optional[float]:
    """Time (relative to ``start``) after which the series stays near ``target``.

    "Near" means within ``tolerance * |target|`` for every later sample.
    Returns None if the series never settles.
    """
    if target == 0:
        raise ValueError("target must be non-zero")
    times, values = _split(series)
    if start is not None:
        mask = times >= start
        times, values = times[mask], values[mask]
        if times.size == 0:
            return None
        offset = start
    else:
        offset = times[0]
    within = np.abs(values - target) <= tolerance * abs(target)
    for index in range(len(values)):
        if np.all(within[index:]):
            return float(times[index] - offset)
    return None


def steady_state_statistics(series: Sequence[Tuple[float, float]],
                            tail_fraction: float = 0.5) -> Tuple[float, float]:
    """Mean and standard deviation of the last ``tail_fraction`` of a series."""
    if not 0.0 < tail_fraction <= 1.0:
        raise ValueError("tail_fraction must lie in (0, 1]")
    _, values = _split(series)
    tail = values[int(len(values) * (1.0 - tail_fraction)):]
    if tail.size == 0:
        tail = values[-1:]
    return float(np.mean(tail)), float(np.std(tail))


def segment_settling_times(series: Sequence[Tuple[float, float]],
                           change_times: Sequence[float],
                           tolerance: float = 0.1,
                           ) -> Tuple[Optional[float], ...]:
    """Settling time after each change point, against that segment's own tail mean.

    For each segment (between consecutive change times) the target is the mean
    of the segment's second half; the settling time is how long after the
    change the series first stays within ``tolerance`` of that target.
    """
    times, values = _split(series)
    boundaries = [times[0], *sorted(change_times), times[-1] + 1e-9]
    results = []
    for start, end in zip(boundaries[:-1], boundaries[1:]):
        mask = (times >= start) & (times < end)
        segment = list(zip(times[mask], values[mask]))
        if len(segment) < 2:
            results.append(None)
            continue
        target, _ = steady_state_statistics(segment, tail_fraction=0.5)
        if target == 0:
            results.append(None)
            continue
        results.append(settling_time(segment, target, tolerance=tolerance, start=start))
    return tuple(results)


def sliding_window_jain(per_station_bits: Sequence[Sequence[float]],
                        window: int) -> np.ndarray:
    """Short-term fairness: Jain index over sliding windows of service.

    ``per_station_bits[t][i]`` is the number of bits station ``i`` received in
    reporting interval ``t``; the result holds the Jain index of the per-station
    totals over each length-``window`` span of intervals.
    """
    matrix = np.asarray(per_station_bits, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("per_station_bits must be a 2-D array-like")
    if window < 1 or window > matrix.shape[0]:
        raise ValueError("window must lie in [1, number of intervals]")
    indices = range(matrix.shape[0] - window + 1)
    return np.array([
        jain_index(matrix[start:start + window].sum(axis=0))
        for start in indices
    ])


@dataclass(frozen=True)
class ConvergenceReport:
    """Summary of a controller's throughput time line."""

    steady_state_mean: float
    steady_state_std: float
    settling_time_s: Optional[float]
    worst_dip: float

    @property
    def coefficient_of_variation(self) -> float:
        if self.steady_state_mean == 0:
            return 0.0
        return self.steady_state_std / self.steady_state_mean


def analyze_convergence(series: Sequence[Tuple[float, float]],
                        tolerance: float = 0.1) -> ConvergenceReport:
    """Produce a :class:`ConvergenceReport` for a throughput time line."""
    times, values = _split(series)
    mean, std = steady_state_statistics(series, tail_fraction=0.5)
    settle = settling_time(series, mean, tolerance=tolerance) if mean else None
    worst_dip = float(mean - values.min()) if values.size else 0.0
    return ConvergenceReport(
        steady_state_mean=mean,
        steady_state_std=std,
        settling_time_s=settle,
        worst_dip=worst_dip,
    )
