"""Quasi-concavity diagnostics.

The Kiefer-Wolfowitz scheme converges to the global maximiser only when the
objective is strictly quasi-concave (unimodal) in the control variable
(Theorem 2 and the regularity conditions of Section III-B).  The paper proves
this analytically for fully connected networks and argues it empirically
(Figures 4 and 5) for hidden-node topologies.

This module provides the empirical check: given samples ``(x_i, y_i)`` of a
throughput curve it decides whether the curve is (approximately) unimodal,
tolerant of measurement noise, and reports where the mode lies.  It is used
by the Figure 2/4/5/13 experiments and by property-based tests of the
analytical models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "QuasiConcavityReport",
    "is_quasiconcave",
    "check_quasiconcavity",
    "count_direction_changes",
    "unimodality_violation",
]


@dataclass(frozen=True)
class QuasiConcavityReport:
    """Outcome of an empirical unimodality check.

    Attributes
    ----------
    is_quasiconcave:
        True when the (noise-tolerant) check passes.
    argmax_index / argmax_x / max_value:
        Location and value of the sample maximum.
    violation:
        Largest "rise after fall" / "fall before rise" magnitude relative to
        the curve's dynamic range; 0 for a perfectly unimodal curve.
    direction_changes:
        Number of sign changes of the first difference after noise filtering.
    """

    is_quasiconcave: bool
    argmax_index: int
    argmax_x: float
    max_value: float
    violation: float
    direction_changes: int


def _validate_curve(x: np.ndarray, y: np.ndarray) -> None:
    if x.ndim != 1 or y.ndim != 1:
        raise ValueError("x and y must be one-dimensional")
    if x.size != y.size:
        raise ValueError("x and y must have the same length")
    if x.size < 3:
        raise ValueError("need at least three samples")
    if np.any(np.diff(x) <= 0):
        raise ValueError("x must be strictly increasing")


def count_direction_changes(y: Sequence[float], noise_tolerance: float = 0.0) -> int:
    """Number of up/down direction changes in ``y``, ignoring small wiggles.

    Differences with magnitude at most ``noise_tolerance`` are treated as
    flat and do not contribute a direction.
    """
    values = np.asarray(y, dtype=float)
    diffs = np.diff(values)
    directions = []
    for d in diffs:
        if abs(d) <= noise_tolerance:
            continue
        directions.append(1 if d > 0 else -1)
    changes = 0
    for previous, current in zip(directions, directions[1:]):
        if previous != current:
            changes += 1
    return changes


def unimodality_violation(y: Sequence[float]) -> float:
    """Magnitude of the worst unimodality violation, normalised to the range.

    For each index the curve should be below the running maximum before the
    argmax and below the running maximum (from the right) after it.  The
    violation is how far the curve *rises again* after having fallen, relative
    to the overall dynamic range of the curve (0 = perfectly unimodal).
    """
    values = np.asarray(y, dtype=float)
    if values.size < 3:
        return 0.0
    dynamic_range = float(values.max() - values.min())
    if dynamic_range <= 0:
        return 0.0
    argmax = int(np.argmax(values))
    violation = 0.0
    # Left of the mode the curve should be non-decreasing: any drop that later
    # recovers is a violation of size (recovered amount).
    running_max = -np.inf
    for value in values[: argmax + 1]:
        if value < running_max:
            pass  # a dip; only matters if something later exceeds it again
        running_max = max(running_max, value)
    left = values[: argmax + 1]
    for i in range(1, left.size):
        drop = float(np.max(left[:i]) - left[i])
        if drop > 0:
            recovery = float(np.max(left[i:]) - left[i])
            violation = max(violation, min(drop, recovery))
    right = values[argmax:]
    for i in range(1, right.size):
        rise = float(right[i] - np.min(right[:i]))
        if rise > 0:
            violation = max(violation, min(rise, float(np.max(right[:i]) - np.min(right[:i])) + rise) if right[:i].size else rise)
            violation = max(violation, rise)
    return violation / dynamic_range


def check_quasiconcavity(x: Sequence[float], y: Sequence[float],
                         noise_tolerance: float = 0.05) -> QuasiConcavityReport:
    """Check a sampled curve for (noise-tolerant) unimodality.

    Parameters
    ----------
    x, y:
        Sample locations (strictly increasing) and values.
    noise_tolerance:
        Fraction of the curve's dynamic range below which a violation is
        attributed to measurement noise rather than genuine multi-modality.
        The paper's simulated curves (Figs. 4-5) are noisy; 5% is a
        conservative default.
    """
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    _validate_curve(x_arr, y_arr)
    dynamic_range = float(y_arr.max() - y_arr.min())
    violation = unimodality_violation(y_arr)
    changes = count_direction_changes(y_arr, noise_tolerance * dynamic_range)
    argmax = int(np.argmax(y_arr))
    return QuasiConcavityReport(
        is_quasiconcave=violation <= noise_tolerance,
        argmax_index=argmax,
        argmax_x=float(x_arr[argmax]),
        max_value=float(y_arr[argmax]),
        violation=violation,
        direction_changes=changes,
    )


def is_quasiconcave(x: Sequence[float], y: Sequence[float],
                    noise_tolerance: float = 0.05) -> bool:
    """Shorthand for ``check_quasiconcavity(...).is_quasiconcave``."""
    return check_quasiconcavity(x, y, noise_tolerance).is_quasiconcave
