"""Analytical model of the RandomReset exponential-backoff family.

Implements the fixed-point machinery of the paper's Appendix A:

* the stage weights ``alpha_j(c)`` (Eq. 9, via the recursion used in
  Lemma 4: ``alpha_m = 2^m`` and ``alpha_j = (1-c) 2^j + c alpha_{j+1}``);
* the conditional attempt probability ``tau_c(q)`` of a generic reset
  distribution ``q`` (Eq. 9) and of RandomReset(j; p0) (Eq. 11);
* the fixed point with ``c = 1 - (1 - tau)^(N-1)`` (Eq. 10);
* the resulting saturation throughput
  ``S~(j, p0) = S(tau(j; p0), 1)`` used in Figures 5, 12 and 13;
* the attainable attempt-probability range (Lemma 6) and the equivalence
  map from a generic reset distribution to a RandomReset(j; p0) pair
  (Lemma 7).

All formulas assume a fully connected saturated network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from ..phy.constants import PhyParameters
from .persistent import slot_probabilities

__all__ = [
    "stage_alphas",
    "conditional_attempt_probability",
    "randomreset_distribution",
    "randomreset_conditional_attempt_probability",
    "solve_attempt_probability",
    "randomreset_attempt_probability",
    "randomreset_throughput",
    "attempt_probability_range",
    "equivalent_randomreset",
    "RandomResetModel",
]


def _validate_stage(stage: int, num_stages: int) -> None:
    if not 0 <= stage <= num_stages:
        raise ValueError(f"stage must lie in [0, {num_stages}], got {stage}")


def stage_alphas(collision_probability: float, num_stages: int) -> np.ndarray:
    """Stage weights ``alpha_j(c)`` for ``j = 0 .. m``.

    Computed with the backward recursion of Lemma 4::

        alpha_m(c) = 2^m
        alpha_j(c) = (1 - c) 2^j + c alpha_{j+1}(c)

    For ``c < 1`` the sequence is strictly increasing in ``j`` (Lemma 4).
    """
    if not 0.0 <= collision_probability <= 1.0:
        raise ValueError("collision probability must lie in [0, 1]")
    if num_stages < 0:
        raise ValueError("num_stages must be non-negative")
    c = collision_probability
    alphas = np.empty(num_stages + 1, dtype=float)
    alphas[num_stages] = 2.0 ** num_stages
    for j in range(num_stages - 1, -1, -1):
        alphas[j] = (1.0 - c) * (2.0 ** j) + c * alphas[j + 1]
    return alphas


def conditional_attempt_probability(reset_distribution: Sequence[float],
                                    collision_probability: float,
                                    cw_min: int) -> float:
    """``tau_c(q)`` of Eq. (9) for a generic reset distribution ``q``.

    ``kappa_0 = 2 / CWmin`` is the per-slot attempt probability in backoff
    stage 0 (mean window ``CWmin / 2``), matching the node-side rule
    "transmit in a slot with probability 2 / CW" of Algorithm 2.
    """
    q = np.asarray(reset_distribution, dtype=float)
    if q.ndim != 1 or q.size < 1:
        raise ValueError("reset distribution must be a non-empty vector")
    if np.any(q < -1e-12):
        raise ValueError("reset distribution entries must be non-negative")
    if not np.isclose(q.sum(), 1.0, atol=1e-9):
        raise ValueError("reset distribution must sum to 1")
    if cw_min < 1:
        raise ValueError("cw_min must be at least 1")
    num_stages = q.size - 1
    alphas = stage_alphas(collision_probability, num_stages)
    kappa0 = 2.0 / cw_min
    return float(kappa0 / np.dot(q, alphas))


def randomreset_distribution(stage: int, reset_probability: float,
                             num_stages: int) -> np.ndarray:
    """Reset distribution of RandomReset(j; p0) (Definition 4).

    Stage ``j`` receives probability ``p0``; the remaining ``1 - p0`` is
    split uniformly over stages ``j+1 .. m``.  At the boundary ``j = m`` all
    mass must go to stage ``m`` (only ``p0 = 1`` is meaningful there).
    """
    if not 0.0 <= reset_probability <= 1.0:
        raise ValueError("reset probability must lie in [0, 1]")
    _validate_stage(stage, num_stages)
    q = np.zeros(num_stages + 1, dtype=float)
    if stage == num_stages:
        if not np.isclose(reset_probability, 1.0):
            raise ValueError("at stage m the reset probability must be 1")
        q[stage] = 1.0
        return q
    q[stage] = reset_probability
    higher = num_stages - stage
    q[stage + 1:] = (1.0 - reset_probability) / higher
    return q


def randomreset_conditional_attempt_probability(stage: int, reset_probability: float,
                                                collision_probability: float,
                                                cw_min: int, num_stages: int) -> float:
    """``tau_c(j; p0)`` of Eq. (11)."""
    q = randomreset_distribution(stage, reset_probability, num_stages)
    return conditional_attempt_probability(q, collision_probability, cw_min)


def solve_attempt_probability(reset_distribution: Sequence[float], num_stations: int,
                              cw_min: int, tolerance: float = 1e-12) -> Tuple[float, float]:
    """Solve the fixed point (Eq. 9-10) for a generic reset distribution.

    Returns ``(tau, c)``.  ``tau_c(q)`` is continuous and decreasing in ``c``
    while ``c(tau) = 1 - (1 - tau)^(N-1)`` is increasing in ``tau``; the
    intersection is unique (paper, citing [1]), so a bracketed root search on
    ``tau`` suffices.
    """
    if num_stations < 1:
        raise ValueError("num_stations must be at least 1")

    def residual(tau: float) -> float:
        c = 1.0 - (1.0 - tau) ** (num_stations - 1)
        return conditional_attempt_probability(reset_distribution, c, cw_min) - tau

    if num_stations == 1:
        tau = conditional_attempt_probability(reset_distribution, 0.0, cw_min)
        return tau, 0.0

    lower, upper = 1e-12, 1.0 - 1e-12
    tau = float(optimize.brentq(residual, lower, upper, xtol=tolerance))
    c = 1.0 - (1.0 - tau) ** (num_stations - 1)
    return tau, c


def randomreset_attempt_probability(stage: int, reset_probability: float,
                                    num_stations: int, cw_min: int,
                                    num_stages: int) -> float:
    """``tau(j; p0)``: the fixed-point attempt probability of RandomReset."""
    q = randomreset_distribution(stage, reset_probability, num_stages)
    tau, _ = solve_attempt_probability(q, num_stations, cw_min)
    return tau


def randomreset_throughput(stage: int, reset_probability: float, num_stations: int,
                           phy: Optional[PhyParameters] = None) -> float:
    """Saturation throughput ``S~(j, p0)`` in bits/s (fully connected).

    Every station attempts with the fixed-point probability ``tau(j; p0)``;
    the renewal-slot throughput formula (Eq. 2/3 with equal weights) then
    applies.
    """
    phy = phy or PhyParameters()
    tau = randomreset_attempt_probability(
        stage, reset_probability, num_stations, phy.cw_min, phy.num_backoff_stages
    )
    p_idle, p_success, p_collision = slot_probabilities([tau] * num_stations)
    denom = p_idle * phy.slot_time + p_success * phy.ts + p_collision * phy.tc
    return p_success * phy.payload_bits / denom


def attempt_probability_range(num_stations: int, cw_min: int,
                              num_stages: int) -> Tuple[float, float]:
    """Attainable ``tau`` range of exponential-backoff policies (Lemma 6).

    The minimum is achieved by RandomReset(m-1; 0) (equivalently always
    resetting to stage ``m``) and the maximum by RandomReset(0; 1) (standard
    reset to stage 0).
    """
    if num_stages < 1:
        raise ValueError("num_stages must be at least 1 for a non-trivial range")
    low = randomreset_attempt_probability(num_stages - 1, 0.0, num_stations,
                                          cw_min, num_stages)
    high = randomreset_attempt_probability(0, 1.0, num_stations, cw_min, num_stages)
    return low, high


def equivalent_randomreset(reset_distribution: Sequence[float], num_stations: int,
                           cw_min: int, tolerance: float = 1e-9) -> Tuple[int, float]:
    """Find ``(j, p0)`` with the same fixed-point ``tau`` as ``q`` (Lemma 7).

    The paper proves such a pair always exists because the RandomReset family
    sweeps the full attainable attempt-probability range continuously and
    monotonically in ``p0`` for each ``j``, and consecutive ``j`` ranges
    overlap.
    """
    q = np.asarray(reset_distribution, dtype=float)
    num_stages = q.size - 1
    target_tau, _ = solve_attempt_probability(q, num_stations, cw_min)

    for stage in range(num_stages):
        low = randomreset_attempt_probability(stage, 0.0, num_stations, cw_min, num_stages)
        high = randomreset_attempt_probability(stage, 1.0, num_stations, cw_min, num_stages)
        if low - tolerance <= target_tau <= high + tolerance:
            def residual(p0: float) -> float:
                return (
                    randomreset_attempt_probability(
                        stage, p0, num_stations, cw_min, num_stages
                    )
                    - target_tau
                )

            if residual(0.0) >= 0:
                return stage, 0.0
            if residual(1.0) <= 0:
                return stage, 1.0
            p0 = float(optimize.brentq(residual, 0.0, 1.0, xtol=tolerance))
            return stage, p0
    # Fall back to the boundary policies.
    low_all, high_all = attempt_probability_range(num_stations, cw_min, num_stages)
    if target_tau <= low_all:
        return num_stages - 1, 0.0
    return 0, 1.0


@dataclass(frozen=True)
class RandomResetModel:
    """Facade bundling PHY constants with the RandomReset fixed point."""

    num_stations: int
    phy: PhyParameters = PhyParameters()

    def __post_init__(self) -> None:
        if self.num_stations < 1:
            raise ValueError("num_stations must be at least 1")

    @property
    def num_stages(self) -> int:
        return self.phy.num_backoff_stages

    def attempt_probability(self, stage: int, reset_probability: float) -> float:
        """Fixed-point ``tau(j; p0)``."""
        return randomreset_attempt_probability(
            stage, reset_probability, self.num_stations, self.phy.cw_min, self.num_stages
        )

    def conditional_attempt_probability(self, stage: int, reset_probability: float,
                                        collision_probability: float) -> float:
        """``tau_c(j; p0)`` for a given conditional collision probability."""
        return randomreset_conditional_attempt_probability(
            stage, reset_probability, collision_probability, self.phy.cw_min,
            self.num_stages,
        )

    def throughput(self, stage: int, reset_probability: float) -> float:
        """Saturation throughput ``S~(j, p0)`` in bits/s."""
        return randomreset_throughput(stage, reset_probability, self.num_stations, self.phy)

    def throughput_curve(self, stage: int, reset_probabilities: Sequence[float]) -> np.ndarray:
        """Throughput over a grid of ``p0`` values (Figures 5 and 13)."""
        return np.array(
            [self.throughput(stage, p0) for p0 in reset_probabilities], dtype=float
        )

    def optimal_reset(self, stage: int) -> Tuple[float, float]:
        """Best ``p0`` (and its throughput) for a fixed ``j`` by scalar search."""
        def negative(p0: float) -> float:
            return -self.throughput(stage, p0)

        result = optimize.minimize_scalar(
            negative, bounds=(0.0, 1.0), method="bounded", options={"xatol": 1e-6}
        )
        best_p0 = float(result.x)
        return best_p0, self.throughput(stage, best_p0)

    def optimal_policy(self) -> Tuple[int, float, float]:
        """Best ``(j, p0, throughput)`` over all RandomReset policies."""
        best: Tuple[int, float, float] = (0, 1.0, -np.inf)
        for stage in range(self.num_stages):
            p0, value = self.optimal_reset(stage)
            if value > best[2]:
                best = (stage, p0, value)
        return best
