"""Bianchi's saturation model of the IEEE 802.11 DCF.

Reference [1] of the paper (Bianchi, JSAC 2000).  The model assumes a fully
connected, saturated network in which every station perceives a constant,
backoff-stage-independent conditional collision probability ``c``.  The
per-station attempt probability ``tau`` then satisfies the well-known fixed
point::

    tau = 2 (1 - 2c) / [ (1 - 2c)(W + 1) + c W (1 - (2c)^m) ]
    c   = 1 - (1 - tau)^(N - 1)

with ``W = CWmin`` and ``m = log2(CWmax / CWmin)``.

This model is used for three things in the reproduction:

* the analytical "Standard 802.11" curves in Figures 1, 3, 6 and 7;
* validation of the slotted and event-driven simulators in fully connected
  topologies;
* the observation (Section I) that DCF throughput with standard parameters
  degrades as the number of stations grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import optimize

from ..phy.constants import PhyParameters
from .persistent import slot_probabilities

__all__ = [
    "dcf_attempt_probability",
    "conditional_collision_probability",
    "solve_dcf_fixed_point",
    "dcf_saturation_throughput",
    "BianchiModel",
]


def dcf_attempt_probability(collision_probability: float, cw_min: int,
                            num_stages: int) -> float:
    """Attempt probability ``tau(c)`` of binary exponential backoff.

    ``num_stages`` is ``m`` (so the scheme has ``m + 1`` backoff stages).
    """
    if not 0.0 <= collision_probability <= 1.0:
        raise ValueError("collision probability must lie in [0, 1]")
    if cw_min < 1:
        raise ValueError("cw_min must be at least 1")
    if num_stages < 0:
        raise ValueError("num_stages must be non-negative")
    c = collision_probability
    w = float(cw_min)
    if c == 0.5:
        # The generic expression is 0/0 at c = 1/2; expanding around
        # epsilon = 1 - 2c gives tau -> 2 / (W + 1 + W m / 2).
        return 2.0 / (w + 1.0 + 0.5 * w * num_stages)
    numerator = 2.0 * (1.0 - 2.0 * c)
    denominator = (1.0 - 2.0 * c) * (w + 1.0) + c * w * (1.0 - (2.0 * c) ** num_stages)
    return numerator / denominator


def conditional_collision_probability(tau: float, num_stations: int) -> float:
    """Probability a transmission collides: ``c = 1 - (1 - tau)^(N-1)``."""
    if not 0.0 <= tau <= 1.0:
        raise ValueError("tau must lie in [0, 1]")
    if num_stations < 1:
        raise ValueError("num_stations must be at least 1")
    return 1.0 - (1.0 - tau) ** (num_stations - 1)


def solve_dcf_fixed_point(num_stations: int, cw_min: int, num_stages: int,
                          tolerance: float = 1e-12) -> Tuple[float, float]:
    """Solve the (tau, c) fixed point of Bianchi's model.

    Returns
    -------
    (tau, c):
        The unique fixed point.  ``tau(c)`` is decreasing in ``c`` while
        ``c(tau)`` is increasing in ``tau``, so the root of
        ``tau(c(t)) - t`` is unique; we bracket it on [0, 1].
    """
    if num_stations < 1:
        raise ValueError("num_stations must be at least 1")

    if num_stations == 1:
        tau = dcf_attempt_probability(0.0, cw_min, num_stages)
        return tau, 0.0

    def residual(tau: float) -> float:
        c = conditional_collision_probability(tau, num_stations)
        return dcf_attempt_probability(c, cw_min, num_stages) - tau

    lower, upper = 1e-12, 1.0 - 1e-12
    # residual(lower) > 0 (tau(c=~0) > 0) and residual(upper) < 0, so brentq
    # is applicable.
    tau = float(optimize.brentq(residual, lower, upper, xtol=tolerance))
    c = conditional_collision_probability(tau, num_stations)
    return tau, c


def dcf_saturation_throughput(num_stations: int,
                              phy: Optional[PhyParameters] = None) -> float:
    """Bianchi saturation throughput of standard 802.11 DCF (bits/s)."""
    phy = phy or PhyParameters()
    tau, _ = solve_dcf_fixed_point(num_stations, phy.cw_min, phy.num_backoff_stages)
    p_idle, p_success, p_collision = slot_probabilities([tau] * num_stations)
    denom = p_idle * phy.slot_time + p_success * phy.ts + p_collision * phy.tc
    return p_success * phy.payload_bits / denom


@dataclass(frozen=True)
class BianchiModel:
    """Convenience wrapper bundling PHY parameters with the DCF fixed point."""

    phy: PhyParameters = PhyParameters()

    def attempt_probability(self, num_stations: int) -> float:
        """Per-station attempt probability ``tau`` at saturation."""
        tau, _ = solve_dcf_fixed_point(
            num_stations, self.phy.cw_min, self.phy.num_backoff_stages
        )
        return tau

    def collision_probability(self, num_stations: int) -> float:
        """Conditional collision probability ``c`` at saturation."""
        _, c = solve_dcf_fixed_point(
            num_stations, self.phy.cw_min, self.phy.num_backoff_stages
        )
        return c

    def throughput(self, num_stations: int) -> float:
        """Saturation system throughput in bits/s."""
        return dcf_saturation_throughput(num_stations, self.phy)

    def throughput_curve(self, station_counts) -> np.ndarray:
        """Throughput over a range of station counts (Figure 3 baseline)."""
        return np.array([self.throughput(int(n)) for n in station_counts])
