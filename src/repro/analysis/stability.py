"""Stability classification of controller time series.

The stability atlas (``fig_stability_atlas``) needs a mechanical way to tell
whether a controller run *converged*, *oscillated*, or fell into the IdleSense
*livelock* basin that the hidden-terminal regression tests pin.  This module
classifies a throughput (or control-variable) time line into one of four
states and summarises its tail behaviour.

Functions operate on plain ``(time, value)`` sequences, the same convention as
:mod:`repro.analysis.convergence`, so they work on
:class:`~repro.sim.metrics.SimulationResult` time lines and on ``probe``
records alike (see :func:`stability_from_probe`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple

import numpy as np

from .convergence import settling_time, steady_state_statistics

__all__ = [
    "StabilityReport",
    "classify_stability",
    "stability_from_probe",
    "LIVELOCK_FLOOR_BPS",
    "OSCILLATION_THRESHOLD",
]

# A cell whose tail-mean throughput stays below this floor is considered
# livelocked: the documented IdleSense hidden-terminal livelock delivers well
# under 1 Mb/s while healthy cells deliver tens of Mb/s, so the floor has a
# wide safety margin on both sides.
LIVELOCK_FLOOR_BPS = 1e6

# Relative peak-to-peak amplitude of the tail above which a series counts as
# oscillating rather than converged.
OSCILLATION_THRESHOLD = 0.25

# Classifying needs at least a couple of tail samples to be meaningful.
MIN_SAMPLES = 4


@dataclass(frozen=True)
class StabilityReport:
    """Classification and tail summary of one controller time line."""

    classification: str  # "livelock" | "converged" | "oscillating" | "inconclusive"
    settling_time_s: Optional[float]
    oscillation_amplitude: float
    tail_mean: float
    tail_std: float

    @property
    def is_livelock(self) -> bool:
        return self.classification == "livelock"


def classify_stability(series: Sequence[Tuple[float, float]],
                       livelock_floor: float = LIVELOCK_FLOOR_BPS,
                       oscillation_threshold: float = OSCILLATION_THRESHOLD,
                       tail_fraction: float = 0.5,
                       tolerance: float = 0.1) -> StabilityReport:
    """Classify a ``(time, value)`` series into a :class:`StabilityReport`.

    Rules, in order:

    1. Fewer than four samples -> ``inconclusive`` (too short to judge).
    2. Tail mean at or below ``livelock_floor`` -> ``livelock``.
    3. Relative tail peak-to-peak amplitude above ``oscillation_threshold``
       -> ``oscillating``.
    4. Otherwise ``converged``, with the settling time against the tail mean.
    """
    cleaned = [(float(t), float(v)) for t, v in series]
    if len(cleaned) < MIN_SAMPLES:
        values = np.array([v for _, v in cleaned], dtype=float)
        mean = float(values.mean()) if values.size else 0.0
        std = float(values.std()) if values.size else 0.0
        return StabilityReport(
            classification="inconclusive",
            settling_time_s=None,
            oscillation_amplitude=0.0,
            tail_mean=mean,
            tail_std=std,
        )

    tail_mean, tail_std = steady_state_statistics(cleaned, tail_fraction=tail_fraction)
    values = np.array([v for _, v in cleaned], dtype=float)
    tail = values[int(len(values) * (1.0 - tail_fraction)):]
    if tail.size == 0:
        tail = values[-1:]
    amplitude = float(tail.max() - tail.min())
    relative_amplitude = amplitude / tail_mean if tail_mean > 0 else 0.0

    if tail_mean <= livelock_floor:
        classification = "livelock"
        settle = None
    elif relative_amplitude > oscillation_threshold:
        classification = "oscillating"
        settle = None
    else:
        classification = "converged"
        settle = settling_time(cleaned, tail_mean, tolerance=tolerance)

    return StabilityReport(
        classification=classification,
        settling_time_s=settle,
        oscillation_amplitude=relative_amplitude,
        tail_mean=tail_mean,
        tail_std=tail_std,
    )


def stability_from_probe(record: Mapping[str, object],
                         series_name: str,
                         **kwargs) -> Optional[StabilityReport]:
    """Classify one series of a ``probe`` trace record.

    ``record`` is a schema-v2 ``probe`` record as emitted by the simulators
    (``{"type": "probe", "t": [...], "series": {name: [...]}}``).  ``None``
    entries (NaN placeholders) are skipped.  Returns ``None`` when the record
    has no series of that name.
    """
    series = record.get("series")
    if not isinstance(series, Mapping) or series_name not in series:
        return None
    times = record.get("t") or []
    column = series[series_name]
    pairs = [(float(t), float(v))
             for t, v in zip(times, column) if v is not None]
    return classify_stability(pairs, **kwargs)
