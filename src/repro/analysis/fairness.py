"""Fairness metrics for throughput allocations.

The paper evaluates *weighted* fairness (Definition 2, Table II): every
station's throughput divided by its weight should be (nearly) equal.  The
metrics here quantify that:

* :func:`jain_index` — Jain's fairness index of a vector (1 = perfectly
  fair), applied to *normalised* throughputs for the weighted case;
* :func:`normalized_throughputs` — the per-station ``throughput / weight``
  column of Table II;
* :func:`weighted_fairness_report` — the full Table II style summary;
* :func:`max_relative_deviation` — worst-case deviation of normalised
  throughput from the mean, the acceptance criterion used by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "jain_index",
    "normalized_throughputs",
    "max_relative_deviation",
    "WeightedFairnessReport",
    "weighted_fairness_report",
]


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)`` in (0, 1]."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one value")
    if np.any(arr < 0):
        raise ValueError("values must be non-negative")
    total_sq = float(np.sum(arr)) ** 2
    denom = arr.size * float(np.sum(arr ** 2))
    if denom == 0:
        return 1.0
    return total_sq / denom


def normalized_throughputs(throughputs: Sequence[float],
                           weights: Optional[Sequence[float]] = None) -> np.ndarray:
    """Per-station ``throughput / weight`` (Table II's last column)."""
    thr = np.asarray(throughputs, dtype=float)
    if weights is None:
        return thr.copy()
    w = np.asarray(weights, dtype=float)
    if w.shape != thr.shape:
        raise ValueError("weights and throughputs must have the same shape")
    if np.any(w <= 0):
        raise ValueError("weights must be positive")
    return thr / w


def max_relative_deviation(throughputs: Sequence[float],
                           weights: Optional[Sequence[float]] = None) -> float:
    """Worst relative deviation of normalised throughput from its mean.

    0 means perfectly weighted-fair; the paper's Table II exhibits about 2-3%.
    """
    normalized = normalized_throughputs(throughputs, weights)
    mean = float(np.mean(normalized))
    if mean == 0:
        return 0.0 if np.allclose(normalized, 0) else float("inf")
    return float(np.max(np.abs(normalized - mean)) / mean)


@dataclass(frozen=True)
class WeightedFairnessReport:
    """Summary of a weighted-fairness experiment (Table II)."""

    weights: Tuple[float, ...]
    throughputs_bps: Tuple[float, ...]
    normalized_bps: Tuple[float, ...]
    total_throughput_bps: float
    jain_index_normalized: float
    max_relative_deviation: float

    def rows(self) -> Tuple[Tuple[int, float, float, float], ...]:
        """Table II rows: (station, weight, throughput Mbps, normalised Mbps)."""
        return tuple(
            (index + 1, weight, thr / 1e6, norm / 1e6)
            for index, (weight, thr, norm) in enumerate(
                zip(self.weights, self.throughputs_bps, self.normalized_bps)
            )
        )


def weighted_fairness_report(throughputs: Sequence[float],
                             weights: Sequence[float]) -> WeightedFairnessReport:
    """Build a :class:`WeightedFairnessReport` from raw per-station data."""
    thr = np.asarray(throughputs, dtype=float)
    w = np.asarray(weights, dtype=float)
    normalized = normalized_throughputs(thr, w)
    return WeightedFairnessReport(
        weights=tuple(float(x) for x in w),
        throughputs_bps=tuple(float(x) for x in thr),
        normalized_bps=tuple(float(x) for x in normalized),
        total_throughput_bps=float(np.sum(thr)),
        jain_index_normalized=jain_index(normalized),
        max_relative_deviation=max_relative_deviation(thr, w),
    )
