"""Closed-form throughput model of p-persistent CSMA (paper Eq. 2, 3, 8).

These formulas apply to *fully connected* saturated networks.  They are used
to:

* validate both simulators (the simulated throughput of a fully connected
  p-persistent network must track Eq. (3));
* reproduce Figure 2 and Figure 13's analytical curves;
* compute the optimal attempt probability ``p*`` (Theorem 2 and Eq. (8))
  against which wTOP-CSMA's convergence is checked.

All durations are taken from a :class:`~repro.phy.constants.PhyParameters`.
Throughput is returned in bits per second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from ..phy.constants import PhyParameters

__all__ = [
    "weighted_attempt_probability",
    "slot_probabilities",
    "per_station_throughput",
    "system_throughput",
    "system_throughput_weighted",
    "throughput_curve",
    "optimal_attempt_probability",
    "approximate_optimal_attempt_probability",
    "PersistentModel",
]


def weighted_attempt_probability(weight: float, p: float) -> float:
    """Map the base control variable ``p`` to a station's attempt probability.

    Lemma 1: a station with weight ``w`` uses ``p_t = w p / (1 + (w - 1) p)``
    so that its throughput is ``w`` times that of a weight-1 station.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must lie in [0, 1]")
    if weight <= 0:
        raise ValueError("weight must be positive")
    # The exact map sends p = 1 to 1 for every weight, but the floating-point
    # quotient w / (1 + (w - 1)) can overshoot 1 by one ulp for w < 1; clamp
    # so the result is always a probability.
    return min(weight * p / (1.0 + (weight - 1.0) * p), 1.0)


def slot_probabilities(attempt_probabilities: Sequence[float]) -> Tuple[float, float, float]:
    """Return ``(P_idle, P_success, P_collision)`` for one virtual slot.

    ``P_idle`` is the probability no station transmits, ``P_success`` the
    probability exactly one transmits, and ``P_collision`` the remainder.
    """
    probs = np.asarray(attempt_probabilities, dtype=float)
    if probs.size == 0:
        raise ValueError("need at least one station")
    if np.any((probs < 0) | (probs > 1)):
        raise ValueError("attempt probabilities must lie in [0, 1]")
    if np.any(probs >= 1.0):
        # A station transmitting with certainty makes the idle probability 0
        # and success possible only if it is the unique such station.
        certain = np.flatnonzero(probs >= 1.0)
        if certain.size > 1:
            return 0.0, 0.0, 1.0
        others = np.delete(probs, certain)
        p_success = float(np.prod(1.0 - others)) if others.size else 1.0
        return 0.0, p_success, 1.0 - p_success
    p_idle = float(np.prod(1.0 - probs))
    ratios = probs / (1.0 - probs)
    p_success = float(p_idle * np.sum(ratios))
    p_collision = max(0.0, 1.0 - p_idle - p_success)
    return p_idle, p_success, p_collision


def _expected_slot_time(p_idle: float, p_success: float, p_collision: float,
                        phy: PhyParameters) -> float:
    """Mean duration of one virtual slot (the denominator of Eq. 2)."""
    return p_idle * phy.slot_time + p_success * phy.ts + p_collision * phy.tc


def per_station_throughput(attempt_probabilities: Sequence[float],
                           phy: Optional[PhyParameters] = None) -> np.ndarray:
    """Per-station saturation throughput (bits/s) of p-persistent CSMA.

    Implements Eq. (2): station ``t`` succeeds in a virtual slot with
    probability ``p_t * prod_{i != t} (1 - p_i)`` and each success carries
    ``E[P]`` payload bits.
    """
    phy = phy or PhyParameters()
    probs = np.asarray(attempt_probabilities, dtype=float)
    p_idle, p_success, p_collision = slot_probabilities(probs)
    denom = _expected_slot_time(p_idle, p_success, p_collision, phy)
    if denom <= 0:
        raise ValueError("expected slot time must be positive")
    with np.errstate(divide="ignore", invalid="ignore"):
        # success probability of station t: p_t * prod_{i != t}(1 - p_i)
        if np.any(probs >= 1.0):
            success = np.zeros_like(probs)
            certain = np.flatnonzero(probs >= 1.0)
            if certain.size == 1:
                others = np.delete(probs, certain)
                success[certain[0]] = float(np.prod(1.0 - others)) if others.size else 1.0
        else:
            success = probs / (1.0 - probs) * p_idle
    return success * phy.payload_bits / denom


def system_throughput(attempt_probabilities: Sequence[float],
                      phy: Optional[PhyParameters] = None) -> float:
    """Total saturation throughput (bits/s); the sum over Eq. (2)."""
    return float(np.sum(per_station_throughput(attempt_probabilities, phy)))


def system_throughput_weighted(p: float, weights: Sequence[float],
                               phy: Optional[PhyParameters] = None) -> float:
    """System throughput ``S(p, W)`` of Eq. (3).

    Every station maps the shared control variable ``p`` through its weight
    (Lemma 1) and the resulting attempt-probability vector is evaluated with
    Eq. (2)/(3).
    """
    attempt = [weighted_attempt_probability(w, p) for w in weights]
    return system_throughput(attempt, phy)


def throughput_curve(p_values: Sequence[float], num_stations: int,
                     phy: Optional[PhyParameters] = None,
                     weights: Optional[Sequence[float]] = None) -> np.ndarray:
    """Evaluate ``S(p, W)`` over a grid of ``p`` values (Figure 2)."""
    if weights is None:
        weights = [1.0] * num_stations
    elif len(weights) != num_stations:
        raise ValueError("weights length must equal num_stations")
    return np.array(
        [system_throughput_weighted(p, weights, phy) for p in p_values], dtype=float
    )


def approximate_optimal_attempt_probability(num_stations: int,
                                            phy: Optional[PhyParameters] = None) -> float:
    """Bianchi's approximation ``p* ~= 1 / (N sqrt(T*_c / 2))`` (Eq. 8)."""
    if num_stations < 1:
        raise ValueError("num_stations must be at least 1")
    phy = phy or PhyParameters()
    return 1.0 / (num_stations * np.sqrt(phy.tc_slots / 2.0))


def optimal_attempt_probability(num_stations: int,
                                phy: Optional[PhyParameters] = None,
                                weights: Optional[Sequence[float]] = None,
                                tolerance: float = 1e-10) -> float:
    """Exact maximiser ``p*`` of ``S(p, W)`` by scalar optimisation.

    Theorem 2 shows ``S(p, W)`` is strictly quasi-concave on (0, 1), so a
    bounded scalar search finds the unique maximum.
    """
    phy = phy or PhyParameters()
    if weights is None:
        if num_stations < 1:
            raise ValueError("num_stations must be at least 1")
        weights = [1.0] * num_stations
    elif len(weights) != num_stations:
        raise ValueError("weights length must equal num_stations")

    def negative(p: float) -> float:
        return -system_throughput_weighted(p, weights, phy)

    result = optimize.minimize_scalar(
        negative, bounds=(1e-9, 1.0 - 1e-9), method="bounded",
        options={"xatol": tolerance},
    )
    return float(result.x)


@dataclass(frozen=True)
class PersistentModel:
    """Object-oriented facade over the functions above.

    Convenient when the same PHY and weights are reused across a sweep, e.g.
    in the experiment runners.
    """

    num_stations: int
    phy: PhyParameters = PhyParameters()
    weights: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.num_stations < 1:
            raise ValueError("num_stations must be at least 1")
        if self.weights is not None and len(self.weights) != self.num_stations:
            raise ValueError("weights length must equal num_stations")

    @property
    def effective_weights(self) -> Tuple[float, ...]:
        return self.weights or tuple([1.0] * self.num_stations)

    def throughput(self, p: float) -> float:
        """System throughput at control value ``p`` (bits/s)."""
        return system_throughput_weighted(p, self.effective_weights, self.phy)

    def per_station(self, p: float) -> np.ndarray:
        """Per-station throughput at control value ``p`` (bits/s)."""
        attempt = [weighted_attempt_probability(w, p) for w in self.effective_weights]
        return per_station_throughput(attempt, self.phy)

    def optimal_p(self) -> float:
        """The exact optimal control value ``p*``."""
        return optimal_attempt_probability(
            self.num_stations, self.phy, list(self.effective_weights)
        )

    def approximate_optimal_p(self) -> float:
        """Bianchi's closed-form approximation of ``p*`` (Eq. 8)."""
        return approximate_optimal_attempt_probability(self.num_stations, self.phy)

    def optimal_throughput(self) -> float:
        """Throughput at the exact optimum (bits/s)."""
        return self.throughput(self.optimal_p())
