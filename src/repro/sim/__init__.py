"""Simulation substrates: event-driven (hidden-node capable), slotted (fully
connected, fast) and two vectorized batch simulators — the renewal-slot
backend for many fully connected cells and the conflict-matrix backend for
many hidden-node cells — plus shared metrics."""

from .batched import (
    BATCHABLE_SCHEME_KINDS,
    BatchedSlottedSimulator,
    CellStreams,
    batchable_scheme,
    make_batched_system,
    run_batched,
)
from .conflict import (
    BatchedConflictSimulator,
    run_conflict,
    stack_sensing_matrices,
)
from .dynamics import ActivitySchedule, constant_activity, step_activity
from .engine import Event, EventScheduler, SimulationClock
from .medium import AP_NODE_ID, ActiveTransmission, Medium
from .metrics import MetricsCollector, SimulationResult, StationStats
from .node import StationProcess, StationState
from .simulation import AccessPointProcess, WlanSimulation, run_event_driven
from .slotted import SlottedSimulator, run_slotted

__all__ = [
    "BATCHABLE_SCHEME_KINDS",
    "BatchedSlottedSimulator",
    "CellStreams",
    "batchable_scheme",
    "make_batched_system",
    "run_batched",
    "BatchedConflictSimulator",
    "run_conflict",
    "stack_sensing_matrices",
    "ActivitySchedule",
    "constant_activity",
    "step_activity",
    "Event",
    "EventScheduler",
    "SimulationClock",
    "AP_NODE_ID",
    "ActiveTransmission",
    "Medium",
    "MetricsCollector",
    "SimulationResult",
    "StationStats",
    "StationProcess",
    "StationState",
    "AccessPointProcess",
    "WlanSimulation",
    "run_event_driven",
    "SlottedSimulator",
    "run_slotted",
]
