"""Simulation substrates: event-driven (hidden-node capable), slotted (fully
connected, fast) and batched (many fully connected cells at once, fastest)
WLAN simulators plus shared metrics."""

from .batched import (
    BATCHABLE_SCHEME_KINDS,
    BatchedSlottedSimulator,
    CellStreams,
    batchable_scheme,
    make_batched_system,
    run_batched,
)
from .dynamics import ActivitySchedule, constant_activity, step_activity
from .engine import Event, EventScheduler, SimulationClock
from .medium import AP_NODE_ID, ActiveTransmission, Medium
from .metrics import MetricsCollector, SimulationResult, StationStats
from .node import StationProcess, StationState
from .simulation import AccessPointProcess, WlanSimulation, run_event_driven
from .slotted import SlottedSimulator, run_slotted

__all__ = [
    "BATCHABLE_SCHEME_KINDS",
    "BatchedSlottedSimulator",
    "CellStreams",
    "batchable_scheme",
    "make_batched_system",
    "run_batched",
    "ActivitySchedule",
    "constant_activity",
    "step_activity",
    "Event",
    "EventScheduler",
    "SimulationClock",
    "AP_NODE_ID",
    "ActiveTransmission",
    "Medium",
    "MetricsCollector",
    "SimulationResult",
    "StationStats",
    "StationProcess",
    "StationState",
    "AccessPointProcess",
    "WlanSimulation",
    "run_event_driven",
    "SlottedSimulator",
    "run_slotted",
]
