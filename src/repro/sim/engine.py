"""Discrete-event simulation kernel.

A minimal, dependency-free event scheduler built on :mod:`heapq`.  Time is an
integer number of nanoseconds so that event ordering is exact and independent
of floating-point rounding; helpers convert to/from seconds at the edges.

Events are callbacks scheduled at absolute times.  Cancelling an event marks
it dead in place (lazy deletion), which keeps cancellation O(1) — important
because the CSMA state machines cancel a scheduled transmission every time
the medium turns busy during a countdown.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from ..phy.constants import NS_PER_SECOND

__all__ = ["Event", "EventScheduler", "SimulationClock"]


class Event:
    """A scheduled callback.  Create via :meth:`EventScheduler.schedule_at`."""

    __slots__ = ("time_ns", "sequence", "callback", "args", "cancelled")

    def __init__(self, time_ns: int, sequence: int,
                 callback: Callable[..., None], args: Tuple[Any, ...]) -> None:
        self.time_ns = time_ns
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        # Tie-break by insertion order so same-time events run FIFO.
        return (self.time_ns, self.sequence) < (other.time_ns, other.sequence)

    def __repr__(self) -> str:  # pragma: no cover - debug aid only
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time_ns}ns, {name}, {state})"


class SimulationClock:
    """Read-only view of the scheduler's current time."""

    def __init__(self, scheduler: "EventScheduler") -> None:
        self._scheduler = scheduler

    @property
    def now_ns(self) -> int:
        return self._scheduler.now_ns

    @property
    def now(self) -> float:
        return self._scheduler.now


class EventScheduler:
    """Priority-queue based discrete-event scheduler."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._sequence = itertools.count()
        self._now_ns = 0
        self._processed = 0

    # ------------------------------------------------------------------
    @property
    def now_ns(self) -> int:
        """Current simulation time in integer nanoseconds."""
        return self._now_ns

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now_ns / NS_PER_SECOND

    @property
    def pending_events(self) -> int:
        """Number of events in the queue (including cancelled ones)."""
        return len(self._heap)

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def clock(self) -> SimulationClock:
        """A read-only clock handle safe to hand to components."""
        return SimulationClock(self)

    # ------------------------------------------------------------------
    def schedule_at(self, time_ns: int, callback: Callable[..., None],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time_ns``."""
        if time_ns < self._now_ns:
            raise ValueError(
                f"cannot schedule in the past (now={self._now_ns}, requested={time_ns})"
            )
        event = Event(int(time_ns), next(self._sequence), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(self, delay_ns: int, callback: Callable[..., None],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay_ns`` nanoseconds."""
        if delay_ns < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule_at(self._now_ns + int(delay_ns), callback, *args)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a scheduled event (no-op for None or already-run events)."""
        if event is not None:
            event.cancelled = True

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now_ns = event.time_ns
            self._processed += 1
            event.callback(*event.args)
            return True
        return False

    def run_until(self, time_ns: int) -> None:
        """Run all events with timestamps <= ``time_ns``; advance the clock.

        The clock ends exactly at ``time_ns`` even if the last event was
        earlier, so measurement windows have exact lengths.
        """
        if time_ns < self._now_ns:
            raise ValueError("cannot run into the past")
        while self._heap:
            event = self._heap[0]
            if event.time_ns > time_ns:
                break
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now_ns = event.time_ns
            self._processed += 1
            event.callback(*event.args)
        self._now_ns = time_ns

    def run_until_empty(self, max_events: int = 10_000_000) -> None:
        """Drain the queue (with a runaway guard); used only in tests."""
        count = 0
        while self.step():
            count += 1
            if count > max_events:
                raise RuntimeError("event budget exhausted; possible event loop")
