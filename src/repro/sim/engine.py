"""Discrete-event simulation kernel.

A minimal, dependency-free event scheduler built on :mod:`heapq`.  Time is an
integer number of nanoseconds so that event ordering is exact and independent
of floating-point rounding; helpers convert to/from seconds at the edges.

Events are callbacks scheduled at absolute times.  Cancelling an event marks
it dead in place (lazy deletion), which keeps cancellation O(1) — important
because the CSMA state machines cancel a scheduled transmission every time
the medium turns busy during a countdown.  Long hidden-node runs retime
transmissions constantly, so cancelled entries would otherwise pile up in
the heap (inflating every push/pop by their ``log`` factor); the scheduler
therefore compacts the heap whenever cancelled entries outnumber live ones.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from ..phy.constants import NS_PER_SECOND

__all__ = ["Event", "EventScheduler", "SimulationClock"]


class Event:
    """A scheduled callback.  Create via :meth:`EventScheduler.schedule_at`."""

    __slots__ = ("time_ns", "sequence", "callback", "args", "cancelled",
                 "done")

    def __init__(self, time_ns: int, sequence: int,
                 callback: Callable[..., None], args: Tuple[Any, ...]) -> None:
        self.time_ns = time_ns
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = False
        # True once the event has left the heap (run, skipped or compacted
        # away); late cancel() calls on such events must not touch the
        # scheduler's cancelled-entry accounting.
        self.done = False

    def __lt__(self, other: "Event") -> bool:
        # Tie-break by insertion order so same-time events run FIFO.
        return (self.time_ns, self.sequence) < (other.time_ns, other.sequence)

    def __repr__(self) -> str:  # pragma: no cover - debug aid only
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time_ns}ns, {name}, {state})"


class SimulationClock:
    """Read-only view of the scheduler's current time."""

    def __init__(self, scheduler: "EventScheduler") -> None:
        self._scheduler = scheduler

    @property
    def now_ns(self) -> int:
        return self._scheduler.now_ns

    @property
    def now(self) -> float:
        return self._scheduler.now


class EventScheduler:
    """Priority-queue based discrete-event scheduler."""

    #: Heap size below which compaction is never attempted (the rebuild cost
    #: would exceed the savings).
    COMPACTION_FLOOR = 64

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._sequence = itertools.count()
        self._now_ns = 0
        self._processed = 0
        self._cancelled = 0
        self._compactions = 0

    # ------------------------------------------------------------------
    @property
    def now_ns(self) -> int:
        """Current simulation time in integer nanoseconds."""
        return self._now_ns

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now_ns / NS_PER_SECOND

    @property
    def pending_events(self) -> int:
        """Number of events in the queue (including cancelled ones)."""
        return len(self._heap)

    @property
    def cancelled_events(self) -> int:
        """Number of cancelled events still occupying the queue."""
        return self._cancelled

    @property
    def heap_compactions(self) -> int:
        """Number of times the heap was compacted (diagnostics/tests)."""
        return self._compactions

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def clock(self) -> SimulationClock:
        """A read-only clock handle safe to hand to components."""
        return SimulationClock(self)

    # ------------------------------------------------------------------
    def schedule_at(self, time_ns: int, callback: Callable[..., None],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time_ns``."""
        if time_ns < self._now_ns:
            raise ValueError(
                f"cannot schedule in the past (now={self._now_ns}, requested={time_ns})"
            )
        event = Event(int(time_ns), next(self._sequence), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(self, delay_ns: int, callback: Callable[..., None],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay_ns`` nanoseconds."""
        if delay_ns < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule_at(self._now_ns + int(delay_ns), callback, *args)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a scheduled event (no-op for None or already-run events).

        Cancellation is O(1) (the event is marked dead in place); when dead
        entries come to outnumber the live ones the whole heap is compacted,
        so the queue's size — and the cost of every subsequent push and pop —
        tracks the number of *live* events, not the cancellation churn.
        """
        if event is None or event.cancelled or event.done:
            return
        event.cancelled = True
        self._cancelled += 1
        if (self._cancelled * 2 > len(self._heap)
                and len(self._heap) >= self.COMPACTION_FLOOR):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and rebuild the heap in one O(n) pass."""
        for event in self._heap:
            if event.cancelled:
                event.done = True
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            event.done = True
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._now_ns = event.time_ns
            self._processed += 1
            event.callback(*event.args)
            return True
        return False

    def run_until(self, time_ns: int) -> None:
        """Run all events with timestamps <= ``time_ns``; advance the clock.

        The clock ends exactly at ``time_ns`` even if the last event was
        earlier, so measurement windows have exact lengths.
        """
        if time_ns < self._now_ns:
            raise ValueError("cannot run into the past")
        while self._heap:
            event = self._heap[0]
            if event.time_ns > time_ns:
                break
            heapq.heappop(self._heap)
            event.done = True
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._now_ns = event.time_ns
            self._processed += 1
            event.callback(*event.args)
        self._now_ns = time_ns

    def run_until_empty(self, max_events: int = 10_000_000) -> None:
        """Drain the queue (with a runaway guard); used only in tests."""
        count = 0
        while self.step():
            count += 1
            if count > max_events:
                raise RuntimeError("event budget exhausted; possible event loop")
