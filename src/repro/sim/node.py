"""Station MAC state machine for the event-driven simulator.

Each :class:`StationProcess` implements the CSMA/CA behaviour of one
saturated station:

1. wait for its *own* sensed channel to be idle for DIFS;
2. count down its backoff in idle-slot units, freezing whenever the sensed
   channel turns busy;
3. transmit a data frame when the countdown reaches zero;
4. learn the outcome — success when the AP's ACK arrives, failure when the
   AP stays silent (the frame collided with an overlapping transmission) —
   and draw the next backoff from its :class:`~repro.mac.backoff.BackoffPolicy`.

Because freezing and resuming are driven by the station's own sensing set,
hidden stations count down *through* each other's transmissions, which is
exactly the mechanism that produces hidden-node collisions.
"""

from __future__ import annotations

import enum
from typing import Callable, Mapping, Optional

import numpy as np

from ..mac.backoff import BackoffPolicy
from ..phy.constants import NS_PER_SECOND, PhyParameters
from ..phy.frame import FrameFactory
from ..traffic import FrameQueue
from .engine import Event, EventScheduler
from .medium import ActiveTransmission, Medium

__all__ = ["StationState", "StationProcess"]


class StationState(enum.Enum):
    """Lifecycle states of the station MAC."""

    INACTIVE = "inactive"
    IDLE_QUEUE = "idle_queue"    # active but no frame queued (unsaturated)
    DEFERRING = "deferring"      # sensed channel busy, waiting for idle
    WAITING_DIFS = "waiting_difs"
    COUNTING = "counting"        # backoff countdown in progress
    TRANSMITTING = "transmitting"
    AWAITING_OUTCOME = "awaiting_outcome"


class StationProcess:
    """One saturated station attached to the medium.

    Parameters
    ----------
    station_id:
        Index of the station (0-based).
    policy:
        The contention-resolution policy instance owned by this station.
    scheduler / medium / frame_factory / phy:
        Shared simulation infrastructure.
    rng:
        Station-local random generator (each station gets an independent
        stream so runs are reproducible regardless of event interleaving).
    on_transmission_end:
        Callback ``(station, transmission, now_ns)`` invoked when the
        station's data frame leaves the air; the access point uses it to
        decide success/failure.
    queue:
        Optional bounded FIFO of frame-arrival timestamps.  ``None`` keeps
        the classic saturated behaviour (always a frame to send); with a
        queue, a station whose queue empties parks in
        :attr:`StationState.IDLE_QUEUE` (its remaining backoff frozen) and
        rejoins contention when :meth:`enqueue` accepts a frame.
    on_queue_delay:
        Callback receiving each delivered frame's FIFO queueing delay in
        seconds (the simulation wires it to the metrics collector).
    retry_limit:
        Maximum transmission attempts per frame (802.11 retry limit).
        ``None`` — the default — retries forever, the historical behaviour.
        On exhausting the limit the station discards the head frame, resets
        its contention window exactly as a delivery would and moves on.
    on_retry_discard:
        Callback invoked (no arguments) each time a frame is discarded at
        the retry limit.
    on_frame_departed:
        Callback ``(station_id)`` invoked whenever a frame leaves the MAC —
        delivered *or* retry-discarded; closed-loop traffic uses it as its
        release clock.
    """

    def __init__(
        self,
        station_id: int,
        policy: BackoffPolicy,
        scheduler: EventScheduler,
        medium: Medium,
        frame_factory: FrameFactory,
        phy: PhyParameters,
        rng: np.random.Generator,
        on_transmission_end: Callable[[int, ActiveTransmission, int], None],
        queue: Optional[FrameQueue] = None,
        on_queue_delay: Optional[Callable[[float], None]] = None,
        retry_limit: Optional[int] = None,
        on_retry_discard: Optional[Callable[[], None]] = None,
        on_frame_departed: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.station_id = station_id
        self.policy = policy
        self._scheduler = scheduler
        self._medium = medium
        self._frames = frame_factory
        self._phy = phy
        self._rng = rng
        self._on_transmission_end = on_transmission_end
        self._queue = queue
        self._on_queue_delay = on_queue_delay
        self._retry_limit = retry_limit
        self._on_retry_discard = on_retry_discard
        self._on_frame_departed = on_frame_departed
        self._retry_count = 0
        #: Frames discarded at the retry limit (mirrors successes/failures).
        self.retry_discards = 0

        self._state = StationState.INACTIVE
        self._remaining_slots = 0
        self._countdown_started_ns = 0
        self._difs_event: Optional[Event] = None
        self._tx_start_event: Optional[Event] = None
        self._current_transmission: Optional[ActiveTransmission] = None
        # Contention (backoff) slots counted down since the last observed data
        # transmission; fed to channel-observing policies such as IdleSense.
        self._observed_idle_slots = 0

        # Per-station counters (the simulation also keeps global metrics).
        self.successes = 0
        self.failures = 0

        medium.register_listener(station_id, self)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def state(self) -> StationState:
        return self._state

    @property
    def is_active(self) -> bool:
        return self._state is not StationState.INACTIVE

    @property
    def remaining_slots(self) -> int:
        return self._remaining_slots

    @property
    def has_frame(self) -> bool:
        """Whether a frame is ready to send (always True when saturated)."""
        return self._queue is None or len(self._queue) > 0

    @property
    def queue_length(self) -> int:
        """Frames currently queued (0 for saturated stations)."""
        return 0 if self._queue is None else len(self._queue)

    # ------------------------------------------------------------------
    # Activation / deactivation (dynamic scenarios)
    # ------------------------------------------------------------------
    def activate(self, control: Optional[Mapping[str, float]] = None) -> None:
        """Join the network: draw a fresh backoff and start contending."""
        if self.is_active:
            return
        if control:
            self.policy.apply_control(control)
        self._remaining_slots = self.policy.initial_backoff(self._rng)
        self._observed_idle_slots = 0
        if not self.has_frame:
            # Unsaturated join with an empty queue: park with the drawn
            # backoff frozen until the first arrival.
            self._state = StationState.IDLE_QUEUE
            return
        self._state = StationState.DEFERRING
        self._try_resume()

    # ------------------------------------------------------------------
    # Traffic (unsaturated workloads)
    # ------------------------------------------------------------------
    def enqueue(self, arrival_time_s: float) -> bool:
        """Offer an arrived frame; False means the bounded queue dropped it.

        A 0 -> 1 queue transition re-enters contention with the station's
        frozen backoff counter (DIFS first, as after any busy period).
        """
        if self._queue is None:
            raise RuntimeError("saturated stations have no frame queue")
        if not self._queue.offer(arrival_time_s):
            return False
        if self._state is StationState.IDLE_QUEUE:
            self._state = StationState.DEFERRING
            self._try_resume()
        return True

    def flush_queue(self) -> int:
        """Discard all queued frames (schedule leave); returns the count."""
        if self._queue is None:
            return 0
        return self._queue.flush()

    def deactivate(self) -> None:
        """Leave the network: cancel pending activity and stop contending."""
        self._cancel_timers()
        if self._state is StationState.TRANSMITTING and self._current_transmission:
            # Let the in-flight frame finish naturally; the outcome will be
            # delivered but ignored because the station is inactive.
            pass
        self._state = StationState.INACTIVE

    def _cancel_timers(self) -> None:
        self._scheduler.cancel(self._difs_event)
        self._scheduler.cancel(self._tx_start_event)
        self._difs_event = None
        self._tx_start_event = None

    # ------------------------------------------------------------------
    # Medium listener interface
    # ------------------------------------------------------------------
    def on_medium_busy(self, now_ns: int, transmission: ActiveTransmission) -> None:
        """Sensed channel went idle -> busy: freeze any countdown."""
        freeze_elapsed = 0
        if self._state is StationState.WAITING_DIFS:
            self._scheduler.cancel(self._difs_event)
            self._difs_event = None
            self._state = StationState.DEFERRING
        elif self._state is StationState.COUNTING:
            # A station whose own countdown expires at this very instant is
            # already committed to transmitting in this slot: carrier sensing
            # cannot pre-empt a decision taken at the same slot boundary.
            # This is what makes two stations that pick the same backoff slot
            # collide, exactly as in real DCF.
            if (self._tx_start_event is not None
                    and self._tx_start_event.time_ns <= now_ns):
                return
            self._scheduler.cancel(self._tx_start_event)
            self._tx_start_event = None
            freeze_elapsed = int(
                (now_ns - self._countdown_started_ns) // self._phy.slot_time_ns
            )
            self._remaining_slots = max(self._remaining_slots - freeze_elapsed, 0)
            self._state = StationState.DEFERRING
        self._observe_busy_onset(transmission, freeze_elapsed)

    def on_medium_idle(self, now_ns: int) -> None:
        """Sensed channel went busy -> idle: re-arm the DIFS timer."""
        if self._state is StationState.DEFERRING:
            self._start_difs()

    def _observe_busy_onset(self, transmission: ActiveTransmission,
                            freeze_elapsed: int) -> None:
        """Feed contention-idle observations to channel-observing policies.

        IdleSense counts the idle *backoff* slots between transmissions it
        observes; framing overheads (DIFS, SIFS, ACKs) do not count.  The
        station therefore accumulates the slots its own countdown actually
        consumed and reports them once per observed *data* transmission.
        """
        if not self.policy.observes_channel:
            return
        if self._state is StationState.TRANSMITTING:
            return
        self._observed_idle_slots += max(freeze_elapsed, 0)
        if transmission.is_data:
            self.policy.observe_transmission(self._observed_idle_slots)
            self._observed_idle_slots = 0

    # ------------------------------------------------------------------
    # Channel access
    # ------------------------------------------------------------------
    def _try_resume(self) -> None:
        """Resume channel access after the outcome of a transmission or join."""
        if self._state is StationState.INACTIVE:
            return
        if self._medium.is_busy_for(self.station_id):
            self._state = StationState.DEFERRING
        else:
            self._start_difs()

    def _start_difs(self) -> None:
        self._state = StationState.WAITING_DIFS
        self._difs_event = self._scheduler.schedule_in(
            self._phy.difs_ns, self._difs_elapsed
        )

    def _difs_elapsed(self) -> None:
        self._difs_event = None
        self._state = StationState.COUNTING
        self._countdown_started_ns = self._scheduler.now_ns
        delay_ns = self._remaining_slots * self._phy.slot_time_ns
        self._tx_start_event = self._scheduler.schedule_in(
            delay_ns, self._begin_transmission
        )

    def _begin_transmission(self) -> None:
        self._tx_start_event = None
        if self.policy.observes_channel:
            # The slots just counted down, plus this transmission itself, form
            # one observation (the station observes its own transmissions too).
            self.policy.observe_transmission(
                self._observed_idle_slots + self._remaining_slots
            )
            self._observed_idle_slots = 0
        self._remaining_slots = 0
        self._state = StationState.TRANSMITTING
        frame = self._frames.data(
            source=self.station_id,
            destination=-1,
            arrival_time_s=(
                None if self._queue is None else self._queue.head_time
            ),
        )
        duration_ns = self._phy.data_tx_time_ns
        self._current_transmission = self._medium.start_transmission(
            self.station_id, frame, duration_ns
        )
        self._scheduler.schedule_in(duration_ns, self._finish_transmission)

    def _finish_transmission(self) -> None:
        transmission = self._current_transmission
        assert transmission is not None
        self._medium.end_transmission(transmission)
        self._current_transmission = None
        if self._state is StationState.INACTIVE:
            # The station left the network mid-frame; drop the outcome.
            return
        self._state = StationState.AWAITING_OUTCOME
        self._on_transmission_end(self.station_id, transmission, self._scheduler.now_ns)

    # ------------------------------------------------------------------
    # Outcome delivery (called by the access point)
    # ------------------------------------------------------------------
    def deliver_success(self, control: Mapping[str, float]) -> bool:
        """The AP's ACK for this station's frame has been received.

        Returns whether a queued frame was dequeued, so the caller can keep
        its delivered-but-not-yet-dequeued inventory exact (the AP counts
        the success when the data frame ends, one SIFS + ACK before this
        runs)."""
        if self._state is StationState.INACTIVE:
            return False
        self.successes += 1
        self._retry_count = 0
        popped = self._queue is not None
        if self._queue is not None:
            delay = self._queue.pop(self._scheduler.now_ns / NS_PER_SECOND)
            if self._on_queue_delay is not None:
                self._on_queue_delay(delay)
            if self._on_frame_departed is not None:
                self._on_frame_departed(self.station_id)
        if control:
            self.policy.apply_control(control)
        self._remaining_slots = self.policy.on_success(self._rng)
        if not self.has_frame:
            self._state = StationState.IDLE_QUEUE
            return popped
        self._state = StationState.DEFERRING
        self._try_resume()
        return popped

    def deliver_failure(self) -> None:
        """No ACK arrived: the frame is declared collided."""
        if self._state is StationState.INACTIVE:
            return
        self.failures += 1
        if self._retry_limit is not None:
            self._retry_count += 1
            if self._retry_count >= self._retry_limit:
                # 802.11 retry limit: discard the frame and reset the
                # contention window exactly as a delivery would, then move
                # on to the next frame (if any).
                self._retry_count = 0
                self.retry_discards += 1
                if self._on_retry_discard is not None:
                    self._on_retry_discard()
                if self._queue is not None:
                    self._queue.pop(self._scheduler.now_ns / NS_PER_SECOND)
                    if self._on_frame_departed is not None:
                        self._on_frame_departed(self.station_id)
                self._remaining_slots = self.policy.on_success(self._rng)
                if not self.has_frame:
                    self._state = StationState.IDLE_QUEUE
                    return
                self._state = StationState.DEFERRING
                self._try_resume()
                return
        self._remaining_slots = self.policy.on_failure(self._rng)
        self._state = StationState.DEFERRING
        self._try_resume()

    def overhear_ack(self, control: Mapping[str, float]) -> None:
        """An ACK destined to another station was heard (wTOP broadcasts)."""
        if self._state is StationState.INACTIVE:
            return
        if control:
            self.policy.apply_control(control)
